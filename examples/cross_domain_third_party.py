#!/usr/bin/env python3
"""Cross-domain third-party transfer: Figures 4 and 5.

Two GCMU sites with *disjoint* trust roots.  A plain third-party
transfer fails at data-channel authentication (Figure 4); sending the
new ``DCSC P`` command to one endpoint fixes it (Figure 5) — including
when the other endpoint is a legacy server that has never heard of DCSC.

Run:  python examples/cross_domain_third_party.py
"""

from repro import World, install_client
from repro.auth import AccountDatabase, Control, NisDomain, NisPamModule, PamStack
from repro.core.gcmu import install_gcmu
from repro.errors import DCAUError
from repro.gridftp.client import GridFTPClient
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import MB, fmt_rate, gbps, mbps


def build_site(world, host, site_name, username, password, dcsc_enabled=True):
    accounts = AccountDatabase()
    accounts.add_user(username)
    nis = NisDomain(site_name)
    nis.add_user(username, password)
    pam = PamStack().add(Control.SUFFICIENT, NisPamModule(nis))
    endpoint = install_gcmu(world, host, site_name, accounts, pam,
                            dcsc_enabled=dcsc_enabled, charge_install_time=False)
    endpoint.make_home(username)
    return endpoint


def main() -> None:
    world = World(seed=45)
    net = world.network
    net.add_host("dtn.alcf.gov", nic_bps=gbps(10))
    net.add_host("dtn.nersc.gov", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn.alcf.gov", "dtn.nersc.gov", gbps(10), 0.028, loss=1e-5)
    net.add_link("laptop", "dtn.alcf.gov", mbps(20), 0.02)
    net.add_link("laptop", "dtn.nersc.gov", mbps(20), 0.03)

    ep_a = build_site(world, "dtn.alcf.gov", "alcf", "alice", "pwA")
    ep_b = build_site(world, "dtn.nersc.gov", "nersc", "asmith", "pwB")
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/run042.h5",
                            LiteralData(b"H5" * MB), uid=uid)

    # one human, two identities — a myproxy-logon per site
    tools = install_client(world, "laptop", username="alice",
                           charge_install_time=False)
    cred_a = tools.myproxy_logon(ep_a, "alice", "pwA")
    cred_b = tools.myproxy_logon(ep_b, "asmith", "pwB")
    print(f"identity at ALCF : {cred_a.subject}")
    print(f"identity at NERSC: {cred_b.subject}")

    client_a = GridFTPClient(world, "laptop", credential=cred_a, trust=tools.trust)
    client_b = GridFTPClient(world, "laptop", credential=cred_b, trust=tools.trust)
    session_a = client_a.connect(ep_a.server)
    session_b = client_b.connect(ep_b.server)

    print("\n== Figure 4: third-party transfer WITHOUT DCSC ==")
    try:
        third_party_transfer(session_a, "/home/alice/run042.h5",
                             session_b, "/home/asmith/run042.h5")
        print("   unexpected success?!")
    except DCAUError as exc:
        print(f"   DCAU failed, as the paper describes:\n   {exc}")

    print("\n== Figure 5: same transfer WITH `DCSC P <credential A>` to NERSC ==")
    result = third_party_transfer(
        session_a, "/home/alice/run042.h5", session_b, "/home/asmith/run042.h5",
        options=TransferOptions(parallelism=8, tcp_window_bytes=8 * MB),
        use_dcsc=cred_a,
    )
    print(f"   transferred {result.nbytes} bytes at {fmt_rate(result.rate_bps)}; "
          f"verified={result.verified}")
    print("   (data moved site-to-site on the 10 Gb/s link, "
          "not through the 20 Mb/s laptop)")

    print("\n== Figure 5, legacy case: NERSC replaced by a DCSC-unaware server ==")
    ep_b.server.dcsc_enabled = False
    session_b2 = GridFTPClient(world, "laptop", credential=cred_b,
                               trust=tools.trust).connect(ep_b.server)
    result2 = third_party_transfer(
        session_a, "/home/alice/run042.h5", session_b2, "/home/asmith/copy2.h5",
        use_dcsc=cred_b,  # credential B handed to the DCSC-capable ALCF side
    )
    print(f"   still works: verified={result2.verified} "
          "(the blob went to the one endpoint that understands DCSC)")


if __name__ == "__main__":
    main()
