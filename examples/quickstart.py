#!/usr/bin/env python3
"""Quickstart: the paper's Section IV.D/IV.E walkthrough.

An administrator installs GCMU on a data transfer node (the four-command
install); a user installs the client tools, runs ``myproxy-logon`` with
their ordinary site username/password, and moves data with
``globus-url-copy`` — no certificates requested, no trust directories
edited, no gridmap maintained.

Run:  python examples/quickstart.py
"""

from repro import World, install_client, install_gcmu
from repro.auth import AccountDatabase, Control, LdapDirectory, LdapPamModule, PamStack
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import MB, fmt_duration, fmt_rate, gbps


def main() -> None:
    world = World(seed=2012)

    # -- topology: one DTN, one laptop, a 1 Gb/s campus link ----------------
    net = world.network
    net.add_host("dtn.univ.edu", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn.univ.edu", "laptop", gbps(1), latency_s=0.008)

    # -- the site's existing identity system (LDAP behind PAM) --------------
    accounts = AccountDatabase()
    accounts.add_user("alice")
    ldap = LdapDirectory(base_dn="dc=univ,dc=edu")
    ldap.add_entry("alice", "correct-horse")
    pam = PamStack("myproxy").add(Control.SUFFICIENT, LdapPamModule(ldap))

    # -- admin: wget / tar / cd / sudo ./install -----------------------------
    print("== admin: installing GCMU on dtn.univ.edu ==")
    t0 = world.now
    endpoint = install_gcmu(world, "dtn.univ.edu", "univ", accounts, pam)
    endpoint.make_home("alice")
    print(f"   GridFTP server : gsiftp://{endpoint.gridftp_address[0]}:{endpoint.gridftp_address[1]}")
    print(f"   MyProxy CA     : {endpoint.myproxy_address[0]}:{endpoint.myproxy_address[1]}")
    print(f"   CA subject     : {endpoint.myproxy.ca.subject}")
    print(f"   install time   : {fmt_duration(world.now - t0)}")

    # seed a file in alice's home
    uid = endpoint.accounts.get("alice").uid
    endpoint.storage.write_file(
        "/home/alice/thesis-data.tar", LiteralData(b"T" * (2 * MB)), uid=uid
    )

    # -- user: install client, myproxy-logon, globus-url-copy -----------------
    print("\n== user: client install + myproxy-logon ==")
    tools = install_client(world, "laptop", username="alice")
    credential = tools.myproxy_logon(endpoint, "alice", "correct-horse")
    print(f"   short-lived credential: {credential.subject}")
    print(f"   valid for             : {fmt_duration(credential.expires_at() - world.now)}")

    print("\n== user: globus-url-copy gsiftp://dtn.univ.edu/... file:///... ==")
    tools.local_storage.makedirs("/home/alice", 0)
    result = tools.globus_url_copy(
        "gsiftp://dtn.univ.edu:2811/home/alice/thesis-data.tar",
        "file:///home/alice/thesis-data.tar",
        TransferOptions(parallelism=4, tcp_window_bytes=4 * MB),
    )
    print(f"   moved    : {result.nbytes} bytes over {result.streams} streams")
    print(f"   rate     : {fmt_rate(result.rate_bps)}")
    print(f"   duration : {fmt_duration(result.duration_s)}")
    print(f"   verified : {result.verified}")

    total = world.now - t0
    print(f"\n'Instant GridFTP': install to verified transfer in "
          f"{fmt_duration(total)} of simulated time, zero PKI steps.")


if __name__ == "__main__":
    main()
