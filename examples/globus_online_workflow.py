#!/usr/bin/env python3
"""Globus Online: the Figure 6 and Figure 7 workflows.

Two GCMU endpoints register with the hosted service; a user activates
them (password first, OAuth second), submits a 50 GB transfer, and the
service survives a mid-transfer outage by re-authenticating with the
stored short-term certificate and restarting from the last checkpoint.

Run:  python examples/globus_online_workflow.py
"""

from repro import World
from repro.auth import AccountDatabase, Control, LdapDirectory, LdapPamModule, PamStack
from repro.core.gcmu import install_gcmu
from repro.globusonline import GlobusOnline, OAuthServer, TransferAPI, format_job_cli
from repro.storage.data import SyntheticData
from repro.util.units import GB, fmt_bytes, gbps


def build_site(world, go, host, site_name, username, password, endpoint_name):
    accounts = AccountDatabase()
    accounts.add_user(username)
    ldap = LdapDirectory(base_dn=f"dc={site_name}")
    ldap.add_entry(username, password)
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    ep = install_gcmu(world, host, site_name, accounts, pam,
                      register_with=go, endpoint_name=endpoint_name,
                      charge_install_time=False)
    ep.make_home(username)
    return ep


def main() -> None:
    world = World(seed=66)
    net = world.network
    for h in ("dtn-a", "dtn-b", "globusonline.org"):
        net.add_host(h, nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.045, loss=1e-5)
    net.add_link("globusonline.org", "dtn-a", gbps(1), 0.02)
    net.add_link("globusonline.org", "dtn-b", gbps(1), 0.02)

    go = GlobusOnline(world, "globusonline.org")
    ep_a = build_site(world, go, "dtn-a", "alcf", "alice", "pwA", "alcf#dtn")
    ep_b = build_site(world, go, "dtn-b", "nersc", "asmith", "pwB", "nersc#dtn")

    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/campaign.dat",
                            SyntheticData(seed=17, length=50 * GB), uid=uid)

    api = TransferAPI(go)
    print("registered endpoints:")
    for ep in api.endpoint_list():
        print(f"   {ep['name']:<12} {ep['gridftp']}")

    # -- Figure 6: password activation + fault-tolerant transfer --------------
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    print(f"\npassword-activation exposure: {sorted(parties)}")

    # an outage will strike 90 seconds into the transfer
    world.faults.cut_link(inter.link_id, at=world.now + 90.0, duration=45.0)

    print("\nsubmitting 50 GB transfer alcf#dtn -> nersc#dtn "
          "(an outage is scheduled mid-flight)...")
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/campaign.dat",
                             "nersc#dtn", "/home/asmith/campaign.dat")
    print(format_job_cli(job))
    print(f"checkpoint at interruption: {fmt_bytes(job.bytes_at_checkpoint)} "
          f"(only the remainder was re-sent)")

    dest = ep_b.storage.open_read("/home/asmith/campaign.dat",
                                  ep_b.accounts.get("asmith").uid)
    ok = dest.fingerprint() == SyntheticData(seed=17, length=50 * GB).fingerprint()
    print(f"destination verified: {ok}")

    # -- Figure 7: the OAuth alternative ----------------------------------------
    print("\n== Figure 7: OAuth activation ==")
    oauth = OAuthServer(world, "dtn-a", ep_a.myproxy, port=8443).start()
    go.attach_oauth("alcf#dtn", oauth)
    world.log.clear()
    go.activate_oauth(user, "alcf#dtn", "alice", "pwA")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    print(f"OAuth-activation exposure: {sorted(parties)} "
          "(the password never touched globusonline.org)")


if __name__ == "__main__":
    main()
