#!/usr/bin/env python3
"""Globus Online: the Figure 6 and Figure 7 workflows.

Two GCMU endpoints register with the hosted service; a user activates
them (password first, OAuth second), submits a 50 GB transfer, and the
service survives a mid-transfer outage by re-authenticating with the
stored short-term certificate and restarting from the last checkpoint.

Run:  python examples/globus_online_workflow.py
"""

from repro import World
from repro.auth import AccountDatabase, Control, LdapDirectory, LdapPamModule, PamStack
from repro.core.gcmu import install_gcmu
from repro.globusonline import GlobusOnline, OAuthServer, TransferAPI, format_job_cli
from repro.scheduler import SchedulerConfig, jain_index
from repro.storage.data import SyntheticData
from repro.util.units import GB, fmt_bytes, gbps


def build_site(world, go, host, site_name, users, endpoint_name):
    accounts = AccountDatabase()
    ldap = LdapDirectory(base_dn=f"dc={site_name}")
    for username, password in users.items():
        accounts.add_user(username)
        ldap.add_entry(username, password)
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    ep = install_gcmu(world, host, site_name, accounts, pam,
                      register_with=go, endpoint_name=endpoint_name,
                      charge_install_time=False)
    for username in users:
        ep.make_home(username)
    return ep


def main() -> None:
    world = World(seed=66)
    net = world.network
    for h in ("dtn-a", "dtn-b", "globusonline.org"):
        net.add_host(h, nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.045, loss=1e-5)
    net.add_link("globusonline.org", "dtn-a", gbps(1), 0.02)
    net.add_link("globusonline.org", "dtn-b", gbps(1), 0.02)

    # one claim worker: dispatch order below is pure fair-share, no
    # wave-of-four interleaving to squint through.
    go = GlobusOnline(world, "globusonline.org",
                      scheduler_config=SchedulerConfig(workers=1))
    ep_a = build_site(world, go, "dtn-a", "alcf",
                      {"alice": "pwA", "bob": "pwC"}, "alcf#dtn")
    ep_b = build_site(world, go, "dtn-b", "nersc", {"asmith": "pwB"}, "nersc#dtn")

    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/campaign.dat",
                            SyntheticData(seed=17, length=50 * GB), uid=uid)

    api = TransferAPI(go)
    print("registered endpoints:")
    for ep in api.endpoint_list():
        print(f"   {ep['name']:<12} {ep['gridftp']}")

    # -- Figure 6: password activation + fault-tolerant transfer --------------
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    print(f"\npassword-activation exposure: {sorted(parties)}")

    # an outage will strike 90 seconds into the transfer
    world.faults.cut_link(inter.link_id, at=world.now + 90.0, duration=45.0)

    print("\nsubmitting 50 GB transfer alcf#dtn -> nersc#dtn "
          "(an outage is scheduled mid-flight)...")
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/campaign.dat",
                             "nersc#dtn", "/home/asmith/campaign.dat")
    print(format_job_cli(job))
    print(f"checkpoint at interruption: {fmt_bytes(job.bytes_at_checkpoint)} "
          f"(only the remainder was re-sent)")

    dest = ep_b.storage.open_read("/home/asmith/campaign.dat",
                                  ep_b.accounts.get("asmith").uid)
    ok = dest.fingerprint() == SyntheticData(seed=17, length=50 * GB).fingerprint()
    print(f"destination verified: {ok}")

    # -- Figure 7: the OAuth alternative ----------------------------------------
    print("\n== Figure 7: OAuth activation ==")
    oauth = OAuthServer(world, "dtn-a", ep_a.myproxy, port=8443).start()
    go.attach_oauth("alcf#dtn", oauth)
    world.log.clear()
    go.activate_oauth(user, "alcf#dtn", "alice", "pwA")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    print(f"OAuth-activation exposure: {sorted(parties)} "
          "(the password never touched globusonline.org)")

    # -- Multi-user contention: fair-share in action ----------------------------
    # Alice (weight 3) and Bob (weight 1) each queue four 2 GB transfers
    # against the same single-worker fleet.  The scheduler interleaves
    # claims so delivered bytes track the 3:1 weights while the backlog
    # drains — not submission order.
    print("\n== Fleet scheduler: two users contending 3:1 ==")
    bob = go.register_user("bob@globusid")
    go.activate(bob, "alcf#dtn", "bob", "pwC")
    go.activate(bob, "nersc#dtn", "asmith", "pwB")
    go.set_fair_share(user, 3.0)
    go.set_fair_share(bob, 1.0)

    uid_bob = ep_a.accounts.get("bob").uid
    before = dict(go.scheduler.queue.delivered_bytes())
    tasks_before = len(go.scheduler.completed_tasks)
    for i in range(4):
        ep_a.storage.write_file(f"/home/alice/part{i}.dat",
                                SyntheticData(seed=100 + i, length=2 * GB), uid=uid)
        ep_a.storage.write_file(f"/home/bob/part{i}.dat",
                                SyntheticData(seed=200 + i, length=2 * GB),
                                uid=uid_bob)
    jobs = []
    for i in range(4):
        jobs.append(go.submit_transfer(
            user, "alcf#dtn", f"/home/alice/part{i}.dat",
            "nersc#dtn", f"/home/asmith/a-part{i}.dat", defer=True))
        jobs.append(go.submit_transfer(
            bob, "alcf#dtn", f"/home/bob/part{i}.dat",
            "nersc#dtn", f"/home/asmith/b-part{i}.dat", defer=True))
    print(f"queued {len(jobs)} deferred jobs "
          f"(queue depth {len(go.scheduler.queue)}); draining...")
    go.process_queue()

    order = [t.user.split("@")[0]
             for t in go.scheduler.completed_tasks[tasks_before:]]
    print(f"completion order: {' '.join(order)}")
    delivered = {
        name: nbytes - before.get(name, 0)
        for name, nbytes in go.scheduler.queue.delivered_bytes().items()
    }
    for name, nbytes in sorted(delivered.items()):
        print(f"   {name:<16} delivered {fmt_bytes(nbytes)}")
    print(f"all succeeded: {all(j.status.value == 'succeeded' for j in jobs)}; "
          f"Jain fairness index {jain_index(delivered.values()):.3f}")


if __name__ == "__main__":
    main()
