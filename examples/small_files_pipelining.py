#!/usr/bin/env python3
"""Lots of small files: pipelining + concurrency (paper Section II.A/VII).

Moving 2,000 x 100 KiB files across a 40 ms-RTT path is round-trip
bound: one command round trip per file dwarfs the payload time.  GridFTP
pipelining batches the RETRs; concurrency moves several files at once;
the auto-tuner picks both.

Run:  python examples/small_files_pipelining.py
"""

from repro import World
from repro.gridftp.transfer import TransferOptions
from repro.gridftp.tuning import DatasetShape, autotune
from repro.metrics.report import render_table
from repro.util.units import KB, MB, fmt_duration, gbps
from repro.workloads.datasets import lots_of_small_files, materialize
from repro.scenarios import conventional_site as make_conventional_site

FILE_COUNT = 2000
FILE_SIZE = 100 * KB


def run_variant(world, site, label, options):
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(site.server)
    client.local_storage.makedirs("/dl", 0)
    paths = [(f"/data/small/f{i:06d}.dat", f"/dl/{label}-{i}.dat")
             for i in range(FILE_COUNT)]
    t0 = world.now
    session.get_many(paths, options)
    elapsed = world.now - t0
    session.quit()
    # spot-check integrity of one file
    sample = client.local_storage.open_read(f"/dl/{label}-7.dat", 0)
    assert sample.size == FILE_SIZE
    return elapsed


def main() -> None:
    world = World(seed=7)
    net = world.network
    net.add_host("server", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("server", "laptop", gbps(1), 0.02)  # 40 ms RTT

    site = make_conventional_site(world, "Lab", "server")
    site.add_user(world, "alice")
    specs = lots_of_small_files(count=FILE_COUNT, size=FILE_SIZE,
                                directory="/data/small")
    materialize(specs, site.storage)

    base = TransferOptions(tcp_window_bytes=1 * MB)
    variants = [
        ("naive (1 RTT per command)", base),
        ("pipelining", base.with_(pipelining=True)),
        ("pipelining + concurrency 8", base.with_(pipelining=True, concurrency=8)),
    ]
    path = world.network.path("server", "laptop")
    tuned = autotune(DatasetShape.from_sizes([s.size for s in specs]), path)
    variants.append((f"auto-tuned (conc={tuned.concurrency}, "
                     f"pipe={tuned.pipelining})", tuned))

    rows = []
    baseline_time = None
    for label, options in variants:
        elapsed = run_variant(world, site, label.split()[0] + str(len(rows)), options)
        if baseline_time is None:
            baseline_time = elapsed
        rows.append([label, fmt_duration(elapsed),
                     f"{baseline_time / elapsed:.1f}x"])

    print(render_table(
        f"{FILE_COUNT} x {FILE_SIZE // KB} KiB files over a 40 ms RTT path",
        ["strategy", "elapsed", "speedup"],
        rows,
    ))


if __name__ == "__main__":
    main()
