#!/usr/bin/env python3
"""Striped-server transfers: the Figure 2 architecture at work.

A cluster fronts one server PI on its head node and a DTP on each of
four 1 Gb/s data-mover nodes; SPAS/SPOR negotiate one data connection
per stripe and the stripes' bandwidth aggregates — this is how clusters
of modest nodes fill fat WAN pipes.

Run:  python examples/striped_cluster_transfer.py
"""

from repro import World
from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.gsi.authz import GridmapCallout
from repro.metrics.report import render_table
from repro.pki.dn import DistinguishedName as DN
from repro.storage.data import SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import GB, MB, fmt_duration, fmt_rate, gbps
from repro.scenarios import conventional_site as make_conventional_site


def main() -> None:
    world = World(seed=88)
    net = world.network
    net.add_router("wan", nic_bps=gbps(100))
    net.add_host("head", nic_bps=gbps(10))
    net.add_link("head", "wan", gbps(10), 0.01)
    for i in range(4):
        net.add_host(f"dtp{i}", nic_bps=gbps(1))
        net.add_link(f"dtp{i}", "wan", gbps(1), 0.01)
    net.add_host("remote", nic_bps=gbps(10))
    net.add_link("remote", "wan", gbps(10), 0.02)
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("laptop", "wan", gbps(1), 0.02)

    remote = make_conventional_site(world, "Remote", "remote")
    remote.add_user(world, "alice")
    uid = remote.accounts.get("alice").uid

    cluster_fs = PosixStorage(world.clock)
    cluster_fs.makedirs("/home/alice", 0)
    cluster_fs.chown("/home/alice", uid)
    data = SyntheticData(seed=5, length=20 * GB)
    cluster_fs.write_file("/home/alice/sim-output.dat", data, uid=uid)

    opts = TransferOptions(parallelism=4, tcp_window_bytes=16 * MB)
    rows = []
    for stripes in (1, 2, 4):
        server = StripedGridFTPServer(
            world, "head", [f"dtp{i}" for i in range(stripes)],
            remote.ca.issue_credential(DN.parse("/O=Remote/OU=hosts/CN=head")),
            remote.trust, GridmapCallout(remote.gridmap), remote.accounts,
            cluster_fs, port=2811 + stripes, name=f"striped-{stripes}",
        ).start()
        client = remote.client_for(world, "alice", "laptop")
        src = client.connect(server)
        dst = client.connect(remote.server)
        result = third_party_transfer(
            src, "/home/alice/sim-output.dat",
            dst, f"/home/alice/copy-{stripes}.dat", opts,
        )
        rows.append([stripes, result.streams, fmt_rate(result.rate_bps),
                     fmt_duration(result.duration_s),
                     "yes" if result.verified else "NO"])
        src.quit()
        dst.quit()

    print(render_table(
        "20 GB transfer from a striped cluster (4 parallel streams per stripe)",
        ["stripes", "total streams", "rate", "duration", "verified"],
        rows,
    ))
    print("\nEach stripe node has a 1 Gb/s NIC; striping aggregates them "
          "toward the 10 Gb/s WAN path, exactly the Figure 2 story.")


if __name__ == "__main__":
    main()
