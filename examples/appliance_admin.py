#!/usr/bin/env python3
"""The GCMU virtual appliance (paper Section VIII future work, implemented).

A lab downloads the appliance image, boots it, and administers it
through the console: add users, check status, register on Globus Online
(with the packaged OAuth server advertised automatically), restart
services.  No PKI appears anywhere.

Run:  python examples/appliance_admin.py
"""

from repro import World
from repro.core.appliance import ApplianceImage
from repro.globusonline import GlobusOnline, TransferAPI
from repro.util.units import gbps


def main() -> None:
    world = World(seed=99)
    net = world.network
    net.add_host("lab-vm", nic_bps=gbps(10))
    net.add_host("peer-vm", nic_bps=gbps(10))
    net.add_host("globusonline.org", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_router("campus")
    for h in ("lab-vm", "peer-vm", "globusonline.org", "laptop"):
        net.add_link(h, "campus", gbps(1), 0.01)

    print("== boot the appliance image on two hosts ==")
    image = ApplianceImage(site_name="biolab", with_oauth=True,
                           preloaded_users=(("pi", "lab-password"),))
    lab = image.boot(world, "lab-vm")
    peer = image.boot(world, "peer-vm")
    print(f"   image v{image.version}: booted on lab-vm and peer-vm "
          f"(independent CAs: "
          f"{lab.endpoint.myproxy.ca.certificate.fingerprint()[:8]} vs "
          f"{peer.endpoint.myproxy.ca.certificate.fingerprint()[:8]})")

    console = lab.console
    print("\n== admin console: add users, inspect status ==")
    print("   >", console.run("add-user grad1 s3cret"))
    print("   >", console.run("add-user grad2 pa55"))
    for line in console.run("status").splitlines():
        print("   ", line)

    print("\n== register both appliances on Globus Online ==")
    go = GlobusOnline(world, "globusonline.org")
    console.api_register(go, "biolab#lab")
    peer.console.api_register(go, "biolab#peer")
    api = TransferAPI(go)
    for ep in api.endpoint_list():
        print(f"   {ep['name']:<14} oauth={ep['oauth']}")

    print("\n== a user activates via the packaged OAuth and transfers ==")
    from repro.storage.data import LiteralData

    uid = lab.endpoint.accounts.get("grad1").uid
    lab.endpoint.storage.write_file("/home/grad1/results.csv",
                                    LiteralData(b"a,b\n1,2\n" * 1000), uid=uid)
    user = go.register_user("grad1@globusid")
    go.activate_oauth(user, "biolab#lab", "grad1", "s3cret")
    peer.console.run("add-user grad1 mirror-pw")
    go.activate_oauth(user, "biolab#peer", "grad1", "mirror-pw")
    job = go.submit_transfer(user, "biolab#lab", "/home/grad1/results.csv",
                             "biolab#peer", "/home/grad1/results.csv")
    print(f"   job {job.job_id}: {job.status.value}, "
          f"checksum verified={job.checksum_verified}")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    print(f"   password exposure across the whole session: {sorted(parties)}")

    print("\n== service bounce survives ==")
    print("   >", console.run("restart-services"))
    print("   audit log:", console.audit_log)


if __name__ == "__main__":
    main()
