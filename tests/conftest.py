"""Shared fixtures: worlds, topologies, sites, and users.

Two site styles are provided:

* ``conventional_site`` — classic GridFTP deployment (well-known CA,
  host cert, gridmap callout), used to test the pre-GCMU workflow;
* ``gcmu_site`` — a full GCMU install (MyProxy Online CA + DN callout).

``two_domain_world`` wires two sites with *disjoint* trust roots plus a
client laptop and a SaaS host — the Figure 4/5/6 topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest
from hypothesis import settings as hypothesis_settings

# Derandomize property tests and drop per-example deadlines (RSA keygen
# examples are legitimately slow): the whole suite is reproducible.
hypothesis_settings.register_profile("repro", derandomize=True, deadline=None)
hypothesis_settings.load_profile("repro")

from repro.auth import (
    AccountDatabase,
    Control,
    LdapDirectory,
    LdapPamModule,
    PamStack,
)
from repro.core.gcmu import GCMUEndpoint, install_gcmu
from repro.gridftp.client import GridFTPClient
from repro.gridftp.server import GridFTPServer
from repro.gsi.authz import GridmapCallout
from repro.gsi.gridmap import Gridmap
from repro.pki.ca import CertificateAuthority
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore
from repro.sim.world import World
from repro.storage.posix import PosixStorage
from repro.util.units import gbps, mbps


@pytest.fixture
def world() -> World:
    """A fresh deterministic world."""
    return World(seed=42)


@dataclass
class Site:
    """One deployed (conventional) GridFTP site for tests."""

    name: str
    host: str
    ca: CertificateAuthority
    trust: TrustStore
    accounts: AccountDatabase
    gridmap: Gridmap
    storage: PosixStorage
    server: GridFTPServer
    user_credentials: dict[str, Credential] = field(default_factory=dict)

    def add_user(self, world: World, username: str) -> Credential:
        """Provision an account + long-term credential + gridmap entry."""
        self.accounts.add_user(username)
        cred = self.ca.issue_credential(
            DistinguishedName.make(("O", self.name), ("OU", "people"), ("CN", username))
        )
        self.gridmap.add(cred.subject, username)
        self.storage.makedirs(f"/home/{username}", 0)
        self.storage.chown(f"/home/{username}", self.accounts.get(username).uid)
        self.user_credentials[username] = cred
        return cred

    def proxy_for(self, world: World, username: str) -> Credential:
        return create_proxy(
            self.user_credentials[username], world.clock, world.rng.python(f"px:{username}")
        )

    def client_for(
        self, world: World, username: str, client_host: str, local_storage=None
    ) -> GridFTPClient:
        return GridFTPClient(
            world,
            client_host,
            credential=self.proxy_for(world, username),
            trust=self.trust,
            local_storage=local_storage or _client_fs(world),
            username=username,
        )


def _client_fs(world: World) -> PosixStorage:
    fs = PosixStorage(world.clock)
    fs.makedirs("/tmp", 0)
    return fs


def make_conventional_site(
    world: World, name: str, host: str, port: int = GridFTPServer.DEFAULT_PORT
) -> Site:
    """Build a classic GridFTP deployment on an existing host."""
    rng = world.rng.python(f"site:{name}")
    ca = CertificateAuthority(
        DistinguishedName.make(("O", name), ("CN", f"{name} CA")), world.clock, rng
    )
    trust = TrustStore()
    trust.add_anchor(ca.certificate)
    accounts = AccountDatabase()
    gridmap = Gridmap()
    storage = PosixStorage(world.clock)
    host_cred = ca.issue_credential(
        DistinguishedName.make(("O", name), ("OU", "hosts"), ("CN", host))
    )
    server = GridFTPServer(
        world,
        host,
        host_cred,
        trust,
        GridmapCallout(gridmap),
        accounts,
        storage,
        port=port,
        name=f"gridftp-{name}",
    ).start()
    return Site(
        name=name,
        host=host,
        ca=ca,
        trust=trust,
        accounts=accounts,
        gridmap=gridmap,
        storage=storage,
        server=server,
    )


def make_gcmu_site(
    world: World,
    host: str,
    site_name: str,
    users: dict[str, str],
    register_with=None,
    endpoint_name: str | None = None,
    dcsc_enabled: bool = True,
) -> GCMUEndpoint:
    """Install GCMU on an existing host with LDAP-backed users."""
    accounts = AccountDatabase()
    ldap = LdapDirectory(base_dn=f"dc={site_name}")
    for username, password in users.items():
        accounts.add_user(username)
        ldap.add_entry(username, password)
    pam = PamStack(f"myproxy-{site_name}").add(Control.SUFFICIENT, LdapPamModule(ldap))
    endpoint = install_gcmu(
        world,
        host,
        site_name,
        accounts,
        pam,
        register_with=register_with,
        endpoint_name=endpoint_name,
        dcsc_enabled=dcsc_enabled,
        charge_install_time=False,
    )
    for username in users:
        endpoint.make_home(username)
    return endpoint


@dataclass
class TwoDomains:
    """The Figure 4/5/6 topology, assembled."""

    world: World
    site_a: Site
    site_b: Site
    laptop: str
    saas_host: str
    inter_site_link_id: str


@pytest.fixture
def two_domain_world() -> TwoDomains:
    """Two conventional sites with disjoint CAs, a laptop, a SaaS host."""
    world = World(seed=1234)
    net = world.network
    net.add_host("dtn-a", nic_bps=gbps(10))
    net.add_host("dtn-b", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_host("saas", nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.05, loss=1e-5)
    net.add_link("laptop", "dtn-a", mbps(20), 0.02)
    net.add_link("laptop", "dtn-b", mbps(20), 0.03)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    site_a = make_conventional_site(world, "SiteA", "dtn-a")
    site_b = make_conventional_site(world, "SiteB", "dtn-b")
    alice_a = site_a.add_user(world, "alice")
    site_b.add_user(world, "asmith")
    del alice_a
    return TwoDomains(
        world=world,
        site_a=site_a,
        site_b=site_b,
        laptop="laptop",
        saas_host="saas",
        inter_site_link_id=inter.link_id,
    )


@pytest.fixture
def simple_pair(world: World) -> tuple[World, Site, str]:
    """One site + a laptop, for single-server protocol tests."""
    net = world.network
    net.add_host("server1", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("server1", "laptop", gbps(1), 0.01, loss=0.0)
    site = make_conventional_site(world, "Lab", "server1")
    site.add_user(world, "alice")
    return world, site, "laptop"
