"""Component unit tests: picker packing, bundler staging, verifier
mismatch re-replication, deleter quorum guard + idempotency, and the
crash-at-claim parking discipline."""

import pytest

from repro.archive import ArchivalCampaign, BundleStatus, CampaignConfig
from repro.errors import ArchiveError
from repro.storage.data import LiteralData, checksum

CALM = CampaignConfig(chaos=False, site_blackout=False)


def calm_campaign():
    return ArchivalCampaign(CALM)


def submit_all(campaign):
    for request in campaign.requests:
        campaign.catalog.submit(request)


def drain(cycle):
    """Run a capped component cycle until its queue is dry."""
    total = 0
    while True:
        n = cycle()
        total += n
        if n == 0:
            return total


def drive_to_verifying(campaign):
    """Picker -> bundler -> replicator -> scheduler -> collect."""
    submit_all(campaign)
    drain(campaign.picker.cycle)
    drain(campaign.bundler.cycle)
    drain(campaign.replicator.cycle)
    campaign.scheduler.run_until_idle()
    drain(campaign.replicator.collect_cycle)


def test_picker_respects_bundle_caps():
    campaign = calm_campaign()
    submit_all(campaign)
    assert campaign.picker.cycle() == len(campaign.requests)
    bundles = campaign.catalog.bundles
    assert bundles, "picker produced no bundles"
    cfg = campaign.config
    for bundle in bundles:
        assert bundle.status is BundleStatus.SPECIFIED
        assert len(bundle.files) <= cfg.max_bundle_files
        assert bundle.size <= cfg.max_bundle_bytes
        assert len(bundle.replicas) == cfg.dest_sites
    # every source path lands in exactly one bundle of its own request
    for request in campaign.requests:
        packed = [
            path
            for bundle in bundles if bundle.request_id == request.request_id
            for path in bundle.files
        ]
        assert sorted(packed) == sorted(request.paths)
        assert len(packed) == len(set(packed))


def test_picker_split_is_deterministic():
    first = calm_campaign()
    submit_all(first)
    first.picker.cycle()
    second = calm_campaign()
    submit_all(second)
    second.picker.cycle()
    assert ([(b.bundle_id, b.files, b.size) for b in first.catalog.bundles]
            == [(b.bundle_id, b.files, b.size) for b in second.catalog.bundles])


def test_bundler_stages_concatenated_payload():
    campaign = calm_campaign()
    submit_all(campaign)
    drain(campaign.picker.cycle)
    drain(campaign.bundler.cycle)
    for bundle in campaign.catalog.bundles:
        assert bundle.status is BundleStatus.STAGED
        expected = campaign.expected_bundle_payload(bundle.bundle_id)
        staged = campaign.source.storage.open_read(
            bundle.staged_path, 0).read_all()
        assert staged == expected
        assert bundle.checksum == checksum(expected)
        assert bundle.size == len(expected)
        # manifest rows carry per-file sizes and digests in bundle order
        assert list(bundle.manifest) == list(bundle.files)
        for path, (size, digest) in bundle.manifest.items():
            raw = campaign.source_payloads[path]
            assert (size, digest) == (len(raw), checksum(raw))


def test_verifier_discards_corrupt_replica_and_pipeline_recuts():
    campaign = calm_campaign()
    drive_to_verifying(campaign)
    bundles = campaign.catalog.bundles
    assert all(b.status is BundleStatus.VERIFYING for b in bundles)
    victim = bundles[0]
    bad_replica = victim.replicas[0]
    site = campaign.sites[bad_replica.site]
    # corrupt the archived copy at the destination (bit-rot in transit)
    site.storage.delete(bad_replica.path, 0)
    site.storage.write_file(bad_replica.path, LiteralData(b"garbage"), uid=0)

    drain(campaign.verifier.cycle)
    assert victim.status is BundleStatus.STAGED
    assert not bad_replica.transferred and not bad_replica.verified
    assert bad_replica.task is None
    assert victim.replicas[1].verified  # the clean copy survives
    metrics = campaign.world.metrics
    assert metrics.counter("archive_checksum_mismatches_total").value() == 1
    # the rest of the fleet completed verification untouched
    assert all(b.status is BundleStatus.COMPLETED for b in bundles[1:])

    # drive the re-replication loop: only the bad copy is re-cut
    drain(campaign.replicator.cycle)
    campaign.scheduler.run_until_idle()
    drain(campaign.replicator.collect_cycle)
    drain(campaign.verifier.cycle)
    assert victim.status is BundleStatus.COMPLETED
    assert campaign.replica_payload(victim.bundle_id, bad_replica.site) \
        == campaign.expected_bundle_payload(victim.bundle_id)


def test_deleter_refuses_below_quorum():
    campaign = calm_campaign()
    drive_to_verifying(campaign)
    drain(campaign.verifier.cycle)
    bundle = campaign.catalog.bundles[0]
    assert bundle.status is BundleStatus.COMPLETED
    # simulate a catalog corrupted past the verifier's guarantee
    for replica in bundle.replicas:
        replica.verified = False
    with pytest.raises(ArchiveError, match="refusing source delete"):
        campaign.deleter.cycle()
    # nothing was removed
    assert all(campaign.source.storage.exists(p) for p in bundle.files)


def test_deleter_is_idempotent_across_partial_crashes():
    campaign = calm_campaign()
    drive_to_verifying(campaign)
    drain(campaign.verifier.cycle)
    bundle = campaign.catalog.bundles[0]
    # a previous deleter attempt died halfway: half the files already gone
    gone = bundle.files[: len(bundle.files) // 2]
    for path in gone:
        campaign.source.storage.delete(path, 0)
    drain(campaign.deleter.cycle)
    assert all(b.status is BundleStatus.SOURCE_DELETED
               for b in campaign.catalog.bundles)
    for b in campaign.catalog.bundles:
        assert not any(campaign.source.storage.exists(p) for p in b.files)
        assert not campaign.source.storage.exists(b.staged_path)


def test_component_crash_parks_until_lease_lapses():
    campaign = calm_campaign()
    submit_all(campaign)
    world, catalog = campaign.world, campaign.catalog
    picker = campaign.picker
    picker.host = "arch-picker"
    # a crash onset inside the claim's lease window kills the claim
    world.faults.crash_host("arch-picker", at=world.now + 5.0, duration=10.0)
    assert picker.cycle() == 0
    assert picker.crashes == 1
    assert world.metrics.get(
        "archive_component_crashes_total").value(component="picker") == 1
    # parked: no work until the abandoned lease lapses and requeues
    assert picker.cycle() == 0
    world.advance(catalog.lease_s + 1.0)
    assert catalog.requeue_lapsed() == 1
    # host is back up (downtime [5, 15] passed) and the row requeued
    assert picker.cycle() == len(campaign.requests)
    request = campaign.requests[0]
    assert request.attempts == 2  # the crashed claim counted one attempt


def test_calm_campaign_completes_without_faults():
    campaign = calm_campaign()
    stats = campaign.run()
    assert stats["injected_faults"] == 0
    assert stats["counts"]["source-deleted"] == len(campaign.catalog.bundles)
    assert len(campaign.catalog.leases) == 0
