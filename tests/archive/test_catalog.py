"""Catalog unit tests: claims, transitions, lapses, quarantine, history."""

import pytest

from repro.archive.catalog import (
    ArchiveRequest,
    Bundle,
    BundleStatus,
    Catalog,
    Replica,
    RequestStatus,
)
from repro.errors import IllegalTransitionError, LeaseLostError
from repro.sim.world import World


def make_catalog(lease_s=10.0, max_claim_attempts=5):
    world = World(seed=1)
    return world, Catalog(world, lease_s=lease_s,
                          max_claim_attempts=max_claim_attempts)


def make_request(rid="req-1", nfiles=2):
    return ArchiveRequest(
        request_id=rid, user="u", source_site="site-0",
        dest_sites=("site-1", "site-2"),
        paths=tuple(f"/d/{rid}-f{i}" for i in range(nfiles)),
    )


def make_bundle(cat, bid="b-1", rid="req-1"):
    bundle = Bundle(
        bundle_id=bid, request_id=rid, files=(f"/d/{bid}",), size=10,
        replicas=[Replica("site-1", f"/a/{bid}"), Replica("site-2", f"/a/{bid}")],
    )
    cat.add_bundle(bundle, actor="test")
    cat.specify(bundle, actor="test")
    return bundle


def test_submit_and_pick_flow():
    _, cat = make_catalog()
    request = cat.submit(make_request())
    assert request.status is RequestStatus.QUEUED
    claimed = cat.claim_request("picker")
    assert claimed is not None
    got, lease = claimed
    assert got is request and got.attempts == 1
    # leased: nothing else to pick
    assert cat.claim_request("picker") is None
    cat.commit_request(lease, RequestStatus.PICKED, actor="picker")
    assert request.status is RequestStatus.PICKED
    assert len(cat.leases) == 0


def test_duplicate_submit_rejected():
    _, cat = make_catalog()
    cat.submit(make_request())
    with pytest.raises(LeaseLostError):
        cat.submit(make_request())


def test_claim_order_is_fifo():
    _, cat = make_catalog()
    first = make_bundle(cat, "b-1")
    second = make_bundle(cat, "b-2")
    got1, l1 = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    got2, l2 = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    assert (got1, got2) == (first, second)
    assert cat.claim_bundle(BundleStatus.SPECIFIED, "bundler") is None


def test_illegal_transition_rejected():
    _, cat = make_catalog()
    bundle = make_bundle(cat)
    _, lease = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    with pytest.raises(IllegalTransitionError):
        cat.commit(lease, BundleStatus.TRANSFERRING, actor="bundler")
    # the failed commit did not consume the lease or corrupt the status
    assert bundle.status is BundleStatus.SPECIFIED
    cat.commit(lease, BundleStatus.CREATED, actor="bundler")
    assert bundle.status is BundleStatus.CREATED


def test_commit_after_lapse_rejected():
    world, cat = make_catalog(lease_s=10.0)
    make_bundle(cat)
    _, lease = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    world.advance(11.0)
    with pytest.raises(LeaseLostError):
        cat.commit(lease, BundleStatus.CREATED, actor="bundler")


def test_lapsed_row_requeues_at_front():
    world, cat = make_catalog(lease_s=10.0)
    lapsed = make_bundle(cat, "b-lapsed")
    make_bundle(cat, "b-fresh")
    got, _ = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    assert got is lapsed
    world.advance(11.0)
    assert cat.requeue_lapsed() == 1
    # the crashed claimant's row comes back ahead of the fresh one
    got2, _ = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    assert got2 is lapsed
    assert got2.attempts == 2


def test_quarantine_after_max_attempts():
    world, cat = make_catalog(lease_s=10.0, max_claim_attempts=2)
    bundle = make_bundle(cat)
    for _ in range(2):
        assert cat.claim_bundle(BundleStatus.SPECIFIED, "bundler") is not None
        world.advance(11.0)
        cat.requeue_lapsed()
    assert bundle.status is BundleStatus.FAILED
    assert "quarantined" in bundle.error
    assert cat.claim_bundle(BundleStatus.SPECIFIED, "bundler") is None
    assert world.metrics.counter("archive_bundles_failed_total").value() == 1


def test_release_claim_rejoins_back_of_queue():
    _, cat = make_catalog()
    yielded = make_bundle(cat, "b-yield")
    other = make_bundle(cat, "b-other")
    _, lease = cat.claim_bundle(BundleStatus.SPECIFIED, "replicator")
    cat.release_claim(lease, actor="replicator")
    got, _ = cat.claim_bundle(BundleStatus.SPECIFIED, "replicator")
    assert got is other
    got2, _ = cat.claim_bundle(BundleStatus.SPECIFIED, "replicator")
    assert got2 is yielded


def test_commit_applies_fields_atomically():
    _, cat = make_catalog()
    bundle = make_bundle(cat)
    _, lease = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    cat.commit(lease, BundleStatus.CREATED, actor="bundler", release=False,
               checksum="sha256:abc", size=42, staged_path="/stage/b-1")
    assert (bundle.checksum, bundle.size, bundle.staged_path) == (
        "sha256:abc", 42, "/stage/b-1")
    cat.commit(lease, BundleStatus.STAGED, actor="bundler")
    assert bundle.status is BundleStatus.STAGED
    assert len(cat.leases) == 0


def _drive_to(cat, bundle, target):
    """Walk a bundle down the happy path to ``target`` via legal claims."""
    chain = [
        (BundleStatus.SPECIFIED, BundleStatus.CREATED),
        (BundleStatus.STAGED, BundleStatus.TRANSFERRING),
        (BundleStatus.TRANSFERRING, BundleStatus.VERIFYING),
        (BundleStatus.VERIFYING, BundleStatus.COMPLETED),
        (BundleStatus.COMPLETED, BundleStatus.SOURCE_DELETED),
    ]
    for claim_status, next_status in chain:
        if bundle.status is target:
            return
        _, lease = cat.claim_bundle(claim_status, "test")
        if next_status is BundleStatus.CREATED:
            cat.commit(lease, BundleStatus.CREATED, actor="test", release=False)
            cat.commit(lease, BundleStatus.STAGED, actor="test")
        else:
            if next_status is BundleStatus.COMPLETED:
                for replica in bundle.replicas:
                    replica.verified = True
            cat.commit(lease, next_status, actor="test")
    assert bundle.status is target


def test_completed_observes_bundle_latency():
    world, cat = make_catalog()
    bundle = make_bundle(cat)
    world.advance(30.0)
    _drive_to(cat, bundle, BundleStatus.COMPLETED)
    assert bundle.completed_at == world.now
    exposition = world.metrics.render_prometheus()
    assert "archive_bundle_latency_seconds_count 1" in exposition


def test_full_lifecycle_and_done():
    _, cat = make_catalog()
    request = cat.submit(make_request())
    _, lease = cat.claim_request("picker")
    bundle = make_bundle(cat)
    cat.commit_request(lease, RequestStatus.PICKED, actor="picker")
    assert not cat.done()
    _drive_to(cat, bundle, BundleStatus.SOURCE_DELETED)
    assert cat.done()
    assert request.status is RequestStatus.PICKED
    assert cat.counts()["source-deleted"] == 1


def test_commit_type_guards():
    _, cat = make_catalog()
    cat.submit(make_request())
    _, request_lease = cat.claim_request("picker")
    with pytest.raises(IllegalTransitionError):
        cat.commit(request_lease, BundleStatus.CREATED, actor="picker")
    make_bundle(cat)
    _, bundle_lease = cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    with pytest.raises(IllegalTransitionError):
        cat.commit_request(bundle_lease, RequestStatus.PICKED, actor="bundler")


def test_claim_predicate_rotates_skipped_rows():
    _, cat = make_catalog()
    make_bundle(cat, "b-skip")
    wanted = make_bundle(cat, "b-want")
    got, lease = cat.claim_bundle(
        BundleStatus.SPECIFIED, "collector",
        predicate=lambda b: b.bundle_id == "b-want")
    assert got is wanted
    cat.release_claim(lease, actor="collector")
    # nothing passes: every row rotates, nothing is lost
    assert cat.claim_bundle(
        BundleStatus.SPECIFIED, "collector", predicate=lambda b: False) is None
    assert cat.claim_bundle(BundleStatus.SPECIFIED, "collector") is not None


def test_history_digest_is_deterministic():
    def run():
        world, cat = make_catalog()
        cat.submit(make_request())
        _, lease = cat.claim_request("picker")
        bundle = make_bundle(cat)
        cat.commit_request(lease, RequestStatus.PICKED, actor="picker")
        world.advance(5.0)
        _drive_to(cat, bundle, BundleStatus.SOURCE_DELETED)
        return cat.history_digest()

    digest = run()
    assert digest == run()
    assert len(digest) == 64


def test_metrics_present_from_init():
    world, _ = make_catalog()
    exposition = world.metrics.render_prometheus()
    for name in (
        "archive_requests_total",
        "archive_transitions_total",
        "archive_lease_expirations_total",
        "archive_component_crashes_total",
        "archive_bundles_failed_total",
        "archive_bundles",
        "archive_bundle_latency_seconds",
    ):
        assert f"# TYPE {name}" in exposition, name


def test_snapshot_shape():
    _, cat = make_catalog()
    cat.submit(make_request())
    make_bundle(cat)
    cat.claim_bundle(BundleStatus.SPECIFIED, "bundler")
    snap = cat.snapshot()
    assert snap["requests"][0]["request"] == "req-1"
    assert snap["bundles"][0]["status"] == "specified"
    assert snap["leases"][0]["component"] == "bundler"
    assert snap["counts"]["specified"] == 1
