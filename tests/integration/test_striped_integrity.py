"""End-to-end data integrity through striped, parallel, protected paths."""

import pytest

from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import gbps
from repro.xio.drivers import Protection
from tests.conftest import make_conventional_site


@pytest.fixture
def striped_env(world):
    from repro.gridftp.striped import StripedGridFTPServer
    from repro.gsi.authz import GridmapCallout
    from repro.pki.dn import DistinguishedName as DN
    from repro.storage.posix import PosixStorage

    net = world.network
    net.add_router("wan")
    net.add_host("head", nic_bps=gbps(10))
    for i in range(3):
        net.add_host(f"dtp{i}", nic_bps=gbps(1))
        net.add_link(f"dtp{i}", "wan", gbps(1), 0.01)
    net.add_host("remote", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("head", "wan", gbps(10), 0.01)
    net.add_link("remote", "wan", gbps(10), 0.02)
    net.add_link("laptop", "wan", gbps(1), 0.02)

    site = make_conventional_site(world, "Remote", "remote")
    site.add_user(world, "alice")
    fs = PosixStorage(world.clock)
    striped = StripedGridFTPServer(
        world, "head", [f"dtp{i}" for i in range(3)],
        site.ca.issue_credential(DN.parse("/O=Remote/OU=hosts/CN=head")),
        site.trust, GridmapCallout(site.gridmap), site.accounts, fs,
    ).start()
    fs.makedirs("/home/alice", 0)
    fs.chown("/home/alice", site.accounts.get("alice").uid)
    return world, site, striped, fs


CONTENT = bytes(range(256)) * 4096  # 1 MiB of patterned data


def test_striped_parallel_protected_literal_integrity(striped_env):
    """Every byte survives 3 stripes x 4 streams x encryption."""
    world, site, striped, fs = striped_env
    uid = site.accounts.get("alice").uid
    fs.write_file("/home/alice/pattern.bin", LiteralData(CONTENT), uid=uid)

    client = site.client_for(world, "alice", "laptop")
    src = client.connect(striped)
    dst = client.connect(site.server)
    res = third_party_transfer(
        src, "/home/alice/pattern.bin", dst, "/home/alice/pattern.bin",
        options=TransferOptions(parallelism=4, protection=Protection.PRIVATE,
                                block_size=64 * 1024),
    )
    assert res.verified
    assert res.stripes == 3
    assert res.streams == 12
    out = site.storage.open_read("/home/alice/pattern.bin", uid)
    assert out.read_all() == CONTENT


def test_striped_restart_preserves_integrity(striped_env):
    """Interrupt a striped transfer, resume, and check every byte."""
    world, site, striped, fs = striped_env
    uid = site.accounts.get("alice").uid
    big = LiteralData(CONTENT * 3)  # 3 MiB literal to keep it honest
    fs.write_file("/home/alice/big.bin", big, uid=uid)

    # make it slow enough to interrupt: single stream, small window
    opts = TransferOptions(parallelism=1, block_size=64 * 1024)
    # estimate nothing; just cut all dtp links briefly, 1s in
    for link in list(world.network.links.values()):
        if link.a.startswith("dtp") or link.b.startswith("dtp"):
            world.faults.cut_link(link.link_id, at=world.now + 1.0, duration=5.0)

    from repro.gridftp.third_party import third_party_with_restart

    client = site.client_for(world, "alice", "laptop")
    src = client.connect(striped)
    dst = client.connect(site.server)
    res, attempts = third_party_with_restart(
        src, "/home/alice/big.bin", dst, "/home/alice/big-copy.bin", opts,
    )
    assert attempts >= 2
    out = site.storage.open_read("/home/alice/big-copy.bin", uid)
    assert out.read_all() == CONTENT * 3
