"""End-to-end: the Figure 6/7 Globus Online stories."""

import pytest

from repro.globusonline import OAuthServer
from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.storage.data import SyntheticData
from repro.util.units import GB, gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def saas(world):
    net = world.network
    for h in ("dtn-a", "dtn-b", "go"):
        net.add_host(h, nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.045, loss=1e-5)
    net.add_link("go", "dtn-a", gbps(1), 0.02)
    net.add_link("go", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "go")
    ep_a = make_gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                          register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                          register_with=go, endpoint_name="nersc#dtn")
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/campaign.dat",
                            SyntheticData(seed=17, length=50 * GB), uid=uid)
    return world, go, ep_a, ep_b, inter.link_id


def test_figure6_full_story(saas):
    """Activate both endpoints, transfer, survive two faults, verify."""
    world, go, ep_a, ep_b, link = saas
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    # two outages during what will be a multi-minute transfer
    world.faults.cut_link(link, at=world.now + 60.0, duration=40.0)
    world.faults.cut_link(link, at=world.now + 240.0, duration=40.0)

    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/campaign.dat",
                             "nersc#dtn", "/home/asmith/campaign.dat")
    assert job.status is JobStatus.SUCCEEDED
    assert job.faults_survived == 2
    assert job.attempts == 3
    uid = ep_b.accounts.get("asmith").uid
    data = ep_b.storage.open_read("/home/asmith/campaign.dat", uid)
    assert data.fingerprint() == SyntheticData(seed=17, length=50 * GB).fingerprint()
    # wasted work is bounded: total payload re-sent < 2 full files
    total_sent = job.result.nbytes + job.bytes_at_checkpoint
    assert total_sent <= 50 * GB * 1.05


def test_go_never_stores_password_but_holds_certificate(saas):
    world, go, ep_a, ep_b, link = saas
    user = go.register_user("alice@globusid")
    act = go.activate(user, "alcf#dtn", "alice", "pwA")
    # what GO retains is the short-term credential, not the password
    assert act.credential.valid_at(world.now)
    stored_fields = vars(act)
    assert "pwA" not in str(stored_fields)


def test_figure7_oauth_end_to_end(saas):
    world, go, ep_a, ep_b, link = saas
    oauth_a = OAuthServer(world, "dtn-a", ep_a.myproxy, port=8443).start()
    go.attach_oauth("alcf#dtn", oauth_a)
    user = go.register_user("alice@globusid")
    world.log.clear()
    go.activate_oauth(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    # password exposure: alcf password seen ONLY by the site
    alcf_exposures = [e for e in world.log.select("credential.exposure")
                      if e.fields.get("username") == "alice"]
    assert {e.fields["party"] for e in alcf_exposures} == {"site:alcf"}
    # the OAuth-activated endpoint transfers normally
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/campaign.dat",
                             "nersc#dtn", "/home/asmith/oauth-copy.dat")
    assert job.status is JobStatus.SUCCEEDED


def test_endpoint_outage_during_activation_window(saas):
    """Endpoint down at submit time: GO waits and completes."""
    world, go, ep_a, ep_b, link = saas
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    world.faults.crash_host("dtn-b", at=world.now + 1.0, duration=120.0)
    world.advance(5.0)  # submit lands inside the outage
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/campaign.dat",
                             "nersc#dtn", "/home/asmith/late.dat")
    assert job.status is JobStatus.SUCCEEDED
    assert job.attempts >= 1
