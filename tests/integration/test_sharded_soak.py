"""Sharded-control-plane soak: crash workers AND whole shards mid-claim.

The single-scheduler soak (test_scheduler_soak) proves the lease
machinery under random worker crashes.  This campaign raises the
stakes for the sharded plane: on top of the same chaos campaign,
scripted blackouts take down *every worker host of one shard at once*
— the worst case the router's work-stealing exists for.  Acceptance:

* every job completes (zero lost) exactly once (zero duplicated);
* the crash campaign really bit, including the shard blackouts;
* work-stealing actually rescued the blacked-out shards' queues
  (cross-shard steals > 0);
* Jain's fairness index over per-user delivered bytes >= 0.95 — a
  user homed on a dead shard is not starved;
* delivered file bytes are identical to a crash-free unsharded run;
* the whole campaign replays bit for bit under the same seed.

``CHAOS_SEED`` narrows the seed matrix (one seed per CI matrix entry).
"""

import os

import pytest

from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.scheduler import SchedulerConfig, jain_index, user_shard
from repro.sim.faults import ChaosConfig
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.util.units import MB, gbps
from tests.conftest import make_gcmu_site

SEEDS = [7, 11, 23]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

N_SHARDS = 4
N_USERS = 10
JOBS_PER_USER = 6
FILE_SIZE = 8 * MB  # above the coalescing threshold: one claim per job
WORKER_HOSTS = tuple(f"go-worker-{i}" for i in range(8))

CAMPAIGN = ChaosConfig(
    host_crash_every_s=22.0,
    host_downtime_s=(5.0, 15.0),
    horizon_s=2 * 3600.0,
)

#: scripted whole-shard blackouts: (shard index, start, duration).
#: worker i serves shard i % N, so shard s's hosts are every Nth host.
BLACKOUTS = ((0, 45.0, 60.0), (2, 160.0, 60.0), (1, 300.0, 45.0))


def _shard_hosts(shard):
    return [WORKER_HOSTS[i] for i in range(len(WORKER_HOSTS))
            if i % N_SHARDS == shard]


def _build(seed, crashes=True, shards=N_SHARDS):
    world = World(seed=seed)
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    config = SchedulerConfig(
        workers=len(WORKER_HOSTS),
        worker_hosts=WORKER_HOSTS if crashes else (),
        lease_s=40.0,
        heartbeat_s=8.0,
        max_task_attempts=50,
    )
    go = GlobusOnline(world, "saas", scheduler_config=config, shards=shards)
    ep_a = make_gcmu_site(
        world, "dtn-a", "alcf",
        {f"user{i}": f"pw{i}" for i in range(N_USERS)},
        register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"sink": "pwS"},
                          register_with=go, endpoint_name="nersc#dtn")
    if crashes:
        world.chaos.configure(CAMPAIGN)
        world.chaos.arm(hosts=list(WORKER_HOSTS))
        # on top of the random campaign: take out every host of one
        # shard simultaneously, shard by shard
        for shard, start, duration in BLACKOUTS:
            for host in _shard_hosts(shard):
                world.faults.crash_host(host, at=start, duration=duration)
    return world, go, ep_a, ep_b


def _run_campaign(seed, crashes=True, shards=N_SHARDS):
    world, go, ep_a, ep_b = _build(seed, crashes=crashes, shards=shards)
    jobs = []
    for u in range(N_USERS):
        username = f"user{u}"
        uid = ep_a.accounts.get(username).uid
        account = go.register_user(f"{username}@globusid")
        go.activate(account, "alcf#dtn", username, f"pw{u}")
        go.activate(account, "nersc#dtn", "sink", "pwS")
        for j in range(JOBS_PER_USER):
            path = f"/home/{username}/f{j}.dat"
            ep_a.storage.write_file(
                path, SyntheticData(seed=1000 * u + j, length=FILE_SIZE), uid=uid)
            jobs.append(go.submit_transfer(
                account, "alcf#dtn", path,
                "nersc#dtn", f"/home/sink/{username}-f{j}.dat", defer=True))
    go.process_queue()
    uid_sink = ep_b.accounts.get("sink").uid
    fingerprints = {
        f"{j.user}:{j.dst_path}": ep_b.storage.open_read(j.dst_path, uid_sink).fingerprint()
        for j in jobs
    }
    return {"world": world, "go": go, "jobs": jobs, "fingerprints": fingerprints}


def _total(world, name):
    metric = world.metrics.get(name)
    return metric.total() if metric is not None else 0.0


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_soak_zero_lost_zero_duplicated(seed):
    run = _run_campaign(seed)
    world, go, jobs = run["world"], run["go"], run["jobs"]
    njobs = N_USERS * JOBS_PER_USER
    assert len(jobs) == njobs
    assert all(j.status is JobStatus.SUCCEEDED for j in jobs)
    # completions balance submissions exactly, across every shard
    assert _total(world, "scheduler_submitted_total") == njobs
    assert _total(world, "scheduler_completed_total") == njobs
    assert _total(world, "scheduler_task_failures_total") == 0
    assert len(go.scheduler.leases) == 0
    assert len(go.scheduler.queue) == 0
    # the campaign bit hard: random crashes plus three shard blackouts
    crashes = _total(world, "scheduler_worker_crashes_total")
    assert crashes >= 20, crashes
    assert (_total(world, "scheduler_requeued_total")
            == _total(world, "scheduler_lease_expirations_total"))
    # every completion is credited to the user's home shard
    completed = world.metrics.get("scheduler_completed_total")
    for u in range(N_USERS):
        home = user_shard(f"user{u}@globusid", N_SHARDS)
        assert completed.value(shard=str(home)) > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_soak_work_stealing_rescues_dead_shards(seed):
    run = _run_campaign(seed)
    world = run["world"]
    # a whole shard went dark mid-campaign; its queue only drained
    # because foreign workers stole it
    steals = _total(world, "scheduler_steals_total")
    assert steals > 0, "shard blackouts should force cross-shard steals"
    # fairness survived the blackouts: per-user delivered bytes stay
    # tight even for users homed on the shards that died
    delivered = run["go"].scheduler.queue.delivered_bytes()
    assert len(delivered) == N_USERS
    assert jain_index(delivered.values()) >= 0.95


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_soak_bytes_identical_to_unsharded_clean_run(seed):
    chaotic = _run_campaign(seed, crashes=True, shards=N_SHARDS)
    baseline = _run_campaign(seed, crashes=False, shards=None)
    assert chaotic["fingerprints"] == baseline["fingerprints"]
    assert _total(chaotic["world"], "scheduler_worker_crashes_total") >= 20
    assert _total(baseline["world"], "scheduler_worker_crashes_total") == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_soak_replays_bit_for_bit(seed):
    a = _run_campaign(seed)
    b = _run_campaign(seed)
    assert a["fingerprints"] == b["fingerprints"]
    for counter in ("scheduler_worker_crashes_total", "scheduler_requeued_total",
                    "scheduler_completed_total", "scheduler_steals_total"):
        assert _total(a["world"], counter) == _total(b["world"], counter)
    assert a["world"].now == b["world"].now


def test_sharded_metrics_and_flight_records_carry_shard():
    world, go, ep_a, ep_b = _build(SEEDS[0], crashes=False)
    recorder, _ = world.enable_observability()
    username = "user0"
    uid = ep_a.accounts.get(username).uid
    account = go.register_user(f"{username}@globusid")
    go.activate(account, "alcf#dtn", username, "pw0")
    go.activate(account, "nersc#dtn", "sink", "pwS")
    ep_a.storage.write_file(
        "/home/user0/one.dat", SyntheticData(seed=1, length=FILE_SIZE), uid=uid)
    job = go.submit_transfer(account, "alcf#dtn", "/home/user0/one.dat",
                             "nersc#dtn", "/home/sink/one.dat", defer=True)
    go.process_queue()
    assert job.status is JobStatus.SUCCEEDED
    home = str(user_shard(f"{username}@globusid", N_SHARDS))
    # the exposition carries shard-labelled scheduler series
    text = world.metrics.render_prometheus()
    assert f'scheduler_completed_total{{shard="{home}"}} 1' in text
    # and the flight record knows its home shard
    records = [r for r in recorder.records() if r.user == f"{username}@globusid"]
    assert records and all(r.shard == home for r in records)
