"""Chaos acceptance: a seeded multi-fault campaign cannot corrupt a transfer.

The scenario the ISSUE pins down: arm the world's FaultInjector with a
campaign of >= 20 faults spanning link flaps, bandwidth degradations,
host crash-restarts, and control-channel drops; drive a third-party
transfer through it with the recovery engine and require

* completion, with bytes identical to the fault-free run;
* no byte range written twice (restart resends only the complement);
* bounded retries (attempts <= faults + 1);
* recovery telemetry agreeing with what was injected;
* bit-for-bit replay of schedule and telemetry from the same seed.

``CHAOS_SEED`` in the environment narrows the seed matrix (the CI chaos
job runs one seed per matrix entry).
"""

import os

import pytest

from repro.gridftp.third_party import third_party_with_restart
from repro.gridftp.transfer import TransferOptions
from repro.recovery import RetryPolicy
from repro.sim.faults import ChaosConfig
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.storage.dsi import WriteSink
from repro.util.units import GB, gbps, mbps
from tests.conftest import make_conventional_site

SEEDS = [7, 11, 23]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

CAMPAIGN = ChaosConfig(
    link_flap_every_s=60.0,
    link_flap_duration_s=(2.0, 10.0),
    degrade_every_s=80.0,
    degrade_duration_s=(5.0, 20.0),
    degrade_factor=(0.3, 0.7),
    host_crash_every_s=180.0,
    host_downtime_s=(5.0, 20.0),
    control_drop_every_s=90.0,
    control_drop_duration_s=(1.0, 5.0),
    horizon_s=420.0,
)

SIZE = 20 * GB
POLICY = RetryPolicy(max_attempts=40, initial_backoff_s=2.0, multiplier=2.0,
                     max_backoff_s=60.0, jitter=0.1)


def _build(seed):
    world = World(seed=seed)
    net = world.network
    net.add_host("dtn-a", nic_bps=gbps(10))
    net.add_host("dtn-b", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.04)
    net.add_link("laptop", "dtn-a", mbps(100), 0.02)
    net.add_link("laptop", "dtn-b", mbps(100), 0.02)
    site_a = make_conventional_site(world, "SiteA", "dtn-a")
    site_b = make_conventional_site(world, "SiteB", "dtn-b")
    site_a.add_user(world, "alice")
    site_b.add_user(world, "asmith")
    data = SyntheticData(seed=seed + 1000, length=SIZE)
    uid = site_a.accounts.get("alice").uid
    site_a.storage.write_file("/home/alice/big.bin", data, uid=uid)
    return world, site_a, site_b, data, inter.link_id


def _transfer(world, site_a, site_b):
    client_a = site_a.client_for(world, "alice", "laptop")
    client_b = site_b.client_for(world, "asmith", "laptop")
    sa = client_a.connect(site_a.server)
    sb = client_b.connect(site_b.server)
    return third_party_with_restart(
        sa, "/home/alice/big.bin", sb, "/home/asmith/big.bin",
        options=TransferOptions(parallelism=8, tcp_window_bytes=16 * 1024 * 1024),
        use_dcsc=client_a.credential,
        policy=POLICY,
    )


def _run_campaign(seed, marker_corruption=0.0):
    """Arm the chaos campaign and run the transfer; returns the evidence."""
    world, site_a, site_b, data, inter = _build(seed)
    cfg = CAMPAIGN
    if marker_corruption:
        cfg = ChaosConfig(**{**CAMPAIGN.__dict__,
                             "marker_corruption_prob": marker_corruption})
    world.chaos.configure(cfg)
    schedule = world.chaos.arm(hosts=["dtn-a", "dtn-b"])
    res, attempts = _transfer(world, site_a, site_b)
    uid_b = site_b.accounts.get("asmith").uid
    stored = site_b.storage.open_read("/home/asmith/big.bin", uid_b)
    return {
        "world": world,
        "schedule": schedule,
        "attempts": attempts,
        "result": res,
        "fingerprint": stored.fingerprint(),
        "source_fingerprint": data.fingerprint(),
        "metrics_text": world.metrics.render_prometheus(),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_campaign_is_dense_and_diverse(seed):
    world, *_ = _build(seed)
    world.chaos.configure(CAMPAIGN)
    world.chaos.arm(hosts=["dtn-a", "dtn-b"])
    counts = world.chaos.counts_by_kind()
    assert world.chaos.fault_count >= 20, counts
    for kind in ("link_flap", "host_crash", "control_drop", "degradation"):
        assert counts.get(kind, 0) >= 1, counts


@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_transfer_completes_byte_identical(seed):
    run = _run_campaign(seed)
    assert run["result"].verified
    assert run["fingerprint"] == run["source_fingerprint"]
    # bounded retries: the engine never needs more attempts than faults
    assert 1 <= run["attempts"] <= len(run["schedule"]) + 1

    # fault-free control run from the same seed: identical final bytes
    world, site_a, site_b, data, _ = _build(seed)
    res, attempts = _transfer(world, site_a, site_b)
    assert attempts == 1
    uid_b = site_b.accounts.get("asmith").uid
    clean = site_b.storage.open_read("/home/asmith/big.bin", uid_b)
    assert clean.fingerprint() == run["fingerprint"]


@pytest.mark.parametrize("seed", SEEDS)
def test_no_byte_range_written_twice(seed, monkeypatch):
    """Restart must resend exactly the complement — never re-store bytes."""
    writes: list[tuple[str, int, int]] = []
    orig_range = WriteSink.write_range
    orig_synth = WriteSink.write_synthetic_range

    def record_range(self, offset, data):
        writes.append((self.path, offset, offset + len(data)))
        return orig_range(self, offset, data)

    def record_synth(self, offset, length, source):
        if length:  # zero-length EOF markers deliver no bytes
            writes.append((self.path, offset, offset + length))
        return orig_synth(self, offset, length, source)

    monkeypatch.setattr(WriteSink, "write_range", record_range)
    monkeypatch.setattr(WriteSink, "write_synthetic_range", record_synth)

    run = _run_campaign(seed)
    assert run["fingerprint"] == run["source_fingerprint"]
    dest = sorted((s, e) for path, s, e in writes if path == "/home/asmith/big.bin")
    assert dest, "the destination sink saw no writes?"
    for (s1, e1), (s2, e2) in zip(dest, dest[1:]):
        assert s2 >= e1, f"range [{s2},{e2}) overlaps [{s1},{e1})"
    # and together the writes cover the whole file exactly once
    assert sum(e - s for s, e in dest) == SIZE


@pytest.mark.parametrize("seed", SEEDS)
def test_recovery_telemetry_matches_the_faults(seed):
    run = _run_campaign(seed)
    world, attempts = run["world"], run["attempts"]
    m = world.metrics

    # what the injector claims matches the installed plan
    injected = m.counter("chaos_faults_injected_total", labelnames=("kind",))
    for kind, n in world.chaos.counts_by_kind().items():
        assert injected.value(kind=kind) == n

    # every retry is accounted: n attempts -> n-1 absorbed faults
    comp = ("component",)
    assert m.counter("recovery_attempts_total", labelnames=comp).value(component="client") == attempts
    assert m.counter("retries_total", labelnames=comp).value(component="client") == attempts - 1
    assert m.counter("recovery_faults_total", labelnames=comp).value(component="client") == attempts - 1
    if attempts > 1:
        assert m.counter("recovery_recovered_total", labelnames=comp).value(component="client") == 1
        # the loop emitted one backoff event per absorbed fault
        assert world.log.count("recovery.backoff") == attempts - 1

    # data-channel interruptions are a subset of the absorbed faults
    cut = m.counter("faults_injected_total", labelnames=("kind",)).value(kind="data_channel")
    assert cut <= attempts - 1
    # nothing gave up
    assert m.counter("recovery_exhausted_total", labelnames=comp).value(component="client") == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_replays_schedule_and_telemetry(seed):
    a = _run_campaign(seed)
    b = _run_campaign(seed)
    assert a["schedule"] == b["schedule"]
    assert a["attempts"] == b["attempts"]
    assert a["fingerprint"] == b["fingerprint"]
    assert a["world"].now == b["world"].now
    assert a["metrics_text"] == b["metrics_text"]


@pytest.mark.parametrize("seed", SEEDS[:1])
def test_marker_corruption_cannot_corrupt_the_file(seed):
    """With markers corrupted in flight, recovery may re-fetch ranges it
    already holds (duplicates are allowed) but the bytes stay exact."""
    run = _run_campaign(seed, marker_corruption=0.75)
    assert run["result"].verified
    assert run["fingerprint"] == run["source_fingerprint"]
