"""End-to-end: the full GCMU quickstart (paper Sections IV.D/IV.E)."""

import pytest

from repro.core import install_client, install_gcmu
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import MINUTE, gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def fresh_world(world):
    net = world.network
    net.add_host("dtn.univ.edu", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn.univ.edu", "laptop", gbps(1), 0.015)
    return world


def test_instant_gridftp_story(fresh_world):
    """Install server, install client, logon, transfer — all in minutes."""
    world = fresh_world
    from repro.auth import AccountDatabase, Control, LdapDirectory, LdapPamModule, PamStack

    t0 = world.now

    # admin: the four commands of Section IV.D
    accounts = AccountDatabase()
    accounts.add_user("alice")
    ldap = LdapDirectory()
    ldap.add_entry("alice", "s3cret")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    endpoint = install_gcmu(world, "dtn.univ.edu", "univ", accounts, pam)
    endpoint.make_home("alice")
    uid = accounts.get("alice").uid
    endpoint.storage.write_file("/home/alice/thesis-data.tar",
                                LiteralData(b"T" * 100_000), uid=uid)

    # user: install client, myproxy-logon, globus-url-copy (Section IV.E)
    tools = install_client(world, "laptop", username="alice")
    tools.myproxy_logon(endpoint, "alice", "s3cret")
    tools.local_storage.makedirs("/home/alice", 0)
    result = tools.globus_url_copy(
        "gsiftp://dtn.univ.edu:2811/home/alice/thesis-data.tar",
        "file:///home/alice/thesis-data.tar",
        TransferOptions(parallelism=4),
    )

    assert result.verified
    got = tools.local_storage.open_read("/home/alice/thesis-data.tar", 0)
    assert got.read_all() == b"T" * 100_000
    # "instant": the whole story fits in well under an hour of virtual time
    assert world.now - t0 < 60 * MINUTE


def test_second_user_needs_no_admin_action(fresh_world):
    """Adding a user = adding them to the site directory.  No certs, no
    gridmap edits, no admin email round trips."""
    world = fresh_world
    ep = make_gcmu_site(world, "dtn.univ.edu", "univ", {"alice": "pwA"})
    # later, bob joins the lab: one LDAP entry + one account
    ep.accounts.add_user("bob")
    # reach into the pam stack's ldap backend
    ldap = ep.myproxy.pam.entries[0][1].directory
    ldap.add_entry("bob", "pwB")
    ep.make_home("bob")

    tools = install_client(world, "laptop", username="bob",
                           charge_install_time=False)
    tools.myproxy_logon(ep, "bob", "pwB")
    session = tools.connect(ep)
    assert session.logged_in_as == "bob"


def test_short_lived_cert_forces_relogon(fresh_world):
    world = fresh_world
    ep = make_gcmu_site(world, "dtn.univ.edu", "univ", {"alice": "pw"})
    tools = install_client(world, "laptop", username="alice",
                           charge_install_time=False)
    tools.myproxy_logon(ep, "alice", "pw", lifetime_s=3600)
    world.advance(2 * 3600)
    from repro.errors import SecurityError

    with pytest.raises(SecurityError):
        tools.connect(ep)
    tools.myproxy_logon(ep, "alice", "pw")
    assert tools.connect(ep).logged_in_as == "alice"
