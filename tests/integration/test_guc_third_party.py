"""globus-url-copy gsiftp://A -> gsiftp://B (same trust domain)."""

import pytest

from repro.gridftp.client import globus_url_copy
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import gbps
from tests.conftest import make_conventional_site


@pytest.fixture
def same_domain_pair(world):
    net = world.network
    net.add_host("dtn1", nic_bps=gbps(10))
    net.add_host("dtn2", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn1", "dtn2", gbps(10), 0.02)
    net.add_link("laptop", "dtn1", gbps(0.1), 0.01)
    net.add_link("laptop", "dtn2", gbps(0.1), 0.01)
    site1 = make_conventional_site(world, "Site1", "dtn1")
    site1.add_user(world, "alice")
    # second server in the SAME trust domain: same CA anchored, user mapped
    site2 = make_conventional_site(world, "Site2", "dtn2", port=2811)
    site2.trust.add_anchor(site1.ca.certificate)
    site1.trust.add_anchor(site2.ca.certificate)
    alice = site1.user_credentials["alice"]
    site2.accounts.add_user("alice")
    site2.gridmap.add(alice.subject, "alice")
    site2.storage.makedirs("/home/alice", 0)
    site2.storage.chown("/home/alice", site2.accounts.get("alice").uid)
    uid = site1.accounts.get("alice").uid
    site1.storage.write_file("/home/alice/f.bin", LiteralData(b"guc" * 10_000),
                             uid=uid)
    return world, site1, site2


def test_guc_server_to_server(same_domain_pair):
    world, site1, site2 = same_domain_pair
    client = site1.client_for(world, "alice", "laptop")
    res = globus_url_copy(
        world,
        "gsiftp://dtn1:2811/home/alice/f.bin",
        "gsiftp://dtn2:2811/home/alice/f.bin",
        client,
        TransferOptions(parallelism=4),
    )
    assert res.verified
    uid2 = site2.accounts.get("alice").uid
    assert site2.storage.open_read("/home/alice/f.bin", uid2).read_all() == b"guc" * 10_000


def test_guc_closes_sessions_even_on_failure(same_domain_pair):
    world, site1, site2 = same_domain_pair
    client = site1.client_for(world, "alice", "laptop")
    from repro.errors import ProtocolError

    sessions_before = len(site1.server.sessions)
    with pytest.raises(ProtocolError):
        globus_url_copy(world, "gsiftp://dtn1:2811/home/alice/ghost.bin",
                        "gsiftp://dtn2:2811/home/alice/x.bin", client)
    # the new sessions opened by the failed copy are closed again
    new_sessions = site1.server.sessions[sessions_before:]
    assert all(s.closed for s in new_sessions)
