"""Live usage telemetry: servers -> event log -> collector (Figure 1 path)."""

import pytest

from repro.metrics.usage import UsageCollector
from repro.storage.data import LiteralData
from repro.util.units import DAY, gbps
from tests.conftest import make_conventional_site


@pytest.fixture
def site_with_collector(world):
    net = world.network
    net.add_host("srv", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("srv", "laptop", gbps(1), 0.01)
    site = make_conventional_site(world, "Lab", "srv")
    site.add_user(world, "alice")
    uid = site.accounts.get("alice").uid
    site.storage.write_file("/home/alice/f.bin", LiteralData(b"u" * 10_000), uid=uid)
    collector = UsageCollector()
    collector.subscribe_to(world.log)
    return world, site, collector


def test_each_transfer_produces_one_record(site_with_collector):
    world, site, collector = site_with_collector
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(site.server)
    session.get("/home/alice/f.bin", "/tmp/1.bin")
    session.get("/home/alice/f.bin", "/tmp/2.bin")
    client.local_storage.write_file("/tmp/up.bin", b"z" * 500)
    session.put("/tmp/up.bin", "/home/alice/up.bin")
    assert collector.total_records == 3
    day = collector.day(0)
    assert day.transfers == 3
    assert day.bytes_moved == 10_000 + 10_000 + 500
    assert day.server_count == 1


def test_records_bucket_by_virtual_day(site_with_collector):
    world, site, collector = site_with_collector
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(site.server)
    session.get("/home/alice/f.bin", "/tmp/1.bin")
    world.advance(1 * DAY)
    # a day later the old proxy has expired; a fresh login is required
    session2 = site.client_for(world, "alice", "laptop").connect(site.server)
    session2.get("/home/alice/f.bin", "/tmp/2.bin")
    days = collector.days()
    assert [d.day_index for d in days] == [0, 1]


def test_reporting_disabled_produces_nothing(site_with_collector):
    """'servers that choose to enable reporting' — the opt-out works."""
    world, site, collector = site_with_collector
    site.server.usage_reporting = False
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(site.server)
    session.get("/home/alice/f.bin", "/tmp/1.bin")
    assert collector.total_records == 0


def test_third_party_counts_at_both_servers(two_domain_world):
    d = two_domain_world
    collector = UsageCollector()
    collector.subscribe_to(d.world.log)
    uid = d.site_a.accounts.get("alice").uid
    d.site_a.storage.write_file("/home/alice/f.bin", LiteralData(b"x" * 2048), uid=uid)
    client_a = d.site_a.client_for(d.world, "alice", d.laptop)
    client_b = d.site_b.client_for(d.world, "asmith", d.laptop)
    sa = client_a.connect(d.site_a.server)
    sb = client_b.connect(d.site_b.server)
    from repro.gridftp.third_party import third_party_transfer

    third_party_transfer(sa, "/home/alice/f.bin", sb, "/home/asmith/f.bin",
                         use_dcsc=client_a.credential)
    # one retrieve record at A, one store record at B
    assert collector.total_records == 2
    day = collector.day(0)
    assert day.server_count == 2
    assert day.bytes_moved == 2 * 2048
