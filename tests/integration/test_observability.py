"""Observability acceptance: a chaos campaign trips the SLO burn alert,
and every alert exemplar resolves to a complete, reconciled flight record.

The campaign mirrors the scheduler soak (multi-user backlog through
Globus Online's fleet scheduler, worker hosts crashing) and adds data
link flaps plus restart-marker corruption, so the flight recorder sees
the full causal menu: submits, claims, lease expiries, recovery faults,
marker events, completions.  Acceptance (ISSUE 6):

* >= 20 faults injected, seeded — deterministic across the seed matrix;
* the queue-wait SLO burn-rate alert trips in every seeded run;
* every ``slo.alert_fired`` exemplar trace id resolves through the
  flight recorder to a complete record;
* flight-record retry/restart tallies reconcile with the ``recovery_*``
  and ``scheduler_*`` metric series;
* two runs from one seed replay bit-for-bit (records, alerts, metrics).

When ``FLIGHT_RECORDER_DIR`` is set the run's JSONL black box is always
dumped there — the chaos-matrix CI job uploads it on failure.

``CHAOS_SEED`` narrows the seed matrix (one seed per CI matrix entry).
"""

import json
import os
from pathlib import Path

import pytest

from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.scheduler import SchedulerConfig
from repro.sim.faults import ChaosConfig
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.util.units import MB, gbps
from tests.conftest import make_gcmu_site

SEEDS = [7, 11, 23]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

N_USERS = 8
JOBS_PER_USER = 5
FILE_SIZE = 8 * MB
WORKER_HOSTS = ("go-worker-0", "go-worker-1", "go-worker-2", "go-worker-3")
QUEUE_WAIT_SLO_S = 30.0

#: host crashes against the worker fleet + flaps on the data path +
#: marker corruption — every causal event class the recorder ingests
CAMPAIGN = ChaosConfig(
    host_crash_every_s=18.0,
    host_downtime_s=(5.0, 15.0),
    link_flap_every_s=150.0,
    link_flap_duration_s=(2.0, 8.0),
    marker_corruption_prob=0.25,
    horizon_s=2 * 3600.0,
)

_CACHE: dict[int, dict] = {}


def _run_campaign(seed):
    world = World(seed=seed)
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    recorder, slo = world.enable_observability(
        queue_wait_slo_s=QUEUE_WAIT_SLO_S)
    go = GlobusOnline(world, "saas", scheduler_config=SchedulerConfig(
        workers=len(WORKER_HOSTS), worker_hosts=WORKER_HOSTS,
        lease_s=40.0, heartbeat_s=8.0, max_task_attempts=50))
    ep_a = make_gcmu_site(
        world, "dtn-a", "alcf",
        {f"user{i}": f"pw{i}" for i in range(N_USERS)},
        register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"sink": "pwS"},
                          register_with=go, endpoint_name="nersc#dtn")
    world.chaos.configure(CAMPAIGN)
    world.chaos.arm(hosts=list(WORKER_HOSTS), links=[inter.link_id])

    jobs = []
    for u in range(N_USERS):
        username = f"user{u}"
        uid = ep_a.accounts.get(username).uid
        account = go.register_user(f"{username}@globusid")
        go.activate(account, "alcf#dtn", username, f"pw{u}")
        go.activate(account, "nersc#dtn", "sink", "pwS")
        for j in range(JOBS_PER_USER):
            path = f"/home/{username}/f{j}.dat"
            ep_a.storage.write_file(
                path, SyntheticData(seed=1000 * u + j, length=FILE_SIZE), uid=uid)
            jobs.append(go.submit_transfer(
                account, "alcf#dtn", path,
                "nersc#dtn", f"/home/sink/{username}-f{j}.dat", defer=True))
    go.process_queue()

    run = {
        "world": world,
        "go": go,
        "jobs": jobs,
        "recorder": recorder,
        "slo": slo,
        "flight_jsonl": recorder.to_jsonl(),
        "alerts": [ev.to_dict() for ev in world.log.select("slo.alert_fired")],
        "metrics_text": world.metrics.render_prometheus(),
    }
    dump_dir = os.environ.get("FLIGHT_RECORDER_DIR")
    if dump_dir:
        Path(dump_dir).mkdir(parents=True, exist_ok=True)
        recorder.dump(str(Path(dump_dir) / f"flight-seed{seed}.jsonl"))
    return run


def _campaign(seed):
    if seed not in _CACHE:
        _CACHE[seed] = _run_campaign(seed)
    return _CACHE[seed]


@pytest.mark.parametrize("seed", SEEDS)
def test_campaign_is_chaotic_and_complete(seed):
    run = _campaign(seed)
    assert run["world"].chaos.fault_count >= 20
    assert all(j.status is JobStatus.SUCCEEDED for j in run["jobs"])
    # every job has a flight record, and every record is terminal
    recorder = run["recorder"]
    assert len(recorder) == N_USERS * JOBS_PER_USER
    for rec in recorder.records():
        assert rec.complete, rec.task_id
        assert rec.trace_id.startswith("trace-")


@pytest.mark.parametrize("seed", SEEDS)
def test_burn_rate_alert_trips_deterministically(seed):
    run = _campaign(seed)
    fired = [a for a in run["alerts"]
             if a["fields"]["slo"] == "queue_wait_p99"]
    assert fired, "queue-wait burn alert did not trip"
    # the alert carries burn rates past every window's threshold
    first = fired[0]["fields"]
    for window, burn in first["burn_rates"].items():
        assert burn >= 3.0, (window, burn)
    assert run["world"].metrics.get("slo_alerts_total").value(
        slo="queue_wait_p99") >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_alert_exemplars_resolve_to_complete_records(seed):
    run = _campaign(seed)
    recorder = run["recorder"]
    exemplar_alerts = [a for a in run["alerts"]
                       if a["fields"].get("exemplar_trace")]
    assert exemplar_alerts, "no alert carried an exemplar trace"
    for alert in exemplar_alerts:
        rec = recorder.by_trace(alert["fields"]["exemplar_trace"])
        assert rec is not None, alert
        assert rec.complete
    # histogram exemplars resolve the same way
    h = run["world"].metrics.get("scheduler_queue_wait_seconds")
    for ex in h.exemplars().values():
        assert recorder.by_trace(ex.trace_id) is not None


@pytest.mark.parametrize("seed", SEEDS)
def test_flight_records_reconcile_with_metrics(seed):
    run = _campaign(seed)
    world, recorder = run["world"], run["recorder"]
    metrics = world.metrics
    records = list(recorder.records())
    # recovery activity all happens inside bound claim spans, so the
    # per-record tallies must sum to the recovery_* series exactly
    assert sum(r.recovery_faults for r in records) == metrics.get(
        "recovery_faults_total").total()
    assert sum(r.marker_corruptions for r in records) == metrics.get(
        "recovery_marker_corruptions_total").total()
    # scheduler-side restarts: lease-expiry events across records match
    # the requeue/expiry counters, and claim events match claim attempts
    expiries = sum(len(r.events_of("scheduler.lease_expired")) for r in records)
    assert expiries == metrics.get("scheduler_lease_expirations_total").value()
    assert expiries >= 1, "campaign produced no lease expiries"
    claims = sum(len(r.events_of("scheduler.claimed")) for r in records)
    assert claims == sum(r.attempts for r in records)
    assert sum(1 for r in records if r.status == "done") == metrics.get(
        "scheduler_completed_total").value()
    # per-record: recovery.fault events equal the tallied count
    for r in records:
        assert len(r.events_of("recovery.fault")) == r.recovery_faults
        assert r.dropped_events == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_slo_sample_books_balance(seed):
    run = _campaign(seed)
    c = run["world"].metrics.get("slo_events_total")
    claims = run["world"].log.count("scheduler.claimed")
    assert (c.value(slo="queue_wait_p99", outcome="good")
            + c.value(slo="queue_wait_p99", outcome="bad")) == claims
    done = run["world"].log.count("scheduler.task_done")
    assert c.value(slo="transfer_success", outcome="good") == done


def test_replays_bit_for_bit():
    seed = SEEDS[0]
    a = _campaign(seed)
    b = _run_campaign(seed)
    assert a["flight_jsonl"] == b["flight_jsonl"]
    assert a["alerts"] == b["alerts"]
    assert a["metrics_text"] == b["metrics_text"]


def test_black_box_dump_round_trips(tmp_path, monkeypatch):
    monkeypatch.setenv("FLIGHT_RECORDER_DIR", str(tmp_path))
    run = _run_campaign(SEEDS[0])
    dump = tmp_path / f"flight-seed{SEEDS[0]}.jsonl"
    assert dump.exists()
    rows = [json.loads(line) for line in dump.read_text().splitlines()]
    assert len(rows) == N_USERS * JOBS_PER_USER
    assert {row["status"] for row in rows} == {"done"}
    assert rows == [json.loads(line)
                    for line in run["flight_jsonl"].splitlines()]
