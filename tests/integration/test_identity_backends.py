"""The paper's identity-system variety: LDAP, NIS, RADIUS, OTP — each
behind PAM, each driving MyProxy Online CA issuance (Section IV.A:
"username/password, OTP, etc.")."""

import pytest

from repro.auth import (
    AccountDatabase,
    Control,
    NisDomain,
    NisPamModule,
    OtpPamModule,
    PamStack,
    RadiusPamModule,
    RadiusServer,
)
from repro.core.gcmu import install_gcmu
from repro.errors import AuthenticationError
from repro.myproxy.client import myproxy_logon
from repro.util.units import gbps


@pytest.fixture
def hosts(world):
    net = world.network
    net.add_host("dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn", "laptop", gbps(1), 0.01)
    return world


def test_nis_backed_gcmu(hosts):
    world = hosts
    accounts = AccountDatabase()
    accounts.add_user("carol")
    nis = NisDomain("lab")
    nis.add_user("carol", "nis-pw")
    pam = PamStack().add(Control.SUFFICIENT, NisPamModule(nis))
    ep = install_gcmu(world, "dtn", "nis-site", accounts, pam,
                      charge_install_time=False)
    cred = myproxy_logon(world, "laptop", ep.myproxy, "carol", "nis-pw")
    assert cred.subject.common_name == "carol"
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "carol", "bad")


def test_radius_backed_gcmu(hosts):
    world = hosts
    accounts = AccountDatabase()
    accounts.add_user("dave")
    radius = RadiusServer(shared_secret="s3")
    radius.add_user("dave", "radius-pw")
    pam = PamStack().add(Control.SUFFICIENT, RadiusPamModule(radius, "s3"))
    ep = install_gcmu(world, "dtn", "radius-site", accounts, pam,
                      charge_install_time=False)
    cred = myproxy_logon(world, "laptop", ep.myproxy, "dave", "radius-pw")
    assert str(cred.subject) == "/O=GCMU/OU=radius-site/CN=dave"
    # a RADIUS outage stops logons without leaking why
    radius.reject_all = True
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "dave", "radius-pw")


def test_otp_backed_gcmu(hosts):
    """The Section IV.A OTP path: each MyProxy logon consumes one code."""
    world = hosts
    accounts = AccountDatabase()
    accounts.add_user("erin")
    otp = OtpPamModule()
    device = otp.enroll("erin", b"shared-seed")
    pam = PamStack().add(Control.SUFFICIENT, otp)
    ep = install_gcmu(world, "dtn", "otp-site", accounts, pam,
                      charge_install_time=False)
    code = device.next_code()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "erin", code)
    assert cred.subject.common_name == "erin"
    # the same code cannot be replayed for a second credential
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "erin", code)
    # but the next code works
    myproxy_logon(world, "laptop", ep.myproxy, "erin", device.next_code())


def test_two_factor_stack(hosts):
    """REQUIRED password + REQUIRED OTP: both must pass."""
    world = hosts
    accounts = AccountDatabase()
    accounts.add_user("frank")
    nis = NisDomain()
    nis.add_user("frank", "pw")
    otp = OtpPamModule()
    device = otp.enroll("frank", b"seed2")

    class SplitSecretStack(PamStack):
        """Secret format: '<password>:<otp>' split across two modules."""

        def authenticate(self, username, secret):
            password, _, code = secret.partition(":")
            from repro.errors import PamError
            from repro.auth.pam import PamResult

            if NisPamModule(nis).authenticate(username, password) is not PamResult.SUCCESS:
                raise PamError("authentication failure")
            if otp.authenticate(username, code) is not PamResult.SUCCESS:
                raise PamError("authentication failure")

    ep = install_gcmu(world, "dtn", "2fa-site", accounts, SplitSecretStack(),
                      charge_install_time=False)
    good = f"pw:{device.next_code()}"
    cred = myproxy_logon(world, "laptop", ep.myproxy, "frank", good)
    assert cred.subject.common_name == "frank"
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "frank", "pw:000000")
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "frank",
                      f"wrong:{device.next_code()}")
