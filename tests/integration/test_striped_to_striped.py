"""Striped source to striped destination: the full SPAS + SPOR dance."""

import pytest

from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.gsi.authz import GridmapCallout
from repro.pki.dn import DistinguishedName as DN
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage
from repro.util.units import MB, gbps
from tests.conftest import make_conventional_site


@pytest.fixture
def twin_clusters(world):
    net = world.network
    net.add_router("wan", nic_bps=gbps(100))
    for cluster in ("east", "west"):
        net.add_host(f"{cluster}-head", nic_bps=gbps(10))
        net.add_link(f"{cluster}-head", "wan", gbps(10), 0.02)
        for i in range(3):
            net.add_host(f"{cluster}-dtp{i}", nic_bps=gbps(1))
            net.add_link(f"{cluster}-dtp{i}", "wan", gbps(1), 0.02)
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("laptop", "wan", gbps(1), 0.02)

    # one trust domain for both clusters (same org, two facilities)
    anchor_site = make_conventional_site(world, "Org", "east-head", port=9999)
    anchor_site.add_user(world, "alice")

    def build(cluster, port):
        fs = PosixStorage(world.clock)
        fs.makedirs("/home/alice", 0)
        fs.chown("/home/alice", anchor_site.accounts.get("alice").uid)
        server = StripedGridFTPServer(
            world, f"{cluster}-head", [f"{cluster}-dtp{i}" for i in range(3)],
            anchor_site.ca.issue_credential(
                DN.parse(f"/O=Org/OU=hosts/CN={cluster}-head")),
            anchor_site.trust, GridmapCallout(anchor_site.gridmap),
            anchor_site.accounts, fs, port=port, name=f"striped-{cluster}",
        ).start()
        return server, fs

    east, east_fs = build("east", 2811)
    west, west_fs = build("west", 2812)
    return world, anchor_site, east, east_fs, west, west_fs


CONTENT = bytes(range(256)) * 2048  # 512 KiB patterned


def test_striped_to_striped_transfer(twin_clusters):
    world, site, east, east_fs, west, west_fs = twin_clusters
    uid = site.accounts.get("alice").uid
    east_fs.write_file("/home/alice/data.bin", LiteralData(CONTENT), uid=uid)

    client = site.client_for(world, "alice", "laptop")
    src = client.connect(east)
    dst = client.connect(west)
    res = third_party_transfer(
        src, "/home/alice/data.bin", dst, "/home/alice/data.bin",
        options=TransferOptions(parallelism=2, block_size=32 * 1024),
    )
    assert res.stripes == 3  # three stripe-pair flows
    assert res.streams == 6
    assert res.verified
    out = west_fs.open_read("/home/alice/data.bin", uid)
    assert out.read_all() == CONTENT


def test_spas_spor_negotiation_visible(twin_clusters):
    world, site, east, east_fs, west, west_fs = twin_clusters
    uid = site.accounts.get("alice").uid
    east_fs.write_file("/home/alice/x.bin", LiteralData(b"z" * MB), uid=uid)
    client = site.client_for(world, "alice", "laptop")
    src = client.connect(east)
    dst = client.connect(west)
    third_party_transfer(src, "/home/alice/x.bin", dst, "/home/alice/x.bin")
    verbs = [e.fields["verb"] for e in world.log.select("gridftp.command")]
    assert "SPAS" in verbs
    assert "SPOR" in verbs
