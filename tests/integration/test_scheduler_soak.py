"""Scheduler soak: a crashing worker fleet cannot lose, duplicate, or
corrupt queued transfers.

The campaign: a multi-user job backlog submitted through Globus Online's
fleet scheduler while a chaos campaign repeatedly crashes the worker
hosts.  Acceptance:

* every job completes (zero lost), and completes exactly once (zero
  duplicated — claim counts balance);
* >= 20 worker crashes were actually injected and survived;
* delivered bytes are identical to an unqueued, crash-free run of the
  same submissions under the same seed;
* Jain's fairness index over per-user delivered bytes >= 0.95;
* the scheduler_* metric series are present in the exposition from
  service init, before any traffic.

``CHAOS_SEED`` narrows the seed matrix (one seed per CI matrix entry).
"""

import os

import pytest

from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.scheduler import SchedulerConfig, jain_index
from repro.sim.faults import ChaosConfig
from repro.sim.world import World
from repro.storage.data import SyntheticData
from repro.util.units import MB, gbps
from tests.conftest import make_gcmu_site

SEEDS = [7, 11, 23]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

N_USERS = 10
JOBS_PER_USER = 6
FILE_SIZE = 8 * MB  # above the coalescing threshold: one claim per job
WORKER_HOSTS = ("go-worker-0", "go-worker-1", "go-worker-2", "go-worker-3")

# dense host-crash campaign against the worker fleet only — the data
# paths stay clean so every retry is purely scheduler-induced.
CAMPAIGN = ChaosConfig(
    host_crash_every_s=18.0,
    host_downtime_s=(5.0, 15.0),
    horizon_s=2 * 3600.0,
)


def _build(seed, crashes=True):
    world = World(seed=seed)
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    config = SchedulerConfig(
        workers=len(WORKER_HOSTS),
        worker_hosts=WORKER_HOSTS if crashes else (),
        lease_s=40.0,
        heartbeat_s=8.0,
        max_task_attempts=50,
    )
    go = GlobusOnline(world, "saas", scheduler_config=config)
    metrics_at_init = world.metrics.render_prometheus()
    ep_a = make_gcmu_site(
        world, "dtn-a", "alcf",
        {f"user{i}": f"pw{i}" for i in range(N_USERS)},
        register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"sink": "pwS"},
                          register_with=go, endpoint_name="nersc#dtn")
    if crashes:
        world.chaos.configure(CAMPAIGN)
        world.chaos.arm(hosts=list(WORKER_HOSTS))
    return world, go, ep_a, ep_b, metrics_at_init


def _run_campaign(seed, crashes=True):
    world, go, ep_a, ep_b, metrics_at_init = _build(seed, crashes=crashes)
    jobs = []
    for u in range(N_USERS):
        username = f"user{u}"
        uid = ep_a.accounts.get(username).uid
        account = go.register_user(f"{username}@globusid")
        go.activate(account, "alcf#dtn", username, f"pw{u}")
        go.activate(account, "nersc#dtn", "sink", "pwS")
        for j in range(JOBS_PER_USER):
            path = f"/home/{username}/f{j}.dat"
            ep_a.storage.write_file(
                path, SyntheticData(seed=1000 * u + j, length=FILE_SIZE), uid=uid)
            jobs.append(go.submit_transfer(
                account, "alcf#dtn", path,
                "nersc#dtn", f"/home/sink/{username}-f{j}.dat", defer=True))
    go.process_queue()
    uid_sink = ep_b.accounts.get("sink").uid
    fingerprints = {
        f"{j.user}:{j.dst_path}": ep_b.storage.open_read(j.dst_path, uid_sink).fingerprint()
        for j in jobs
    }
    return {
        "world": world,
        "go": go,
        "jobs": jobs,
        "fingerprints": fingerprints,
        "metrics_at_init": metrics_at_init,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_zero_lost_zero_duplicated(seed):
    run = _run_campaign(seed)
    world, go, jobs = run["world"], run["go"], run["jobs"]
    njobs = N_USERS * JOBS_PER_USER
    assert len(jobs) == njobs
    # zero lost: every job reached SUCCEEDED
    assert all(j.status is JobStatus.SUCCEEDED for j in jobs)
    # zero duplicated: completions balance submissions exactly
    metrics = world.metrics
    assert metrics.counter("scheduler_submitted_total").value() == njobs
    assert metrics.counter("scheduler_completed_total").value() == njobs
    assert metrics.counter("scheduler_task_failures_total").value() == 0
    # the lease books are empty and nothing is left queued
    assert len(go.scheduler.leases) == 0
    assert len(go.scheduler.queue) == 0
    # the campaign actually bit: >= 20 claims died to worker crashes,
    # and each crash produced exactly one requeue
    crashes = metrics.counter("scheduler_worker_crashes_total").value()
    requeues = metrics.counter("scheduler_requeued_total").value()
    assert crashes >= 20, crashes
    assert requeues == metrics.counter("scheduler_lease_expirations_total").value()


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_bytes_identical_to_unqueued_run(seed):
    chaotic = _run_campaign(seed, crashes=True)
    baseline = _run_campaign(seed, crashes=False)
    assert chaotic["fingerprints"] == baseline["fingerprints"]
    # and the chaotic run really was chaotic while the baseline was not
    assert chaotic["world"].metrics.counter(
        "scheduler_worker_crashes_total").value() >= 20
    assert baseline["world"].metrics.counter(
        "scheduler_worker_crashes_total").value() == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_fairness(seed):
    run = _run_campaign(seed)
    delivered = run["go"].scheduler.queue.delivered_bytes()
    assert len(delivered) == N_USERS
    assert jain_index(delivered.values()) >= 0.95


def test_scheduler_metrics_present_from_init():
    _, _, _, _, metrics_at_init = _build(SEEDS[0], crashes=False)
    for name in (
        "scheduler_submitted_total",
        "scheduler_completed_total",
        "scheduler_requeued_total",
        "scheduler_worker_crashes_total",
        "scheduler_queue_depth",
        "scheduler_queue_wait_seconds",
        "scheduler_inflight_bytes",
        "scheduler_rejected_total",
    ):
        assert f"# TYPE {name}" in metrics_at_init, name


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_replays_bit_for_bit(seed):
    a = _run_campaign(seed)
    b = _run_campaign(seed)
    assert a["fingerprints"] == b["fingerprints"]
    for counter in ("scheduler_worker_crashes_total", "scheduler_requeued_total",
                    "scheduler_completed_total"):
        assert (a["world"].metrics.counter(counter).value()
                == b["world"].metrics.counter(counter).value())
    assert a["world"].now == b["world"].now
