"""Archival soak: a crashing five-component pipeline over a crashing
worker fleet cannot lose, duplicate, or prematurely delete a bundle.

The campaign: a small-file-heavy multi-request backlog archived to two
destination sites while a chaos campaign repeatedly crashes every
component host and scheduler worker host, and a destination site goes
entirely dark in repeated blackout windows.  Acceptance:

* every bundle reaches ``source-deleted`` (zero lost), exactly once
  (zero duplicated — one terminal transition per bundle in the catalog
  history);
* >= 20 faults actually bit a claim (component crashes mid-claim plus
  worker crashes), and at least one replica transfer had to wait out a
  whole-site blackout;
* every surviving replica is byte-identical to the retained source
  payload, and no source file was removed before its bundle had
  ``quorum`` verified replicas;
* the catalog history replays bit-for-bit under the same seed.

``CHAOS_SEED`` narrows the seed matrix (one seed per CI matrix entry).
"""

import os

import pytest

from repro.archive import ArchivalCampaign, BundleStatus, CampaignConfig

SEEDS = [7, 11, 23]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

MIN_FAULTS = 20


def _run(seed, **overrides):
    campaign = ArchivalCampaign(CampaignConfig(seed=seed, **overrides))
    stats = campaign.run()
    return campaign, stats


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_zero_lost_zero_duplicated(seed):
    campaign, stats = _run(seed)
    catalog = campaign.catalog
    bundles = catalog.bundles
    assert bundles, "campaign produced no bundles"
    # zero lost: every bundle reached the terminal happy state
    assert all(b.status is BundleStatus.SOURCE_DELETED for b in bundles)
    assert stats["counts"]["failed"] == 0
    # the lease books are empty and every request fanned out
    assert len(catalog.leases) == 0
    assert catalog.done()
    metrics = campaign.world.metrics
    assert metrics.counter("archive_requests_total").value() \
        == campaign.config.requests
    assert metrics.counter("archive_bundles_failed_total").value() == 0
    # zero duplicated: exactly one source-deleted transition per bundle
    deletes = [row for row in catalog.history
               if row[2] == "bundle" and row[5] == "source-deleted"]
    assert len(deletes) == len(bundles)
    # the campaign actually bit: >= MIN_FAULTS claims died to crashes,
    # on both sides of the house
    assert stats["injected_faults"] >= MIN_FAULTS, stats
    assert stats["component_crashes"] >= 5, stats
    # every component crash lapsed exactly one catalog lease
    expirations = metrics.counter("archive_lease_expirations_total").value()
    assert expirations >= stats["component_crashes"]


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_replicas_byte_identical_and_source_retired(seed):
    campaign, _ = _run(seed)
    for bundle in campaign.catalog.bundles:
        expected = campaign.expected_bundle_payload(bundle.bundle_id)
        assert len(bundle.replicas) >= campaign.config.quorum
        for replica in bundle.replicas:
            assert replica.transferred and replica.verified
            got = campaign.replica_payload(bundle.bundle_id, replica.site)
            assert got == expected, (
                f"replica {bundle.bundle_id}@{replica.site} diverged")
        # the source copies really are gone
        for path in bundle.files:
            assert not campaign.source.storage.exists(path)
        assert not campaign.source.storage.exists(bundle.staged_path)


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_no_premature_source_delete(seed):
    campaign, _ = _run(seed)
    # state-machine ordering in the committed history: for every bundle
    # the completed transition (which the verifier only commits at
    # quorum) precedes source-deleted
    for bundle in campaign.catalog.bundles:
        rows = [row for row in campaign.catalog.history
                if row[2] == "bundle" and row[3] == bundle.bundle_id]
        sequence = [row[5] for row in rows]
        assert "completed" in sequence and "source-deleted" in sequence
        assert sequence.index("completed") < sequence.index("source-deleted")
        assert bundle.verified_replicas() >= campaign.config.quorum
    # and the deletion events agree with the verification events in time
    log = campaign.world.log
    for bundle in campaign.catalog.bundles:
        verified_times = sorted(
            e.time for e in log.select(
                "archive.replica_verified", bundle=bundle.bundle_id))
        deleted = log.select("archive.source_deleted", bundle=bundle.bundle_id)
        assert len(deleted) == 1
        quorum_at = verified_times[campaign.config.quorum - 1]
        assert deleted[0].time >= quorum_at


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_blackout_bites(seed):
    campaign, _ = _run(seed)
    # at least one replica transfer hit a whole-site blackout and had to
    # wait the outage out before landing
    blocked = campaign.world.log.select("archive.replica_blocked")
    assert blocked, "no transfer ever overlapped a site blackout window"
    assert all(e.fields["site"] == "site-1" for e in blocked)


@pytest.mark.parametrize("seed", SEEDS)
def test_soak_replays_bit_for_bit(seed):
    a_campaign, a = _run(seed)
    b_campaign, b = _run(seed)
    assert a["history_digest"] == b["history_digest"]
    assert a_campaign.world.now == b_campaign.world.now
    for name in ("archive_lease_expirations_total", "archive_requests_total",
                 "archive_bundles_failed_total"):
        assert (a_campaign.world.metrics.counter(name).value()
                == b_campaign.world.metrics.counter(name).value())
    assert a["component_crashes"] == b["component_crashes"]
    assert a["worker_crashes"] == b["worker_crashes"]


def test_sharded_scheduler_campaign_completes():
    campaign, stats = _run(SEEDS[0], shards=2)
    assert all(b.status is BundleStatus.SOURCE_DELETED
               for b in campaign.catalog.bundles)
    assert stats["injected_faults"] >= MIN_FAULTS


def test_archive_metrics_present_from_init():
    campaign = ArchivalCampaign(CampaignConfig(
        seed=SEEDS[0], chaos=False, site_blackout=False))
    exposition = campaign.world.metrics.render_prometheus()
    for name in (
        "archive_requests_total",
        "archive_transitions_total",
        "archive_claims_total",
        "archive_lease_expirations_total",
        "archive_component_crashes_total",
        "archive_bundles_failed_total",
        "archive_bundles",
        "archive_bundle_latency_seconds",
        "archive_bytes_replicated_total",
        "archive_replicas_submitted_total",
        "archive_replicas_verified_total",
        "archive_checksum_mismatches_total",
        "archive_source_deletes_total",
    ):
        assert f"# TYPE {name}" in exposition, name


def test_archive_slos_wired():
    campaign, _ = _run(SEEDS[0], chaos=False, site_blackout=False)
    rows = {row["slo"]: row for row in campaign.world.slo.status()}
    assert "archive_bundle_latency" in rows
    assert "archive_replication_success" in rows
    latency = rows["archive_bundle_latency"]
    assert latency["good"] + latency["bad"] == len(campaign.catalog.bundles)
    success = rows["archive_replication_success"]
    assert success["good"] == len(campaign.catalog.bundles)
    assert success["bad"] == 0
