"""End-to-end: two GCMU sites, disjoint CAs, DCSC third-party transfer.

This is the paper's summary claim (Section VIII): "Users can use a
certificate issued by one CA to authenticate with a GridFTP server at
one site and a certificate issued by another CA ... and then perform a
secure third-party transfer between the two sites without either site
needing to have the other CA in its trust roots."
"""

import pytest

from repro.core import install_client
from repro.errors import DCAUError
from repro.gridftp.client import GridFTPClient
from repro.gridftp.third_party import third_party_transfer
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import gbps
from repro.xio.drivers import Protection
from tests.conftest import make_gcmu_site


@pytest.fixture
def two_gcmu_sites(world):
    net = world.network
    net.add_host("dtn.alcf.gov", nic_bps=gbps(10))
    net.add_host("dtn.nersc.gov", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn.alcf.gov", "dtn.nersc.gov", gbps(10), 0.03, loss=1e-5)
    net.add_link("laptop", "dtn.alcf.gov", gbps(0.02), 0.02)
    net.add_link("laptop", "dtn.nersc.gov", gbps(0.02), 0.025)
    ep_a = make_gcmu_site(world, "dtn.alcf.gov", "alcf", {"alice": "pwA"})
    ep_b = make_gcmu_site(world, "dtn.nersc.gov", "nersc", {"asmith": "pwB"})
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/results.h5",
                            LiteralData(b"H5" * 50_000), uid=uid)
    tools = install_client(world, "laptop", username="alice",
                           charge_install_time=False)
    return world, ep_a, ep_b, tools


def test_disjoint_trust_roots(two_gcmu_sites):
    world, ep_a, ep_b, tools = two_gcmu_sites
    a_anchors = set(ep_a.server.trust.anchors)
    b_anchors = set(ep_b.server.trust.anchors)
    assert not (a_anchors & b_anchors)


def test_full_cross_domain_story(two_gcmu_sites):
    world, ep_a, ep_b, tools = two_gcmu_sites
    # two identities, one per site, via myproxy-logon
    cred_a = tools.myproxy_logon(ep_a, "alice", "pwA")
    cred_b = tools.myproxy_logon(ep_b, "asmith", "pwB")

    client_a = GridFTPClient(world, "laptop", credential=cred_a,
                             trust=tools.trust, username="alice")
    client_b = GridFTPClient(world, "laptop", credential=cred_b,
                             trust=tools.trust, username="alice")
    sa = client_a.connect(ep_a.server)
    sb = client_b.connect(ep_b.server)
    assert sa.logged_in_as == "alice"
    assert sb.logged_in_as == "asmith"

    # Figure 4: without DCSC the data channel cannot authenticate
    with pytest.raises(DCAUError):
        third_party_transfer(sa, "/home/alice/results.h5",
                             sb, "/home/asmith/results.h5")

    # Figure 5: DCSC P with credential A to endpoint B fixes it —
    # with full data channel protection on top.
    res = third_party_transfer(
        sa, "/home/alice/results.h5", sb, "/home/asmith/results.h5",
        options=TransferOptions(parallelism=4, protection=Protection.PRIVATE),
        use_dcsc=cred_a,
    )
    assert res.verified
    uid_b = ep_b.accounts.get("asmith").uid
    data = ep_b.storage.open_read("/home/asmith/results.h5", uid_b)
    assert data.read_all() == b"H5" * 50_000


def test_dcsc_context_reverts_with_d(two_gcmu_sites):
    world, ep_a, ep_b, tools = two_gcmu_sites
    cred_a = tools.myproxy_logon(ep_a, "alice", "pwA")
    cred_b = tools.myproxy_logon(ep_b, "asmith", "pwB")
    client_b = GridFTPClient(world, "laptop", credential=cred_b,
                             trust=tools.trust)
    sb = client_b.connect(ep_b.server)
    from repro.gridftp.dcsc import encode_dcsc_blob

    sb.dcsc(encode_dcsc_blob(cred_a))
    assert sb.server_session.dcsc is not None
    sb.dcsc("D")
    assert sb.server_session.dcsc is None
