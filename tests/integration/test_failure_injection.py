"""Failure injection beyond the happy-path outage: crashes and refusals
at every stage of the workflows."""

import pytest

from repro.errors import (
    AuthenticationError,
    ConnectionRefusedError_,
    LinkDownError,
    TransferFaultError,
)
from repro.gridftp.transfer import TransferOptions
from repro.myproxy.client import myproxy_logon
from repro.storage.data import LiteralData
from repro.util.units import MB, gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def site(world):
    net = world.network
    net.add_host("dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn", "laptop", gbps(0.1), 0.01)
    ep = make_gcmu_site(world, "dtn", "lab", {"alice": "pw"})
    uid = ep.accounts.get("alice").uid
    ep.storage.write_file("/home/alice/f.bin", LiteralData(b"f" * (4 * MB)), uid=uid)
    return world, ep


def test_myproxy_unreachable_during_logon(site):
    world, ep = site
    ep.myproxy.stop()
    with pytest.raises(ConnectionRefusedError_):
        myproxy_logon(world, "laptop", ("dtn", 7512), "alice", "pw")
    ep.myproxy.start()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw")
    assert cred.valid_at(world.now)


def test_host_crash_during_logon(site):
    world, ep = site
    world.faults.crash_host("dtn", at=world.now, duration=60.0)
    with pytest.raises(LinkDownError):
        myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw")
    world.advance(61.0)
    myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw")


def test_control_channel_cut_mid_session(site):
    world, ep = site
    from repro.gridftp.client import GridFTPClient
    from repro.pki.validation import TrustStore

    trust = TrustStore()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw", trust=trust)
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust)
    session = client.connect(ep.server)
    link = next(iter(world.network.links))
    world.faults.cut_link(link, at=world.now, duration=30.0)
    with pytest.raises(LinkDownError):
        session.pwd()
    world.advance(31.0)
    assert session.pwd() == "/home/alice"  # channel survives the outage


def test_put_restart_after_fault(site):
    """Client upload interrupted, resumed via restart marker."""
    world, ep = site
    from repro.gridftp.client import GridFTPClient
    from repro.pki.validation import TrustStore
    from repro.storage.posix import PosixStorage

    trust = TrustStore()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw", trust=trust)
    local = PosixStorage(world.clock)
    local.makedirs("/tmp", 0)
    payload = bytes(range(256)) * (8 * 1024)  # 2 MiB patterned
    local.write_file("/tmp/up.bin", payload)
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust,
                           local_storage=local)
    session = client.connect(ep.server)
    link = next(iter(world.network.links))
    # untuned single stream is window-bound (~13 Mb/s): the 2 MiB payload
    # takes ~1.3 s; a cut at +0.5 s lands mid-payload, past the control
    # commands and channel setup.
    world.faults.cut_link(link, at=world.now + 0.5, duration=10.0)
    with pytest.raises(TransferFaultError) as exc:
        session.put("/tmp/up.bin", "/home/alice/up.bin",
                    TransferOptions(block_size=64 * 1024))
    received = exc.value.received
    assert 0 < received.total_bytes() < len(payload)
    world.advance(11.0)
    session2 = client.connect(ep.server)
    res = session2.put("/tmp/up.bin", "/home/alice/up.bin",
                       TransferOptions(block_size=64 * 1024), restart=received)
    assert res.nbytes == len(payload) - received.total_bytes()
    assert res.verified
    uid = ep.accounts.get("alice").uid
    assert ep.storage.open_read("/home/alice/up.bin", uid).read_all() == payload


def test_fault_during_dcau_window_counts_as_interruption(site):
    world, ep = site
    from repro.gridftp.client import GridFTPClient
    from repro.pki.validation import TrustStore

    trust = TrustStore()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw", trust=trust)
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust)
    from repro.storage.posix import PosixStorage

    client.local_storage = PosixStorage(world.clock)
    client.local_storage.makedirs("/tmp", 0)
    session = client.connect(ep.server)
    session.apply_options(TransferOptions())  # control traffic done up front
    link = next(iter(world.network.links))
    # the RETR round trip costs one 40 ms RTT; a fault at +0.05 s lands
    # in the data-channel setup window, before any payload moves
    world.faults.cut_link(link, at=world.now + 0.05, duration=5.0)
    with pytest.raises(TransferFaultError) as exc:
        session.get("/home/alice/f.bin", "/tmp/f.bin")
    assert exc.value.received.total_bytes() == 0


def test_logon_with_locked_account_fails_cleanly(site):
    """PAM passes (LDAP knows the password) but setuid refuses later;
    locking at the *directory* level stops issuance immediately."""
    world, ep = site
    ldap = ep.myproxy.pam.entries[0][1].directory
    ldap.disable("alice")
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "alice", "pw")
