"""PAM stack semantics."""

import pytest

from repro.auth.pam import Control, PamModule, PamResult, PamStack
from repro.errors import PamError


class FixedModule(PamModule):
    """Returns a preset result; records calls."""

    def __init__(self, result):
        self.result = result
        self.calls = 0

    def authenticate(self, username, secret):
        self.calls += 1
        return self.result


OK = lambda: FixedModule(PamResult.SUCCESS)
FAIL = lambda: FixedModule(PamResult.AUTH_ERR)


def test_empty_stack_fails():
    with pytest.raises(PamError):
        PamStack().authenticate("u", "p")


def test_single_required_success():
    PamStack().add(Control.REQUIRED, OK()).authenticate("u", "p")


def test_single_required_failure():
    with pytest.raises(PamError):
        PamStack().add(Control.REQUIRED, FAIL()).authenticate("u", "p")


def test_required_failure_still_runs_rest():
    """REQUIRED failure must not reveal which module failed: the stack
    continues to the end."""
    second = OK()
    stack = PamStack().add(Control.REQUIRED, FAIL()).add(Control.REQUIRED, second)
    with pytest.raises(PamError):
        stack.authenticate("u", "p")
    assert second.calls == 1


def test_requisite_aborts_immediately():
    second = OK()
    stack = PamStack().add(Control.REQUISITE, FAIL()).add(Control.REQUIRED, second)
    with pytest.raises(PamError):
        stack.authenticate("u", "p")
    assert second.calls == 0


def test_sufficient_short_circuits():
    second = OK()
    stack = PamStack().add(Control.SUFFICIENT, OK()).add(Control.REQUIRED, second)
    stack.authenticate("u", "p")
    assert second.calls == 0


def test_sufficient_cannot_override_required_failure():
    stack = PamStack().add(Control.REQUIRED, FAIL()).add(Control.SUFFICIENT, OK())
    with pytest.raises(PamError):
        stack.authenticate("u", "p")


def test_sufficient_failure_is_ignored():
    stack = PamStack().add(Control.SUFFICIENT, FAIL()).add(Control.REQUIRED, OK())
    stack.authenticate("u", "p")


def test_all_sufficient_failing_fails():
    stack = PamStack().add(Control.SUFFICIENT, FAIL()).add(Control.SUFFICIENT, FAIL())
    with pytest.raises(PamError):
        stack.authenticate("u", "p")


def test_optional_alone_success():
    PamStack().add(Control.OPTIONAL, OK()).authenticate("u", "p")


def test_optional_alone_failure():
    with pytest.raises(PamError):
        PamStack().add(Control.OPTIONAL, FAIL()).authenticate("u", "p")


def test_error_message_is_generic():
    """PAM must not leak whether the user exists."""
    unknown = FixedModule(PamResult.USER_UNKNOWN)
    bad_pw = FixedModule(PamResult.AUTH_ERR)
    msg_unknown = msg_badpw = None
    try:
        PamStack().add(Control.REQUIRED, unknown).authenticate("ghost", "x")
    except PamError as e:
        msg_unknown = str(e)
    try:
        PamStack().add(Control.REQUIRED, bad_pw).authenticate("alice", "x")
    except PamError as e:
        msg_badpw = str(e)
    assert msg_unknown == msg_badpw


def test_entries_accessor():
    stack = PamStack("svc").add(Control.REQUIRED, OK())
    assert stack.service == "svc"
    assert len(stack.entries) == 1
    assert stack.entries[0][0] is Control.REQUIRED
