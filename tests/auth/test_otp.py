"""One-time-password module."""

from repro.auth.otp import OtpDevice, OtpPamModule, _hotp
from repro.auth.pam import PamResult


def test_hotp_is_deterministic_six_digits():
    code = _hotp(b"secret", 0)
    assert code == _hotp(b"secret", 0)
    assert len(code) == 6
    assert code.isdigit()


def test_device_advances():
    dev = OtpDevice(b"secret")
    a, b = dev.next_code(), dev.next_code()
    assert a != b


def test_enroll_and_authenticate():
    mod = OtpPamModule()
    dev = mod.enroll("alice", b"k1")
    assert mod.authenticate("alice", dev.next_code()) is PamResult.SUCCESS


def test_codes_are_single_use():
    mod = OtpPamModule()
    dev = mod.enroll("alice", b"k1")
    code = dev.next_code()
    assert mod.authenticate("alice", code) is PamResult.SUCCESS
    assert mod.authenticate("alice", code) is PamResult.AUTH_ERR


def test_lookahead_window_tolerates_skipped_codes():
    mod = OtpPamModule(window=4)
    dev = mod.enroll("alice", b"k1")
    dev.next_code()  # burned on the device, never sent
    dev.next_code()
    assert mod.authenticate("alice", dev.next_code()) is PamResult.SUCCESS


def test_outside_window_rejected():
    mod = OtpPamModule(window=2)
    dev = mod.enroll("alice", b"k1")
    for _ in range(5):
        dev.next_code()
    assert mod.authenticate("alice", dev.next_code()) is PamResult.AUTH_ERR


def test_unknown_user():
    mod = OtpPamModule()
    assert mod.authenticate("ghost", "123456") is PamResult.USER_UNKNOWN


def test_wrong_code():
    mod = OtpPamModule()
    mod.enroll("alice", b"k1")
    assert mod.authenticate("alice", "000000") in (
        PamResult.AUTH_ERR,
        PamResult.SUCCESS,  # one-in-a-million collision is acceptable
    )
