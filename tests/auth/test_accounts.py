"""Local accounts and the setuid model."""

import pytest

from repro.auth.accounts import AccountDatabase, hash_password
from repro.errors import AccountLockedError, UnknownUserError


def test_add_and_get():
    db = AccountDatabase()
    acct = db.add_user("alice", password="pw")
    assert db.get("alice") is acct
    assert acct.home == "/home/alice"
    assert acct.uid >= 1000


def test_uids_increment():
    db = AccountDatabase()
    a = db.add_user("a")
    b = db.add_user("b")
    assert b.uid == a.uid + 1


def test_explicit_uid():
    db = AccountDatabase()
    acct = db.add_user("svc", uid=99)
    assert acct.uid == 99


def test_duplicate_rejected():
    db = AccountDatabase()
    db.add_user("alice")
    with pytest.raises(ValueError):
        db.add_user("alice")


def test_unknown_user():
    db = AccountDatabase()
    with pytest.raises(UnknownUserError):
        db.get("ghost")
    assert not db.exists("ghost")


def test_password_check():
    db = AccountDatabase()
    acct = db.add_user("alice", password="s3cret")
    assert acct.check_password("s3cret")
    assert not acct.check_password("wrong")


def test_no_password_never_matches():
    db = AccountDatabase()
    acct = db.add_user("nopw")
    assert not acct.check_password("")
    assert not acct.check_password("anything")


def test_password_stored_hashed():
    db = AccountDatabase()
    acct = db.add_user("alice", password="s3cret")
    assert "s3cret" not in acct.password_hash
    assert acct.password_hash == hash_password("s3cret", acct.salt)


def test_setuid_success_and_lock():
    db = AccountDatabase()
    db.add_user("alice")
    assert db.setuid("alice").username == "alice"
    db.lock("alice")
    with pytest.raises(AccountLockedError):
        db.setuid("alice")
    db.unlock("alice")
    db.setuid("alice")


def test_setuid_unknown_user():
    db = AccountDatabase()
    with pytest.raises(UnknownUserError):
        db.setuid("ghost")


def test_len():
    db = AccountDatabase()
    db.add_user("a")
    db.add_user("b")
    assert len(db) == 2
