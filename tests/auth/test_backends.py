"""LDAP / NIS / RADIUS / htpasswd backends and their PAM adapters."""

from repro.auth.backends import (
    HtpasswdFile,
    HtpasswdPamModule,
    LdapDirectory,
    LdapPamModule,
    NisDomain,
    NisPamModule,
    RadiusPamModule,
    RadiusServer,
)
from repro.auth.pam import PamResult


# -- LDAP ----------------------------------------------------------------


def test_ldap_bind():
    d = LdapDirectory()
    dn = d.add_entry("alice", "pw")
    assert dn.startswith("uid=alice,")
    assert d.bind("alice", "pw")
    assert not d.bind("alice", "wrong")
    assert not d.bind("ghost", "pw")


def test_ldap_disable():
    d = LdapDirectory()
    d.add_entry("alice", "pw")
    d.disable("alice")
    assert not d.bind("alice", "pw")


def test_ldap_pam_module():
    d = LdapDirectory()
    d.add_entry("alice", "pw")
    m = LdapPamModule(d)
    assert m.authenticate("alice", "pw") is PamResult.SUCCESS
    assert m.authenticate("alice", "bad") is PamResult.AUTH_ERR
    assert m.authenticate("ghost", "pw") is PamResult.USER_UNKNOWN
    d.disable("alice")
    assert m.authenticate("alice", "pw") is PamResult.ACCT_LOCKED


# -- NIS ---------------------------------------------------------------------


def test_nis_match():
    n = NisDomain("lab")
    n.add_user("bob", "pw")
    assert n.match("bob", "pw") is True
    assert n.match("bob", "no") is False
    assert n.match("ghost", "pw") is None


def test_nis_pam_module():
    n = NisDomain()
    n.add_user("bob", "pw")
    m = NisPamModule(n)
    assert m.authenticate("bob", "pw") is PamResult.SUCCESS
    assert m.authenticate("bob", "x") is PamResult.AUTH_ERR
    assert m.authenticate("nobody", "x") is PamResult.USER_UNKNOWN


# -- RADIUS --------------------------------------------------------------------


def test_radius_access_request():
    r = RadiusServer(shared_secret="s3")
    r.add_user("carol", "pw")
    assert r.access_request("s3", "carol", "pw") == "accept"
    assert r.access_request("s3", "carol", "bad") == "reject"
    assert r.access_request("s3", "ghost", "pw") == "unknown"
    assert r.access_request("wrong-secret", "carol", "pw") == "reject"


def test_radius_reject_all():
    r = RadiusServer(shared_secret="s3", reject_all=True)
    r.add_user("carol", "pw")
    assert r.access_request("s3", "carol", "pw") == "reject"


def test_radius_pam_module():
    r = RadiusServer(shared_secret="s3")
    r.add_user("carol", "pw")
    m = RadiusPamModule(r, "s3")
    assert m.authenticate("carol", "pw") is PamResult.SUCCESS
    assert m.authenticate("carol", "no") is PamResult.AUTH_ERR
    assert m.authenticate("ghost", "pw") is PamResult.USER_UNKNOWN
    bad = RadiusPamModule(r, "wrong")
    assert bad.authenticate("carol", "pw") is PamResult.AUTH_ERR


# -- htpasswd -----------------------------------------------------------------


def test_htpasswd():
    f = HtpasswdFile()
    f.set_password("dave", "pw")
    assert f.verify("dave", "pw") is True
    assert f.verify("dave", "x") is False
    assert f.verify("ghost", "pw") is None
    m = HtpasswdPamModule(f)
    assert m.authenticate("dave", "pw") is PamResult.SUCCESS
    assert m.authenticate("ghost", "pw") is PamResult.USER_UNKNOWN
