"""Base64 / PEM / canonical-JSON framing."""

import pytest

from repro.errors import ProtocolError
from repro.util.encoding import (
    b64decode_str,
    b64encode_str,
    canonical_json,
    from_canonical_json,
    is_printable_ascii,
    pem_decode,
    pem_decode_all,
    pem_encode,
)


def test_b64_round_trip():
    data = bytes(range(256))
    assert b64decode_str(b64encode_str(data)) == data


def test_b64_output_is_printable_ascii():
    assert is_printable_ascii(b64encode_str(b"\x00\xff binary"))


def test_b64_rejects_garbage():
    with pytest.raises(ProtocolError) as exc:
        b64decode_str("not-base64!!!")
    assert exc.value.code == 501


def test_pem_round_trip():
    der = b"some der bytes" * 10
    text = pem_encode("CERTIFICATE", der)
    label, out = pem_decode(text)
    assert label == "CERTIFICATE"
    assert out == der


def test_pem_wraps_lines_at_64():
    text = pem_encode("CERTIFICATE", b"x" * 300)
    body = [l for l in text.splitlines() if not l.startswith("-----")]
    assert all(len(l) <= 64 for l in body)


def test_pem_decode_expected_label_mismatch():
    text = pem_encode("RSA PRIVATE KEY", b"key")
    with pytest.raises(ProtocolError):
        pem_decode(text, expected_label="CERTIFICATE")


def test_pem_decode_all_preserves_order():
    text = (
        pem_encode("CERTIFICATE", b"one")
        + pem_encode("RSA PRIVATE KEY", b"two")
        + pem_encode("CERTIFICATE", b"three")
    )
    blocks = pem_decode_all(text)
    assert [b[0] for b in blocks] == ["CERTIFICATE", "RSA PRIVATE KEY", "CERTIFICATE"]
    assert [b[1] for b in blocks] == [b"one", b"two", b"three"]


def test_pem_decode_all_empty_input():
    assert pem_decode_all("no pem here") == []


def test_pem_unterminated_block_raises():
    text = "-----BEGIN CERTIFICATE-----\nYWJj\n"
    with pytest.raises(ProtocolError):
        pem_decode_all(text)


def test_pem_corrupt_body_raises():
    text = "-----BEGIN CERTIFICATE-----\n!!!!\n-----END CERTIFICATE-----\n"
    with pytest.raises(ProtocolError):
        pem_decode_all(text)


def test_pem_decode_no_block_raises():
    with pytest.raises(ProtocolError):
        pem_decode("plain text")


def test_canonical_json_is_deterministic():
    a = canonical_json({"b": 1, "a": [2, 3], "c": {"y": 1, "x": 2}})
    b = canonical_json({"c": {"x": 2, "y": 1}, "a": [2, 3], "b": 1})
    assert a == b


def test_canonical_json_round_trip():
    obj = {"subject": [["O", "Grid"], ["CN", "alice"]], "serial": 42}
    assert from_canonical_json(canonical_json(obj)) == obj


def test_from_canonical_json_rejects_garbage():
    with pytest.raises(ProtocolError):
        from_canonical_json(b"\xff\xfe not json")
