"""The exception hierarchy: catchability contracts callers rely on."""

import pytest

from repro import errors as E


def test_everything_is_a_repro_error():
    roots = [
        E.NetworkError, E.SecurityError, E.PamError, E.StorageError,
        E.ProtocolError, E.TransferError,
    ]
    for cls in roots:
        assert issubclass(cls, E.ReproError)


@pytest.mark.parametrize(
    "child,parent",
    [
        (E.NoRouteError, E.NetworkError),
        (E.PortInUseError, E.NetworkError),
        (E.ConnectionRefusedError_, E.NetworkError),
        (E.LinkDownError, E.NetworkError),
        (E.CertificateError, E.SecurityError),
        (E.UntrustedIssuerError, E.CertificateError),
        (E.SigningPolicyError, E.CertificateError),
        (E.AuthenticationError, E.SecurityError),
        (E.AuthorizationError, E.SecurityError),
        (E.GridmapError, E.AuthorizationError),
        (E.DelegationError, E.SecurityError),
        (E.DCAUError, E.SecurityError),
        (E.UnknownUserError, E.PamError),
        (E.AccountLockedError, E.PamError),
        (E.FileNotFoundStorageError, E.StorageError),
        (E.PermissionDeniedError, E.StorageError),
        (E.TransferFaultError, E.TransferError),
        (E.UnsupportedCommandError, E.ProtocolError),
    ],
)
def test_hierarchy(child, parent):
    assert issubclass(child, parent)


def test_protocol_error_carries_code():
    err = E.ProtocolError("nope", code=501)
    assert err.code == 501
    assert E.ProtocolError("x").code == 500


def test_transfer_fault_carries_restart_state():
    from repro.util.ranges import ByteRangeSet

    received = ByteRangeSet([(0, 100)])
    err = E.TransferFaultError("cut", received=received, at_time=42.0)
    assert err.received.total_bytes() == 100
    assert err.at_time == 42.0


def test_untrusted_issuer_names_the_issuer():
    err = E.UntrustedIssuerError("no path", issuer="/O=A/CN=CA-A")
    assert err.issuer == "/O=A/CN=CA-A"


def test_gridmap_error_names_the_subject():
    err = E.GridmapError("missing", subject="/O=A/CN=alice")
    assert err.subject == "/O=A/CN=alice"


def test_catch_security_catches_dcau_and_auth():
    for exc in (E.DCAUError("x"), E.AuthenticationError("y"),
                E.UntrustedIssuerError("z")):
        with pytest.raises(E.SecurityError):
            raise exc
