"""The public scenarios helpers (used by examples and benchmarks)."""

import pytest

from repro.scenarios import conventional_site, gcmu_site
from repro.util.units import gbps


@pytest.fixture
def topo(world):
    net = world.network
    net.add_host("srv", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("srv", "laptop", gbps(1), 0.01)
    return world


def test_conventional_site_round_trip(topo):
    world = topo
    site = conventional_site(world, "Lab", "srv")
    site.add_user(world, "alice")
    site.storage.write_file("/home/alice/f", b"data",
                            uid=site.accounts.get("alice").uid)
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(site.server)
    assert session.logged_in_as == "alice"
    res = session.get("/home/alice/f", "/tmp/f")
    assert res.verified


def test_conventional_site_gridmap_populated(topo):
    world = topo
    site = conventional_site(world, "Lab", "srv")
    cred = site.add_user(world, "bob")
    assert site.gridmap.lookup(cred.subject) == "bob"


def test_gcmu_site_users(topo):
    world = topo
    ep = gcmu_site(world, "srv", "lab", {"alice": "a", "bob": "b"})
    assert ep.accounts.exists("alice") and ep.accounts.exists("bob")
    assert ep.storage.exists("/home/alice")
    from repro.myproxy.client import myproxy_logon

    cred = myproxy_logon(world, "laptop", ep.myproxy, "bob", "b")
    assert cred.subject.common_name == "bob"


def test_gcmu_site_charges_time_optionally(topo):
    world = topo
    world.network.add_host("srv2", nic_bps=gbps(10))
    t0 = world.now
    gcmu_site(world, "srv2", "timed", {}, charge_install_time=True)
    assert world.now > t0


def test_proxy_for_gives_fresh_proxies(topo):
    world = topo
    site = conventional_site(world, "Lab", "srv")
    site.add_user(world, "alice")
    p1 = site.proxy_for(world, "alice")
    p2 = site.proxy_for(world, "alice")
    assert p1.subject != p2.subject  # distinct serials
    assert p1.identity == p2.identity
