"""Checksum helpers."""

import pytest

from repro.util.checksums import (
    adler32_hex,
    checksum,
    crc32_hex,
    sha256_hex,
    sha256_hex_iter,
    supported_algorithms,
)


def test_sha256_known_value():
    assert sha256_hex(b"") == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    )


def test_sha256_iter_matches_whole():
    chunks = [b"abc", b"def", b"ghi"]
    assert sha256_hex_iter(chunks) == sha256_hex(b"abcdefghi")


def test_crc32_is_8_hex_digits():
    out = crc32_hex(b"hello")
    assert len(out) == 8
    assert int(out, 16) >= 0


def test_adler32_differs_from_crc32():
    data = b"gridftp" * 100
    assert adler32_hex(data) != crc32_hex(data)


def test_checksum_dispatch_case_insensitive():
    data = b"payload"
    assert checksum("SHA256", data) == sha256_hex(data)
    assert checksum("Crc32", data) == crc32_hex(data)


def test_checksum_unknown_algorithm():
    with pytest.raises(ValueError):
        checksum("md5sum", b"x")


def test_supported_algorithms_sorted():
    algos = supported_algorithms()
    assert algos == sorted(algos)
    assert "sha256" in algos
