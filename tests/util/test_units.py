"""Units and formatting."""

import pytest

from repro.util.units import (
    DAY,
    GB,
    HOUR,
    KB,
    MB,
    MINUTE,
    PB,
    TB,
    bits,
    bytes_per_second,
    fmt_bytes,
    fmt_duration,
    fmt_rate,
    gbps,
    kbps,
    mbps,
)


def test_size_constants_are_binary_powers():
    assert KB == 1024
    assert MB == KB * 1024
    assert GB == MB * 1024
    assert TB == GB * 1024
    assert PB == TB * 1024


def test_time_constants():
    assert MINUTE == 60
    assert HOUR == 3600
    assert DAY == 86400


def test_rate_conversions_are_decimal():
    assert kbps(1) == 1e3
    assert mbps(1) == 1e6
    assert gbps(1) == 1e9
    assert gbps(10) == 10e9


def test_bits_and_bytes_per_second():
    assert bits(1) == 8.0
    assert bytes_per_second(8e6) == 1e6


@pytest.mark.parametrize(
    "value,expected",
    [
        (512, "512 B"),
        (2048, "2.00 KiB"),
        (GB + GB // 2, "1.50 GiB"),
        (3 * TB, "3.00 TiB"),
        (2 * PB, "2.00 PiB"),
    ],
)
def test_fmt_bytes(value, expected):
    assert fmt_bytes(value) == expected


@pytest.mark.parametrize(
    "value,expected",
    [
        (500.0, "500.0 b/s"),
        (2e3, "2.00 kb/s"),
        (5e6, "5.00 Mb/s"),
        (9.41e9, "9.41 Gb/s"),
        (1.2e12, "1.20 Tb/s"),
    ],
)
def test_fmt_rate(value, expected):
    assert fmt_rate(value) == expected


def test_fmt_duration_scales():
    assert fmt_duration(5e-7).endswith("us")
    assert fmt_duration(0.005).endswith("ms")
    assert fmt_duration(4.21) == "4.21 s"
    assert fmt_duration(125) == "2m 5s"
    assert fmt_duration(2 * HOUR + 13 * MINUTE) == "2h 13m"
    assert fmt_duration(3 * DAY + 5 * HOUR) == "3d 5h"


def test_fmt_duration_negative():
    assert fmt_duration(-4.0) == "-4.00 s"
