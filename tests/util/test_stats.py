"""Unit tests for the shared benchmark percentile helper."""

import pytest

from repro.util.stats import percentile


def test_empty_samples_yield_zero():
    assert percentile([], 0.5) == 0.0


def test_single_sample_is_every_percentile():
    for q in (0.0, 0.5, 0.99, 1.0):
        assert percentile([7.5], q) == 7.5


def test_endpoints_are_min_and_max():
    samples = [9.0, 1.0, 5.0, 3.0]
    assert percentile(samples, 0.0) == 1.0
    assert percentile(samples, 1.0) == 9.0


def test_input_order_is_irrelevant():
    assert percentile([3.0, 1.0, 2.0], 0.5) == percentile([1.0, 2.0, 3.0], 0.5)


def test_nearest_rank_definition():
    # rank = round(q * (n - 1)) into the sorted list
    samples = list(range(11))  # 0..10, already sorted
    assert percentile(samples, 0.50) == 5
    assert percentile(samples, 0.99) == 10
    assert percentile(samples, 0.05) == 0  # round(0.5) banker's-rounds to 0
    assert percentile(samples, 0.25) == 2  # round(2.5) banker's-rounds to 2


def test_matches_the_benches_historical_definition():
    # the exact expression both fleet benches used before extraction
    def legacy(samples, q):
        if not samples:
            return 0.0
        ordered = sorted(samples)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    cases = [
        ([4.2, 1.1, 9.9, 2.0, 7.3], 0.5),
        ([4.2, 1.1, 9.9, 2.0, 7.3], 0.99),
        ([1.0, 2.0], 0.75),
        (list(range(100)), 0.95),
    ]
    for samples, q in cases:
        assert percentile(samples, q) == pytest.approx(legacy(samples, q))
