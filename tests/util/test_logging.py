"""The structured event log."""

from repro.util.logging import EventLog


def test_emit_and_len():
    log = EventLog()
    log.emit(1.0, "a.b", "hello", x=1)
    log.emit(2.0, "a.c", "world")
    assert len(log) == 2


def test_select_by_category_prefix():
    log = EventLog()
    log.emit(0.0, "gridftp.command", "m1")
    log.emit(0.0, "gridftp.transfer.complete", "m2")
    log.emit(0.0, "myproxy.issue", "m3")
    assert len(log.select("gridftp")) == 2
    assert len(log.select("gridftp.transfer")) == 1
    assert len(log.select("myproxy.issue")) == 1
    assert len(log.select()) == 3


def test_select_by_field_values():
    log = EventLog()
    log.emit(0.0, "x", "a", server="s1", ok=True)
    log.emit(0.0, "x", "b", server="s2", ok=True)
    log.emit(0.0, "x", "c", server="s1", ok=False)
    assert len(log.select("x", server="s1")) == 2
    assert len(log.select("x", server="s1", ok=True)) == 1


def test_count_and_last():
    log = EventLog()
    assert log.last("x") is None
    log.emit(1.0, "x", "first")
    log.emit(2.0, "x", "second")
    assert log.count("x") == 2
    assert log.last("x").message == "second"


def test_subscribe_sees_future_events():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.emit(0.0, "cat", "msg")
    assert len(seen) == 1
    assert seen[0].category == "cat"


def test_clear_keeps_subscribers():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.emit(0.0, "a", "1")
    log.clear()
    assert len(log) == 0
    log.emit(0.0, "a", "2")
    assert len(seen) == 2


def test_events_are_immutable_records():
    log = EventLog()
    ev = log.emit(5.5, "cat", "msg", k="v")
    assert ev.time == 5.5
    assert ev.fields["k"] == "v"
    import dataclasses
    assert dataclasses.is_dataclass(ev)
