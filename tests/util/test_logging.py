"""The structured event log."""

import pytest

from repro.util.logging import SUBSCRIBER_ERROR_CATEGORY, Event, EventLog


def test_emit_and_len():
    log = EventLog()
    log.emit(1.0, "a.b", "hello", x=1)
    log.emit(2.0, "a.c", "world")
    assert len(log) == 2


def test_select_by_category_prefix():
    log = EventLog()
    log.emit(0.0, "gridftp.command", "m1")
    log.emit(0.0, "gridftp.transfer.complete", "m2")
    log.emit(0.0, "myproxy.issue", "m3")
    assert len(log.select("gridftp")) == 2
    assert len(log.select("gridftp.transfer")) == 1
    assert len(log.select("myproxy.issue")) == 1
    assert len(log.select()) == 3


def test_select_by_field_values():
    log = EventLog()
    log.emit(0.0, "x", "a", server="s1", ok=True)
    log.emit(0.0, "x", "b", server="s2", ok=True)
    log.emit(0.0, "x", "c", server="s1", ok=False)
    assert len(log.select("x", server="s1")) == 2
    assert len(log.select("x", server="s1", ok=True)) == 1


def test_count_and_last():
    log = EventLog()
    assert log.last("x") is None
    log.emit(1.0, "x", "first")
    log.emit(2.0, "x", "second")
    assert log.count("x") == 2
    assert log.last("x").message == "second"


def test_subscribe_sees_future_events():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.emit(0.0, "cat", "msg")
    assert len(seen) == 1
    assert seen[0].category == "cat"


def test_clear_keeps_subscribers():
    log = EventLog()
    seen = []
    log.subscribe(seen.append)
    log.emit(0.0, "a", "1")
    log.clear()
    assert len(log) == 0
    log.emit(0.0, "a", "2")
    assert len(seen) == 2


def test_events_are_immutable_records():
    log = EventLog()
    ev = log.emit(5.5, "cat", "msg", k="v")
    assert ev.time == 5.5
    assert ev.fields["k"] == "v"
    import dataclasses
    assert dataclasses.is_dataclass(ev)


# -- subscriber safety --------------------------------------------------------


def test_raising_subscriber_does_not_break_delivery():
    log = EventLog()
    seen_before, seen_after = [], []

    def bad(ev):
        raise RuntimeError("collector crashed")

    log.subscribe(seen_before.append)
    log.subscribe(bad)
    log.subscribe(seen_after.append)
    ev = log.emit(1.0, "work", "payload")
    # subscribers before AND after the broken one still got the event
    assert seen_before == [ev]
    assert seen_after == [ev]
    assert log.subscriber_errors == 1
    err = log.last(SUBSCRIBER_ERROR_CATEGORY)
    assert err is not None
    assert "RuntimeError" in err.fields["error"]
    assert err.fields["event_category"] == "work"


def test_subscriber_error_events_are_not_republished():
    log = EventLog()
    calls = []

    def always_raises(ev):
        calls.append(ev.category)
        raise ValueError("again")

    log.subscribe(always_raises)
    log.emit(0.0, "x", "m")
    # the synthetic error event must not recurse into the subscriber
    assert calls == ["x"]
    assert log.count(SUBSCRIBER_ERROR_CATEGORY) == 1


# -- bounded capacity ---------------------------------------------------------


def test_capacity_evicts_oldest_and_counts_drops():
    log = EventLog(capacity=3)
    for i in range(5):
        log.emit(float(i), "tick", f"n{i}")
    assert len(log) == 3
    assert [ev.message for ev in log] == ["n2", "n3", "n4"]
    assert log.dropped_events == 2


def test_default_capacity_is_unbounded():
    log = EventLog()
    for i in range(100):
        log.emit(float(i), "tick", "m")
    assert len(log) == 100
    assert log.dropped_events == 0
    assert log.capacity is None


def test_set_capacity_shrinks_in_place():
    log = EventLog()
    for i in range(10):
        log.emit(float(i), "tick", f"n{i}")
    log.set_capacity(4)
    assert len(log) == 4
    assert log.dropped_events == 6
    assert [ev.message for ev in log] == ["n6", "n7", "n8", "n9"]
    log.set_capacity(None)  # back to unbounded
    log.emit(99.0, "tick", "more")
    assert len(log) == 5


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        EventLog(capacity=0)
    with pytest.raises(ValueError):
        EventLog().set_capacity(-1)


# -- JSON-lines export --------------------------------------------------------


def test_jsonl_round_trip_preserves_events():
    log = EventLog()
    log.emit(1.5, "a.b", "first", n=3, host="dtn-a")
    log.emit(2.5, "a.c", "second", trace_id="trace-0001", span_id="span-00002")
    text = log.to_jsonl()
    assert len(text.splitlines()) == 2
    back = EventLog.from_jsonl(text)
    assert back == list(log)


def test_jsonl_filters_by_category_and_stringifies_rich_fields():
    log = EventLog()
    log.emit(0.0, "keep.this", "m", blob=object())
    log.emit(0.0, "drop.this", "m")
    text = log.to_jsonl("keep")
    assert len(text.splitlines()) == 1
    (ev,) = EventLog.from_jsonl(text)
    assert ev.category == "keep.this"
    assert isinstance(ev.fields["blob"], str)  # default=str fallback


def test_event_to_dict_omits_unset_trace_keys():
    bare = Event(time=0.0, category="c", message="m")
    assert "trace_id" not in bare.to_dict()
    traced = Event(time=0.0, category="c", message="m",
                   trace_id="trace-0001", span_id="span-00001")
    d = traced.to_dict()
    assert d["trace_id"] == "trace-0001"
    assert Event.from_dict(d) == traced
