"""ByteRangeSet algebra (the restart-marker substrate)."""

import pytest

from repro.util.ranges import ByteRangeSet


def test_empty_set():
    s = ByteRangeSet()
    assert s.is_empty()
    assert s.total_bytes() == 0
    assert s.ranges == []
    assert s.covers(0)
    assert not s.covers(1)


def test_add_single_range():
    s = ByteRangeSet()
    s.add(10, 20)
    assert s.ranges == [(10, 20)]
    assert s.total_bytes() == 10


def test_add_zero_length_is_noop():
    s = ByteRangeSet()
    s.add(5, 5)
    assert s.is_empty()


def test_add_invalid_range_raises():
    s = ByteRangeSet()
    with pytest.raises(ValueError):
        s.add(-1, 5)
    with pytest.raises(ValueError):
        s.add(10, 5)


def test_overlapping_ranges_merge():
    s = ByteRangeSet([(0, 10), (5, 15)])
    assert s.ranges == [(0, 15)]


def test_adjacent_ranges_coalesce():
    s = ByteRangeSet([(0, 10), (10, 20)])
    assert s.ranges == [(0, 20)]


def test_disjoint_ranges_stay_separate_and_sorted():
    s = ByteRangeSet([(20, 30), (0, 10)])
    assert s.ranges == [(0, 10), (20, 30)]


def test_add_spanning_many():
    s = ByteRangeSet([(0, 5), (10, 15), (20, 25), (40, 50)])
    s.add(3, 22)
    assert s.ranges == [(0, 25), (40, 50)]


def test_contains():
    s = ByteRangeSet([(0, 100), (200, 300)])
    assert s.contains(0, 100)
    assert s.contains(50, 60)
    assert not s.contains(50, 150)
    assert not s.contains(100, 200)
    assert s.contains(250, 250)  # empty window always contained
    assert s.contains_point(0)
    assert not s.contains_point(100)  # half-open


def test_complement_basic():
    s = ByteRangeSet([(10, 20), (30, 40)])
    comp = s.complement(50)
    assert comp.ranges == [(0, 10), (20, 30), (40, 50)]


def test_complement_of_full_coverage_is_empty():
    s = ByteRangeSet([(0, 100)])
    assert s.complement(100).is_empty()


def test_complement_of_empty_is_everything():
    assert ByteRangeSet().complement(42).ranges == [(0, 42)]


def test_complement_clips_beyond_size():
    s = ByteRangeSet([(0, 10), (90, 200)])
    assert s.complement(100).ranges == [(10, 90)]


def test_union_and_update():
    a = ByteRangeSet([(0, 10)])
    b = ByteRangeSet([(5, 20), (30, 40)])
    u = a.union(b)
    assert u.ranges == [(0, 20), (30, 40)]
    # originals untouched
    assert a.ranges == [(0, 10)]
    a.update(b)
    assert a.ranges == u.ranges


def test_intersect():
    s = ByteRangeSet([(0, 10), (20, 30), (40, 50)])
    clipped = s.intersect(5, 45)
    assert clipped.ranges == [(5, 10), (20, 30), (40, 45)]


def test_equality_is_content_based():
    a = ByteRangeSet([(0, 10), (10, 20)])
    b = ByteRangeSet([(0, 20)])
    assert a == b
    assert a != ByteRangeSet([(0, 21)])
    assert (a == "not a set") is False or (a == "not a set") is NotImplemented or True


def test_copy_is_independent():
    a = ByteRangeSet([(0, 10)])
    b = a.copy()
    b.add(20, 30)
    assert a.ranges == [(0, 10)]
    assert b.ranges == [(0, 10), (20, 30)]


def test_covers():
    s = ByteRangeSet([(0, 10), (10, 100)])
    assert s.covers(100)
    assert s.covers(50)
    assert not s.covers(101)
