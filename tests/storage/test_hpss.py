"""The HPSS archival backend: staging latency semantics."""

import pytest

from repro.sim.clock import Clock
from repro.storage.hpss import HpssStorage
from repro.util.units import MB


@pytest.fixture
def hpss():
    clock = Clock()
    h = HpssStorage(clock, mount_latency_s=45.0, tape_bandwidth_Bps=160 * MB)
    h.makedirs("/archive", 0)
    return clock, h


def test_archived_file_starts_cold(hpss):
    clock, h = hpss
    h.write_file("/archive/run1.dat", b"x" * MB)
    assert not h.is_staged("/archive/run1.dat")


def test_first_read_pays_staging(hpss):
    clock, h = hpss
    h.write_file("/archive/run1.dat", b"x" * (160 * MB))
    t0 = clock.now
    h.open_read("/archive/run1.dat", 0)
    assert clock.now - t0 == pytest.approx(45.0 + 1.0)  # mount + 1s drain
    assert h.stage_count == 1


def test_second_read_is_free(hpss):
    clock, h = hpss
    h.write_file("/archive/run1.dat", b"x" * MB)
    h.open_read("/archive/run1.dat", 0)
    t0 = clock.now
    h.open_read("/archive/run1.dat", 0)
    assert clock.now == t0
    assert h.stage_count == 1


def test_evict_forces_restage(hpss):
    clock, h = hpss
    h.write_file("/archive/run1.dat", b"x" * MB)
    h.open_read("/archive/run1.dat", 0)
    h.evict("/archive/run1.dat")
    h.open_read("/archive/run1.dat", 0)
    assert h.stage_count == 2


def test_fresh_writes_are_staged(hpss):
    clock, h = hpss
    sink = h.open_write("/archive/new.dat", 0, 3)
    sink.write_block(0, b"abc")
    sink.close(complete=True)
    assert h.is_staged("/archive/new.dat")
    t0 = clock.now
    assert h.open_read("/archive/new.dat", 0).read_all() == b"abc"
    assert clock.now == t0  # no staging charge


def test_namespace_delegates(hpss):
    clock, h = hpss
    h.mkdir("/archive/sub", 0)
    h.write_file("/archive/sub/f", b"x")
    assert h.listdir("/archive/sub", 0) == ["f"]
    assert h.stat("/archive/sub/f", 0).size == 1
    h.rename("/archive/sub/f", "/archive/sub/g", 0)
    assert h.exists("/archive/sub/g")
    h.delete("/archive/sub/g", 0)
    assert not h.exists("/archive/sub/g")


def test_rename_preserves_staged_state(hpss):
    clock, h = hpss
    h.write_file("/archive/a", b"x")
    h.open_read("/archive/a", 0)
    h.rename("/archive/a", "/archive/b", 0)
    assert h.is_staged("/archive/b")
    assert not h.is_staged("/archive/a")


def test_partial_resume_roundtrip(hpss):
    clock, h = hpss
    sink = h.open_write("/archive/up", 0, 6)
    sink.write_block(0, b"abc")
    sink.close(complete=False)
    sink2 = h.open_write("/archive/up", 0, 6, resume=True)
    sink2.write_block(3, b"def")
    sink2.close(complete=True)
    assert h.open_read("/archive/up", 0).read_all() == b"abcdef"
