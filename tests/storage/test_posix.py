"""The in-memory POSIX backend."""

import pytest

from repro.errors import (
    FileExistsStorageError,
    FileNotFoundStorageError,
    IsADirectoryStorageError,
    NotADirectoryStorageError,
    PermissionDeniedError,
    StorageError,
)
from repro.sim.clock import Clock
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage

ALICE, BOB = 1000, 1001


@pytest.fixture
def fs():
    clock = Clock()
    fs = PosixStorage(clock)
    fs.makedirs("/home/alice", 0)
    fs.chown("/home/alice", ALICE)
    return fs


def test_write_and_read(fs):
    fs.write_file("/home/alice/a.txt", b"content", uid=ALICE)
    assert fs.open_read("/home/alice/a.txt", ALICE).read_all() == b"content"


def test_relative_path_rejected(fs):
    with pytest.raises(StorageError):
        fs.stat("relative/path", 0)


def test_missing_file(fs):
    with pytest.raises(FileNotFoundStorageError):
        fs.open_read("/home/alice/nope", ALICE)
    assert not fs.exists("/home/alice/nope")


def test_read_directory_rejected(fs):
    with pytest.raises(IsADirectoryStorageError):
        fs.open_read("/home/alice", ALICE)


def test_listdir(fs):
    fs.write_file("/home/alice/b.txt", b"b", uid=ALICE)
    fs.write_file("/home/alice/a.txt", b"a", uid=ALICE)
    assert fs.listdir("/home/alice", ALICE) == ["a.txt", "b.txt"]
    with pytest.raises(NotADirectoryStorageError):
        fs.listdir("/home/alice/a.txt", ALICE)


def test_other_uid_cannot_write_into_home(fs):
    with pytest.raises(PermissionDeniedError):
        fs.open_write("/home/alice/intruder", BOB, 10)


def test_owner_read_only_file(fs):
    fs.write_file("/home/alice/secret", b"s", uid=ALICE)
    fs.chmod("/home/alice/secret", 0o600, uid=ALICE)
    assert fs.open_read("/home/alice/secret", ALICE).read_all() == b"s"
    with pytest.raises(PermissionDeniedError):
        fs.open_read("/home/alice/secret", BOB)


def test_root_bypasses_permissions(fs):
    fs.write_file("/home/alice/secret", b"s", uid=ALICE)
    fs.chmod("/home/alice/secret", 0o600, uid=ALICE)
    assert fs.open_read("/home/alice/secret", 0).read_all() == b"s"


def test_chmod_requires_owner_or_root(fs):
    fs.write_file("/home/alice/f", b"x", uid=ALICE)
    with pytest.raises(PermissionDeniedError):
        fs.chmod("/home/alice/f", 0o777, uid=BOB)


def test_mkdir_and_exists(fs):
    fs.mkdir("/home/alice/sub", ALICE)
    assert fs.exists("/home/alice/sub")
    with pytest.raises(FileExistsStorageError):
        fs.mkdir("/home/alice/sub", ALICE)


def test_stat(fs):
    fs.write_file("/home/alice/f", b"12345", uid=ALICE)
    st = fs.stat("/home/alice/f", ALICE)
    assert st.size == 5
    assert not st.is_dir
    assert st.owner_uid == ALICE
    assert fs.stat("/home/alice", ALICE).is_dir


def test_delete(fs):
    fs.write_file("/home/alice/f", b"x", uid=ALICE)
    fs.delete("/home/alice/f", ALICE)
    assert not fs.exists("/home/alice/f")
    with pytest.raises(FileNotFoundStorageError):
        fs.delete("/home/alice/f", ALICE)


def test_delete_nonempty_dir_rejected(fs):
    fs.mkdir("/home/alice/d", ALICE)
    fs.write_file("/home/alice/d/f", b"x", uid=ALICE)
    with pytest.raises(StorageError, match="not empty"):
        fs.delete("/home/alice/d", ALICE)


def test_rename(fs):
    fs.write_file("/home/alice/old", b"x", uid=ALICE)
    fs.rename("/home/alice/old", "/home/alice/new", ALICE)
    assert not fs.exists("/home/alice/old")
    assert fs.open_read("/home/alice/new", ALICE).read_all() == b"x"


def test_rename_over_existing_rejected(fs):
    fs.write_file("/home/alice/a", b"a", uid=ALICE)
    fs.write_file("/home/alice/b", b"b", uid=ALICE)
    with pytest.raises(FileExistsStorageError):
        fs.rename("/home/alice/a", "/home/alice/b", ALICE)


def test_write_sink_lifecycle(fs):
    sink = fs.open_write("/home/alice/up.bin", ALICE, expected_size=6)
    sink.write_block(3, b"def")
    sink.write_block(0, b"abc")
    out = sink.close(complete=True)
    assert out.read_all() == b"abcdef"
    assert fs.open_read("/home/alice/up.bin", ALICE).read_all() == b"abcdef"


def test_write_sink_partial_and_resume(fs):
    sink = fs.open_write("/home/alice/up.bin", ALICE, expected_size=6)
    sink.write_block(0, b"abc")
    sink.close(complete=False)
    # no committed content yet
    with pytest.raises(FileNotFoundStorageError):
        fs.open_read("/home/alice/up.bin", ALICE)
    assert fs.partial_for("/home/alice/up.bin", ALICE) is not None
    # resume and finish
    sink2 = fs.open_write("/home/alice/up.bin", ALICE, expected_size=6, resume=True)
    assert sink2.received.ranges == [(0, 3)]
    sink2.write_block(3, b"def")
    sink2.close(complete=True)
    assert fs.open_read("/home/alice/up.bin", ALICE).read_all() == b"abcdef"
    assert fs.partial_for("/home/alice/up.bin", ALICE) is None


def test_sink_closed_rejects_writes(fs):
    sink = fs.open_write("/home/alice/f", ALICE, 3)
    sink.write_block(0, b"abc")
    sink.close(complete=True)
    with pytest.raises(StorageError):
        sink.write_block(0, b"xyz")


def test_checksum(fs):
    fs.write_file("/home/alice/f", b"data", uid=ALICE)
    import hashlib

    assert fs.checksum("/home/alice/f", ALICE) == hashlib.sha256(b"data").hexdigest()


def test_overwrite_replaces_content(fs):
    fs.write_file("/home/alice/f", b"old", uid=ALICE)
    fs.commit_file("/home/alice/f", ALICE, LiteralData(b"new"))
    assert fs.open_read("/home/alice/f", ALICE).read_all() == b"new"
