"""File content representations: literal, synthetic, partial."""

import pytest

from repro.errors import StorageError
from repro.storage.data import LiteralData, PartialData, SyntheticData
from repro.util.units import GB


def test_literal_basics():
    d = LiteralData(b"hello world")
    assert d.size == 11
    assert d.read(0, 5) == b"hello"
    assert d.read(6, 100) == b"world"  # clipped at EOF
    assert d.read_all() == b"hello world"


def test_literal_fingerprint_is_content_hash():
    assert LiteralData(b"abc").fingerprint() == LiteralData(b"abc").fingerprint()
    assert LiteralData(b"abc").fingerprint() != LiteralData(b"abd").fingerprint()


def test_literal_invalid_window():
    with pytest.raises(StorageError):
        LiteralData(b"x").read(-1, 1)


def test_synthetic_deterministic():
    a = SyntheticData(seed=7, length=10000)
    b = SyntheticData(seed=7, length=10000)
    assert a.read(100, 50) == b.read(100, 50)
    assert a.read(0, 10000) == b.read(0, 10000)


def test_synthetic_windows_consistent():
    d = SyntheticData(seed=3, length=4096)
    whole = d.read(0, 4096)
    assert d.read(1000, 200) == whole[1000:1200]
    assert d.read(4090, 100) == whole[4090:]  # clipped


def test_synthetic_different_seeds_differ():
    assert SyntheticData(1, 100).read(0, 100) != SyntheticData(2, 100).read(0, 100)


def test_synthetic_fingerprint_without_materializing():
    huge = SyntheticData(seed=5, length=100 * GB)
    assert huge.fingerprint() == f"synthetic:5:{100 * GB}"


def test_synthetic_refuses_huge_reads():
    huge = SyntheticData(seed=5, length=100 * GB)
    with pytest.raises(StorageError, match="refusing to materialize"):
        huge.read(0, 100 * GB)


def test_partial_literal_assembly():
    p = PartialData(expected_size=10)
    p.write_fragment(5, b"fghij")
    assert not p.is_complete()
    p.write_fragment(0, b"abcde")
    assert p.is_complete()
    final = p.promote()
    assert isinstance(final, LiteralData)
    assert final.read_all() == b"abcdefghij"


def test_partial_out_of_order_overlap():
    p = PartialData(expected_size=6)
    p.write_fragment(2, b"cdef")
    p.write_fragment(0, b"abc")  # overlaps at byte 2
    assert p.promote().read_all() == b"abcdef"


def test_partial_promote_incomplete_raises():
    p = PartialData(expected_size=10)
    p.write_fragment(0, b"abc")
    with pytest.raises(StorageError, match="missing"):
        p.promote()


def test_partial_synthetic_assembly():
    src = SyntheticData(seed=9, length=1 * GB)
    p = PartialData(expected_size=1 * GB, synthetic_source=src)
    p.mark_received(0, GB // 2)
    assert not p.is_complete()
    p.mark_received(GB // 2, GB)
    final = p.promote()
    assert final.fingerprint() == src.fingerprint()


def test_partial_read_received_only():
    p = PartialData(expected_size=10)
    p.write_fragment(0, b"abcde")
    assert p.read(0, 5) == b"abcde"
    with pytest.raises(StorageError):
        p.read(3, 5)  # includes unreceived bytes


def test_partial_fingerprint_shows_progress():
    p = PartialData(expected_size=100)
    p.write_fragment(0, b"x" * 40)
    assert p.fingerprint() == "partial:40/100"
