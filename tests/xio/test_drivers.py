"""XIO drivers."""

import pytest

from repro.net.tcp import TCPModel
from repro.net.topology import PathStats
from repro.xio.drivers import (
    CompressionDriver,
    DebugDriver,
    GsiProtectDriver,
    Protection,
    TcpDriver,
    UdtDriver,
)
from repro.util.units import MB, gbps


def path(rtt=0.05, bw=gbps(10), loss=0.0):
    return PathStats(src="a", dst="b", rtt_s=rtt, bottleneck_bps=bw, loss=loss,
                     link_ids=("l",), hosts=("a", "b"))


def test_tcp_driver_uses_model():
    drv = TcpDriver(model=TCPModel.tuned(16 * MB))
    assert drv.rate(path(), 4) > TcpDriver(model=TCPModel.untuned()).rate(path(), 4)
    assert drv.handshake_rtts() == TCPModel().handshake_rtts


def test_udt_driver_no_slow_start():
    drv = UdtDriver()
    assert drv.ramp_penalty_s(path(), 1) == 0.0
    assert drv.rate(path(), 1) == pytest.approx(0.9 * gbps(10))


def test_gsi_clear_is_free():
    drv = GsiProtectDriver(protection=Protection.CLEAR)
    assert drv.rate_through(gbps(10)) == gbps(10)
    assert drv.setup_rtts() == 0.0


def test_gsi_integrity_caps():
    drv = GsiProtectDriver(protection=Protection.SAFE)
    assert drv.rate_through(gbps(10)) == drv.integrity_cap_bps
    assert drv.rate_through(gbps(1)) == gbps(1)  # below the cap: unchanged


def test_gsi_privacy_order_of_magnitude_on_fast_links():
    """Paper II.C: 'An order of magnitude slowdown is not unusual'."""
    drv = GsiProtectDriver(protection=Protection.PRIVATE)
    slowdown = gbps(10) / drv.rate_through(gbps(10))
    assert 8 <= slowdown <= 15


def test_gsi_adds_handshake():
    assert GsiProtectDriver(protection=Protection.PRIVATE).setup_rtts() == 2.0


def test_compression_multiplies_until_cpu_cap():
    drv = CompressionDriver(ratio=2.0, cpu_cap_bps=gbps(3))
    assert drv.rate_through(gbps(1)) == gbps(2)
    assert drv.rate_through(gbps(5)) == gbps(3)  # CPU bound


def test_compression_invalid_ratio():
    with pytest.raises(ValueError):
        CompressionDriver(ratio=0.0).rate_through(gbps(1))


def test_debug_driver_counts():
    drv = DebugDriver()
    drv.rate_through(1.0)
    drv.rate_through(2.0)
    assert drv.queries == 2
