"""XIO stack composition."""

import pytest

from repro.net.tcp import TCPModel
from repro.net.topology import PathStats
from repro.xio.drivers import GsiProtectDriver, Protection, TcpDriver, UdtDriver
from repro.xio.stack import XIOStack
from repro.util.units import MB, gbps


def path(rtt=0.05, bw=gbps(10), loss=0.0):
    return PathStats(src="a", dst="b", rtt_s=rtt, bottleneck_bps=bw, loss=loss,
                     link_ids=("l",), hosts=("a", "b"))


def test_default_stack_is_plain_tcp():
    stack = XIOStack()
    assert stack.describe() == "tcp"


def test_push_returns_new_stack():
    base = XIOStack()
    secured = base.push(GsiProtectDriver(protection=Protection.PRIVATE))
    assert base.describe() == "tcp"
    assert secured.describe() == "gsi/tcp"


def test_transform_caps_throughput():
    tuned = XIOStack(transport=TcpDriver(model=TCPModel.tuned(64 * MB)))
    clear = tuned.throughput(path(), 16)
    private = tuned.push(GsiProtectDriver(protection=Protection.PRIVATE)).throughput(path(), 16)
    assert private < clear


def test_transport_cannot_be_transform():
    with pytest.raises(ValueError):
        XIOStack(transforms=(UdtDriver(),))


def test_setup_time_accumulates_driver_rtts():
    stack = XIOStack().push(GsiProtectDriver(protection=Protection.PRIVATE))
    p = path(rtt=0.1)
    base = XIOStack().setup_time_s(p)
    assert stack.setup_time_s(p) == pytest.approx(base + 2.0 * 0.1)


def test_udt_stack():
    stack = XIOStack(transport=UdtDriver())
    assert stack.describe() == "udt"
    assert stack.ramp_penalty_s(path(), 4) == 0.0
    assert stack.throughput(path(loss=0.005), 1) == pytest.approx(0.9 * gbps(10))


def test_gsi_over_udt_composes():
    stack = XIOStack(transport=UdtDriver()).push(
        GsiProtectDriver(protection=Protection.PRIVATE)
    )
    assert stack.describe() == "gsi/udt"
    assert stack.throughput(path(), 1) == GsiProtectDriver().privacy_cap_bps
