"""Property tests for the byte-range algebra (restart markers)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.ranges import ByteRangeSet

ranges_strategy = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=30,
)


def to_point_set(brs: ByteRangeSet) -> set[int]:
    out = set()
    for s, e in brs:
        out.update(range(s, e))
    return out


@given(ranges_strategy)
def test_canonical_form(ranges):
    """Stored ranges are sorted, non-overlapping, non-adjacent, non-empty."""
    s = ByteRangeSet(ranges)
    stored = s.ranges
    for (a1, b1), (a2, b2) in zip(stored, stored[1:]):
        assert b1 < a2  # strictly separated
    assert all(a < b for a, b in stored)


@given(ranges_strategy)
def test_total_bytes_matches_point_count(ranges):
    s = ByteRangeSet(ranges)
    assert s.total_bytes() == len(to_point_set(s))


@given(ranges_strategy, st.integers(0, 12_000))
def test_complement_is_true_complement(ranges, size):
    s = ByteRangeSet(ranges)
    comp = s.complement(size)
    points = to_point_set(s)
    comp_points = to_point_set(comp)
    universe = set(range(size))
    assert comp_points == universe - points
    # union covers [0, size)
    assert (points | comp_points) >= universe


@given(ranges_strategy, st.integers(0, 12_000))
def test_complement_involution(ranges, size):
    """complement(complement(s)) clipped to size == s clipped to size."""
    s = ByteRangeSet(ranges)
    double = s.complement(size).complement(size)
    assert double == s.intersect(0, size)


@given(ranges_strategy, ranges_strategy)
def test_union_commutative_and_pointwise(r1, r2):
    a, b = ByteRangeSet(r1), ByteRangeSet(r2)
    assert a.union(b) == b.union(a)
    assert to_point_set(a.union(b)) == to_point_set(a) | to_point_set(b)


@given(ranges_strategy)
def test_union_idempotent(ranges):
    s = ByteRangeSet(ranges)
    assert s.union(s) == s


@given(ranges_strategy, st.integers(0, 10_000), st.integers(0, 10_000))
def test_intersect_pointwise(ranges, a, b):
    lo, hi = min(a, b), max(a, b)
    s = ByteRangeSet(ranges)
    assert to_point_set(s.intersect(lo, hi)) == to_point_set(s) & set(range(lo, hi))


@given(ranges_strategy)
@settings(max_examples=50)
def test_insertion_order_irrelevant(ranges):
    forward = ByteRangeSet(ranges)
    backward = ByteRangeSet(list(reversed(ranges)))
    assert forward == backward


@given(ranges_strategy, st.integers(0, 12_000))
def test_marker_wire_format_round_trip(ranges, size):
    from repro.gridftp.restart import format_restart_marker, parse_restart_marker

    s = ByteRangeSet(ranges)
    if s.is_empty():
        return
    assert parse_restart_marker(format_restart_marker(s)) == s
