"""Property tests for fault-plan query consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import FaultPlan

_fault = st.tuples(
    st.sampled_from(["l1", "l2", "l3"]),
    st.floats(0, 1000, allow_nan=False),
    st.floats(0.001, 500, allow_nan=False),
)
_faults = st.lists(_fault, max_size=10)


def build(faults):
    plan = FaultPlan()
    for link, at, dur in faults:
        plan.cut_link(link, at=at, duration=dur)
    return plan


@given(_faults, st.floats(0, 2000, allow_nan=False))
@settings(max_examples=100)
def test_link_down_matches_interval_membership(faults, t):
    plan = build(faults)
    for link in ("l1", "l2", "l3"):
        expected = any(l == link and at <= t < at + dur for l, at, dur in faults)
        assert plan.link_down(link, t) == expected


@given(_faults, st.floats(0, 2000), st.floats(0, 2000))
@settings(max_examples=100)
def test_first_interruption_is_earliest_down_moment(faults, a, b):
    start, end = min(a, b), max(a, b)
    plan = build(faults)
    links = ["l1", "l2", "l3"]
    hit = plan.first_interruption(links, [], start, end)
    if hit is None:
        # spot-check: no sampled moment in the (non-empty) window is down
        if end > start:
            for i in range(20):
                t = start + (end - start) * i / 20
                assert not any(plan.link_down(l, t) for l in links)
    else:
        assert start <= hit < end or hit == start
        # the plan really is down at the reported instant
        assert any(plan.link_down(l, hit) for l in links)
        # and was up just before (within the window)
        eps = 1e-6
        if hit - eps > start:
            assert not any(plan.link_down(l, hit - eps) for l in links)


@given(_faults, st.floats(0, 2000, allow_nan=False))
@settings(max_examples=100)
def test_next_clear_time_is_clear_and_minimal(faults, t):
    plan = build(faults)
    links = ["l1", "l2", "l3"]
    clear = plan.next_clear_time(links, [], t)
    assert clear >= t
    assert not any(plan.link_down(l, clear) for l in links)
    # if it moved, the starting instant was genuinely down
    if clear > t:
        assert any(plan.link_down(l, t) for l in links)
