"""Differential property: session caches change no virtual outcome.

The GSI resumption cache, the control-channel pool, and the DCAU /
verify memos are wall-clock optimizations.  This test drives *twin
worlds* — identical seed, identical randomized op sequence — once with
every cache enabled and once under ``REPRO_NO_SESSION_CACHE=1``, and
requires bit-identical virtual outcomes: the clock, the mapped account,
and every byte a transfer moved.  Any divergence means a cache replayed
state the full pipeline would not have produced.
"""

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gsi.session_cache import reset_default_session_cache
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.util.units import gbps
from tests.conftest import make_conventional_site

# op alphabet: (connect pooled / connect fresh), transfer over the live
# session, advance virtual time, release the session
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("connect"), st.booleans()),
        st.tuples(st.just("get"), st.integers(1, 4)),
        st.tuples(st.just("advance"), st.floats(0.5, 600.0,
                                                allow_nan=False,
                                                allow_infinity=False)),
        st.tuples(st.just("release")),
    ),
    min_size=1,
    max_size=12,
)


def _run(seed: int, ops, *, cached: bool):
    """One world, one op sequence; returns its observable outcome."""
    if cached:
        os.environ.pop("REPRO_NO_SESSION_CACHE", None)
    else:
        os.environ["REPRO_NO_SESSION_CACHE"] = "1"
    reset_default_session_cache()
    try:
        world = World(seed=seed)
        net = world.network
        net.add_host("server1", nic_bps=gbps(10))
        net.add_host("laptop", nic_bps=gbps(1))
        net.add_link("server1", "laptop", gbps(1), 0.01, loss=0.0)
        site = make_conventional_site(world, "Lab", "server1")
        site.add_user(world, "alice")
        uid = site.accounts.get("alice").uid
        for i in range(4):
            site.storage.write_file(
                f"/home/alice/f{i}.dat", LiteralData(b"d" * (4096 * (i + 1))),
                uid=uid)
        client = site.client_for(world, "alice", "laptop")

        session = None
        mapped: list[str] = []
        moved: list[int] = []
        for op in ops:
            kind = op[0]
            if kind == "connect":
                if session is not None:
                    session.release()
                session = client.connect(site.server, pooled=op[1])
                mapped.append(session.logged_in_as)
            elif kind == "get" and session is not None:
                n = op[1]
                result = session.get(f"/home/alice/f{n - 1}.dat", "/tmp/out.dat")
                moved.append(result.nbytes)
            elif kind == "advance":
                world.clock.advance(op[1])
            elif kind == "release" and session is not None:
                session.release()
                session = None
        return world.now, tuple(mapped), tuple(moved)
    finally:
        os.environ.pop("REPRO_NO_SESSION_CACHE", None)
        reset_default_session_cache()


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 2**16), _ops)
def test_cached_and_uncached_worlds_agree(seed, ops):
    """Cache-on and cache-off twins reach bit-identical outcomes."""
    assert _run(seed, ops, cached=True) == _run(seed, ops, cached=False)
