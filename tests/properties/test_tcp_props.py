"""Property tests: monotonicity of the network performance models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.tcp import TCPModel, tcp_aggregate_rate, tcp_stream_rate
from repro.net.topology import PathStats
from repro.net.udt import UDTModel
from repro.util.units import KB


def make_path(rtt, bw, loss):
    return PathStats(src="a", dst="b", rtt_s=rtt, bottleneck_bps=bw, loss=loss,
                     link_ids=("l",), hosts=("a", "b"))


_rtt = st.floats(1e-4, 1.0, allow_nan=False)
_bw = st.floats(1e6, 1e11, allow_nan=False)
_loss = st.floats(0.0, 0.05, allow_nan=False)
_window = st.integers(8 * KB, 64 * 1024 * KB)
_streams = st.integers(1, 64)


@given(_rtt, _bw, _loss, _window, _streams)
@settings(max_examples=100)
def test_rate_positive_and_bounded(rtt, bw, loss, window, streams):
    path = make_path(rtt, bw, loss)
    rate = tcp_aggregate_rate(path, streams, TCPModel(window_bytes=window))
    assert 0 < rate <= bw


@given(_rtt, _bw, _loss, _window, _streams)
@settings(max_examples=100)
def test_more_streams_never_slower(rtt, bw, loss, window, streams):
    path = make_path(rtt, bw, loss)
    model = TCPModel(window_bytes=window)
    assert tcp_aggregate_rate(path, streams + 1, model) >= tcp_aggregate_rate(
        path, streams, model
    )


@given(_rtt, _bw, _loss, _window)
@settings(max_examples=100)
def test_bigger_window_never_slower(rtt, bw, loss, window):
    path = make_path(rtt, bw, loss)
    small = tcp_stream_rate(path, TCPModel(window_bytes=window))
    big = tcp_stream_rate(path, TCPModel(window_bytes=window * 2))
    assert big >= small


@given(_rtt, _bw, _window, st.floats(0.0, 0.02), st.floats(0.0, 0.02))
@settings(max_examples=100)
def test_more_loss_never_faster(rtt, bw, window, loss1, loss2):
    lo, hi = min(loss1, loss2), max(loss1, loss2)
    model = TCPModel(window_bytes=window)
    assert tcp_stream_rate(make_path(rtt, bw, hi), model) <= tcp_stream_rate(
        make_path(rtt, bw, lo), model
    )


@given(_rtt, _bw, _window, st.floats(0.0, 0.02))
@settings(max_examples=100)
def test_longer_rtt_never_faster(rtt, bw, window, loss):
    model = TCPModel(window_bytes=window)
    assert tcp_stream_rate(make_path(rtt * 2, bw, loss), model) <= tcp_stream_rate(
        make_path(rtt, bw, loss), model
    )


@given(_rtt, _bw, _loss)
@settings(max_examples=100)
def test_udt_rate_positive_and_bounded(rtt, bw, loss):
    rate = UDTModel().stream_rate(make_path(rtt, bw, loss))
    assert 0 < rate <= bw
