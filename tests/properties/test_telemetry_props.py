"""Property tests for telemetry serialization invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.telemetry.metrics import MetricsRegistry
from repro.util.logging import Event, EventLog

# JSON-safe field values: what simulation code actually puts on events
field_values = st.one_of(
    st.integers(-(2**50), 2**50),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=40),
    st.none(),
)

events = st.builds(
    Event,
    time=st.floats(0, 1e9, allow_nan=False),
    category=st.text(
        alphabet=st.characters(whitelist_categories=("Ll",), whitelist_characters="."),
        min_size=1, max_size=30,
    ),
    message=st.text(max_size=60),
    fields=st.dictionaries(
        st.text(min_size=1, max_size=20), field_values, max_size=5
    ),
    trace_id=st.one_of(st.none(), st.from_regex(r"trace-[0-9]{4}", fullmatch=True)),
    span_id=st.one_of(st.none(), st.from_regex(r"span-[0-9]{5}", fullmatch=True)),
)


@given(ev=events)
def test_event_dict_round_trip(ev):
    assert Event.from_dict(ev.to_dict()) == ev


@given(evs=st.lists(events, max_size=20))
def test_event_log_jsonl_round_trip(evs):
    log = EventLog()
    for ev in evs:
        log.emit(ev.time, ev.category, ev.message,
                 trace_id=ev.trace_id, span_id=ev.span_id, **ev.fields)
    assert EventLog.from_jsonl(log.to_jsonl()) == list(log)


@given(
    values=st.lists(st.floats(0, 1e6, allow_nan=False), max_size=50),
    buckets=st.lists(
        st.floats(0.001, 1e5, allow_nan=False), min_size=1, max_size=8, unique=True
    ),
)
def test_histogram_buckets_are_cumulative_and_complete(values, buckets):
    registry = MetricsRegistry()
    h = registry.histogram("x_seconds", buckets=tuple(buckets))
    for v in values:
        h.observe(v)
    counts = h.bucket_counts()
    # cumulative: counts never decrease as `le` grows, and +Inf sees all
    ordered = [counts[b] for b in sorted(buckets)] + [counts[float("inf")]]
    assert ordered == sorted(ordered)
    assert counts[float("inf")] == len(values)
    # every observation lands in the first bucket whose bound covers it
    for b in sorted(buckets):
        assert counts[b] == sum(1 for v in values if v <= b)
