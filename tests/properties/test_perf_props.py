"""Property tests for performance markers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.perf import PerfMarker, progress_markers


@given(
    ts=st.floats(0, 1e9, allow_nan=False),
    idx=st.integers(0, 63),
    count=st.integers(1, 64),
    nbytes=st.integers(0, 2**50),
)
def test_marker_format_parse_round_trip(ts, idx, count, nbytes):
    m = PerfMarker(timestamp=round(ts, 1), stripe_index=idx,
                   stripe_count=count, bytes_transferred=nbytes)
    assert PerfMarker.parse(m.format()) == m


@given(
    ts=st.floats(0, 1e9, allow_nan=False),
    idx=st.integers(0, 63),
    count=st.integers(1, 64),
    nbytes=st.integers(0, 2**50),
)
def test_marker_parse_format_is_idempotent(ts, idx, count, nbytes):
    """format ∘ parse is the identity on canonical wire text."""
    wire = PerfMarker(timestamp=round(ts, 1), stripe_index=idx,
                      stripe_count=count, bytes_transferred=nbytes).format()
    assert PerfMarker.parse(wire).format() == wire


@given(
    duration=st.floats(0.1, 10_000, allow_nan=False),
    total=st.integers(1, 2**40),
    stripes=st.integers(1, 8),
    interval=st.floats(0.5, 100, allow_nan=False),
)
@settings(max_examples=80)
def test_progress_invariants(duration, total, stripes, interval):
    markers = progress_markers(0.0, duration, total, stripes, interval)
    # timestamps strictly inside the transfer window
    assert all(0 < m.timestamp < duration for m in markers)
    # per-timestamp stripe sums never exceed the total and are monotone
    sums: dict[float, int] = {}
    for m in markers:
        sums[m.timestamp] = sums.get(m.timestamp, 0) + m.bytes_transferred
        assert m.stripe_count == stripes
        assert 0 <= m.stripe_index < stripes
    times = sorted(sums)
    values = [sums[t] for t in times]
    assert all(v <= total for v in values)
    assert values == sorted(values)
