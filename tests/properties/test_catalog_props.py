"""Property: random interleavings of claim / crash / lapse / complete /
release over the archive catalog never lose, duplicate, or prematurely
delete a bundle.

The model mirrors the pipeline's discipline: "crash" forgets a live
lease without releasing it (the claimant died mid-claim); "lapse"
advances virtual time past expiry and sweeps; "complete" walks a held
bundle one legal step, marking replicas verified before ``completed``
and asserting the deleter's quorum guard before ``source-deleted``.
After every operation the conservation invariant must hold: every
bundle is in exactly one place — a status queue, the lease table, or a
terminal status.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.archive.catalog import (
    CLAIMABLE,
    TERMINAL,
    Bundle,
    BundleStatus,
    Catalog,
    Replica,
)
from repro.errors import LeaseLostError
from repro.sim.world import World

QUORUM = 2

#: the happy-path step a holder of each claimable status commits
_NEXT = {
    BundleStatus.SPECIFIED: BundleStatus.CREATED,
    BundleStatus.STAGED: BundleStatus.TRANSFERRING,
    BundleStatus.TRANSFERRING: BundleStatus.VERIFYING,
    BundleStatus.VERIFYING: BundleStatus.COMPLETED,
    BundleStatus.COMPLETED: BundleStatus.SOURCE_DELETED,
}

OPS = st.lists(
    st.sampled_from(["claim", "crash", "lapse", "complete", "release"]),
    max_size=80,
)


def _build(nbundles):
    world = World(seed=3)
    catalog = Catalog(world, lease_s=10.0, max_claim_attempts=10_000)
    bundles = []
    for i in range(nbundles):
        bundle = Bundle(
            bundle_id=f"b{i}", request_id="req", files=(f"/f{i}",), size=1,
            replicas=[Replica("site-1", f"/a{i}"), Replica("site-2", f"/a{i}")],
        )
        catalog.add_bundle(bundle, actor="prop")
        catalog.specify(bundle, actor="prop")
        bundles.append(bundle)
    return world, catalog, bundles


def _assert_conserved(catalog, bundles):
    """Each bundle is in exactly one queue, leased, or terminal."""
    queued = [bid for status in CLAIMABLE for bid in catalog._ready[status]]
    leased = [lease.task.task_id for lease in catalog.leases.outstanding()]
    terminal = [b.bundle_id for b in bundles if b.status in TERMINAL]
    placed = sorted(queued + leased + terminal)
    assert placed == sorted(b.bundle_id for b in bundles), (
        f"conservation violated: queued={queued} leased={leased} "
        f"terminal={terminal}")
    # queue membership matches status
    for status in CLAIMABLE:
        for bid in catalog._ready[status]:
            assert catalog.bundle(bid).status is status


@settings(max_examples=120, deadline=None)
@given(ops=OPS, nbundles=st.integers(min_value=1, max_value=4))
def test_interleavings_never_lose_dup_or_premature_delete(ops, nbundles):
    world, catalog, bundles = _build(nbundles)
    held = []  # (bundle, lease) pairs whose claimant is still alive

    for op in ops:
        if op == "claim":
            for status in CLAIMABLE:
                got = catalog.claim_bundle(status, "prop")
                if got is not None:
                    held.append(got)
                    break
        elif op == "crash":
            if held:
                # claimant dies: the lease is forgotten, never released
                held.pop(0)
        elif op == "lapse":
            world.advance(catalog.lease_s + 1.0)
            catalog.requeue_lapsed()
            # every held lease lapsed with the clock jump
            held = [(b, lease) for b, lease in held if not lease.released]
        elif op == "complete":
            if held:
                bundle, lease = held.pop(0)
                nxt = _NEXT[bundle.status]
                if nxt is BundleStatus.COMPLETED:
                    for replica in bundle.replicas:
                        replica.verified = True
                if nxt is BundleStatus.SOURCE_DELETED:
                    # the deleter's guard: never delete below quorum
                    assert bundle.verified_replicas() >= QUORUM
                try:
                    if nxt is BundleStatus.CREATED:
                        catalog.commit(lease, nxt, actor="prop", release=False)
                        catalog.commit(lease, BundleStatus.STAGED, actor="prop")
                    else:
                        catalog.commit(lease, nxt, actor="prop")
                except LeaseLostError:
                    pass  # lease lapsed under us: the row requeued, no step
        elif op == "release":
            if held:
                _, lease = held.pop(0)
                try:
                    catalog.release_claim(lease, actor="prop")
                except LeaseLostError:
                    pass
        _assert_conserved(catalog, bundles)

    # drain: lapse everything and drive every bundle home
    held.clear()
    world.advance(catalog.lease_s + 1.0)
    catalog.requeue_lapsed()
    for _ in range(200):
        progressed = False
        for status in CLAIMABLE:
            got = catalog.claim_bundle(status, "prop")
            if got is None:
                continue
            bundle, lease = got
            nxt = _NEXT[status]
            if nxt is BundleStatus.COMPLETED:
                for replica in bundle.replicas:
                    replica.verified = True
            if nxt is BundleStatus.SOURCE_DELETED:
                assert bundle.verified_replicas() >= QUORUM
            if nxt is BundleStatus.CREATED:
                catalog.commit(lease, nxt, actor="prop", release=False)
                catalog.commit(lease, BundleStatus.STAGED, actor="prop")
            else:
                catalog.commit(lease, nxt, actor="prop")
            progressed = True
        _assert_conserved(catalog, bundles)
        if not progressed:
            break
    # no bundle was lost: every single one reached source-deleted
    assert all(b.status is BundleStatus.SOURCE_DELETED for b in bundles)
    assert catalog.done()
    # and no bundle was archived twice: one source-deleted transition each
    deletes = [row for row in catalog.history
               if row[2] == "bundle" and row[5] == "source-deleted"]
    assert len(deletes) == len(bundles)


@settings(max_examples=60, deadline=None)
@given(ops=OPS)
def test_claim_exclusivity_under_interleaving(ops):
    """A bundle with a live lease can never be claimed again."""
    world, catalog, bundles = _build(1)
    bundle = bundles[0]
    lease = None
    for op in ops:
        if op == "claim":
            got = catalog.claim_bundle(BundleStatus.SPECIFIED, "a")
            if got is not None:
                assert lease is None or lease.released or lease.expired(world.now)
                lease = got[1]
            elif lease is not None and not lease.expired(world.now) \
                    and not lease.released:
                # live lease: the double grant must be impossible
                assert not any(
                    bid == bundle.bundle_id
                    for status in CLAIMABLE
                    for bid in catalog._ready[status])
        elif op == "lapse":
            world.advance(catalog.lease_s + 1.0)
            catalog.requeue_lapsed()
        elif op == "release":
            if lease is not None and not lease.released:
                try:
                    catalog.release_claim(lease, actor="a")
                except LeaseLostError:
                    pass
