"""Property tests for the fleet scheduler.

Three families, matching the subsystem's core claims:

* fair-share convergence — under continuous backlog, per-user byte
  shares track any positive weight vector;
* lease exclusivity — across arbitrary crash campaigns, no task is ever
  live on two workers, and every submitted task executes at most once;
* requeue transparency — a queued run through crashing workers delivers
  results byte-for-byte identical to an unqueued run of the same
  payloads under the same seed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    FairShareQueue,
    FleetScheduler,
    ScheduledTask,
    SchedulerConfig,
)
from repro.sim.faults import ChaosConfig
from repro.sim.world import World


def _task(user, size, task_id, execute=lambda: None, measure=None):
    return ScheduledTask(
        task_id=task_id, user=user, src_endpoint="ep-a", dst_endpoint="ep-b",
        size_hint=size, execute=execute, measure=measure,
    )


# -- fair-share convergence ------------------------------------------------

_weight_vectors = st.lists(
    st.floats(0.1, 16.0, allow_nan=False, allow_infinity=False),
    min_size=2, max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(_weight_vectors, st.integers(200, 2000), st.integers(5, 40))
def test_byte_shares_converge_to_any_weight_vector(weights, size, dispatches_per_user):
    """Under saturation, delivered-byte shares approach weight shares."""
    q = FairShareQueue()
    users = [f"u{i}" for i in range(len(weights))]
    for user, w in zip(users, weights):
        q.set_weight(user, w)
    # continuous backlog: everyone always has equal-sized work queued
    backlog = dispatches_per_user * len(users) * 4
    for n in range(backlog):
        for user in users:
            q.push(_task(user, size, f"{user}-{n}"))
    total_dispatches = dispatches_per_user * len(users) * 2
    for _ in range(total_dispatches):
        task = q.pop_next()
        assert task is not None
        q.charge(task.user, task.size_hint)
    delivered = q.delivered_bytes()
    total = sum(delivered.values())
    wsum = sum(weights)
    # start-time fair queuing's service lag is bounded by one task
    # quantum per flow, so shares deviate by at most n_users quanta —
    # a bound that tightens as the dispatch horizon grows.
    bound = len(users) * size / total
    for user, w in zip(users, weights):
        share = delivered.get(user, 0) / total
        assert abs(share - w / wsum) <= bound * (1 + 1e-9) + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(2, 40))
def test_dispatch_order_is_deterministic(seed, n):
    """Same submissions -> same dispatch order, independent of anything
    but the queue's own inputs (the rng seed is a red herring)."""
    orders = []
    for _ in range(2):
        q = FairShareQueue()
        for i in range(n):
            q.push(_task(f"u{i % 3}", 100 + (i * seed) % 977, f"t{i}"))
        order = []
        while True:
            task = q.pop_next()
            if task is None:
                break
            q.charge(task.user, task.size_hint)
            order.append(task.task_id)
        orders.append(order)
    assert orders[0] == orders[1]
    assert sorted(orders[0]) == sorted(f"t{i}" for i in range(n))


# -- lease exclusivity under chaos ----------------------------------------

@settings(max_examples=12, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.floats(20.0, 200.0),
    st.integers(6, 24),
)
def test_no_task_ever_runs_twice_or_on_two_workers(seed, crash_every, njobs):
    """Arbitrary crash campaigns never duplicate or lose a task."""
    world = World(seed=seed)
    world.chaos.configure(ChaosConfig(
        host_crash_every_s=crash_every,
        host_downtime_s=(10.0, 40.0),
        horizon_s=7 * 24 * 3600.0,
    ))
    world.chaos.arm(hosts=["wh-0", "wh-1"])
    sched = FleetScheduler(world, SchedulerConfig(
        workers=2, worker_hosts=("wh-0", "wh-1"),
        lease_s=30.0, heartbeat_s=6.0, max_task_attempts=100,
    ))
    executions: list[str] = []
    live = set()

    def payload(task_id):
        def run():
            # lease exclusivity: nothing else is mid-execution right now
            assert not live, f"{task_id} overlaps {live}"
            live.add(task_id)
            executions.append(task_id)
            world.advance(15.0)
            live.discard(task_id)
            return 1000

        return run

    for i in range(njobs):
        sched.submit(_task(f"u{i % 4}", 1000, f"t{i}", execute=payload(f"t{i}"),
                           measure=lambda r: r))
    serviced = sched.run_until_idle(max_ticks=100_000)
    assert serviced == njobs
    # exactly-once: every task executed once, none twice, none lost
    assert sorted(executions) == sorted(f"t{i}" for i in range(njobs))


# -- requeue transparency ---------------------------------------------------

@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(4, 12))
def test_queued_run_matches_unqueued_results_bytewise(seed, njobs):
    """Crashing workers change *when* payloads run, never *what* they
    compute: results equal a plain unqueued execution of the same
    deterministic payloads."""

    def payloads(world, results):
        # each payload derives its output from its own named rng stream,
        # so the value depends only on the world seed — never on *when*
        # the scheduler happens to run it or how often it was requeued.
        out = []
        for i in range(njobs):
            def run(i=i):
                rng = world.rng.python(f"payload-{i}")
                world.advance(5.0)
                results[f"t{i}"] = rng.randrange(2**63)
                return 1000

            out.append(run)
        return out

    # unqueued baseline: call the payloads directly, in order
    world_a = World(seed=seed)
    baseline: dict[str, int] = {}
    for run in payloads(world_a, baseline):
        run()

    # queued run with a crashy single-worker fleet
    world_b = World(seed=seed)
    world_b.chaos.configure(ChaosConfig(
        host_crash_every_s=40.0, host_downtime_s=(5.0, 20.0),
        horizon_s=30 * 24 * 3600.0,
    ))
    world_b.chaos.arm(hosts=["wh-0"])
    sched = FleetScheduler(world_b, SchedulerConfig(
        workers=1, worker_hosts=("wh-0",),
        lease_s=25.0, heartbeat_s=5.0, max_task_attempts=1000,
    ))
    queued: dict[str, int] = {}
    tasks = [
        sched.submit(_task("solo", 100, f"t{i}", execute=run))
        for i, run in enumerate(payloads(world_b, queued))
    ]
    assert sched.run_until_idle(max_ticks=1_000_000) == njobs
    assert all(t.state.value == "done" for t in tasks)
    assert queued == baseline
