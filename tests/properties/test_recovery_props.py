"""Property tests for the recovery layer.

Three families:

* the backoff schedule is monotone non-decreasing and saturates at the
  cap, for every legal policy;
* jittered schedules are a pure function of the rng seed;
* chaos integrity — a transfer driven through faults by the recovery
  engine delivers bytes identical to the fault-free run, for arbitrary
  fault schedules and marker-corruption rates.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.recovery import RetryPolicy
from repro.sim.faults import ChaosConfig
from repro.storage.data import SyntheticData
from repro.util.units import GB, gbps, mbps

_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(1, 12),
    initial_backoff_s=st.floats(0.0, 30.0, allow_nan=False),
    multiplier=st.floats(1.0, 5.0, allow_nan=False),
    jitter=st.floats(0.0, 0.99, exclude_max=True),
).map(lambda p: p.with_(max_backoff_s=max(p.max_backoff_s, p.initial_backoff_s)))


@given(_policies)
def test_base_backoff_monotone_to_cap(policy):
    seq = [policy.base_backoff_s(n) for n in range(1, policy.max_attempts + 1)]
    assert all(a <= b for a, b in zip(seq, seq[1:]))
    assert all(s <= policy.max_backoff_s for s in seq)
    # once the cap is reached it stays reached
    capped = [s == policy.max_backoff_s for s in seq]
    if any(capped):
        first = capped.index(True)
        assert all(capped[first:])


@given(_policies, st.integers(0, 2**32 - 1))
def test_jittered_schedule_deterministic_per_seed(policy, seed):
    a = policy.schedule(random.Random(seed))
    b = policy.schedule(random.Random(seed))
    assert a == b
    # and jitter only ever adds, bounded by the jitter fraction
    for n, delay in enumerate(a, start=1):
        base = policy.base_backoff_s(n)
        assert base <= delay <= base * (1.0 + policy.jitter) + 1e-9


@given(_policies.filter(lambda p: p.multiplier >= 1.0 + p.jitter),
       st.integers(0, 2**32 - 1))
def test_jittered_schedule_monotone_when_growth_dominates(policy, seed):
    """With multiplier >= 1+jitter the jittered sequence cannot shrink
    below the cap region (additive jitter never outruns the growth)."""
    seq = policy.schedule(random.Random(seed))
    for a, b, n in zip(seq, seq[1:], range(1, len(seq))):
        if policy.base_backoff_s(n + 1) < policy.max_backoff_s:
            assert b >= a - 1e-9


def _fresh_duo(seed):
    """A minimal two-site topology for transfer properties."""
    from repro.sim.world import World
    from tests.conftest import make_conventional_site

    world = World(seed=seed)
    net = world.network
    net.add_host("dtn-a", nic_bps=gbps(10))
    net.add_host("dtn-b", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.04)
    net.add_link("laptop", "dtn-a", mbps(50), 0.02)
    net.add_link("laptop", "dtn-b", mbps(50), 0.02)
    site_a = make_conventional_site(world, "SiteA", "dtn-a")
    site_b = make_conventional_site(world, "SiteB", "dtn-b")
    site_a.add_user(world, "alice")
    site_b.add_user(world, "asmith")
    return world, site_a, site_b, inter.link_id


@settings(max_examples=6, deadline=None)
@given(
    st.integers(0, 2**16),
    st.lists(
        st.tuples(st.floats(1.0, 40.0, allow_nan=False),
                  st.floats(0.5, 20.0, allow_nan=False)),
        max_size=4,
    ),
    st.floats(0.0, 0.6, allow_nan=False),
)
def test_chaos_integrity_recovered_bytes_identical(seed, faults, corruption):
    """Whatever the fault schedule, recovery delivers the exact file."""
    from repro.gridftp.third_party import third_party_with_restart
    from repro.gridftp.transfer import TransferOptions

    world, site_a, site_b, link = _fresh_duo(seed)
    world.chaos.configure(ChaosConfig(marker_corruption_prob=corruption))
    data = SyntheticData(seed=seed + 1, length=2 * GB)
    uid = site_a.accounts.get("alice").uid
    site_a.storage.write_file("/home/alice/f.bin", data, uid=uid)
    for at, duration in faults:
        world.faults.cut_link(link, at=at, duration=duration)

    client_a = site_a.client_for(world, "alice", "laptop")
    client_b = site_b.client_for(world, "asmith", "laptop")
    sa = client_a.connect(site_a.server)
    sb = client_b.connect(site_b.server)
    res, attempts = third_party_with_restart(
        sa, "/home/alice/f.bin", sb, "/home/asmith/f.bin",
        options=TransferOptions(parallelism=4),
        use_dcsc=client_a.credential,
        max_attempts=8, retry_backoff_s=2.0,
    )
    assert res.verified
    assert attempts <= len(faults) + 1
    uid_b = site_b.accounts.get("asmith").uid
    stored = site_b.storage.open_read("/home/asmith/f.bin", uid_b)
    assert stored.fingerprint() == data.fingerprint()
