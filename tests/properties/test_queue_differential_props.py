"""Differential property test: heap-indexed queue vs the linear-scan spec.

The heap-indexed :class:`FairShareQueue` exists only as a faster index
over exactly the dispatch order the retained
:class:`LinearScanFairShareQueue` scan defines.  This test drives both
implementations through identical random interleavings of every
key-changing operation — push, pop (with and without admissibility
filters), charge, requeue, set_weight — and requires the pop sequences
to match task-for-task.  Any divergence is a bug in the heap index,
never in the reference.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.queue import (
    FairShareQueue,
    LinearScanFairShareQueue,
    ScheduledTask,
)

_USERS = ("alice", "bob", "carol", "dave")


def _task(user: str, size: int, priority: int, task_id: str) -> ScheduledTask:
    return ScheduledTask(
        task_id=task_id, user=user, src_endpoint="ep-a", dst_endpoint="ep-b",
        size_hint=size, execute=lambda: None, priority=priority,
    )


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 3),
                  st.integers(1, 1 << 20), st.integers(0, 2)),
        st.tuples(st.just("pop")),
        # admissibility filter: a pure function of the task (size bound),
        # so both queues see the identical predicate
        st.tuples(st.just("pop_if"), st.integers(1, 1 << 20)),
        st.tuples(st.just("charge"), st.integers(0, 3), st.integers(0, 1 << 22)),
        st.tuples(st.just("requeue"), st.integers(0, 63)),
        st.tuples(st.just("weight"), st.integers(0, 3),
                  st.floats(0.125, 8.0, allow_nan=False, allow_infinity=False)),
    ),
    max_size=300,
)


def _pop_both(heap_q, ref_q, admissible=None):
    got = heap_q.pop_next(admissible)
    want = ref_q.pop_next(admissible)
    got_id = got.task_id if got is not None else None
    want_id = want.task_id if want is not None else None
    assert got_id == want_id
    return got, want


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_heap_index_matches_linear_scan_spec(ops):
    """Identical op interleavings produce identical pop sequences."""
    heap_q = FairShareQueue()
    ref_q = LinearScanFairShareQueue()
    claimed: list[tuple[ScheduledTask, ScheduledTask]] = []
    serial = 0

    for op in ops:
        kind = op[0]
        if kind == "push":
            _, ui, size, priority = op
            serial += 1
            task_id = f"t{serial:04d}"
            heap_q.push(_task(_USERS[ui], size, priority, task_id))
            ref_q.push(_task(_USERS[ui], size, priority, task_id))
        elif kind == "pop":
            got, want = _pop_both(heap_q, ref_q)
            if got is not None:
                claimed.append((got, want))
        elif kind == "pop_if":
            bound = op[1]
            got, want = _pop_both(
                heap_q, ref_q, admissible=lambda t: t.size_hint <= bound
            )
            if got is not None:
                claimed.append((got, want))
        elif kind == "charge":
            _, ui, nbytes = op
            heap_q.charge(_USERS[ui], nbytes)
            ref_q.charge(_USERS[ui], nbytes)
        elif kind == "requeue":
            if claimed:
                got, want = claimed.pop(op[1] % len(claimed))
                heap_q.requeue(got)
                ref_q.requeue(want)
        elif kind == "weight":
            _, ui, w = op
            heap_q.set_weight(_USERS[ui], w)
            ref_q.set_weight(_USERS[ui], w)
        assert len(heap_q) == len(ref_q)

    # drain to exhaustion: the full remaining dispatch order must agree
    while True:
        got, _ = _pop_both(heap_q, ref_q)
        if got is None:
            break
    assert len(heap_q) == len(ref_q) == 0
