"""Property tests: range-arithmetic planning == the old block-by-block path.

PR 3 replaced the transfer engine's eager ``list(iter_blocks(...))`` +
per-block writer with :class:`ModeEPlan` range arithmetic and bulk sink
writes.  These tests pin the equivalence: for any file size, block size,
restart set and cut point, the new path must leave the sink in the
byte-identical state the old loop did — same received ranges (restart
markers), same promoted bytes, same synthetic-source bookkeeping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.mode_e import ModeEPlan, iter_blocks
from repro.gridftp.transfer import TransferEngine
from repro.storage.data import LiteralData, PartialData, SyntheticData
from repro.storage.dsi import WriteSink
from repro.util.ranges import ByteRangeSet


class _NullBackend:
    """A sink backend that just remembers what was committed."""

    def __init__(self):
        self.committed = None
        self.partial = None

    def commit_file(self, path, uid, data):
        self.committed = data

    def commit_partial(self, path, uid, partial):
        self.partial = partial


def _sink(expected_size: int) -> WriteSink:
    return WriteSink(
        backend=_NullBackend(),
        path="/prop/file.bin",
        uid=0,
        expected_size=expected_size,
        partial=PartialData(expected_size=expected_size),
    )


def _old_write(sink, data, block_size, needed, limit):
    """The pre-PR ``_write_blocks`` loop, verbatim semantics: whole
    blocks in plan order, stop at the first block that doesn't fit."""
    spent = 0
    for block in iter_blocks(data, block_size, needed):
        if limit is not None and spent + block.size > limit:
            return
        if block.synthetic is not None:
            sink.write_synthetic_block(block.offset, block.size, block.synthetic)
        else:
            sink.write_block(block.offset, block.payload or b"")
        spent += block.size


def _new_write(sink, data, block_size, needed, limit):
    plan = ModeEPlan.plan(data.size, block_size, needed)
    TransferEngine._write_ranges(sink, data, plan, limit=limit)


@st.composite
def _scenario(draw):
    total = draw(st.integers(0, 8_000))
    block_size = draw(st.integers(1, 900))
    # optional restart set: ranges must start inside the file
    needed = None
    if total > 0 and draw(st.booleans()):
        needed = ByteRangeSet()
        for _ in range(draw(st.integers(1, 4))):
            start = draw(st.integers(0, total - 1))
            end = draw(st.integers(start + 1, total + 200))  # may overhang EOF
            needed.add(start, end)
    # optional byte budget, biased to land mid-block sometimes
    limit = None
    if draw(st.booleans()):
        limit = draw(st.integers(0, total + block_size))
    return total, block_size, needed, limit


@given(scenario=_scenario(), payload_seed=st.integers(0, 2**32 - 1))
@settings(max_examples=120)
def test_literal_delivery_is_byte_identical(scenario, payload_seed):
    total, block_size, needed, limit = scenario
    import random

    data = LiteralData(random.Random(payload_seed).randbytes(total))
    old_sink, new_sink = _sink(total), _sink(total)
    _old_write(old_sink, data, block_size, needed, limit)
    _new_write(new_sink, data, block_size, needed, limit)
    assert new_sink.received.ranges == old_sink.received.ranges
    # the actual stored bytes agree fragment-for-fragment
    for start, end in old_sink.received.ranges:
        assert (
            new_sink._partial.read(start, end - start)
            == old_sink._partial.read(start, end - start)
        )


@given(scenario=_scenario())
@settings(max_examples=120)
def test_synthetic_delivery_is_state_identical(scenario):
    total, block_size, needed, limit = scenario
    data = SyntheticData(seed=1234, length=total)
    old_sink, new_sink = _sink(total), _sink(total)
    _old_write(old_sink, data, block_size, needed, limit)
    _new_write(new_sink, data, block_size, needed, limit)
    assert new_sink.received.ranges == old_sink.received.ranges
    old_src = old_sink._partial.synthetic_source
    new_src = new_sink._partial.synthetic_source
    assert (old_src is None) == (new_src is None)
    if old_src is not None:
        assert new_src.seed == old_src.seed


@given(scenario=_scenario())
@settings(max_examples=120)
def test_delivered_prefix_matches_block_budget_loop(scenario):
    """Pure planning math: delivered_prefix == simulate the old budget loop."""
    total, block_size, needed, limit = scenario
    plan = ModeEPlan.plan(total, block_size, needed)
    reference = ByteRangeSet()
    spent = 0
    stop = False
    for start, end in plan.ranges:
        cursor = start
        while cursor < end:
            size = min(block_size, end - cursor)
            if limit is not None and spent + size > limit:
                stop = True
                break
            reference.add(cursor, cursor + size)
            spent += size
            cursor += size
        if stop:
            break
    assert plan.delivered_prefix(limit).ranges == reference.ranges


def test_zero_byte_file_still_records_synthetic_source():
    """The old path's bare EOF block carried the synthetic descriptor;
    the bulk path must preserve that or promotion loses its identity."""
    data = SyntheticData(seed=9, length=0)
    old_sink, new_sink = _sink(0), _sink(0)
    _old_write(old_sink, data, 256, None, None)
    _new_write(new_sink, data, 256, None, None)
    assert old_sink._partial.synthetic_source is not None
    assert new_sink._partial.synthetic_source is not None
    assert old_sink.close(complete=True).fingerprint() == new_sink.close(
        complete=True
    ).fingerprint()


def test_mid_block_cut_delivers_strict_whole_block_prefix():
    # 10 blocks of 100 bytes; budget 350 -> exactly 3 whole blocks
    plan = ModeEPlan.plan(1000, 100)
    assert plan.delivered_prefix(350).ranges == [(0, 300)]
    # exact fit counts the block
    assert plan.delivered_prefix(400).ranges == [(0, 400)]
    # budget 0 delivers nothing
    assert plan.delivered_prefix(0).ranges == []
