"""Property tests: mode E framing reassembles exactly, for any plan."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.mode_e import Block, iter_blocks, plan_blocks, round_robin
from repro.storage.data import LiteralData
from repro.util.ranges import ByteRangeSet


@given(
    data=st.binary(min_size=0, max_size=5000),
    block_size=st.integers(1, 700),
)
def test_blocks_cover_file_exactly_once(data, block_size):
    content = LiteralData(data)
    blocks = list(iter_blocks(content, block_size))
    covered = ByteRangeSet()
    for b in blocks:
        if b.size:
            assert not covered.contains_point(b.offset)  # no double coverage
            covered.add(b.offset, b.offset + b.size)
    assert covered.covers(len(data))
    assert covered.total_bytes() == len(data)


@given(
    data=st.binary(min_size=1, max_size=5000),
    block_size=st.integers(1, 700),
    streams=st.integers(1, 9),
)
@settings(max_examples=60)
def test_parallel_reassembly_is_identity(data, block_size, streams):
    """Round-robin over any stream count, arrive in any per-lane order:
    the receiver reconstructs the original bytes."""
    content = LiteralData(data)
    blocks = list(iter_blocks(content, block_size))
    lanes = round_robin(blocks, streams)
    buf = bytearray(len(data))
    # interleave lanes the way concurrent streams would
    cursors = [0] * len(lanes)
    remaining = sum(len(l) for l in lanes)
    lane_idx = 0
    while remaining:
        lane = lanes[lane_idx % len(lanes)]
        if cursors[lane_idx % len(lanes)] < len(lane):
            b = lane[cursors[lane_idx % len(lanes)]]
            cursors[lane_idx % len(lanes)] += 1
            buf[b.offset : b.offset + b.size] = b.payload
            remaining -= 1
        lane_idx += 1
    assert bytes(buf) == data


@given(
    total=st.integers(0, 10_000),
    block_size=st.integers(1, 999),
)
def test_plan_blocks_partition(total, block_size):
    plan = plan_blocks(total, block_size)
    assert sum(size for _, size in plan) == total
    cursor = 0
    for offset, size in plan:
        assert offset == cursor
        assert 0 < size <= block_size
        cursor += size


@given(
    offset=st.integers(0, 2**60),
    size=st.integers(0, 2**60),
    eof=st.booleans(),
    eod=st.booleans(),
)
def test_header_round_trip(offset, size, eof, eod):
    b = Block(offset=offset, size=size, synthetic=None, payload=None, eof=eof, eod=eod)
    flags, parsed_size, parsed_offset = Block.parse_header(b.header_bytes())
    assert parsed_size == size
    assert parsed_offset == offset
    assert bool(flags & 0x40) == eof
    assert bool(flags & 0x08) == eod
