"""Scalar-vs-vectorized differential harness (Hypothesis).

The PR-5 pattern, applied to the vectorized core: every array-backed /
numpy hot path keeps its original scalar implementation as an executable
specification, and these properties drain randomized workloads through
both sides demanding *identical* results — firing order, observed clock,
plan geometry, delivered ranges.  The CI matrix runs this file twice,
with numpy present and with ``REPRO_NO_NUMPY=1``, so the pure-Python
fallback is held to the same spec as the accelerated path.

Covered pairs:

* :class:`repro.sim.events.Scheduler` (array-backed, run-batched) vs
  :class:`repro.sim.events.ScalarScheduler` (heap of dataclasses) —
  random schedules with same-timestamp collisions, cancellations,
  same-instant insertions from callbacks, and reentrant ``fire_due``.
* :func:`repro.gridftp.mode_e.plan_blocks` vs
  :func:`repro.gridftp.mode_e.plan_blocks_scalar` — random sizes, block
  sizes, and restart range sets.
* ``ModeEPlan._delivered_prefix_vector`` vs the scalar budget walk —
  random multi-range restart plans under random byte budgets.
"""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp.mode_e import ModeEPlan, plan_blocks, plan_blocks_scalar
from repro.util.ranges import ByteRangeSet
from repro.sim.clock import Clock
from repro.sim.events import ScalarScheduler, Scheduler
from repro.util.vector import HAS_NUMPY

# -- event engine ----------------------------------------------------------

#: a coarse delay grid so random schedules collide on timestamps — run
#: batching only engages on same-time groups, so collisions are the point
_DELAYS = st.sampled_from([0.0, 0.25, 0.25, 0.5, 0.5, 1.0, 1.0, 2.0, 3.0])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("at"), _DELAYS, st.integers(0, 5)),
        st.tuples(st.just("cancel"), st.integers(0, 63), st.just(0)),
        st.tuples(st.just("fire"), _DELAYS, st.just(0)),
    ),
    min_size=1,
    max_size=60,
)


class _Driver:
    """Replays one op program against one engine, recording every firing."""

    def __init__(self, engine_cls) -> None:
        self.clock = Clock()
        self.engine = engine_cls(self.clock)
        self.log: list[tuple[object, float]] = []
        self.handles: list = []
        self._keys = itertools.count()

    def _nested(self, key: int):
        def cb() -> None:
            self.log.append((("nested", key), self.clock.now))
        return cb

    def _callback(self, key: int, behavior: int):
        def cb() -> None:
            self.log.append((key, self.clock.now))
            if behavior == 1:
                # same-instant insertion: must fire after the current run
                self.handles.append(
                    self.engine.at(self.clock.now, self._nested(key)))
            elif behavior == 2:
                self.handles.append(
                    self.engine.after(0.5, self._nested(key)))
            elif behavior == 3 and self.handles:
                # cancel a deterministic victim — possibly an unfired
                # same-timestamp sibling of this very run
                self.handles[key % len(self.handles)].cancel()
            elif behavior == 4:
                # reentrant drain: advance mid-callback and fire again
                self.clock.advance(0.25)
                self.engine.fire_due()
        return cb

    def run(self, ops) -> None:
        for op, arg, behavior in ops:
            if op == "at":
                key = next(self._keys)
                self.handles.append(self.engine.at(
                    self.clock.now + arg, self._callback(key, behavior)))
            elif op == "cancel":
                next(self._keys)  # keep key streams aligned across engines
                if self.handles:
                    self.handles[int(arg) % len(self.handles)].cancel()
            else:  # fire
                next(self._keys)
                self.clock.advance(arg)
                self.engine.fire_due()
        # final drain: jump past everything still pending
        self.clock.advance(1e6)
        self.engine.fire_due()


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_event_engines_drain_identically(ops):
    vector = _Driver(Scheduler)
    scalar = _Driver(ScalarScheduler)
    vector.run(ops)
    scalar.run(ops)
    assert vector.log == scalar.log
    assert vector.engine.pending() == scalar.engine.pending()
    assert vector.engine.next_due == scalar.engine.next_due
    assert vector.clock.now == scalar.clock.now


@settings(max_examples=50, deadline=None)
@given(_OPS)
def test_batch_stats_account_for_every_firing(ops):
    d = _Driver(Scheduler)
    d.run(ops)
    stats = d.engine.stats
    assert stats.total_events == len(d.log)
    assert sum(stats.run_histogram().values()) == stats.runs


# -- mode-E block planning -------------------------------------------------

_SIZES = st.integers(min_value=0, max_value=4 << 20)
_BLOCKS = st.sampled_from([1, 7, 512, 4096, 65536, 262144])


@st.composite
def _restart_ranges(draw, total_size: int):
    """A valid ``needed`` set: disjoint in-file ranges (or None)."""
    if total_size == 0 or draw(st.booleans()):
        return None
    n = draw(st.integers(1, 12))
    points = sorted(draw(st.lists(
        st.integers(0, total_size), min_size=2 * n, max_size=2 * n)))
    rs = ByteRangeSet()
    added = False
    for a, b in zip(points[::2], points[1::2]):
        if a < b:
            rs.add(a, b)
            added = True
    return rs if added else None


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_plan_blocks_matches_scalar_spec(data):
    total = data.draw(_SIZES)
    block = data.draw(_BLOCKS)
    needed = data.draw(_restart_ranges(total))
    assert plan_blocks(total, block, needed) == \
        plan_blocks_scalar(total, block, needed)


@settings(max_examples=200, deadline=None)
@given(st.data())
def test_delivered_prefix_vector_matches_scalar_walk(data):
    total = data.draw(st.integers(min_value=1, max_value=4 << 20))
    block = data.draw(_BLOCKS)
    needed = data.draw(_restart_ranges(total))
    plan = ModeEPlan.plan(total, block, needed)
    limit = data.draw(st.integers(0, plan.total_bytes + block))
    scalar = plan._delivered_prefix_scalar(limit)
    assert plan.delivered_prefix(limit).ranges == scalar.ranges
    if HAS_NUMPY and plan.ranges:
        vector = plan._delivered_prefix_vector(limit)
        assert vector.ranges == scalar.ranges
