"""Property tests for the encoding layers (PEM, base64, DCSC blobs)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.encoding import (
    b64decode_str,
    b64encode_str,
    is_printable_ascii,
    pem_decode_all,
    pem_encode,
)


@given(st.binary(max_size=2000))
def test_b64_round_trip(data):
    encoded = b64encode_str(data)
    assert is_printable_ascii(encoded)
    assert b64decode_str(encoded) == data


_label = st.sampled_from(["CERTIFICATE", "RSA PRIVATE KEY", "X509 CRL"])


@given(st.lists(st.tuples(_label, st.binary(max_size=300)), max_size=6))
def test_pem_multi_block_round_trip(blocks):
    text = "".join(pem_encode(label, der) for label, der in blocks)
    assert pem_decode_all(text) == blocks


@given(st.lists(st.tuples(_label, st.binary(max_size=200)), min_size=1, max_size=4),
       st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=50))
@settings(max_examples=50)
def test_pem_ignores_interleaved_garbage(blocks, garbage):
    if "-----" in garbage:
        return
    separator = garbage + "\n"
    text = separator.join(pem_encode(label, der) for label, der in blocks) + garbage
    assert pem_decode_all(text) == blocks


# -- DCSC blob round trips over real credentials ------------------------------

_rng = random.Random(99)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31))
def test_dcsc_blob_round_trip_any_credential(seed):
    from repro.gridftp.dcsc import decode_dcsc_blob, encode_dcsc_blob
    from repro.pki.ca import CertificateAuthority
    from repro.pki.dn import DistinguishedName as DN
    from repro.sim.clock import Clock

    rng = random.Random(seed)
    clock = Clock()
    ca = CertificateAuthority(DN.parse("/O=P/CN=CA"), clock, rng, key_bits=256)
    cred = ca.issue_credential(DN.parse(f"/O=P/CN=user{seed % 1000}"))
    ctx = decode_dcsc_blob(encode_dcsc_blob(cred), clock.now)
    assert ctx.credential.chain == cred.chain
    assert ctx.credential.key == cred.key
