"""Property tests for bandwidth-sharing arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flows import aggregate_rate, batch_transfer_time, fair_share

_bw = st.floats(1e6, 1e11, allow_nan=False)
_k = st.integers(1, 64)
_sizes = st.lists(st.integers(1, 10**9), min_size=1, max_size=30)


@given(_bw, _bw, _k)
@settings(max_examples=100)
def test_fair_share_bounded(bottleneck, flow_limit, k):
    share = fair_share(bottleneck, flow_limit, k)
    assert 0 < share <= flow_limit
    assert share <= bottleneck / k + 1e-9


@given(_bw, _bw, _k)
@settings(max_examples=100)
def test_aggregate_never_exceeds_bottleneck(bottleneck, flow_limit, k):
    # relative tolerance: share*k can exceed the bottleneck by float ulps
    assert aggregate_rate(bottleneck, flow_limit, k) <= bottleneck * (1 + 1e-9)


@given(_sizes, _bw, _bw, _k)
@settings(max_examples=100)
def test_more_concurrency_never_slower_when_flow_limited(sizes, flow_limit,
                                                         bottleneck, k):
    """Monotonicity holds while the bottleneck is not the binding
    constraint.  (When it is, fair-share division can make an uneven
    last wave slower — a real effect, not a bug.)"""
    if flow_limit * (k + 1) > bottleneck:
        flow_limit = bottleneck / (k + 1)
    t_k = batch_transfer_time(sizes, flow_limit, bottleneck, k)
    t_k1 = batch_transfer_time(sizes, flow_limit, bottleneck, k + 1)
    assert t_k1 <= t_k * 1.000001


@given(_sizes, _bw, _bw, _k)
@settings(max_examples=100)
def test_batch_time_at_least_ideal(sizes, flow_limit, bottleneck, k):
    """No schedule can beat total-bits / aggregate-rate."""
    t = batch_transfer_time(sizes, flow_limit, bottleneck, k)
    ideal = sum(sizes) * 8.0 / aggregate_rate(bottleneck, flow_limit,
                                              min(k, len(sizes)))
    assert t >= ideal * 0.999


@given(_sizes, _bw, _bw, _k, st.floats(0, 10, allow_nan=False))
@settings(max_examples=60)
def test_overhead_only_adds_time(sizes, flow_limit, bottleneck, k, overhead):
    free = batch_transfer_time(sizes, flow_limit, bottleneck, k)
    taxed = batch_transfer_time(sizes, flow_limit, bottleneck, k,
                                per_item_overhead_s=overhead)
    assert taxed >= free
