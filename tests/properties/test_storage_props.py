"""Property tests: partial-file assembly equals the original for any
fragmentation and arrival order."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.data import LiteralData, PartialData, SyntheticData


@given(
    data=st.binary(min_size=0, max_size=3000),
    cuts=st.lists(st.integers(0, 3000), max_size=12),
    order_seed=st.integers(0, 1 << 30),
)
@settings(max_examples=80)
def test_any_fragmentation_reassembles(data, cuts, order_seed):
    import random

    size = len(data)
    points = sorted({0, size, *[c % (size + 1) for c in cuts]})
    fragments = [
        (points[i], data[points[i] : points[i + 1]])
        for i in range(len(points) - 1)
        if points[i + 1] > points[i]
    ]
    random.Random(order_seed).shuffle(fragments)
    partial = PartialData(expected_size=size)
    for offset, frag in fragments:
        partial.write_fragment(offset, frag)
    assert partial.is_complete()
    assert partial.promote().read_all() == data


@given(
    data=st.binary(min_size=1, max_size=2000),
    overlap_extra=st.lists(
        st.tuples(st.integers(0, 1999), st.integers(1, 300)), max_size=5
    ),
)
@settings(max_examples=60)
def test_overlapping_rewrites_still_correct(data, overlap_extra):
    """Duplicate/overlapping fragments of the SAME content are harmless."""
    size = len(data)
    partial = PartialData(expected_size=size)
    partial.write_fragment(0, data)
    for offset, length in overlap_extra:
        offset = offset % size
        chunk = data[offset : offset + length]
        if chunk:
            partial.write_fragment(offset, chunk)
    assert partial.promote().read_all() == data


@given(seed=st.integers(0, 1 << 30), length=st.integers(1, 100_000),
       a=st.integers(0, 100_000), b=st.integers(0, 100_000))
@settings(max_examples=60)
def test_synthetic_read_is_slice_of_whole(seed, length, a, b):
    d = SyntheticData(seed=seed, length=length)
    lo = min(a, b) % length
    hi = min(max(a, b), length)
    if hi <= lo:
        return
    window = d.read(lo, hi - lo)
    assert len(window) == hi - lo
    # consistency with a shifted overlapping read
    mid = (lo + hi) // 2
    assert d.read(mid, hi - mid) == window[mid - lo :]


@given(st.binary(max_size=1000))
def test_literal_fingerprint_injective_enough(data):
    a = LiteralData(data)
    b = LiteralData(data + b"\x00") if True else None
    assert a.fingerprint() != b.fingerprint()
