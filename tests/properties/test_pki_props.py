"""Property tests for PKI invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pki.certificate import Certificate
from repro.pki.dn import DistinguishedName as DN
from repro.pki.rsa import generate_keypair, sign, verify

# key generation is expensive; share a pool across examples
_KEYS = [generate_keypair(256, random.Random(i)) for i in range(3)]


@given(data=st.binary(min_size=0, max_size=200), key_idx=st.integers(0, 2))
@settings(max_examples=40)
def test_sign_verify_total(data, key_idx):
    key = _KEYS[key_idx]
    assert verify(key.public, data, sign(key, data))


@given(
    data=st.binary(min_size=1, max_size=100),
    flip=st.integers(0, 799),
)
@settings(max_examples=40)
def test_any_bit_flip_breaks_signature(data, flip):
    key = _KEYS[0]
    sig = sign(key, data)
    byte_idx = (flip // 8) % len(data)
    bit = flip % 8
    tampered = bytearray(data)
    tampered[byte_idx] ^= 1 << bit
    assert not verify(key.public, bytes(tampered), sig)


_attr = st.sampled_from(["O", "OU", "CN", "C", "DC"])
_value = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip() == s and s)

_dn = st.lists(st.tuples(_attr, _value), min_size=1, max_size=5).map(
    lambda pairs: DN(rdns=tuple(pairs))
)


@given(_dn)
@settings(max_examples=80)
def test_dn_parse_format_round_trip(dn):
    assert DN.parse(str(dn)) == dn


@given(_dn, _value)
@settings(max_examples=50)
def test_with_cn_parent_inverse(dn, value):
    extended = dn.with_cn(value)
    assert extended.parent() == dn
    assert dn.is_prefix_of(extended)


@given(
    dn=_dn,
    serial=st.integers(1, 2**40),
    start=st.floats(0, 1e6, allow_nan=False),
    lifetime=st.floats(1, 1e6, allow_nan=False),
    key_idx=st.integers(0, 2),
)
@settings(max_examples=40)
def test_certificate_dict_round_trip(dn, serial, start, lifetime, key_idx):
    key = _KEYS[key_idx]
    cert = Certificate(
        subject=dn,
        issuer=dn,
        serial=serial,
        not_before=start,
        not_after=start + lifetime,
        public_key=key.public,
        extensions={"k": "v"},
    ).signed_by(key)
    back = Certificate.from_dict(cert.to_dict())
    assert back == cert
    assert back.verify_signature(key.public)
    assert Certificate.from_pem(cert.to_pem()) == cert
