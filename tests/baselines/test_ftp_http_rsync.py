"""Plain FTP, HTTP and rsync baselines."""

import pytest

from repro.baselines.ftp_plain import PlainFtpTool
from repro.baselines.http import HttpTool
from repro.baselines.rsync import RsyncTool
from repro.errors import TransferError
from repro.util.units import MB, gbps


@pytest.fixture
def topo(world):
    net = world.network
    net.add_host("server", nic_bps=gbps(10))
    net.add_host("client", nic_bps=gbps(1))
    link = net.add_link("server", "client", gbps(1), 0.03, loss=1e-5)
    return world, link.link_id


# -- FTP -------------------------------------------------------------------


def test_ftp_fetch_and_cleartext_exposure(topo):
    world, link = topo
    ftp = PlainFtpTool(world, "client")
    world.log.clear()
    res = ftp.fetch("server", 5 * MB, username="alice", password="pw")
    assert res.tool == "ftp"
    exposures = world.log.select("credential.exposure")
    assert exposures and exposures[0].fields["party"] == "network:cleartext"


def test_ftp_no_rest_restarts_from_zero(topo):
    world, link = topo
    ftp = PlainFtpTool(world, "client")
    world.faults.cut_link(link, at=world.now + 3.0, duration=5.0)
    res = ftp.fetch("server", 50 * MB, use_rest=False)
    assert res.restarted_from_zero >= 1
    assert res.wasted_bytes > 0


def test_ftp_rest_resumes(topo):
    world, link = topo
    ftp = PlainFtpTool(world, "client")
    world.faults.cut_link(link, at=world.now + 3.0, duration=5.0)
    res = ftp.fetch("server", 50 * MB, use_rest=True)
    assert res.restarted_from_zero == 0
    assert res.wasted_bytes == 0


def test_ftp_gives_up(topo):
    world, link = topo
    ftp = PlainFtpTool(world, "client", max_retries=1)
    world.faults.cut_link(link, at=world.now + 0.5, duration=1e9)
    with pytest.raises(TransferError):
        ftp.fetch("server", 500 * MB)


# -- HTTP ----------------------------------------------------------------------


def test_http_download(topo):
    world, link = topo
    http = HttpTool(world, "client")
    res = http.download("server", 5 * MB)
    assert res.tool == "http"
    assert res.rate_bps > 0


def test_http_range_resume_vs_no_resume(topo):
    world, link = topo
    http = HttpTool(world, "client")
    world.faults.cut_link(link, at=world.now + 3.0, duration=5.0)
    res = http.download("server", 50 * MB, resume=True)
    assert res.wasted_bytes == 0
    world.faults.clear()
    world.faults.cut_link(link, at=world.now + 3.0, duration=5.0)
    res2 = http.download("server", 50 * MB, resume=False)
    assert res2.wasted_bytes > 0


def test_http_no_third_party(topo):
    world, link = topo
    http = HttpTool(world, "client")
    with pytest.raises(TransferError, match="third-party"):
        http.third_party("a", "b")


# -- rsync --------------------------------------------------------------------------


def test_rsync_full_sync(topo):
    world, link = topo
    rsync = RsyncTool(world, "client")
    res = rsync.sync("client", "server", 10 * MB)
    assert res.tool == "rsync"
    assert res.nbytes == 10 * MB


def test_rsync_delta_moves_only_missing(topo):
    world, link = topo
    rsync = RsyncTool(world, "client")
    full = rsync.sync("client", "server", 10 * MB)
    delta = rsync.sync("client", "server", 10 * MB, bytes_already_at_dest=9 * MB)
    assert delta.nbytes == 1 * MB
    assert delta.duration_s < full.duration_s


def test_rsync_no_third_party(topo):
    world, link = topo
    world.network.add_host("third", nic_bps=gbps(1))
    world.network.add_link("third", "server", gbps(1), 0.01)
    rsync = RsyncTool(world, "client")
    with pytest.raises(TransferError, match="third-party"):
        rsync.sync("server", "third", MB)


def test_rsync_partial_continue_after_fault(topo):
    world, link = topo
    rsync = RsyncTool(world, "client")
    world.faults.cut_link(link, at=world.now + 3.0, duration=5.0)
    res = rsync.sync("client", "server", 100 * MB)
    assert res.nbytes == 100 * MB  # completed across the fault
