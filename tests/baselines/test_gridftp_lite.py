"""GridFTP-Lite: its conveniences and its three limitations."""

import pytest

from repro.auth.accounts import AccountDatabase
from repro.baselines.gridftp_lite import GridFTPLite
from repro.errors import AuthenticationError, DCAUError, DelegationError
from repro.gridftp.dcau import DCAUMode
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage
from repro.util.units import gbps
from repro.xio.drivers import Protection


@pytest.fixture
def lite_env(world):
    net = world.network
    net.add_host("target", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("target", "laptop", gbps(1), 0.02)
    accounts = AccountDatabase()
    accounts.add_user("alice")
    fs = PosixStorage(world.clock)
    fs.makedirs("/home/alice", 0)
    fs.chown("/home/alice", accounts.get("alice").uid)
    fs.write_file("/home/alice/d.bin", LiteralData(b"lite data" * 100),
                  uid=accounts.get("alice").uid)
    lite = GridFTPLite(world, "target", accounts, fs)
    lite.add_ssh_user("alice", "ssh-pw")
    return world, lite, fs


def test_ssh_login_and_get(lite_env):
    world, lite, fs = lite_env
    session = lite.ssh_login("laptop", "alice", "ssh-pw")
    local = PosixStorage(world.clock)
    local.makedirs("/tmp", 0)
    res = session.get("/home/alice/d.bin", local, "/tmp/d.bin")
    assert res.verified
    assert local.open_read("/tmp/d.bin", 0).read_all() == b"lite data" * 100


def test_wrong_password(lite_env):
    world, lite, fs = lite_env
    with pytest.raises(AuthenticationError):
        lite.ssh_login("laptop", "alice", "wrong")


def test_unknown_ssh_user(lite_env):
    world, lite, fs = lite_env
    with pytest.raises(AuthenticationError):
        lite.ssh_login("laptop", "mallory", "x")


def test_ssh_user_requires_local_account(lite_env):
    world, lite, fs = lite_env
    from repro.errors import UnknownUserError

    with pytest.raises(UnknownUserError):
        lite.add_ssh_user("ghost", "pw")


def test_limitation1_no_data_channel_security(lite_env):
    """'First, the data channel has no security.'"""
    world, lite, fs = lite_env
    session = lite.ssh_login("laptop", "alice", "ssh-pw")
    local = PosixStorage(world.clock)
    local.makedirs("/tmp", 0)
    with pytest.raises(DCAUError, match="cannot protect the data channel"):
        session.get("/home/alice/d.bin", local, "/tmp/d.bin",
                    TransferOptions(protection=Protection.PRIVATE))
    # asking for DCAU silently degrades to N (as the real tool does)
    res = session.get("/home/alice/d.bin", local, "/tmp/d.bin",
                      TransferOptions(dcau=DCAUMode.SELF))
    assert res.verified
    ev = world.log.select("gridftp_lite.transfer")[-1]
    assert ev.fields["dcau"] == "N"


def test_limitation2_no_delegation(lite_env):
    """'users cannot hand off SSH-based GridFTP transfers to ... Globus Online'"""
    world, lite, fs = lite_env
    session = lite.ssh_login("laptop", "alice", "ssh-pw")
    with pytest.raises(DelegationError):
        session.delegate()


def test_limitation3_insecure_striped_internal_channel(lite_env):
    """'no security exists on the communication channel between the
    control node and the data mover node'"""
    world, lite, fs = lite_env
    world.network.add_host("mover1", nic_bps=gbps(1))
    world.network.add_link("mover1", "laptop", gbps(1), 0.02)
    accounts = AccountDatabase()
    accounts.add_user("alice")
    striped = GridFTPLite(world, "target", accounts, fs,
                          stripe_hosts=("target", "mover1"))
    striped.internal_message("mover1", "serve stripe 1")
    ev = world.log.select("gridftp.striped.internal")[-1]
    assert ev.fields["secure"] is False
