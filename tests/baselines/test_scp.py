"""SCP baseline."""

import pytest

from repro.baselines.scp import ScpTool
from repro.errors import TransferError
from repro.util.units import GB, MB, gbps, mbps


@pytest.fixture
def topo(world):
    net = world.network
    net.add_host("siteA", nic_bps=gbps(10))
    net.add_host("siteB", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("siteA", "siteB", gbps(10), 0.05, loss=1e-5)
    net.add_link("laptop", "siteA", mbps(20), 0.02)
    net.add_link("laptop", "siteB", mbps(20), 0.03)
    return world


def test_direct_copy_single_stream_window_bound(topo):
    world = topo
    scp = ScpTool(world, "laptop")
    res = scp.copy("laptop", "siteA", 10 * MB)
    assert res.tool == "scp"
    # window limit at 40 ms RTT: 64 KiB * 8 / 0.04 = ~13 Mb/s
    assert res.rate_bps < mbps(15)


def test_cipher_cap_binds_on_fast_lan(topo):
    world = topo
    world.network.add_host("lan-peer", nic_bps=gbps(10))
    world.network.add_link("siteA", "lan-peer", gbps(10), 0.0002)
    scp = ScpTool(world, "siteA")
    res = scp.copy("siteA", "lan-peer", 1 * GB)
    assert res.rate_bps <= scp.cipher_cap_bps * 1.01
    assert res.rate_bps > scp.cipher_cap_bps * 0.5


def test_remote_remote_relays_through_client(topo):
    """Section VII: 'SCP routes data through the client'."""
    world = topo
    scp = ScpTool(world, "laptop")
    est = scp.estimated_rate_bps("siteA", "siteB")
    # bound by the laptop's 20 Mb/s links, not the 10 Gb/s site link
    assert est < mbps(20)
    res = scp.copy("siteA", "siteB", 10 * MB)
    # two sequential legs, each window-bound
    assert res.duration_s > 2 * (10 * MB * 8 / mbps(20)) * 0.5


def test_fault_restarts_from_zero(topo):
    world = topo
    scp = ScpTool(world, "laptop")
    # fault strikes mid-copy on the laptop-siteA link
    link = [l for l in world.network.links.values()
            if {"laptop", "siteA"} == {l.a, l.b}][0]
    world.faults.cut_link(link.link_id, at=world.now + 5.0, duration=10.0)
    res = scp.copy("laptop", "siteA", 20 * MB)
    assert res.restarted_from_zero >= 1
    assert res.wasted_bytes > 0


def test_gives_up_after_max_retries(topo):
    world = topo
    scp = ScpTool(world, "laptop", max_retries=2)
    link = [l for l in world.network.links.values()
            if {"laptop", "siteA"} == {l.a, l.b}][0]
    # a pathological flapping link: down for 10s every 11s, forever-ish
    for i in range(400):
        world.faults.cut_link(link.link_id, at=world.now + 1.0 + i * 11.0, duration=10.0)
    with pytest.raises(TransferError):
        scp.copy("laptop", "siteA", 10 * GB)
