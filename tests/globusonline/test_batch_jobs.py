"""Batch (multi-file / directory-style) Globus Online transfers."""

import pytest

from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.storage.data import LiteralData
from repro.util.units import KB, gbps
from tests.conftest import make_gcmu_site

FILE_COUNT = 50
FILE_SIZE = 64 * KB


@pytest.fixture
def batch_world(world):
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.03, loss=1e-6)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "saas")
    ep_a = make_gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                          register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                          register_with=go, endpoint_name="nersc#dtn")
    uid = ep_a.accounts.get("alice").uid
    pairs = []
    for i in range(FILE_COUNT):
        path = f"/home/alice/dir/f{i:04d}.dat"
        ep_a.storage.write_file(path, LiteralData(bytes([i % 256]) * FILE_SIZE),
                                uid=uid)
        pairs.append((path, f"/home/asmith/dir/f{i:04d}.dat"))
    # destination directory must exist for STOR into it
    ep_b.storage.makedirs("/home/asmith/dir", 0)
    ep_b.storage.chown("/home/asmith/dir", ep_b.accounts.get("asmith").uid)
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    return world, go, ep_a, ep_b, user, pairs


def test_batch_moves_every_file_intact(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    job = go.submit_batch_transfer(user, "alcf#dtn", "nersc#dtn", pairs)
    assert job.status is JobStatus.SUCCEEDED
    assert job.files_done == FILE_COUNT
    assert job.bytes_done == FILE_COUNT * FILE_SIZE
    uid = ep_b.accounts.get("asmith").uid
    for i, (_, dp) in enumerate(pairs):
        data = ep_b.storage.open_read(dp, uid)
        assert data.read_all() == bytes([i % 256]) * FILE_SIZE


def test_batch_autotunes_for_small_files(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    job = go.submit_batch_transfer(user, "alcf#dtn", "nersc#dtn", pairs)
    assert job.status is JobStatus.SUCCEEDED
    # the control channel was pipelined: SIZE/STOR/RETR counts match the
    # file count but arrive in a handful of batched round trips
    verbs = [e.fields["verb"] for e in world.log.select("gridftp.command")]
    assert verbs.count("RETR") >= FILE_COUNT
    assert verbs.count("SIZE") >= FILE_COUNT


def test_batch_faster_than_sequential_single_jobs(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    subset = pairs[:12]
    t0 = world.now
    job = go.submit_batch_transfer(user, "alcf#dtn", "nersc#dtn",
                                   [(s, d + ".batch") for s, d in subset])
    batch_elapsed = world.now - t0
    assert job.status is JobStatus.SUCCEEDED
    t0 = world.now
    for s, d in subset:
        single = go.submit_transfer(user, "alcf#dtn", s, "nersc#dtn",
                                    d + ".single")
        assert single.status is JobStatus.SUCCEEDED
    sequential_elapsed = world.now - t0
    assert batch_elapsed < sequential_elapsed / 3


def test_batch_cross_domain_uses_dcsc(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    world.log.clear()
    job = go.submit_batch_transfer(user, "alcf#dtn", "nersc#dtn", pairs[:3])
    assert job.status is JobStatus.SUCCEEDED
    assert world.log.count("gridftp.dcsc") >= 1


def test_batch_fails_cleanly_on_missing_file(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    bad = pairs[:2] + [("/home/alice/ghost.dat", "/home/asmith/ghost.dat")]
    job = go.submit_batch_transfer(user, "alcf#dtn", "nersc#dtn", bad)
    assert job.status is JobStatus.FAILED
    assert job.error


def test_batch_requires_activation(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    stranger = go.register_user("stranger@globusid")
    job = go.submit_batch_transfer(stranger, "alcf#dtn", "nersc#dtn", pairs[:1])
    assert job.status is JobStatus.FAILED
    assert "not activated" in job.error


def test_batch_via_rest_api(batch_world):
    world, go, ep_a, ep_b, user, pairs = batch_world
    from repro.globusonline.interfaces import TransferAPI

    api = TransferAPI(go)
    out = api.submit_batch({
        "user": "alice@globusid",
        "source_endpoint": "alcf#dtn",
        "destination_endpoint": "nersc#dtn",
        "DATA": [{"source_path": s, "destination_path": d + ".api"}
                 for s, d in pairs[:5]],
    })
    assert out["code"] == "Accepted"
    status = api.task_status(out["task_id"])
    assert status["status"] == "SUCCEEDED"
    assert status["files"] == 5
    assert status["bytes_transferred"] == 5 * FILE_SIZE
