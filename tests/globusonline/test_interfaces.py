"""The REST-style and CLI facades."""

import pytest

from repro.errors import ReproError
from repro.globusonline.interfaces import TransferAPI, format_job_cli
from repro.globusonline.service import GlobusOnline
from repro.storage.data import LiteralData
from repro.util.units import gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def api_env(world):
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.04)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "saas")
    ep_a = make_gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                          register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                          register_with=go, endpoint_name="nersc#dtn")
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/f.dat", LiteralData(b"data"), uid=uid)
    go.register_user("alice@globusid")
    return world, go, TransferAPI(go)


def test_endpoint_list(api_env):
    world, go, api = api_env
    eps = api.endpoint_list()
    assert [e["name"] for e in eps] == ["alcf#dtn", "nersc#dtn"]
    assert all(e["activation"] for e in eps)
    assert all(e["gridftp"].startswith("gsiftp://") for e in eps)


def test_activate_and_submit_via_api(api_env):
    world, go, api = api_env
    out = api.activate({"user": "alice@globusid", "endpoint": "alcf#dtn",
                        "username": "alice", "password": "pwA"})
    assert out["code"] == "Activated.Success"
    assert "CN=alice" in out["subject"]
    api.activate({"user": "alice@globusid", "endpoint": "nersc#dtn",
                  "username": "asmith", "password": "pwB"})
    submitted = api.submit({
        "user": "alice@globusid",
        "source_endpoint": "alcf#dtn", "source_path": "/home/alice/f.dat",
        "destination_endpoint": "nersc#dtn", "destination_path": "/home/asmith/f.dat",
    })
    assert submitted["code"] == "Accepted"
    status = api.task_status(submitted["task_id"])
    assert status["status"] == "SUCCEEDED"
    assert status["bytes_transferred"] == 4


def test_unknown_user_and_task(api_env):
    world, go, api = api_env
    with pytest.raises(ReproError):
        api.activate({"user": "nobody", "endpoint": "alcf#dtn",
                      "username": "x", "password": "y"})
    with pytest.raises(ReproError):
        api.task_status("go-999999")


def test_cli_format(api_env):
    world, go, api = api_env
    api.activate({"user": "alice@globusid", "endpoint": "alcf#dtn",
                  "username": "alice", "password": "pwA"})
    api.activate({"user": "alice@globusid", "endpoint": "nersc#dtn",
                  "username": "asmith", "password": "pwB"})
    user = go.users["alice@globusid"]
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                             "nersc#dtn", "/home/asmith/g.dat")
    text = format_job_cli(job)
    assert "SUCCEEDED" in text
    assert job.job_id in text
