"""Globus Online through the fleet scheduler: queueing, admission, batching."""

import pytest

from repro.errors import QueueFullError, QuotaExceededError
from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.scheduler import SchedulerConfig, SchedulerLimits
from repro.storage.data import SyntheticData
from repro.util.units import HOUR, MB, gbps
from tests.conftest import make_gcmu_site


def build(world, scheduler_config=None):
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "saas", scheduler_config=scheduler_config)
    ep_a = make_gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA", "bob": "pwB"},
                          register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwC"},
                          register_with=go, endpoint_name="nersc#dtn")
    return go, ep_a, ep_b


def write_src(ep, path, length, owner="alice", seed=9):
    uid = ep.accounts.get(owner).uid
    ep.storage.write_file(path, SyntheticData(seed=seed, length=length), uid=uid)


def activate(go, name="alice@globusid", site_user="alice", pw="pwA",
             lifetime_s=None):
    user = go.register_user(name)
    go.activate(user, "alcf#dtn", site_user, pw, lifetime_s=lifetime_s)
    go.activate(user, "nersc#dtn", "asmith", "pwC", lifetime_s=lifetime_s)
    return user


def test_deferred_submission_stays_queued_until_processed(world):
    go, ep_a, _ = build(world)
    write_src(ep_a, "/home/alice/f.dat", 16 * MB)
    user = activate(go)
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                             "nersc#dtn", "/home/asmith/f.dat", defer=True)
    assert job.status is JobStatus.QUEUED
    assert go.job_status(job.job_id) is JobStatus.QUEUED
    go.process_queue()
    assert job.status is JobStatus.SUCCEEDED
    assert job.checksum_verified


def test_synchronous_submission_unchanged(world):
    go, ep_a, ep_b = build(world)
    write_src(ep_a, "/home/alice/f.dat", 16 * MB)
    user = activate(go)
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                             "nersc#dtn", "/home/asmith/f.dat")
    assert job.status is JobStatus.SUCCEEDED
    uid = ep_b.accounts.get("asmith").uid
    src = ep_a.storage.open_read("/home/alice/f.dat", 0)
    dst = ep_b.storage.open_read("/home/asmith/f.dat", uid)
    assert src.fingerprint() == dst.fingerprint()


def test_activation_expiring_mid_queue_is_a_typed_failure(world):
    go, ep_a, _ = build(world)
    write_src(ep_a, "/home/alice/f.dat", 16 * MB)
    user = activate(go, lifetime_s=1 * HOUR)
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                             "nersc#dtn", "/home/asmith/f.dat", defer=True)
    world.advance(2 * HOUR)  # activation lapses while the job waits
    go.process_queue()
    assert job.status is JobStatus.FAILED
    assert job.needs_reactivation
    assert "re-activate" in job.error
    events = world.log.select("globusonline.job.reactivation_required")
    assert events and events[0].fields["job"] == job.job_id
    # re-activation clears the path for a resubmission
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwC")
    retry = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                               "nersc#dtn", "/home/asmith/f.dat")
    assert retry.status is JobStatus.SUCCEEDED


def test_queue_full_raises_typed_admission_error(world):
    go, ep_a, _ = build(world, SchedulerConfig(
        limits=SchedulerLimits(max_queue_depth=2)))
    write_src(ep_a, "/home/alice/f.dat", 16 * MB)
    user = activate(go)
    for _ in range(2):
        go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                           "nersc#dtn", "/home/asmith/f.dat", defer=True)
    with pytest.raises(QueueFullError) as exc_info:
        go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                           "nersc#dtn", "/home/asmith/f.dat", defer=True)
    assert exc_info.value.retry_after_s > 0
    # the rejected job never entered the registry
    assert len(go.jobs) == 2


def test_per_user_quota(world):
    go, ep_a, _ = build(world, SchedulerConfig(
        limits=SchedulerLimits(max_queued_per_user=1)))
    write_src(ep_a, "/home/alice/f.dat", 16 * MB)
    user = activate(go)
    go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                       "nersc#dtn", "/home/asmith/f.dat", defer=True)
    with pytest.raises(QuotaExceededError) as exc_info:
        go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                           "nersc#dtn", "/home/asmith/f2.dat", defer=True)
    assert exc_info.value.user == "alice@globusid"


def test_small_files_coalesce_into_one_batch(world):
    go, ep_a, ep_b = build(world)
    user = activate(go)
    for i in range(5):
        write_src(ep_a, f"/home/alice/s{i}.dat", 200_000, seed=i)
    jobs = [
        go.submit_transfer(user, "alcf#dtn", f"/home/alice/s{i}.dat",
                           "nersc#dtn", f"/home/asmith/s{i}.dat", defer=True)
        for i in range(5)
    ]
    go.process_queue()
    assert all(j.status is JobStatus.SUCCEEDED for j in jobs)
    batches = [j for j in go.jobs.values() if j.job_id.startswith("go-batch")]
    assert len(batches) == 1 and batches[0].files_done == 5
    assert world.metrics.counter("scheduler_batches_coalesced_total").value() == 1
    assert world.metrics.counter("scheduler_batched_files_total").value() == 5
    # bytes landed intact
    uid = ep_b.accounts.get("asmith").uid
    for i in range(5):
        src = ep_a.storage.open_read(f"/home/alice/s{i}.dat", 0)
        dst = ep_b.storage.open_read(f"/home/asmith/s{i}.dat", uid)
        assert src.fingerprint() == dst.fingerprint()


def test_large_files_never_coalesce(world):
    go, ep_a, _ = build(world)
    user = activate(go)
    for i in range(3):
        write_src(ep_a, f"/home/alice/big{i}.dat", 16 * MB, seed=i)
    jobs = [
        go.submit_transfer(user, "alcf#dtn", f"/home/alice/big{i}.dat",
                           "nersc#dtn", f"/home/asmith/big{i}.dat", defer=True)
        for i in range(3)
    ]
    go.process_queue()
    assert all(j.status is JobStatus.SUCCEEDED for j in jobs)
    assert all(j.checksum_verified for j in jobs)
    assert not [j for j in go.jobs.values() if j.job_id.startswith("go-batch")]


def test_fair_share_across_contending_users(world):
    go, ep_a, _ = build(world, SchedulerConfig(workers=1))
    alice = activate(go, "alice@globusid", "alice", "pwA")
    bob = go.register_user("bob@globusid")
    go.activate(bob, "alcf#dtn", "bob", "pwB")
    go.activate(bob, "nersc#dtn", "asmith", "pwC")
    go.set_fair_share(alice, 3.0)
    go.set_fair_share("bob@globusid", 1.0)
    for i in range(4):
        write_src(ep_a, f"/home/alice/a{i}.dat", 16 * MB, owner="alice", seed=i)
        write_src(ep_a, f"/home/bob/b{i}.dat", 16 * MB, owner="bob", seed=10 + i)
    jobs = []
    for i in range(4):
        jobs.append(go.submit_transfer(
            alice, "alcf#dtn", f"/home/alice/a{i}.dat",
            "nersc#dtn", f"/home/asmith/a{i}.dat", defer=True))
        jobs.append(go.submit_transfer(
            bob, "alcf#dtn", f"/home/bob/b{i}.dat",
            "nersc#dtn", f"/home/asmith/b{i}.dat", defer=True))
    go.process_queue()
    assert all(j.status is JobStatus.SUCCEEDED for j in jobs)
    delivered = go.scheduler.queue.delivered_bytes()
    assert delivered["alice@globusid"] == delivered["bob@globusid"]  # all drained
    # under contention alice (weight 3) finished her last job before bob:
    # completion order favours the heavier weight early on.
    order = [t.user for t in go.scheduler.completed_tasks]
    first_half = order[: len(order) // 2]
    assert first_half.count("alice@globusid") > first_half.count("bob@globusid")


def test_job_status_reports_queue_states(world):
    go, ep_a, _ = build(world)
    write_src(ep_a, "/home/alice/f.dat", 16 * MB)
    user = activate(go)
    seen = []
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/f.dat",
                             "nersc#dtn", "/home/asmith/f.dat", defer=True)
    seen.append(go.job_status(job.job_id))
    go.process_queue()
    seen.append(go.job_status(job.job_id))
    assert seen == [JobStatus.QUEUED, JobStatus.SUCCEEDED]
