"""The hosted service: registry, activation, exposure accounting."""

import pytest

from repro.errors import AuthenticationError, ReproError
from repro.globusonline.service import GlobusOnline
from repro.util.units import HOUR, gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def go_world(world):
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "saas")
    ep_a = make_gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                          register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                          register_with=go, endpoint_name="nersc#dtn")
    return world, go, ep_a, ep_b


def test_registration_carries_site_ca(go_world):
    world, go, ep_a, ep_b = go_world
    rec = go.endpoint("alcf#dtn")
    assert rec.trust.find_anchor(ep_a.myproxy.ca.certificate) is not None


def test_unknown_endpoint(go_world):
    world, go, *_ = go_world
    with pytest.raises(ReproError):
        go.endpoint("nowhere#dtn")


def test_activation_stores_short_term_credential(go_world):
    world, go, ep_a, ep_b = go_world
    user = go.register_user("alice@globusid")
    act = go.activate(user, "alcf#dtn", "alice", "pwA")
    assert act.credential.subject.common_name == "alice"
    assert user.activation_for("alcf#dtn", world.now) is act


def test_activation_bad_password(go_world):
    world, go, ep_a, ep_b = go_world
    user = go.register_user("alice@globusid")
    with pytest.raises(AuthenticationError):
        go.activate(user, "alcf#dtn", "alice", "wrong")


def test_activation_expires(go_world):
    world, go, ep_a, ep_b = go_world
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA", lifetime_s=1 * HOUR)
    world.advance(2 * HOUR)
    with pytest.raises(AuthenticationError, match="expired"):
        user.activation_for("alcf#dtn", world.now)


def test_unactivated_endpoint(go_world):
    world, go, ep_a, ep_b = go_world
    user = go.register_user("alice@globusid")
    with pytest.raises(AuthenticationError, match="not activated"):
        user.activation_for("alcf#dtn", world.now)


def test_password_activation_exposes_to_go_and_site(go_world):
    """Figure 6 path: the password transits Globus Online."""
    world, go, ep_a, ep_b = go_world
    user = go.register_user("alice@globusid")
    world.log.clear()
    go.activate(user, "alcf#dtn", "alice", "pwA")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    assert parties == {"globusonline", "site:alcf"}


def test_oauth_activation_exposes_to_site_only(go_world):
    """Figure 7 path: the password never touches the third party."""
    world, go, ep_a, ep_b = go_world
    from repro.globusonline.oauth import OAuthServer

    oauth = OAuthServer(world, "dtn-a", ep_a.myproxy, port=8443).start()
    go.attach_oauth("alcf#dtn", oauth)
    user = go.register_user("alice@globusid")
    world.log.clear()
    go.activate_oauth(user, "alcf#dtn", "alice", "pwA")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    assert parties == {"site:alcf"}


def test_oauth_activation_without_oauth_server(go_world):
    world, go, ep_a, ep_b = go_world
    user = go.register_user("alice@globusid")
    with pytest.raises(AuthenticationError, match="no OAuth server"):
        go.activate_oauth(user, "alcf#dtn", "alice", "pwA")


def test_activation_unsupported_endpoint(go_world):
    """An endpoint registered without a MyProxy CA can't activate."""
    world, go, ep_a, ep_b = go_world
    from repro.core.endpoint import EndpointInfo

    go.register_endpoint(EndpointInfo(
        name="legacy#dtn", display_name="legacy",
        gridftp_address=("dtn-a", 2899),
    ))
    user = go.register_user("u")
    with pytest.raises(AuthenticationError, match="no MyProxy CA"):
        go.activate(user, "legacy#dtn", "x", "y")
