"""The site OAuth server."""

import pytest

from repro.auth import Control, LdapDirectory, LdapPamModule, PamStack
from repro.errors import AuthenticationError
from repro.globusonline.oauth import OAuthServer
from repro.myproxy.server import MyProxyOnlineCA
from repro.util.units import gbps


@pytest.fixture
def oauth_env(world):
    world.network.add_host("dtn", nic_bps=gbps(10))
    ldap = LdapDirectory()
    ldap.add_entry("alice", "pw")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    myproxy = MyProxyOnlineCA(world, "dtn", "alcf", pam).start()
    oauth = OAuthServer(world, "dtn", myproxy, port=8443).start()
    return world, myproxy, oauth


def test_authorize_then_exchange(oauth_env):
    world, myproxy, oauth = oauth_env
    code = oauth.authorize("alice", "pw")
    cred = oauth.exchange(code)
    assert cred.subject.common_name == "alice"


def test_codes_single_use(oauth_env):
    world, myproxy, oauth = oauth_env
    code = oauth.authorize("alice", "pw")
    oauth.exchange(code)
    with pytest.raises(AuthenticationError, match="already-redeemed"):
        oauth.exchange(code)


def test_invalid_code(oauth_env):
    world, myproxy, oauth = oauth_env
    with pytest.raises(AuthenticationError):
        oauth.exchange("bogus")


def test_bad_password(oauth_env):
    world, myproxy, oauth = oauth_env
    with pytest.raises(AuthenticationError):
        oauth.authorize("alice", "wrong")


def test_codes_unique(oauth_env):
    world, myproxy, oauth = oauth_env
    c1 = oauth.authorize("alice", "pw")
    c2 = oauth.authorize("alice", "pw")
    assert c1 != c2


def test_exposure_names_site_not_third_party(oauth_env):
    world, myproxy, oauth = oauth_env
    world.log.clear()
    oauth.authorize("alice", "pw")
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    assert parties == {"site:alcf"}


def test_stop_releases_port(oauth_env):
    world, myproxy, oauth = oauth_env
    oauth.stop()
    assert ("dtn", 8443) not in world.network.listeners
