"""Transfer jobs: Figure 6 fault recovery, auto-tuning, cross-domain DCSC."""

import pytest

from repro.globusonline.service import GlobusOnline
from repro.globusonline.transfer import JobStatus
from repro.storage.data import LiteralData, SyntheticData
from repro.util.units import GB, HOUR, gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def go_world(world):
    net = world.network
    for h in ("dtn-a", "dtn-b", "saas"):
        net.add_host(h, nic_bps=gbps(10))
    inter = net.add_link("dtn-a", "dtn-b", gbps(10), 0.04, loss=1e-5)
    net.add_link("saas", "dtn-a", gbps(1), 0.02)
    net.add_link("saas", "dtn-b", gbps(1), 0.02)
    go = GlobusOnline(world, "saas")
    ep_a = make_gcmu_site(world, "dtn-a", "alcf", {"alice": "pwA"},
                          register_with=go, endpoint_name="alcf#dtn")
    ep_b = make_gcmu_site(world, "dtn-b", "nersc", {"asmith": "pwB"},
                          register_with=go, endpoint_name="nersc#dtn")
    user = go.register_user("alice@globusid")
    go.activate(user, "alcf#dtn", "alice", "pwA")
    go.activate(user, "nersc#dtn", "asmith", "pwB")
    uid = ep_a.accounts.get("alice").uid
    ep_a.storage.write_file("/home/alice/big.dat",
                            SyntheticData(seed=9, length=20 * GB), uid=uid)
    ep_a.storage.write_file("/home/alice/small.dat",
                            LiteralData(b"tiny payload"), uid=uid)
    return world, go, ep_a, ep_b, user, inter.link_id


def test_job_succeeds_cross_domain_via_dcsc(go_world):
    """GO endpoints live in different CA domains; DCSC is automatic."""
    world, go, ep_a, ep_b, user, link = go_world
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/small.dat",
                             "nersc#dtn", "/home/asmith/small.dat")
    assert job.status is JobStatus.SUCCEEDED
    assert job.attempts == 1
    uid = ep_b.accounts.get("asmith").uid
    assert ep_b.storage.open_read("/home/asmith/small.dat", uid).read_all() == b"tiny payload"
    # DCSC was installed at an endpoint
    assert world.log.count("gridftp.dcsc") >= 1


def test_job_survives_mid_transfer_fault(go_world):
    world, go, ep_a, ep_b, user, link = go_world
    world.faults.cut_link(link, at=world.now + 30.0, duration=60.0)
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/big.dat",
                             "nersc#dtn", "/home/asmith/big.dat")
    assert job.status is JobStatus.SUCCEEDED
    assert job.faults_survived >= 1
    assert job.attempts >= 2
    assert job.bytes_at_checkpoint > 0
    # the restart moved strictly less than the whole file
    assert job.result.nbytes < 20 * GB
    uid = ep_b.accounts.get("asmith").uid
    final = ep_b.storage.open_read("/home/asmith/big.dat", uid)
    assert final.fingerprint() == SyntheticData(seed=9, length=20 * GB).fingerprint()


def test_job_fails_without_activation(go_world):
    world, go, ep_a, ep_b, user, link = go_world
    stranger = go.register_user("stranger@globusid")
    job = go.submit_transfer(stranger, "alcf#dtn", "/home/alice/small.dat",
                             "nersc#dtn", "/home/asmith/x.dat")
    assert job.status is JobStatus.FAILED
    assert "not activated" in job.error


def test_job_fails_on_missing_file(go_world):
    world, go, ep_a, ep_b, user, link = go_world
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/ghost.dat",
                             "nersc#dtn", "/home/asmith/x.dat")
    assert job.status is JobStatus.FAILED


def test_job_fails_when_activation_expired(go_world):
    world, go, ep_a, ep_b, user, link = go_world
    world.advance(13 * HOUR)  # default MyProxy lifetime is 12h
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/small.dat",
                             "nersc#dtn", "/home/asmith/x.dat")
    assert job.status is JobStatus.FAILED
    assert "expired" in job.error


def test_autotune_applied_when_no_options(go_world):
    world, go, ep_a, ep_b, user, link = go_world
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/big.dat",
                             "nersc#dtn", "/home/asmith/tuned.dat")
    assert job.status is JobStatus.SUCCEEDED
    # a 20 GB file over a 80 ms path should get multiple streams
    assert job.result.streams > 1


def test_job_ids_unique_and_tracked(go_world):
    world, go, ep_a, ep_b, user, link = go_world
    j1 = go.submit_transfer(user, "alcf#dtn", "/home/alice/small.dat",
                            "nersc#dtn", "/home/asmith/1.dat")
    j2 = go.submit_transfer(user, "alcf#dtn", "/home/alice/small.dat",
                            "nersc#dtn", "/home/asmith/2.dat")
    assert j1.job_id != j2.job_id
    assert go.job_status(j1.job_id) is JobStatus.SUCCEEDED


def test_job_checksum_verified_flag(go_world):
    """The service CKSMs both endpoints after every successful job."""
    world, go, ep_a, ep_b, user, link = go_world
    job = go.submit_transfer(user, "alcf#dtn", "/home/alice/small.dat",
                             "nersc#dtn", "/home/asmith/ck.dat")
    assert job.checksum_verified
    # the CKSM exchanges appear on both control channels
    cksm_events = [e for e in world.log.select("gridftp.command")
                   if e.fields["verb"] == "CKSM"]
    assert len(cksm_events) >= 2
