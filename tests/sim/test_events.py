"""Scheduler."""

import pytest

from repro.sim.clock import Clock
from repro.sim.events import Scheduler


def make():
    clock = Clock()
    return clock, Scheduler(clock)


def test_fire_due_runs_past_events_in_order():
    clock, sched = make()
    fired = []
    sched.at(5.0, lambda: fired.append("b"))
    sched.at(1.0, lambda: fired.append("a"))
    clock.advance(10.0)
    assert sched.fire_due() == 2
    assert fired == ["a", "b"]


def test_events_in_future_do_not_fire():
    clock, sched = make()
    fired = []
    sched.at(5.0, lambda: fired.append(1))
    clock.advance(4.999)
    assert sched.fire_due() == 0
    assert fired == []


def test_same_time_events_fire_in_scheduling_order():
    clock, sched = make()
    fired = []
    sched.at(1.0, lambda: fired.append("first"))
    sched.at(1.0, lambda: fired.append("second"))
    clock.advance(1.0)
    sched.fire_due()
    assert fired == ["first", "second"]


def test_after_is_relative():
    clock, sched = make()
    clock.advance(100.0)
    fired = []
    sched.after(5.0, lambda: fired.append(1))
    clock.advance(5.0)
    sched.fire_due()
    assert fired == [1]


def test_cannot_schedule_in_the_past():
    clock, sched = make()
    clock.advance(10.0)
    with pytest.raises(ValueError):
        sched.at(5.0, lambda: None)


def test_cancelled_events_do_not_fire():
    clock, sched = make()
    fired = []
    ev = sched.at(1.0, lambda: fired.append(1))
    ev.cancel()
    clock.advance(2.0)
    assert sched.fire_due() == 0
    assert fired == []


def test_next_due_and_pending():
    clock, sched = make()
    assert sched.next_due is None
    a = sched.at(3.0, lambda: None, label="a")
    sched.at(7.0, lambda: None, label="b")
    assert sched.next_due == 3.0
    assert sched.pending() == 2
    a.cancel()
    assert sched.next_due == 7.0
    assert sched.pending() == 1
