"""Virtual clock."""

import pytest

from repro.sim.clock import Clock


def test_starts_at_given_time():
    assert Clock().now == 0.0
    assert Clock(100.0).now == 100.0


def test_advance_accumulates():
    c = Clock()
    c.advance(1.5)
    c.advance(2.5)
    assert c.now == 4.0


def test_advance_returns_new_time():
    c = Clock(10.0)
    assert c.advance(5.0) == 15.0


def test_negative_advance_rejected():
    c = Clock()
    with pytest.raises(ValueError):
        c.advance(-0.001)


def test_advance_to_moves_forward_only():
    c = Clock(10.0)
    c.advance_to(20.0)
    assert c.now == 20.0
    c.advance_to(5.0)  # in the past: no-op, not an error
    assert c.now == 20.0


def test_zero_advance_allowed():
    c = Clock(3.0)
    c.advance(0.0)
    assert c.now == 3.0
