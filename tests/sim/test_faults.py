"""Fault plan queries."""

import pytest

from repro.sim.faults import FaultPlan, LinkFault


def test_link_down_window_is_half_open():
    plan = FaultPlan()
    plan.cut_link("l1", at=10.0, duration=5.0)
    assert not plan.link_down("l1", 9.999)
    assert plan.link_down("l1", 10.0)
    assert plan.link_down("l1", 14.999)
    assert not plan.link_down("l1", 15.0)


def test_host_down():
    plan = FaultPlan()
    plan.crash_host("dtn1", at=0.0, duration=1.0)
    assert plan.host_down("dtn1", 0.5)
    assert not plan.host_down("dtn2", 0.5)


def test_zero_duration_rejected():
    plan = FaultPlan()
    with pytest.raises(ValueError):
        plan.cut_link("l1", at=0.0, duration=0.0)
    with pytest.raises(ValueError):
        plan.crash_host("h", at=0.0, duration=-1.0)


def test_first_interruption_finds_earliest():
    plan = FaultPlan()
    plan.cut_link("l1", at=50.0, duration=10.0)
    plan.cut_link("l2", at=30.0, duration=10.0)
    plan.crash_host("h1", at=40.0, duration=10.0)
    t = plan.first_interruption(["l1", "l2"], ["h1"], start=0.0, end=100.0)
    assert t == 30.0


def test_first_interruption_ignores_unrelated_resources():
    plan = FaultPlan()
    plan.cut_link("other", at=10.0, duration=5.0)
    assert plan.first_interruption(["l1"], ["h1"], 0.0, 100.0) is None


def test_first_interruption_outside_window():
    plan = FaultPlan()
    plan.cut_link("l1", at=200.0, duration=5.0)
    assert plan.first_interruption(["l1"], [], 0.0, 100.0) is None


def test_fault_already_active_counts_at_window_start():
    plan = FaultPlan()
    plan.cut_link("l1", at=0.0, duration=100.0)
    assert plan.first_interruption(["l1"], [], 50.0, 60.0) == 50.0


def test_next_clear_time_skips_overlapping_outages():
    plan = FaultPlan()
    plan.cut_link("l1", at=10.0, duration=10.0)  # [10, 20)
    plan.cut_link("l1", at=18.0, duration=10.0)  # [18, 28)
    plan.crash_host("h1", at=27.0, duration=5.0)  # [27, 32)
    assert plan.next_clear_time(["l1"], ["h1"], 12.0) == 32.0


def test_next_clear_time_when_already_clear():
    plan = FaultPlan()
    plan.cut_link("l1", at=10.0, duration=5.0)
    assert plan.next_clear_time(["l1"], [], 5.0) == 5.0


def test_clear_removes_all():
    plan = FaultPlan()
    plan.cut_link("l1", at=1.0, duration=1.0)
    plan.crash_host("h", at=1.0, duration=1.0)
    plan.clear()
    assert plan.link_faults == ()
    assert plan.host_faults == ()


def test_link_fault_accessors():
    f = LinkFault(link_id="x", start=3.0, duration=2.0)
    assert f.end == 5.0
    assert f.active_at(3.0) and f.active_at(4.9) and not f.active_at(5.0)
