"""FaultInjector: seeded chaos campaigns are replayable and well-formed."""

import pytest

from repro.sim.faults import ChaosConfig, FaultInjector
from repro.sim.world import World
from repro.util.units import gbps

FULL = ChaosConfig(
    link_flap_every_s=60.0,
    degrade_every_s=90.0,
    host_crash_every_s=120.0,
    control_drop_every_s=80.0,
    horizon_s=600.0,
)


def _topology(world):
    net = world.network
    net.add_host("a", nic_bps=gbps(10))
    net.add_host("b", nic_bps=gbps(10))
    net.add_router("r")
    net.add_link("a", "r", gbps(10), 0.01)
    net.add_link("r", "b", gbps(10), 0.01)
    return world


def test_same_seed_same_campaign():
    runs = []
    for _ in range(2):
        world = _topology(World(seed=77))
        world.chaos.configure(FULL)
        runs.append(world.chaos.arm())
    assert runs[0] == runs[1]
    assert len(runs[0]) > 0


def test_different_seed_different_campaign():
    a = _topology(World(seed=1))
    b = _topology(World(seed=2))
    for w in (a, b):
        w.chaos.configure(FULL)
    assert a.chaos.arm() != b.chaos.arm()


def test_schedule_independent_of_target_enumeration_order():
    """Per-target rng streams: listing targets differently cannot change
    any target's own fault times."""
    w1 = _topology(World(seed=5))
    w2 = _topology(World(seed=5))
    for w in (w1, w2):
        w.chaos.configure(FULL)
    links = sorted(w1.network.links)
    s1 = w1.chaos.arm(links=links)
    s2 = w2.chaos.arm(links=list(reversed(links)))
    assert s1 == s2


def test_arm_installs_into_the_fault_plan():
    world = _topology(World(seed=9))
    world.chaos.configure(FULL)
    schedule = world.chaos.arm()
    counts = world.chaos.counts_by_kind()
    plan = world.faults
    assert len(plan.link_faults) == counts.get("link_flap", 0)
    assert len(plan.degradation_faults) == counts.get("degradation", 0)
    assert len(plan.host_faults) == counts.get("host_crash", 0)
    assert len(plan.control_faults) == counts.get("control_drop", 0)
    assert sum(counts.values()) == len(schedule) == world.chaos.fault_count
    # schedule is sorted by onset
    starts = [f.start for f in schedule]
    assert starts == sorted(starts)


def test_host_faults_only_hit_non_transit_hosts():
    world = _topology(World(seed=3))
    world.chaos.configure(ChaosConfig(host_crash_every_s=30.0,
                                      control_drop_every_s=30.0,
                                      horizon_s=600.0))
    schedule = world.chaos.arm()
    targets = {f.target for f in schedule}
    assert "r" not in targets
    assert targets <= {"a", "b"}


def test_degradation_factor_within_configured_range():
    world = _topology(World(seed=4))
    world.chaos.configure(ChaosConfig(degrade_every_s=20.0,
                                      degrade_factor=(0.3, 0.5),
                                      horizon_s=600.0))
    schedule = world.chaos.arm()
    assert schedule, "expected at least one episode at this rate"
    assert all(0.3 <= f.param <= 0.5 for f in schedule)


def test_durations_within_configured_range():
    world = _topology(World(seed=8))
    world.chaos.configure(ChaosConfig(link_flap_every_s=15.0,
                                      link_flap_duration_s=(2.0, 6.0),
                                      horizon_s=600.0))
    schedule = world.chaos.arm()
    assert schedule
    assert all(2.0 <= f.duration <= 6.0 for f in schedule)


def test_metrics_count_injected_faults():
    world = _topology(World(seed=6))
    world.chaos.configure(FULL)
    world.chaos.arm()
    counter = world.metrics.counter(
        "chaos_faults_injected_total", labelnames=("kind",))
    for kind, n in world.chaos.counts_by_kind().items():
        assert counter.value(kind=kind) == n
    assert world.log.count("chaos.armed") == 1


def test_default_config_is_quiet():
    world = _topology(World(seed=11))
    assert world.chaos.arm() == ()
    assert world.faults.link_faults == ()


def test_filter_marker_identity_without_corruption():
    world = _topology(World(seed=12))
    assert world.chaos.filter_marker("0-100,200-300") == "0-100,200-300"


def test_filter_marker_deterministic_and_detectable():
    texts = []
    for _ in range(2):
        world = _topology(World(seed=13))
        world.chaos.configure(ChaosConfig(marker_corruption_prob=1.0))
        texts.append([world.chaos.filter_marker("0-100,200-300")
                      for _ in range(20)])
    assert texts[0] == texts[1]
    from repro.errors import ProtocolError
    from repro.gridftp.restart import parse_restart_marker
    for out in texts[0]:
        assert out != "0-100,200-300"
        # every corruption is either a parseable *subset* (truncation)
        # or unparseable (garbling) -- never a superset claim
        try:
            marker = parse_restart_marker(out)
        except ProtocolError:
            continue
        assert marker.total_bytes() <= 200


def test_config_validation():
    with pytest.raises(ValueError):
        ChaosConfig(link_flap_every_s=0.0)
    with pytest.raises(ValueError):
        ChaosConfig(marker_corruption_prob=1.5)
    with pytest.raises(ValueError):
        ChaosConfig(horizon_s=-1.0)
    with pytest.raises(ValueError):
        ChaosConfig(degrade_factor=(0.0, 0.5))
