"""The indexed fault lookup answers exactly like a linear scan would."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.faults import FaultPlan

_TARGETS = ["link-1", "link-2", "link-3", "host-a", "host-b"]


@st.composite
def _plan_and_queries(draw):
    plan = FaultPlan()
    n = draw(st.integers(0, 25))
    for _ in range(n):
        kind = draw(st.sampled_from(["cut", "crash", "degrade", "control"]))
        target = draw(st.sampled_from(_TARGETS))
        at = draw(st.floats(0.0, 100.0, allow_nan=False))
        dur = draw(st.floats(0.1, 40.0, allow_nan=False))
        if kind == "cut":
            plan.cut_link(target, at=at, duration=dur)
        elif kind == "crash":
            plan.crash_host(target, at=at, duration=dur)
        elif kind == "degrade":
            plan.degrade_link(target, at=at, duration=dur,
                              factor=draw(st.floats(0.1, 1.0)))
        else:
            plan.drop_control(target, at=at, duration=dur)
    times = draw(st.lists(st.floats(0.0, 160.0, allow_nan=False),
                          min_size=1, max_size=8))
    return plan, times


@given(pq=_plan_and_queries())
@settings(max_examples=150)
def test_point_queries_match_linear_scan(pq):
    plan, times = pq
    for t in times:
        for target in _TARGETS:
            assert plan.link_down(target, t) == any(
                f.link_id == target and f.active_at(t) for f in plan.link_faults
            )
            assert plan.host_down(target, t) == any(
                f.host == target and f.active_at(t) for f in plan.host_faults
            )
            assert plan.control_down(target, t) == any(
                f.host == target and f.active_at(t) for f in plan.control_faults
            )


@given(pq=_plan_and_queries())
@settings(max_examples=150)
def test_bandwidth_factor_matches_linear_scan(pq):
    plan, times = pq
    links = [t for t in _TARGETS if t.startswith("link")]
    for t in times:
        expected = 1.0
        for f in plan.degradation_faults:
            if f.link_id in links and f.active_at(t):
                expected = min(expected, f.factor)
        assert plan.bandwidth_factor(links, t) == expected


@given(pq=_plan_and_queries(), span=st.floats(0.1, 60.0))
@settings(max_examples=150)
def test_first_interruption_matches_linear_scan(pq, span):
    plan, times = pq
    links = [t for t in _TARGETS if t.startswith("link")]
    hosts = [t for t in _TARGETS if t.startswith("host")]
    for start in times:
        end = start + span
        candidates = [
            max(f.start, start)
            for f in plan.link_faults
            if f.link_id in links and f.start < end and f.end > start
        ] + [
            max(f.start, start)
            for f in plan.host_faults
            if f.host in hosts and f.start < end and f.end > start
        ]
        expected = min(candidates) if candidates else None
        assert plan.first_interruption(links, hosts, start, end) == expected


@given(pq=_plan_and_queries())
@settings(max_examples=100)
def test_next_clear_time_is_actually_clear(pq):
    plan, times = pq
    links = [t for t in _TARGETS if t.startswith("link")]
    hosts = [t for t in _TARGETS if t.startswith("host")]
    for t in times:
        clear = plan.next_clear_time(links, hosts, t)
        assert clear >= t
        assert not any(plan.link_down(l, clear) for l in links)
        assert not any(plan.host_down(h, clear) for h in hosts)
        assert not any(plan.control_down(h, clear) for h in hosts)


def test_index_tracks_interleaved_mutation():
    """Queries between mutations must see the fresh schedule (lazy rebuild)."""
    plan = FaultPlan()
    plan.cut_link("wan", at=10.0, duration=5.0)
    assert plan.link_down("wan", 12.0)
    assert not plan.link_down("wan", 20.0)
    plan.cut_link("wan", at=18.0, duration=4.0)  # index for "wan" is dirty now
    assert plan.link_down("wan", 20.0)
    assert plan.first_interruption(["wan"], [], 0.0, 30.0) == 10.0
    plan.clear()
    assert not plan.link_down("wan", 12.0)
    assert plan.first_interruption(["wan"], [], 0.0, 30.0) is None
