"""The World container."""

from repro.sim.world import World


def test_world_has_all_components():
    w = World(seed=7)
    assert w.clock.now == 0.0
    assert w.network is not None
    assert w.faults is not None
    assert len(w.log) == 0


def test_advance_fires_scheduler():
    w = World()
    fired = []
    w.scheduler.at(5.0, lambda: fired.append(1))
    w.advance(10.0)
    assert fired == [1]


def test_advance_to_fires_scheduler():
    w = World()
    fired = []
    w.scheduler.at(5.0, lambda: fired.append(1))
    w.advance_to(6.0)
    assert fired == [1]


def test_emit_stamps_current_time():
    w = World()
    w.advance(3.5)
    ev = w.emit("cat", "msg", k=1)
    assert ev.time == 3.5
    assert w.log.count("cat") == 1


def test_now_property_tracks_clock():
    w = World(start_time=100.0)
    assert w.now == 100.0
    w.advance(1.0)
    assert w.now == 101.0


def test_same_seed_same_streams():
    a, b = World(seed=9), World(seed=9)
    assert a.rng.python("x").random() == b.rng.python("x").random()


def test_different_seeds_differ():
    a, b = World(seed=1), World(seed=2)
    assert a.rng.python("x").random() != b.rng.python("x").random()
