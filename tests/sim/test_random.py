"""Deterministic RNG streams."""

import pytest

from repro.sim.random import RngFactory
from repro.util.vector import HAS_NUMPY

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy not available")


def test_named_streams_are_independent():
    f = RngFactory(1)
    a = f.python("alpha")
    b = f.python("beta")
    seq_a = [a.random() for _ in range(5)]
    seq_b = [b.random() for _ in range(5)]
    assert seq_a != seq_b


def test_same_name_reproduces_sequence():
    f = RngFactory(1)
    first = [f.python("s").random() for _ in range(3)]
    second = [f.python("s").random() for _ in range(3)]
    assert first == second


@needs_numpy
def test_numpy_streams_deterministic():
    f = RngFactory(5)
    a = f.numpy("w").integers(0, 1 << 30, size=4)
    b = RngFactory(5).numpy("w").integers(0, 1 << 30, size=4)
    assert (a == b).all()


@needs_numpy
def test_seed_changes_everything():
    a = RngFactory(1).numpy("x").random()
    b = RngFactory(2).numpy("x").random()
    assert a != b


def test_seed_property():
    assert RngFactory(77).seed == 77
