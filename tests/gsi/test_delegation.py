"""Delegation."""

import pytest

from repro.errors import DelegationError
from repro.gsi.delegation import delegate_credential
from repro.pki.ca import CertificateAuthority, self_signed_credential
from repro.pki.dn import DistinguishedName as DN
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(10).python("deleg")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    user = ca.issue_credential(DN.parse("/O=T/CN=alice"), lifetime=DAY)
    return clock, rng, user


def test_delegation_produces_proxy(env):
    clock, rng, user = env
    delegated = delegate_credential(user, clock, rng)
    assert delegated.identity == user.subject
    assert delegated.certificate.is_proxy
    assert delegated.key != user.key  # the user's key never travels


def test_ssh_credential_cannot_delegate(env):
    """Paper Section III.B limitation 2."""
    clock, rng, user = env
    ssh_cred = self_signed_credential(
        DN.parse("/O=gridftp-lite/CN=alice"), clock, rng,
        extensions={"no_delegation": True},
    )
    with pytest.raises(DelegationError, match="does not support delegation"):
        delegate_credential(ssh_cred, clock, rng)


def test_expired_credential_cannot_delegate(env):
    clock, rng, user = env
    clock.advance(2 * DAY)
    with pytest.raises(DelegationError, match="expired"):
        delegate_credential(user, clock, rng)
