"""GSI mutual-authentication contexts."""

import pytest

from repro.errors import AuthenticationError
from repro.gsi.context import establish_context
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(8).python("ctx")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    user = ca.issue_credential(DN.parse("/O=T/CN=alice"), lifetime=DAY)
    host = ca.issue_credential(DN.parse("/O=T/OU=hosts/CN=dtn1"), lifetime=DAY)
    trust = TrustStore()
    trust.add_anchor(ca.certificate)
    return clock, rng, ca, user, host, trust


def test_mutual_success(env):
    clock, rng, ca, user, host, trust = env
    proxy = create_proxy(user, clock, rng)
    ctx = establish_context(proxy, host, trust, trust, clock.now)
    assert ctx.initiator_identity == user.subject
    assert ctx.acceptor_identity == host.subject
    assert ctx.encrypted and ctx.integrity
    assert len(ctx.session_key) == 32


def test_acceptor_rejects_untrusted_initiator(env):
    clock, rng, ca, user, host, trust = env
    other_ca = CertificateAuthority(DN.parse("/O=X/CN=X"), clock, rng, key_bits=256)
    stranger = other_ca.issue_credential(DN.parse("/O=X/CN=eve"))
    with pytest.raises(AuthenticationError, match="rejected initiator"):
        establish_context(stranger, host, trust, trust, clock.now)


def test_initiator_rejects_untrusted_acceptor(env):
    clock, rng, ca, user, host, trust = env
    other_ca = CertificateAuthority(DN.parse("/O=X/CN=X"), clock, rng, key_bits=256)
    fake_host = other_ca.issue_credential(DN.parse("/O=X/OU=hosts/CN=evil"))
    with pytest.raises(AuthenticationError, match="rejected acceptor"):
        establish_context(user, fake_host, trust, trust, clock.now)


def test_extra_anchors_rescue_each_direction(env):
    clock, rng, ca, user, host, trust = env
    other_ca = CertificateAuthority(DN.parse("/O=X/CN=X"), clock, rng, key_bits=256)
    stranger = other_ca.issue_credential(DN.parse("/O=X/CN=bob"))
    ctx = establish_context(
        stranger, host, trust, trust, clock.now,
        acceptor_extra_anchors=[other_ca.certificate],
    )
    assert ctx.initiator_identity == stranger.subject


def test_expired_credential_fails(env):
    clock, rng, ca, user, host, trust = env
    clock.advance(2 * DAY)
    fresh_host = ca.issue_credential(DN.parse("/O=T/OU=hosts/CN=dtn2"), lifetime=DAY)
    with pytest.raises(AuthenticationError):
        establish_context(user, fresh_host, trust, trust, clock.now)


def test_peer_of(env):
    clock, rng, ca, user, host, trust = env
    ctx = establish_context(user, host, trust, trust, clock.now)
    assert ctx.peer_of(ctx.initiator_subject) == host.subject
    assert ctx.peer_of(ctx.acceptor_subject) == user.subject
    with pytest.raises(ValueError):
        ctx.peer_of(DN.parse("/CN=nobody"))
