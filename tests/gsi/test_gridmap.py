"""Gridmap files — including the failure modes GCMU eliminates."""

import pytest

from repro.errors import GridmapError
from repro.gsi.gridmap import Gridmap
from repro.pki.dn import DistinguishedName as DN

ALICE = DN.parse("/O=Grid/CN=alice")


def test_add_and_lookup():
    gm = Gridmap()
    gm.add(ALICE, "alice")
    assert gm.lookup(ALICE) == "alice"
    assert ALICE in gm


def test_stale_gridmap_raises():
    """The 'frequent source of errors and complaints' (Section IV.C)."""
    gm = Gridmap()
    with pytest.raises(GridmapError) as exc:
        gm.lookup(ALICE)
    assert exc.value.subject == str(ALICE)


def test_multiple_accounts_first_is_default():
    gm = Gridmap()
    gm.add(ALICE, "alice")
    gm.add(ALICE, "shared")
    assert gm.lookup(ALICE) == "alice"
    assert gm.lookup_all(ALICE) == ["alice", "shared"]
    assert gm.authorize(ALICE, "shared")
    assert not gm.authorize(ALICE, "root")


def test_duplicate_add_is_idempotent():
    gm = Gridmap()
    gm.add(ALICE, "alice")
    gm.add(ALICE, "alice")
    assert gm.lookup_all(ALICE) == ["alice"]


def test_remove_specific_user():
    gm = Gridmap()
    gm.add(ALICE, "a")
    gm.add(ALICE, "b")
    gm.remove(ALICE, "a")
    assert gm.lookup_all(ALICE) == ["b"]
    gm.remove(ALICE, "b")
    assert ALICE not in gm


def test_remove_all():
    gm = Gridmap()
    gm.add(ALICE, "a")
    gm.remove(ALICE)
    assert ALICE not in gm
    gm.remove(ALICE)  # removing absent entry is fine


def test_file_round_trip():
    gm = Gridmap()
    gm.add(ALICE, "alice")
    gm.add(DN.parse("/O=Grid/CN=bob"), "bob")
    gm.add(DN.parse("/O=Grid/CN=bob"), "research")
    text = gm.format_file()
    back = Gridmap.parse_file(text)
    assert back.lookup(ALICE) == "alice"
    assert back.lookup_all("/O=Grid/CN=bob") == ["bob", "research"]


def test_parse_skips_comments_and_blanks():
    text = '# comment\n\n"/O=Grid/CN=alice" alice\n'
    gm = Gridmap.parse_file(text)
    assert gm.lookup(ALICE) == "alice"


@pytest.mark.parametrize(
    "bad",
    [
        "/O=Grid/CN=x alice",  # missing quotes
        '"/O=Grid/CN=x alice',  # unterminated quote
        '"/O=Grid/CN=x"',  # no username
    ],
)
def test_parse_malformed_lines(bad):
    with pytest.raises(GridmapError):
        Gridmap.parse_file(bad)


def test_len():
    gm = Gridmap()
    gm.add(ALICE, "a")
    gm.add("/O=Grid/CN=bob", "b")
    assert len(gm) == 2
