"""GSI session resumption: keying, TTL, eviction, and the escape hatch.

The cache is a wall-clock optimization; these tests pin the security
properties that make it safe — an expired proxy can never resume, trust
changes force a full handshake, failures are never cached — plus the
bounded-LRU mechanics and the ``REPRO_NO_SESSION_CACHE`` escape hatch.
"""

import pytest

from repro.errors import AuthenticationError
from repro.gsi.context import establish_context
from repro.gsi.session_cache import (
    SessionCache,
    caching_enabled,
    default_session_cache,
    reset_default_session_cache,
)
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY, HOUR


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(13).python("ctx")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    user = ca.issue_credential(DN.parse("/O=T/CN=alice"), lifetime=DAY)
    host = ca.issue_credential(DN.parse("/O=T/OU=hosts/CN=dtn1"), lifetime=DAY)
    trust = TrustStore()
    trust.add_anchor(ca.certificate)
    return clock, rng, ca, user, host, trust


def test_repeat_establishment_resumes(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    proxy = create_proxy(user, clock, rng)
    c1 = establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    c2 = establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    assert c2 is c1  # the token replays the original context object
    assert cache.stats() == {
        "tokens": 1, "hits": 1, "misses": 1, "expirations": 0, "evictions": 0,
    }


def test_resumed_context_matches_full_handshake(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    proxy = create_proxy(user, clock, rng)
    full = establish_context(proxy, host, trust, trust, clock.now, cache=None)
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    resumed = establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    assert cache.hits == 1
    # everything the simulation reads off a context must match
    assert resumed.initiator_subject == full.initiator_subject
    assert resumed.initiator_identity == full.initiator_identity
    assert resumed.acceptor_subject == full.acceptor_subject
    assert resumed.acceptor_identity == full.acceptor_identity
    assert resumed.encrypted == full.encrypted
    assert resumed.integrity == full.integrity


def test_different_peer_is_a_miss(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    proxy = create_proxy(user, clock, rng)
    other = ca.issue_credential(DN.parse("/O=T/OU=hosts/CN=dtn2"), lifetime=DAY)
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    establish_context(proxy, other, trust, trust, clock.now, cache=cache)
    assert cache.hits == 0
    assert cache.misses == 2
    assert len(cache) == 2


def test_trust_store_version_bump_is_a_miss(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    proxy = create_proxy(user, clock, rng)
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    other_ca = CertificateAuthority(DN.parse("/O=X/CN=X"), clock, rng, key_bits=256)
    trust.add_anchor(other_ca.certificate)  # bumps trust.version
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    assert cache.hits == 0
    assert cache.misses == 2


def test_expired_proxy_cannot_resume(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    proxy = create_proxy(user, clock, rng, lifetime=12 * HOUR)
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    clock.advance(13 * HOUR)  # past the proxy, inside the EEC/host window
    # the token is dropped (TTL = credential validity) and the full
    # handshake re-runs — and rejects the expired proxy, exactly like a
    # cache-off world would
    with pytest.raises(AuthenticationError):
        establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    assert cache.expirations == 1
    assert cache.hits == 0
    assert len(cache) == 0


def test_failures_are_never_cached(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    other_ca = CertificateAuthority(DN.parse("/O=X/CN=X"), clock, rng, key_bits=256)
    stranger = other_ca.issue_credential(DN.parse("/O=X/CN=eve"))
    for _ in range(2):
        with pytest.raises(AuthenticationError):
            establish_context(stranger, host, trust, trust, clock.now, cache=cache)
    assert len(cache) == 0
    assert cache.misses == 2  # both attempts ran (and failed) in full


def test_lru_eviction_is_bounded(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache(max_entries=2)
    proxy = create_proxy(user, clock, rng)
    hosts = [
        ca.issue_credential(DN.parse(f"/O=T/OU=hosts/CN=h{i}"), lifetime=DAY)
        for i in range(3)
    ]
    for h in hosts:
        establish_context(proxy, h, trust, trust, clock.now, cache=cache)
    assert len(cache) == 2
    assert cache.evictions == 1
    # h0 was the LRU victim: re-establishing it is a miss, h2 is a hit
    establish_context(proxy, hosts[2], trust, trust, clock.now, cache=cache)
    assert cache.hits == 1
    establish_context(proxy, hosts[0], trust, trust, clock.now, cache=cache)
    assert cache.misses == 4


def test_escape_hatch_bypasses_the_default_cache(env, monkeypatch):
    clock, rng, ca, user, host, trust = env
    proxy = create_proxy(user, clock, rng)
    monkeypatch.setenv("REPRO_NO_SESSION_CACHE", "1")
    assert not caching_enabled()
    fresh = reset_default_session_cache()
    c1 = establish_context(proxy, host, trust, trust, clock.now)
    c2 = establish_context(proxy, host, trust, trust, clock.now)
    assert c1 is not c2  # both ran in full
    assert len(fresh) == 0 and fresh.hits == 0 and fresh.misses == 0
    monkeypatch.delenv("REPRO_NO_SESSION_CACHE")
    assert caching_enabled()
    establish_context(proxy, host, trust, trust, clock.now)
    establish_context(proxy, host, trust, trust, clock.now)
    assert default_session_cache().hits == 1
    reset_default_session_cache()


def test_invalidate_and_clear(env):
    clock, rng, ca, user, host, trust = env
    cache = SessionCache()
    proxy = create_proxy(user, clock, rng)
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    key = next(iter(cache._tokens))
    assert cache.invalidate(key)
    assert not cache.invalidate(key)
    establish_context(proxy, host, trust, trust, clock.now, cache=cache)
    cache.clear()
    assert len(cache) == 0
    assert cache.misses == 2  # stats survive clear()
