"""The per-user credential store."""

import pytest

from repro.errors import SecurityError
from repro.gsi.credentials import CredentialStore
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY, HOUR


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(11).python("store")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    cred = ca.issue_credential(DN.parse("/O=T/CN=alice"), lifetime=30 * DAY)
    store = CredentialStore("alice", clock, rng)
    return clock, ca, cred, store


def test_empty_store_has_nothing(env):
    clock, ca, cred, store = env
    assert not store.has_valid_credential()
    with pytest.raises(SecurityError):
        store.active_credential()


def test_grid_proxy_init_requires_long_term(env):
    clock, ca, cred, store = env
    with pytest.raises(SecurityError):
        store.grid_proxy_init()


def test_proxy_preferred_over_long_term(env):
    clock, ca, cred, store = env
    store.install_certificate(cred)
    assert store.active_credential() is cred  # no proxy yet: long-term
    proxy = store.grid_proxy_init(lifetime=12 * HOUR)
    assert store.active_credential() is proxy


def test_expired_proxy_falls_back_to_long_term(env):
    clock, ca, cred, store = env
    store.install_certificate(cred)
    store.grid_proxy_init(lifetime=1 * HOUR)
    clock.advance(2 * HOUR)
    assert store.active_credential() is cred


def test_myproxy_style_install_proxy(env):
    clock, ca, cred, store = env
    short = ca.issue_credential(DN.parse("/O=GCMU/OU=s/CN=alice"), lifetime=12 * HOUR)
    store.install_proxy(short)
    assert store.active_credential() is short
    clock.advance(13 * HOUR)
    assert not store.has_valid_credential()
