"""The gridmap authorization callout."""

import pytest

from repro.errors import AuthorizationError, GridmapError
from repro.gsi.authz import GridmapCallout
from repro.gsi.gridmap import Gridmap
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore, validate_chain
from repro.sim.clock import Clock
from repro.sim.random import RngFactory


@pytest.fixture
def validated_alice():
    clock = Clock()
    rng = RngFactory(9).python("authz")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    alice = ca.issue_credential(DN.parse("/O=T/CN=alice"))
    proxy = create_proxy(alice, clock, rng)
    trust = TrustStore()
    trust.add_anchor(ca.certificate)
    return validate_chain(proxy.chain, trust, clock.now)


def test_maps_identity_not_proxy_subject(validated_alice):
    gm = Gridmap()
    gm.add(DN.parse("/O=T/CN=alice"), "alice")
    callout = GridmapCallout(gm)
    assert callout.map_subject(validated_alice) == "alice"


def test_requested_user_honoured_when_authorized(validated_alice):
    gm = Gridmap()
    gm.add(DN.parse("/O=T/CN=alice"), "alice")
    gm.add(DN.parse("/O=T/CN=alice"), "project42")
    callout = GridmapCallout(gm)
    assert callout.map_subject(validated_alice, "project42") == "project42"


def test_requested_user_denied_when_not_mapped(validated_alice):
    gm = Gridmap()
    gm.add(DN.parse("/O=T/CN=alice"), "alice")
    callout = GridmapCallout(gm)
    with pytest.raises(AuthorizationError):
        callout.map_subject(validated_alice, "root")


def test_missing_entry_raises_gridmap_error(validated_alice):
    callout = GridmapCallout(Gridmap())
    with pytest.raises(GridmapError):
        callout.map_subject(validated_alice)
