"""Route memoization: hot (src, dst) pairs stop re-walking the graph."""

import pytest

from repro.sim.world import World
from repro.util.units import gbps


@pytest.fixture
def world():
    return World(seed=0)


def _triangle(net):
    net.add_host("a")
    net.add_host("b")
    net.add_router("r")
    net.add_link("a", "r", gbps(10), 0.010)
    net.add_link("r", "b", gbps(10), 0.010)


def test_path_is_memoized(world):
    net = world.network
    _triangle(net)
    first = net.path("a", "b")
    info = net.route_cache_info()
    second = net.path("a", "b")
    assert second is first  # PathStats is frozen, sharing is safe
    assert net.route_cache_info()["hits"] == info["hits"] + 1


def test_loopback_path_is_memoized(world):
    net = world.network
    net.add_host("a")
    assert net.path("a", "a") is net.path("a", "a")


def test_path_links_returns_fresh_lists(world):
    net = world.network
    _triangle(net)
    links = net.path_links("a", "b")
    links.append("garbage")
    assert net.path_links("a", "b") != links  # cache is not corrupted


def test_topology_mutation_invalidates_routes(world):
    net = world.network
    _triangle(net)
    before = net.path("a", "b")
    assert before.hop_count == 2
    # a faster direct route appears: the cache must not keep serving the
    # stale two-hop path
    net.add_link("a", "b", gbps(10), 0.001)
    after = net.path("a", "b")
    assert after is not before
    assert after.hop_count == 1


def test_add_host_invalidates_routes(world):
    net = world.network
    _triangle(net)
    net.path("a", "b")
    net.add_host("c")
    assert net.route_cache_info()["cached_paths"] == 0


def test_cache_counters_shape(world):
    net = world.network
    _triangle(net)
    net.path("a", "b")
    net.path("a", "b")
    info = net.route_cache_info()
    assert set(info) == {"hits", "misses", "cached_paths", "cached_link_walks"}
    assert info["hits"] >= 1
    assert info["misses"] >= 1
    assert info["cached_paths"] == 1
