"""Topology, routing, path statistics."""

import pytest

from repro.errors import LinkDownError, NetworkError, NoRouteError
from repro.sim.world import World
from repro.util.units import gbps, mbps


@pytest.fixture
def world():
    return World(seed=0)


def test_add_host_and_lookup(world):
    h = world.network.add_host("a", nic_bps=gbps(1))
    assert world.network.host("a") is h
    with pytest.raises(NetworkError):
        world.network.host("missing")


def test_duplicate_host_rejected(world):
    world.network.add_host("a")
    with pytest.raises(NetworkError):
        world.network.add_host("a")


def test_link_requires_existing_hosts(world):
    world.network.add_host("a")
    with pytest.raises(NetworkError):
        world.network.add_link("a", "ghost", gbps(1), 0.01)


def test_self_link_rejected(world):
    world.network.add_host("a")
    with pytest.raises(NetworkError):
        world.network.add_link("a", "a", gbps(1), 0.01)


def test_link_validation():
    from repro.net.topology import Link

    with pytest.raises(ValueError):
        Link("l", "a", "b", bandwidth_bps=0, latency_s=0.01)
    with pytest.raises(ValueError):
        Link("l", "a", "b", bandwidth_bps=1e9, latency_s=-1)
    with pytest.raises(ValueError):
        Link("l", "a", "b", bandwidth_bps=1e9, latency_s=0.0, loss=1.0)


def test_path_stats_direct_link(world):
    net = world.network
    net.add_host("a", nic_bps=gbps(10))
    net.add_host("b", nic_bps=gbps(1))
    net.add_link("a", "b", gbps(10), 0.025, loss=1e-4)
    p = net.path("a", "b")
    assert p.rtt_s == pytest.approx(0.05)
    assert p.bottleneck_bps == gbps(1)  # b's NIC caps it
    assert p.loss == pytest.approx(1e-4)
    assert p.hop_count == 1


def test_multihop_path_through_router(world):
    net = world.network
    net.add_host("a")
    net.add_host("b")
    net.add_router("core")
    net.add_link("a", "core", gbps(10), 0.01, loss=1e-5)
    net.add_link("core", "b", mbps(100), 0.02, loss=1e-5)
    p = net.path("a", "b")
    assert p.hop_count == 2
    assert p.rtt_s == pytest.approx(0.06)
    assert p.bottleneck_bps == mbps(100)
    # losses compose: 1-(1-p1)(1-p2)
    assert p.loss == pytest.approx(1 - (1 - 1e-5) ** 2)


def test_end_hosts_do_not_forward(world):
    net = world.network
    net.add_host("a")
    net.add_host("b")
    net.add_host("middle")  # NOT a router
    net.add_link("a", "middle", gbps(1), 0.001)
    net.add_link("middle", "b", gbps(1), 0.001)
    with pytest.raises(NoRouteError):
        net.path("a", "b")


def test_routing_prefers_lower_latency(world):
    net = world.network
    net.add_host("a")
    net.add_host("b")
    net.add_router("fast")
    net.add_router("slow")
    net.add_link("a", "fast", gbps(1), 0.005)
    net.add_link("fast", "b", gbps(1), 0.005)
    net.add_link("a", "slow", gbps(10), 0.05)
    net.add_link("slow", "b", gbps(10), 0.05)
    p = net.path("a", "b")
    assert p.rtt_s == pytest.approx(0.02)


def test_loopback_path(world):
    net = world.network
    net.add_host("a", nic_bps=gbps(10))
    p = net.path("a", "a")
    assert p.hop_count == 0
    assert p.loss == 0.0
    assert p.rtt_s > 0
    assert p.bottleneck_bps <= gbps(10)


def test_no_route_raises(world):
    net = world.network
    net.add_host("a")
    net.add_host("island")
    with pytest.raises(NoRouteError):
        net.path("a", "island")


def test_path_up_and_fault_check(world):
    net = world.network
    net.add_host("a")
    net.add_host("b")
    link = net.add_link("a", "b", gbps(1), 0.01)
    p = net.path("a", "b")
    assert net.path_up(p)
    world.faults.cut_link(link.link_id, at=0.0, duration=10.0)
    assert not net.path_up(p)
    with pytest.raises(LinkDownError):
        net.check_path_up(p)
    world.advance(10.0)
    assert net.path_up(p)


def test_host_fault_downs_path(world):
    net = world.network
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", gbps(1), 0.01)
    p = net.path("a", "b")
    world.faults.crash_host("b", at=0.0, duration=5.0)
    assert not net.path_up(p)


def test_ephemeral_ports_unique(world):
    ports = {world.network.ephemeral_port() for _ in range(100)}
    assert len(ports) == 100


def test_link_other_end(world):
    net = world.network
    net.add_host("a")
    net.add_host("b")
    link = net.add_link("a", "b", gbps(1), 0.01)
    assert link.other_end("a") == "b"
    assert link.other_end("b") == "a"
    with pytest.raises(ValueError):
        link.other_end("c")
