"""The TCP performance model: the physics behind every throughput claim."""

import math

import pytest

from repro.net.tcp import (
    MATHIS_C,
    TCPModel,
    slow_start_penalty_s,
    tcp_aggregate_rate,
    tcp_stream_rate,
    tcp_transfer_time,
)
from repro.net.topology import PathStats
from repro.util.units import GB, KB, MB, gbps


def make_path(rtt=0.1, bw=gbps(10), loss=0.0):
    return PathStats(
        src="a", dst="b", rtt_s=rtt, bottleneck_bps=bw, loss=loss,
        link_ids=("l1",), hosts=("a", "b"),
    )


def test_window_limit_dominates_on_long_fat_pipe():
    # 64 KiB window / 100 ms RTT = ~5.24 Mb/s, far below 10 Gb/s
    path = make_path(rtt=0.1, bw=gbps(10))
    rate = tcp_stream_rate(path, TCPModel.untuned())
    assert rate == pytest.approx(64 * KB * 8 / 0.1)
    assert rate < gbps(10) / 100


def test_zero_rtt_gives_bottleneck():
    path = make_path(rtt=0.0, bw=gbps(10))
    assert tcp_stream_rate(path, TCPModel.untuned()) == gbps(10)


def test_mathis_limit_with_loss():
    path = make_path(rtt=0.1, bw=gbps(100), loss=1e-4)
    model = TCPModel.tuned(1 * GB)  # window not the constraint
    expected = 1460 * 8 * MATHIS_C / (0.1 * math.sqrt(1e-4))
    assert tcp_stream_rate(path, model) == pytest.approx(expected)


def test_parallel_streams_scale_until_bottleneck():
    path = make_path(rtt=0.1, bw=gbps(1), loss=0.0)
    model = TCPModel.untuned()
    one = tcp_aggregate_rate(path, 1, model)
    eight = tcp_aggregate_rate(path, 8, model)
    assert eight == pytest.approx(8 * one)
    # enough streams saturate the bottleneck and stop scaling
    many = tcp_aggregate_rate(path, 10_000, model)
    assert many == gbps(1)


def test_parallel_streams_requires_positive():
    path = make_path()
    with pytest.raises(ValueError):
        tcp_aggregate_rate(path, 0, TCPModel.untuned())


def test_bigger_window_never_slower():
    path = make_path(rtt=0.05, bw=gbps(10), loss=1e-5)
    small = tcp_stream_rate(path, TCPModel().with_window(64 * KB))
    big = tcp_stream_rate(path, TCPModel().with_window(16 * MB))
    assert big >= small


def test_more_loss_never_faster():
    model = TCPModel.tuned()
    r_low = tcp_stream_rate(make_path(loss=1e-6), model)
    r_high = tcp_stream_rate(make_path(loss=1e-3), model)
    assert r_high <= r_low


def test_slow_start_penalty_grows_with_bdp():
    model = TCPModel.tuned()
    short = slow_start_penalty_s(make_path(rtt=0.01), gbps(1), model)
    long = slow_start_penalty_s(make_path(rtt=0.2), gbps(1), model)
    assert long > short


def test_slow_start_penalty_zero_for_tiny_rates():
    model = TCPModel()
    # steady window below the initial cwnd: no ramp needed
    assert slow_start_penalty_s(make_path(rtt=0.1), 1e5, model) == 0.0


def test_transfer_time_components():
    path = make_path(rtt=0.1, bw=gbps(1))
    model = TCPModel.tuned(16 * MB)
    t = tcp_transfer_time(1 * GB, path, streams=4, model=model)
    payload = 1 * GB * 8 / tcp_aggregate_rate(path, 4, model)
    assert t > payload  # handshake + ramp on top
    t_no_hs = tcp_transfer_time(1 * GB, path, streams=4, model=model, include_handshake=False)
    assert t_no_hs < t


def test_transfer_time_zero_bytes():
    path = make_path()
    t = tcp_transfer_time(0, path, model=TCPModel())
    assert t == pytest.approx(TCPModel().handshake_rtts * path.rtt_s)


def test_transfer_time_negative_bytes_rejected():
    with pytest.raises(ValueError):
        tcp_transfer_time(-1, make_path())


def test_untuned_vs_tuned_headline():
    """The claim that motivates GridFTP: tuned+parallel beats naive 100x+."""
    path = make_path(rtt=0.1, bw=gbps(10), loss=1e-5)
    naive = tcp_aggregate_rate(path, 1, TCPModel.untuned())
    gridftp_like = tcp_aggregate_rate(path, 16, TCPModel.tuned(16 * MB))
    assert gridftp_like / naive > 100
