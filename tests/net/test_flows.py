"""Bandwidth sharing among concurrent flows."""

import pytest

from repro.net.flows import (
    aggregate_rate,
    batch_transfer_time,
    fair_share,
    serial_batch_time,
)
from repro.util.units import MB, gbps, mbps


def test_fair_share_bottleneck_bound():
    assert fair_share(gbps(1), gbps(1), 4) == pytest.approx(gbps(1) / 4)


def test_fair_share_flow_limit_bound():
    # flows too weak to saturate the bottleneck keep their own limit
    assert fair_share(gbps(10), mbps(50), 4) == mbps(50)


def test_fair_share_requires_positive_k():
    with pytest.raises(ValueError):
        fair_share(gbps(1), gbps(1), 0)


def test_aggregate_rate_caps_at_bottleneck():
    agg = aggregate_rate(gbps(1), mbps(800), 4)
    assert agg == pytest.approx(gbps(1))


def test_batch_time_concurrency_helps_weak_flows():
    sizes = [100 * MB] * 16
    serial = batch_transfer_time(sizes, mbps(50), gbps(10), concurrency=1)
    concurrent = batch_transfer_time(sizes, mbps(50), gbps(10), concurrency=8)
    assert concurrent < serial / 4


def test_batch_time_concurrency_no_gain_when_saturated():
    sizes = [100 * MB] * 8
    one = batch_transfer_time(sizes, gbps(10), gbps(1), concurrency=1)
    many = batch_transfer_time(sizes, gbps(10), gbps(1), concurrency=8)
    assert many == pytest.approx(one, rel=0.01)


def test_batch_time_includes_per_item_overhead():
    sizes = [1 * MB] * 10
    cheap = batch_transfer_time(sizes, gbps(1), gbps(1), 1, per_item_overhead_s=0.0)
    costly = batch_transfer_time(sizes, gbps(1), gbps(1), 1, per_item_overhead_s=0.5)
    assert costly == pytest.approx(cheap + 5.0)


def test_batch_time_empty():
    assert batch_transfer_time([], gbps(1), gbps(1), 4) == 0.0


def test_batch_time_invalid_concurrency():
    with pytest.raises(ValueError):
        batch_transfer_time([1], gbps(1), gbps(1), 0)


def test_serial_batch_time():
    t = serial_batch_time([MB, MB], mbps(8), per_item_overhead_s=1.0)
    assert t == pytest.approx(2 * MB * 8 / mbps(8) + 2.0)
