"""Listeners and connection setup."""

import pytest

from repro.errors import ConnectionRefusedError_, PortInUseError
from repro.net.sockets import ServerSession, Service, connect, listen, listen_ephemeral, close_listener
from repro.sim.world import World
from repro.util.units import gbps


class EchoSession(ServerSession):
    def __init__(self, client):
        self.client = client

    def handle(self, line):
        return [f"echo:{line}"]


class EchoService(Service):
    def __init__(self):
        self.accepted = []

    def open_session(self, client_host):
        self.accepted.append(client_host)
        return EchoSession(client_host)


@pytest.fixture
def net_world():
    w = World(seed=0)
    w.network.add_host("srv")
    w.network.add_host("cli")
    w.network.add_link("srv", "cli", gbps(1), 0.01)
    return w


def test_listen_and_connect(net_world):
    svc = EchoService()
    listen(net_world.network, "srv", 2811, svc)
    session, path = connect(net_world.network, "cli", ("srv", 2811))
    assert svc.accepted == ["cli"]
    assert session.handle("hi") == ["echo:hi"]
    assert path.rtt_s == pytest.approx(0.02)


def test_connect_charges_handshake_time(net_world):
    listen(net_world.network, "srv", 2811, EchoService())
    before = net_world.now
    connect(net_world.network, "cli", ("srv", 2811))
    assert net_world.now == pytest.approx(before + 1.5 * 0.02)


def test_connect_refused_without_listener(net_world):
    with pytest.raises(ConnectionRefusedError_):
        connect(net_world.network, "cli", ("srv", 9999))


def test_port_conflict(net_world):
    listen(net_world.network, "srv", 2811, EchoService())
    with pytest.raises(PortInUseError):
        listen(net_world.network, "srv", 2811, EchoService())


def test_close_listener_frees_port(net_world):
    l = listen(net_world.network, "srv", 2811, EchoService())
    close_listener(net_world.network, l)
    with pytest.raises(ConnectionRefusedError_):
        connect(net_world.network, "cli", ("srv", 2811))
    listen(net_world.network, "srv", 2811, EchoService())  # rebindable


def test_ephemeral_listener(net_world):
    l1 = listen_ephemeral(net_world.network, "srv", EchoService())
    l2 = listen_ephemeral(net_world.network, "srv", EchoService())
    assert l1.port != l2.port
    session, _ = connect(net_world.network, "cli", l1.address)
    assert session.handle("x") == ["echo:x"]


def test_connect_fails_when_link_down(net_world):
    listen(net_world.network, "srv", 2811, EchoService())
    link = list(net_world.network.links)[0]
    net_world.faults.cut_link(link, at=0.0, duration=60.0)
    from repro.errors import LinkDownError

    with pytest.raises(LinkDownError):
        connect(net_world.network, "cli", ("srv", 2811))
