"""The UDT transport model."""

import pytest

from repro.net.tcp import TCPModel, tcp_stream_rate
from repro.net.topology import PathStats
from repro.net.udt import UDTModel
from repro.util.units import GB, gbps


def make_path(rtt=0.1, bw=gbps(10), loss=0.0):
    return PathStats(
        src="a", dst="b", rtt_s=rtt, bottleneck_bps=bw, loss=loss,
        link_ids=("l1",), hosts=("a", "b"),
    )


def test_rate_is_efficiency_fraction_of_bottleneck():
    m = UDTModel(efficiency=0.9)
    assert m.stream_rate(make_path()) == pytest.approx(0.9 * gbps(10))


def test_rate_insensitive_to_rtt():
    m = UDTModel()
    assert m.stream_rate(make_path(rtt=0.001)) == m.stream_rate(make_path(rtt=0.5))


def test_rate_insensitive_to_small_loss():
    m = UDTModel()
    assert m.stream_rate(make_path(loss=0.005)) == m.stream_rate(make_path(loss=0.0))


def test_rate_degrades_beyond_tolerance():
    m = UDTModel(loss_tolerance=0.01)
    clean = m.stream_rate(make_path(loss=0.0))
    lossy = m.stream_rate(make_path(loss=0.05))
    assert 0 < lossy < clean


def test_udt_beats_single_tcp_on_lossy_lfn():
    """The reason the XIO UDT driver exists (paper refs [8], [9])."""
    path = make_path(rtt=0.2, bw=gbps(10), loss=1e-4)
    udt = UDTModel().stream_rate(path)
    tcp = tcp_stream_rate(path, TCPModel.tuned())
    assert udt > 10 * tcp


def test_transfer_time():
    m = UDTModel(efficiency=1.0, handshake_rtts=0.0)
    path = make_path(bw=gbps(8))
    assert m.transfer_time(1 * GB, path) == pytest.approx(1 * GB * 8 / gbps(8))


def test_transfer_time_rejects_negative():
    with pytest.raises(ValueError):
        UDTModel().transfer_time(-1, make_path())
