"""Control channels: RTT accounting and pipelining."""

import pytest

from repro.errors import NetworkError
from repro.net.channel import ControlChannel
from repro.net.sockets import ServerSession, Service, listen
from repro.sim.world import World
from repro.util.units import gbps


class CountingSession(ServerSession):
    def __init__(self):
        self.lines = []

    def handle(self, line):
        self.lines.append(line)
        return [f"200 ok {len(self.lines)}"]


class CountingService(Service):
    def __init__(self):
        self.session = CountingSession()

    def open_session(self, client_host):
        return self.session


@pytest.fixture
def setup():
    w = World(seed=0)
    w.network.add_host("srv")
    w.network.add_host("cli")
    w.network.add_link("srv", "cli", gbps(1), 0.05)  # rtt = 0.1
    svc = CountingService()
    listen(w.network, "srv", 2811, svc)
    return w, svc


def test_request_charges_one_rtt(setup):
    w, svc = setup
    ch = ControlChannel(w.network, "cli", ("srv", 2811))
    t0 = w.now
    reply = ch.request("NOOP")
    assert reply == ["200 ok 1"]
    assert w.now - t0 == pytest.approx(0.1 + ch.proc_time_s)


def test_pipeline_charges_one_rtt_total(setup):
    w, svc = setup
    ch = ControlChannel(w.network, "cli", ("srv", 2811))
    t0 = w.now
    replies = ch.pipeline([f"CMD{i}" for i in range(50)])
    elapsed = w.now - t0
    assert len(replies) == 50
    # one RTT + 50 processing times, NOT 50 RTTs
    assert elapsed == pytest.approx(0.1 + 50 * ch.proc_time_s)
    assert elapsed < 50 * 0.1


def test_pipelining_advantage_grows_with_count(setup):
    w, svc = setup
    ch = ControlChannel(w.network, "cli", ("srv", 2811))
    t0 = w.now
    for i in range(20):
        ch.request(f"CMD{i}")
    serial = w.now - t0
    t1 = w.now
    ch.pipeline([f"CMD{i}" for i in range(20)])
    pipelined = w.now - t1
    assert serial / pipelined > 10


def test_pipeline_empty(setup):
    w, svc = setup
    ch = ControlChannel(w.network, "cli", ("srv", 2811))
    t0 = w.now
    assert ch.pipeline([]) == []
    assert w.now == t0


def test_closed_channel_rejects_requests(setup):
    w, svc = setup
    ch = ControlChannel(w.network, "cli", ("srv", 2811))
    ch.close()
    with pytest.raises(NetworkError):
        ch.request("NOOP")
    ch.close()  # idempotent


def test_request_fails_when_path_down(setup):
    w, svc = setup
    ch = ControlChannel(w.network, "cli", ("srv", 2811))
    link = list(w.network.links)[0]
    w.faults.cut_link(link, at=w.now, duration=60.0)
    from repro.errors import LinkDownError

    with pytest.raises(LinkDownError):
        ch.request("NOOP")
