"""MyProxy protocol messages."""

import pytest

from repro.errors import ProtocolError
from repro.myproxy.protocol import LogonRequest, LogonResponse


def test_request_round_trip():
    req = LogonRequest(username="alice", passphrase="p@ss w0rd/()", lifetime_s=43200)
    back = LogonRequest.decode(req.encode())
    assert back == req


def test_request_hides_cleartext():
    req = LogonRequest(username="alice", passphrase="hunter2", lifetime_s=1)
    assert "hunter2" not in req.encode()


def test_request_malformed():
    with pytest.raises(ProtocolError):
        LogonRequest.decode("LOGON onlyonefield")
    with pytest.raises(ProtocolError):
        LogonRequest.decode("GET / HTTP/1.1")


def test_response_ok_round_trip():
    resp = LogonResponse(ok=True, credential_pem="-----BEGIN CERTIFICATE-----\nxx\n")
    back = LogonResponse.decode(resp.encode())
    assert back.ok
    assert back.credential_pem == resp.credential_pem


def test_response_err_round_trip():
    resp = LogonResponse(ok=False, error="authentication failure")
    back = LogonResponse.decode(resp.encode())
    assert not back.ok
    assert back.error == "authentication failure"


def test_response_malformed():
    with pytest.raises(ProtocolError):
        LogonResponse.decode("WHAT even")
