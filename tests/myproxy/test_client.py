"""myproxy-logon, the client side."""

import pytest

from repro.auth import Control, LdapDirectory, LdapPamModule, PamStack
from repro.errors import AuthenticationError, ConnectionRefusedError_
from repro.myproxy.client import myproxy_logon
from repro.myproxy.server import MyProxyOnlineCA
from repro.pki.validation import TrustStore
from repro.util.units import gbps


@pytest.fixture
def env(world):
    net = world.network
    net.add_host("dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn", "laptop", gbps(1), 0.02)
    ldap = LdapDirectory()
    ldap.add_entry("alice", "pw")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    myproxy = MyProxyOnlineCA(world, "dtn", "alcf", pam).start()
    return world, myproxy


def test_logon_returns_credential(env):
    world, myproxy = env
    cred = myproxy_logon(world, "laptop", myproxy, "alice", "pw")
    assert cred.subject.common_name == "alice"
    assert cred.valid_at(world.now)


def test_logon_bootstraps_trust(env):
    """The -b flag: the site CA lands in the client's trust store."""
    world, myproxy = env
    trust = TrustStore()
    myproxy_logon(world, "laptop", myproxy, "alice", "pw", trust=trust)
    assert trust.find_anchor(myproxy.ca.certificate) is not None


def test_logon_without_bootstrap(env):
    world, myproxy = env
    trust = TrustStore()
    myproxy_logon(world, "laptop", myproxy, "alice", "pw", trust=trust,
                  bootstrap_trust=False)
    assert len(trust) == 0


def test_bad_password_raises(env):
    world, myproxy = env
    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", myproxy, "alice", "nope")


def test_logon_costs_network_time(env):
    world, myproxy = env
    t0 = world.now
    myproxy_logon(world, "laptop", myproxy, "alice", "pw")
    # handshake + request round trip + server processing
    assert world.now - t0 > 0.04


def test_logon_to_address_tuple(env):
    world, myproxy = env
    cred = myproxy_logon(world, "laptop", ("dtn", MyProxyOnlineCA.DEFAULT_PORT),
                         "alice", "pw")
    assert cred.subject.common_name == "alice"


def test_no_server_listening(env):
    world, myproxy = env
    with pytest.raises(ConnectionRefusedError_):
        myproxy_logon(world, "laptop", ("dtn", 9999), "alice", "pw")
