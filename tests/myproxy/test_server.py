"""The MyProxy Online CA server."""

import pytest

from repro.auth import Control, LdapDirectory, LdapPamModule, PamStack
from repro.errors import PamError
from repro.myproxy.server import MyProxyOnlineCA
from repro.pki.dn import DistinguishedName as DN
from repro.pki.validation import TrustStore, validate_chain
from repro.util.units import DAY, HOUR
from repro.util.units import gbps


@pytest.fixture
def ca_env(world):
    world.network.add_host("dtn", nic_bps=gbps(10))
    ldap = LdapDirectory()
    ldap.add_entry("alice", "pw")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    myproxy = MyProxyOnlineCA(world, "dtn", "alcf", pam).start()
    return world, ldap, myproxy


def test_logon_issues_short_lived_cert(ca_env):
    world, ldap, myproxy = ca_env
    cred = myproxy.logon("alice", "pw")
    assert cred.certificate.lifetime() == 12 * HOUR
    assert myproxy.issued_count == 1


def test_username_embedded_in_dn(ca_env):
    """Paper Section IV: 'It embeds the local username in the DN'."""
    world, ldap, myproxy = ca_env
    cred = myproxy.logon("alice", "pw")
    assert str(cred.subject) == "/O=GCMU/OU=alcf/CN=alice"
    assert cred.subject.common_name == "alice"
    assert cred.certificate.extensions["issued_by_service"] == "myproxy:alcf"


def test_bad_password_rejected(ca_env):
    world, ldap, myproxy = ca_env
    with pytest.raises(PamError):
        myproxy.logon("alice", "wrong")
    assert myproxy.issued_count == 0
    # and the event log shows no issuance
    assert world.log.count("myproxy.issue") == 0


def test_unknown_user_rejected_with_same_error(ca_env):
    world, ldap, myproxy = ca_env
    msg1 = msg2 = None
    try:
        myproxy.logon("alice", "wrong")
    except PamError as e:
        msg1 = str(e)
    try:
        myproxy.logon("ghost", "pw")
    except PamError as e:
        msg2 = str(e)
    assert msg1 == msg2


def test_lifetime_capped(ca_env):
    world, ldap, myproxy = ca_env
    cred = myproxy.logon("alice", "pw", lifetime_s=365 * DAY)
    assert cred.certificate.lifetime() <= myproxy.max_lifetime_s


def test_issued_cert_validates_against_site_ca(ca_env):
    world, ldap, myproxy = ca_env
    cred = myproxy.logon("alice", "pw")
    trust = TrustStore()
    trust.add_anchor(myproxy.ca.certificate, policy=myproxy.ca.policy)
    result = validate_chain(cred.chain, trust, world.now)
    assert result.identity.common_name == "alice"
    assert result.policy_checked


def test_cert_expires(ca_env):
    world, ldap, myproxy = ca_env
    cred = myproxy.logon("alice", "pw")
    world.advance(13 * HOUR)
    assert not cred.valid_at(world.now)


def test_ca_namespace_policy_restricts_site(ca_env):
    world, ldap, myproxy = ca_env
    assert myproxy.ca.policy.permits(DN.parse("/O=GCMU/OU=alcf/CN=x"))
    assert not myproxy.ca.policy.permits(DN.parse("/O=GCMU/OU=nersc/CN=x"))


def test_session_handles_protocol(ca_env):
    world, ldap, myproxy = ca_env
    from repro.myproxy.protocol import LogonRequest, LogonResponse

    session = myproxy.open_session("laptop")
    reply = session.handle(LogonRequest("alice", "pw", 3600).encode())
    resp = LogonResponse.decode(reply[0])
    assert resp.ok
    bad = LogonResponse.decode(
        session.handle(LogonRequest("alice", "nope", 3600).encode())[0]
    )
    assert not bad.ok
    garbage = LogonResponse.decode(session.handle("garbage line")[0])
    assert not garbage.ok


def test_logon_charges_processing_time(ca_env):
    world, ldap, myproxy = ca_env
    from repro.myproxy.protocol import LogonRequest

    session = myproxy.open_session("laptop")
    t0 = world.now
    session.handle(LogonRequest("alice", "pw", 3600).encode())
    assert world.now > t0
