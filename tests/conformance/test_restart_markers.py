"""Restart-marker wire-format conformance matrix.

Every case the REST argument grammar admits (or must reject), pinned in
one table: round-trips, the stream-mode single-offset form, coalescing
on parse, and the malformed space — including the inverted-range case —
all answered with ProtocolError 501, matching RFC 959's "syntax error in
parameters" reply for a bad REST argument.
"""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.restart import (
    ByteRangeSet,
    format_restart_marker,
    marker_reply_line,
    parse_restart_marker,
)

# -- well-formed: (wire text, canonical ranges) ------------------------------

VALID = [
    ("", []),
    ("   ", []),
    ("0-100", [(0, 100)]),
    ("0-100,200-300", [(0, 100), (200, 300)]),
    # whitespace tolerated around parts
    (" 0-100 , 200-300 ", [(0, 100), (200, 300)]),
    # unsorted input parses to the sorted canonical form
    ("200-300,0-100", [(0, 100), (200, 300)]),
    # overlapping and adjacent ranges coalesce
    ("0-100,50-150", [(0, 150)]),
    ("0-100,100-200", [(0, 200)]),
    ("0-100,100-200,200-300", [(0, 300)]),
    # empty ranges vanish
    ("5-5", []),
    ("0-100,42-42", [(0, 100)]),
    # duplicates collapse
    ("0-10,0-10", [(0, 10)]),
    # stream-mode single offset: "resume from 12345" == [0, 12345) held
    ("12345", [(0, 12345)]),
    ("0", []),
    # large offsets survive exactly (no float rounding)
    ("0-1099511627776", [(0, 1 << 40)]),
]


@pytest.mark.parametrize("text,expected", VALID, ids=[t or "<empty>" for t, _ in VALID])
def test_parse_valid(text, expected):
    assert parse_restart_marker(text).ranges == expected


# -- malformed: every rejection is a ProtocolError with code 501 --------------

MALFORMED = [
    "garbage",
    "10-",
    "-10",
    "-",
    "1-2-3",
    "0x10-0x20",
    "10.5-20",
    "1e3-2e3",
    "0-100,",
    ",0-100",
    "0-100,,200-300",
    "0-100;200-300",
    "100-50",          # inverted range
    "0-100,300-200",   # inverted range after a valid one
    "-5-10",           # negative start parses as inverted/invalid
    "12345x",          # stream-mode offset with trailing junk
]


@pytest.mark.parametrize("text", MALFORMED)
def test_parse_malformed_is_protocol_error_501(text):
    with pytest.raises(ProtocolError) as exc:
        parse_restart_marker(text)
    assert exc.value.code == 501


def test_inverted_range_names_the_offender():
    with pytest.raises(ProtocolError, match="100-50"):
        parse_restart_marker("0-10,100-50")


# -- round trips --------------------------------------------------------------

ROUND_TRIP = [
    [],
    [(0, 100)],
    [(0, 100), (200, 300)],
    [(0, 1), (2, 3), (4, 5), (6, 7)],
    [(1 << 30, 1 << 31)],
]


@pytest.mark.parametrize("ranges", ROUND_TRIP, ids=str)
def test_format_parse_round_trip(ranges):
    marker = ByteRangeSet(ranges)
    assert parse_restart_marker(format_restart_marker(marker)) == marker


def test_parse_format_canonicalizes():
    """parse->format is a normal form: stable under a second pass."""
    text = "200-300,0-100,100-150"
    once = format_restart_marker(parse_restart_marker(text))
    assert once == "0-150,200-300"
    assert format_restart_marker(parse_restart_marker(once)) == once


def test_marker_reply_line():
    assert marker_reply_line(ByteRangeSet([(0, 100)])) == "111 Range Marker 0-100"


# -- the server-side REST command answers the same way ------------------------

def test_rest_command_rejects_inverted_range_on_the_wire(simple_pair):
    world, site, laptop = simple_pair
    client = site.client_for(world, "alice", laptop)
    session = client.connect(site.server)
    reply = session.channel.request("REST 100-50")
    assert reply[-1].startswith("501")


def test_rest_command_accepts_and_stores_ranges(simple_pair):
    world, site, laptop = simple_pair
    client = site.client_for(world, "alice", laptop)
    session = client.connect(site.server)
    session.channel.request("REST 0-100,200-300")
    assert session.server_session.restart.ranges == [(0, 100), (200, 300)]
