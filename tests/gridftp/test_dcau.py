"""Data channel authentication — the Figure 4 logic in isolation."""

import pytest

from repro.errors import DCAUError
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode, authenticate_data_channel
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(20).python("dcau")
    ca_a = CertificateAuthority(DN.parse("/O=A/CN=CA-A"), clock, rng, key_bits=256)
    ca_b = CertificateAuthority(DN.parse("/O=B/CN=CA-B"), clock, rng, key_bits=256)
    cred_a = create_proxy(
        ca_a.issue_credential(DN.parse("/O=A/CN=alice"), lifetime=DAY), clock, rng
    )
    cred_b = create_proxy(
        ca_b.issue_credential(DN.parse("/O=B/CN=asmith"), lifetime=DAY), clock, rng
    )
    trust_a = TrustStore(); trust_a.add_anchor(ca_a.certificate)
    trust_b = TrustStore(); trust_b.add_anchor(ca_b.certificate)
    return clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b


def side(mode, cred, trust, expected=None, name="ep", anchors=(), inters=(), override=None):
    return DataChannelSecurity(
        mode=mode, credential=cred, trust=trust, expected_identity=expected,
        endpoint_name=name, extra_anchors=tuple(anchors),
        extra_intermediates=tuple(inters), expected_subject_override=override,
    )


def test_both_none_skips_auth(env):
    clock, *_ = env
    ran = authenticate_data_channel(
        side(DCAUMode.NONE, None, TrustStore()),
        side(DCAUMode.NONE, None, TrustStore()),
        clock.now,
    )
    assert ran is False


def test_mode_mismatch_rejected(env):
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    with pytest.raises(DCAUError, match="mismatch"):
        authenticate_data_channel(
            side(DCAUMode.NONE, None, TrustStore()),
            side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity),
            clock.now,
        )


def test_same_domain_mode_a_succeeds(env):
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    ran = authenticate_data_channel(
        side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity, "A"),
        side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity, "B-same-domain"),
        clock.now,
    )
    assert ran is True


def test_figure4_cross_domain_fails(env):
    """Endpoint B can't validate credential A: DCAUError, naming B."""
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    with pytest.raises(DCAUError, match="endpoint-B"):
        authenticate_data_channel(
            side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity, "endpoint-A"),
            side(DCAUMode.SELF, cred_b, trust_b, cred_b.identity, "endpoint-B"),
            clock.now,
        )


def test_figure5_dcsc_context_fixes_cross_domain(env):
    """B presents/accepts credential A with the blob's anchors."""
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    b_side = side(
        DCAUMode.SELF, cred_a, trust_b, cred_b.identity, "endpoint-B",
        anchors=[c for c in cred_a.chain if c.is_self_signed],
        inters=[c for c in cred_a.chain if not c.is_self_signed],
        override=cred_a.identity,
    )
    ran = authenticate_data_channel(
        side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity, "endpoint-A"),
        b_side,
        clock.now,
    )
    assert ran is True


def test_mode_a_wrong_identity_rejected(env):
    """Valid chain but different user: mode A must refuse."""
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    rng = RngFactory(21).python("x")
    mallory = create_proxy(
        ca_a.issue_credential(DN.parse("/O=A/CN=mallory"), lifetime=DAY), clock, rng
    )
    with pytest.raises(DCAUError, match="expected data-channel identity"):
        authenticate_data_channel(
            side(DCAUMode.SELF, mallory, trust_a, mallory.identity, "A"),
            side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity, "B"),
            clock.now,
        )


def test_subject_mode_checks_given_subject(env):
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    ok = side(DCAUMode.SUBJECT, cred_a, trust_a, DN.parse("/O=A/CN=alice"), "B")
    authenticate_data_channel(
        side(DCAUMode.SUBJECT, cred_a, trust_a, DN.parse("/O=A/CN=alice"), "A"),
        ok,
        clock.now,
    )
    wrong = side(DCAUMode.SUBJECT, cred_a, trust_a, DN.parse("/O=A/CN=other"), "B")
    with pytest.raises(DCAUError):
        authenticate_data_channel(
            side(DCAUMode.SUBJECT, cred_a, trust_a, DN.parse("/O=A/CN=alice"), "A"),
            wrong,
            clock.now,
        )


def test_missing_credential_rejected(env):
    clock, ca_a, ca_b, cred_a, cred_b, trust_a, trust_b = env
    with pytest.raises(DCAUError, match="no data-channel credential"):
        authenticate_data_channel(
            side(DCAUMode.SELF, None, trust_a, None, "A"),
            side(DCAUMode.SELF, cred_a, trust_a, cred_a.identity, "B"),
            clock.now,
        )


def test_mode_parse():
    assert DCAUMode.parse("n") is DCAUMode.NONE
    assert DCAUMode.parse("A") is DCAUMode.SELF
    assert DCAUMode.parse("S") is DCAUMode.SUBJECT
    with pytest.raises(DCAUError):
        DCAUMode.parse("Z")
