"""The DCSC blob format and its Section V.A rules."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.dcsc import decode_dcsc_blob, encode_dcsc_blob
from repro.pki.ca import CertificateAuthority, self_signed_credential
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.encoding import is_printable_ascii
from repro.util.units import DAY


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(22).python("dcsc")
    ca = CertificateAuthority(DN.parse("/O=A/CN=CA-A"), clock, rng, key_bits=256)
    user = ca.issue_credential(DN.parse("/O=A/CN=alice"), lifetime=DAY)
    proxy = create_proxy(user, clock, rng)
    return clock, rng, ca, user, proxy


def test_blob_is_printable_ascii(env):
    clock, rng, ca, user, proxy = env
    blob = encode_dcsc_blob(proxy)
    assert is_printable_ascii(blob)
    assert " " not in blob  # must survive as one command argument


def test_round_trip(env):
    clock, rng, ca, user, proxy = env
    ctx = decode_dcsc_blob(encode_dcsc_blob(proxy), clock.now)
    assert ctx.credential.chain == proxy.chain
    assert ctx.credential.key == proxy.key


def test_anchors_are_self_signed_blob_certs(env):
    """The CA root in the blob becomes the extra validation anchor."""
    clock, rng, ca, user, proxy = env
    ctx = decode_dcsc_blob(encode_dcsc_blob(proxy), clock.now)
    assert ca.certificate in ctx.anchors
    assert proxy.certificate in ctx.intermediates
    assert proxy.certificate not in ctx.anchors


def test_self_signed_context(env):
    clock, rng, *_ = env
    ss = self_signed_credential(DN.parse("/CN=random-ctx"), clock, rng)
    ctx = decode_dcsc_blob(encode_dcsc_blob(ss), clock.now)
    assert ctx.anchors == (ss.certificate,)
    assert ctx.intermediates == ()


def test_non_self_contained_blob_rejected(env):
    """Leaf not self-signed and chain truncated: Section V.A violation."""
    clock, rng, ca, user, proxy = env
    truncated = Credential(chain=proxy.chain[:1], key=proxy.key)
    with pytest.raises(ProtocolError, match="not .*verifiable from the blob|self-signed"):
        decode_dcsc_blob(encode_dcsc_blob(truncated), clock.now)


def test_garbage_blob_rejected(env):
    clock, *_ = env
    with pytest.raises(ProtocolError):
        decode_dcsc_blob("!!!not-base64!!!", clock.now)
    with pytest.raises(ProtocolError):
        decode_dcsc_blob("aGVsbG8gd29ybGQ=", clock.now)  # b64 of "hello world"
