"""The DTP abstraction and PI/DTP composition."""

import pytest

from repro.gridftp.dtp import DataTransferProcess
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage


@pytest.fixture
def dtp(world):
    world.network.add_host("mover")
    fs = PosixStorage(world.clock)
    fs.makedirs("/data", 0)
    fs.write_file("/data/f.bin", LiteralData(b"payload"))
    return world, fs, DataTransferProcess(world, "mover", fs)


def test_requires_existing_host(world):
    from repro.errors import NetworkError

    with pytest.raises(NetworkError):
        DataTransferProcess(world, "ghost", PosixStorage(world.clock))


def test_open_source(dtp):
    world, fs, proc = dtp
    data = proc.open_source("/data/f.bin", uid=0)
    assert data.read_all() == b"payload"


def test_open_sink_round_trip(dtp):
    world, fs, proc = dtp
    sink = proc.open_sink("/data/out.bin", uid=0, expected_size=3)
    sink.write_block(0, b"abc")
    sink.close(complete=True)
    assert fs.open_read("/data/out.bin", 0).read_all() == b"abc"


def test_permissions_enforced_through_dtp(dtp):
    world, fs, proc = dtp
    fs.chmod("/data/f.bin", 0o600, uid=0)
    from repro.errors import PermissionDeniedError

    with pytest.raises(PermissionDeniedError):
        proc.open_source("/data/f.bin", uid=1234)
