"""ERET partial retrieval through the client API."""

import pytest

from repro.storage.data import LiteralData

CONTENT = bytes(range(256)) * 256  # 64 KiB patterned


@pytest.fixture
def loaded(simple_pair):
    world, site, laptop = simple_pair
    uid = site.accounts.get("alice").uid
    site.storage.write_file("/home/alice/big.bin", LiteralData(CONTENT), uid=uid)
    client = site.client_for(world, "alice", laptop)
    return world, site, client, client.connect(site.server)


def test_partial_window_moves_only_window(loaded):
    world, site, client, session = loaded
    res = session.get_partial("/home/alice/big.bin", 1000, 5000, "/tmp/w.bin")
    assert res.nbytes == 5000
    partial = client.local_storage.partial_for("/tmp/w.bin", 0)
    assert partial is not None
    assert partial.received.ranges == [(1000, 6000)]
    assert partial.read(1000, 5000) == CONTENT[1000:6000]


def test_windows_accumulate_to_complete_file(loaded):
    world, site, client, session = loaded
    size = len(CONTENT)
    session.get_partial("/home/alice/big.bin", 0, size // 2, "/tmp/acc.bin")
    res = session.get_partial("/home/alice/big.bin", size // 2, size, "/tmp/acc.bin")
    # second window completed coverage: the file was finalized + verified
    assert res.verified
    final = client.local_storage.open_read("/tmp/acc.bin", 0)
    assert final.read_all() == CONTENT


def test_window_clipped_at_eof(loaded):
    world, site, client, session = loaded
    size = len(CONTENT)
    res = session.get_partial("/home/alice/big.bin", size - 100, 10_000, "/tmp/tail.bin")
    assert res.nbytes == 100


def test_partial_usage_recorded(loaded):
    world, site, client, session = loaded
    session.get_partial("/home/alice/big.bin", 0, 1000, "/tmp/u.bin")
    records = world.log.select("usage.record", direction="retrieve-partial")
    assert len(records) == 1
    assert records[0].fields["nbytes"] == 1000
