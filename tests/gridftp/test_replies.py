"""FTP reply codes and classification."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.replies import Reply, file_unavailable, raise_for_reply


def test_str_format():
    assert str(Reply(200, "Command okay.")) == "200 Command okay."


def test_parse_round_trip():
    r = Reply.parse("226 Transfer complete.")
    assert r.code == 226
    assert r.text == "Transfer complete."


def test_parse_malformed():
    with pytest.raises(ProtocolError):
        Reply.parse("not a reply")


def test_invalid_code_rejected():
    with pytest.raises(ProtocolError):
        Reply(99, "too low")
    with pytest.raises(ProtocolError):
        Reply(700, "too high")


@pytest.mark.parametrize(
    "code,attr",
    [
        (150, "is_preliminary"),
        (226, "is_completion"),
        (334, "is_intermediate"),
        (426, "is_transient_error"),
        (530, "is_permanent_error"),
    ],
)
def test_categories(code, attr):
    r = Reply(code, "x")
    assert getattr(r, attr)
    # exactly one category is true
    cats = [r.is_preliminary, r.is_completion, r.is_intermediate,
            r.is_transient_error, r.is_permanent_error]
    assert sum(cats) == 1


def test_is_error():
    assert Reply(426, "x").is_error
    assert Reply(550, "x").is_error
    assert not Reply(226, "x").is_error


def test_file_unavailable_includes_path():
    r = file_unavailable("/x/y", "No such file")
    assert r.code == 550
    assert "/x/y" in r.text


def test_raise_for_reply():
    ok = Reply(200, "fine")
    assert raise_for_reply(ok) is ok
    with pytest.raises(ProtocolError) as exc:
        raise_for_reply(Reply(530, "Not logged in."))
    assert exc.value.code == 530
