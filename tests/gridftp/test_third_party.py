"""Third-party transfers: Figures 4 and 5, end to end over the protocol."""

import pytest

from repro.errors import DCAUError, TransferFaultError
from repro.gridftp.third_party import (
    install_dcsc_contexts,
    third_party_transfer,
    third_party_with_restart,
)
from repro.gridftp.transfer import TransferOptions
from repro.pki.ca import self_signed_credential
from repro.pki.dn import DistinguishedName as DN
from repro.storage.data import LiteralData, SyntheticData
from repro.util.units import GB

CONTENT = b"science data " * 10000


@pytest.fixture
def duo(two_domain_world):
    d = two_domain_world
    uid = d.site_a.accounts.get("alice").uid
    d.site_a.storage.write_file("/home/alice/data.bin", LiteralData(CONTENT), uid=uid)
    client_a = d.site_a.client_for(d.world, "alice", d.laptop)
    client_b = d.site_b.client_for(d.world, "asmith", d.laptop)
    sa = client_a.connect(d.site_a.server)
    sb = client_b.connect(d.site_b.server)
    return d, sa, sb, client_a


def test_figure4_cross_domain_transfer_fails(duo):
    d, sa, sb, _ = duo
    with pytest.raises(DCAUError):
        third_party_transfer(sa, "/home/alice/data.bin", sb, "/home/asmith/data.bin")
    # nothing landed at B
    assert not d.site_b.storage.exists("/home/asmith/data.bin")


def test_figure5_dcsc_to_receiver(duo):
    d, sa, sb, client_a = duo
    res = third_party_transfer(
        sa, "/home/alice/data.bin", sb, "/home/asmith/data.bin",
        use_dcsc=client_a.credential,
    )
    assert res.verified
    uid = d.site_b.accounts.get("asmith").uid
    assert d.site_b.storage.open_read("/home/asmith/data.bin", uid).read_all() == CONTENT


def test_figure5_data_flows_direct_not_via_client(duo):
    """The transfer must not touch the laptop's slow links."""
    d, sa, sb, client_a = duo
    t0 = d.world.now
    res = third_party_transfer(
        sa, "/home/alice/data.bin", sb, "/home/asmith/data.bin",
        use_dcsc=client_a.credential,
        options=TransferOptions(parallelism=4),
    )
    # at 20 Mb/s (laptop link) this payload would need ~52s; direct it's fast
    assert (d.world.now - t0) < 20.0
    assert res.verified


def test_dcsc_with_legacy_receiver(duo):
    """One endpoint legacy: blob goes to the *source* instead."""
    d, sa, sb, client_a = duo
    d.site_b.server.dcsc_enabled = False
    client_b = d.site_b.client_for(d.world, "asmith", d.laptop)
    sb2 = client_b.connect(d.site_b.server)
    res = third_party_transfer(
        sa, "/home/alice/data.bin", sb2, "/home/asmith/data2.bin",
        use_dcsc=client_b.credential,  # credential B handed to A
    )
    assert res.verified


def test_both_legacy_no_dcsc_possible(duo):
    d, sa, sb, client_a = duo
    d.site_a.server.dcsc_enabled = False
    d.site_b.server.dcsc_enabled = False
    client_a2 = d.site_a.client_for(d.world, "alice", d.laptop)
    client_b2 = d.site_b.client_for(d.world, "asmith", d.laptop)
    sa2 = client_a2.connect(d.site_a.server)
    sb2 = client_b2.connect(d.site_b.server)
    accepted = install_dcsc_contexts(sa2, sb2, client_a2.credential)
    assert accepted == []
    with pytest.raises(DCAUError):
        third_party_transfer(sa2, "/home/alice/data.bin", sb2, "/home/asmith/d.bin",
                             use_dcsc=client_a2.credential)


def test_self_signed_context_both_endpoints(duo):
    """Section V: 'clients that desire higher security may specify a
    random, self-signed certificate as the DCAU context.'"""
    d, sa, sb, client_a = duo
    ctx = self_signed_credential(
        DN.parse("/CN=transfer-ctx"), d.world.clock, d.world.rng.python("ss")
    )
    accepted = install_dcsc_contexts(sa, sb, ctx, both=True)
    assert len(accepted) == 2
    res = third_party_transfer(sa, "/home/alice/data.bin", sb, "/home/asmith/ss.bin")
    assert res.verified


def test_same_domain_needs_no_dcsc(two_domain_world):
    """Within one trust domain plain DCAU A just works."""
    d = two_domain_world
    # give alice an account at B mapped from her SiteA identity? no —
    # same-domain means both endpoints at site A; reuse A's server twice
    # via a second server on dtn-b trusting CA-A.
    from tests.conftest import make_conventional_site

    d.world.network.add_host("dtn-a2")
    d.world.network.add_link("dtn-a2", "dtn-a", 10e9, 0.001)
    d.world.network.add_link("dtn-a2", "laptop", 20e6, 0.02)
    site_a2 = make_conventional_site(d.world, "SiteA2", "dtn-a2", port=2813)
    # same CA domain: trust CA-A, map alice
    site_a2.trust.add_anchor(d.site_a.ca.certificate)
    alice_cred = d.site_a.user_credentials["alice"]
    site_a2.accounts.add_user("alice")
    site_a2.gridmap.add(alice_cred.subject, "alice")
    site_a2.storage.makedirs("/home/alice", 0)
    site_a2.storage.chown("/home/alice", site_a2.accounts.get("alice").uid)
    d.site_a.trust.add_anchor(site_a2.ca.certificate)  # mutual host trust
    uid = d.site_a.accounts.get("alice").uid
    d.site_a.storage.write_file("/home/alice/f.bin", LiteralData(b"x" * 1000), uid=uid)

    client = d.site_a.client_for(d.world, "alice", d.laptop)
    sa = client.connect(d.site_a.server)
    sa2 = client.connect(site_a2.server)
    res = third_party_transfer(sa, "/home/alice/f.bin", sa2, "/home/alice/f.bin")
    assert res.verified


def test_third_party_with_restart_survives_fault(duo):
    d, sa, sb, client_a = duo
    uid = d.site_a.accounts.get("alice").uid
    big = SyntheticData(seed=12, length=20 * GB)
    d.site_a.storage.write_file("/home/alice/big.bin", big, uid=uid)
    d.world.faults.cut_link(d.inter_site_link_id, at=d.world.now + 10.0, duration=20.0)
    res, attempts = third_party_with_restart(
        sa, "/home/alice/big.bin", sb, "/home/asmith/big.bin",
        options=TransferOptions(parallelism=8, tcp_window_bytes=16 * 1024 * 1024),
        use_dcsc=client_a.credential,
    )
    assert attempts == 2
    assert res.verified
    # the retry moved strictly less than the whole file
    assert res.nbytes < big.size
    uid_b = d.site_b.accounts.get("asmith").uid
    assert d.site_b.storage.open_read("/home/asmith/big.bin", uid_b).fingerprint() == big.fingerprint()


def test_third_party_with_restart_gives_up(duo):
    d, sa, sb, client_a = duo
    # permanent outage
    d.world.faults.cut_link(d.inter_site_link_id, at=d.world.now + 1.0, duration=1e9)
    with pytest.raises(TransferFaultError, match="attempts"):
        third_party_with_restart(
            sa, "/home/alice/data.bin", sb, "/home/asmith/x.bin",
            use_dcsc=client_a.credential, max_attempts=2, retry_backoff_s=1.0,
        )
