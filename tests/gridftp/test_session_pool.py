"""The authenticated control-channel pool (GridFTP session reuse).

The pool is a wall-clock optimization with a hard determinism contract:
a world that reuses pooled channels must reach bit-identical virtual
outcomes — clock, mapped accounts, transferred bytes — to a world that
performs every handshake from scratch.  These tests pin the reuse path,
every invalidation rule (expiry, chaos faults, trust changes, breaker
trips), the charge-only options fast path, and the twin-world equality
itself.
"""

import os

import pytest

from repro.errors import ProtocolError, SecurityError
from repro.gridftp.client import ControlChannelPool
from repro.gridftp.dcau import DCAUMode
from repro.gridftp.transfer import TransferOptions
from repro.gsi.session_cache import caching_enabled
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName
from repro.pki.rsa import generate_keypair
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.util.units import gbps
from repro.xio.drivers import Protection
from tests.conftest import make_conventional_site

# a handful of tests assert pool *occupancy*, which the escape hatch
# legitimately zeroes; everything else (twin-world equality, expiry,
# fast-path state) must hold in both modes and runs unguarded
requires_cache = pytest.mark.skipif(
    not caching_enabled(),
    reason="REPRO_NO_SESSION_CACHE set: pool occupancy is legitimately 0",
)


def _build(seed=9):
    world = World(seed=seed)
    net = world.network
    net.add_host("server1", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("server1", "laptop", gbps(1), 0.01, loss=0.0)
    site = make_conventional_site(world, "Lab", "server1")
    site.add_user(world, "alice")
    client = site.client_for(world, "alice", "laptop")
    return world, site, client


# -- reuse ---------------------------------------------------------------------


@requires_cache
def test_pooled_session_is_reused():
    world, site, client = _build()
    pool = ControlChannelPool.for_world(world)
    s1 = client.connect(site.server, pooled=True)
    assert s1.logged_in_as == "alice"
    s1.release()
    assert pool.stats()["pooled"] == 1
    s2 = client.connect(site.server, pooled=True)
    assert s2 is s1  # the same parked session comes back
    assert s2.logged_in_as == "alice"
    assert pool.stats()["reuses"] == 1


def test_reuse_advances_the_clock_like_a_fresh_login():
    # twin worlds, identical command sequences; only pooling differs
    def scenario(pooled: bool) -> tuple[float, str]:
        world, site, client = _build()
        s = client.connect(site.server, pooled=pooled)
        s.release()  # pooled: parks; unpooled: closes (no wire traffic either way)
        s = client.connect(site.server, pooled=pooled)
        mapped = s.logged_in_as
        return world.now, mapped

    fresh_now, fresh_user = scenario(pooled=False)
    pooled_now, pooled_user = scenario(pooled=True)
    assert pooled_now == pytest.approx(fresh_now)
    assert pooled_user == fresh_user


def test_unpooled_release_closes_the_channel():
    world, site, client = _build()
    s = client.connect(site.server, pooled=False)
    s.release()
    assert s.channel.closed
    assert ControlChannelPool.for_world(world).stats()["pooled"] == 0


# -- invalidation --------------------------------------------------------------


def test_expired_proxy_cannot_resume_from_the_pool():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    pool = ControlChannelPool.for_world(world)
    if caching_enabled():
        assert pool.stats()["pooled"] == 1
    # jump past the proxy's lifetime: the pooled entry must not replay,
    # and the real handshake must reject the expired credential exactly
    # as a fresh world would
    world.clock.advance(30 * 24 * 3600.0)
    with pytest.raises(SecurityError):
        client.connect(site.server, pooled=True)


def test_host_crash_while_idle_invalidates_the_entry():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    released_at = world.now
    world.faults.crash_host("server1", released_at + 1.0, 5.0)
    world.clock.advance(60.0)
    pool = ControlChannelPool.for_world(world)
    before = pool.stats()["reuses"]
    s2 = client.connect(site.server, pooled=True)
    # a crash inside the idle window means a full handshake, not a replay
    assert pool.stats()["reuses"] == before
    assert s2.logged_in_as == "alice"


def test_control_drop_while_idle_invalidates_the_entry():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    world.faults.drop_control("server1", world.now + 1.0, 2.0)
    world.clock.advance(30.0)
    pool = ControlChannelPool.for_world(world)
    before = pool.stats()["reuses"]
    s2 = client.connect(site.server, pooled=True)
    assert pool.stats()["reuses"] == before
    assert s2.logged_in_as == "alice"


def test_trust_store_change_invalidates_the_entry():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    other_ca = CertificateAuthority(
        DistinguishedName.make(("O", "Other"), ("CN", "Other CA")),
        world.clock,
        world.rng.python("other-ca"),
    )
    site.trust.add_anchor(other_ca.certificate)  # bumps trust.version
    pool = ControlChannelPool.for_world(world)
    before = pool.stats()["reuses"]
    s2 = client.connect(site.server, pooled=True)
    assert pool.stats()["reuses"] == before
    assert s2.logged_in_as == "alice"


@requires_cache
def test_invalidate_host_drops_entries_for_that_host():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    pool = ControlChannelPool.for_world(world)
    assert pool.invalidate_host("server1") == 1
    assert pool.stats()["pooled"] == 0
    assert pool.stats()["invalidations"] == 1


def test_escape_hatch_disables_pooling(monkeypatch):
    monkeypatch.setenv("REPRO_NO_SESSION_CACHE", "1")
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    assert s.channel.closed
    assert ControlChannelPool.for_world(world).stats()["pooled"] == 0


# -- the apply_options charge-only fast path -----------------------------------


def test_fastpath_applies_identical_server_state_and_charge():
    def scenario(pooled: bool):
        world, site, client = _build()
        s = client.connect(site.server, pooled=pooled)
        s.release()  # pooled: parks; unpooled: closes (no wire traffic)
        s = client.connect(site.server, pooled=pooled)
        s.apply_options(TransferOptions(
            parallelism=4,
            protection=Protection.SAFE,
            dcau=DCAUMode.NONE,
            tcp_window_bytes=1 << 20,
        ))
        ss = s.server_session
        return (
            world.now, ss.type_, ss.mode, ss.parallelism, ss.protection,
            ss.dcau_mode, ss.dcau_subject, ss.tcp_window,
        )

    fresh = scenario(pooled=False)
    pooled = scenario(pooled=True)
    # identical virtual charge *and* identical resulting server state: the
    # charge-only fast path must be observationally equal to a wire replay
    assert pooled[1:] == fresh[1:]
    assert pooled[0] == pytest.approx(fresh[0])


def test_fastpath_malformed_options_error_like_the_wire():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.release()
    s = client.connect(site.server, pooled=True)
    # "DCAU S" with no subject is a 501 on the wire; the fast path must
    # fall through to the real pipeline and surface the same error
    with pytest.raises(ProtocolError):
        s.apply_options(TransferOptions(dcau=DCAUMode.SUBJECT, dcau_subject=None))


def test_fastpath_resets_stale_state_between_leases():
    world, site, client = _build()
    s = client.connect(site.server, pooled=True)
    s.apply_options(TransferOptions(parallelism=8, tcp_window_bytes=1 << 22))
    s.release()
    s = client.connect(site.server, pooled=True)
    # the new option set omits SBUF entirely; the reused session must not
    # leak the previous lease's tcp_window through reset_for_reuse
    s.apply_options(TransferOptions(parallelism=2))
    ss = s.server_session
    assert ss.parallelism == 2
    assert ss.tcp_window is None


# -- transfers over a pooled session -------------------------------------------


def test_get_over_reused_session_moves_identical_bytes():
    payload = b"x" * 65536

    def scenario(pooled: bool) -> tuple[float, list[int]]:
        world, site, client = _build()
        site.storage.write_file(
            "/home/alice/a.dat", LiteralData(payload),
            uid=site.accounts.get("alice").uid)
        moved = []
        for _ in range(2):
            s = client.connect(site.server, pooled=pooled)
            result = s.get("/home/alice/a.dat", "/tmp/a.dat")
            moved.append(result.nbytes)
            s.release()
        return world.now, moved

    fresh_now, fresh_moved = scenario(pooled=False)
    pooled_now, pooled_moved = scenario(pooled=True)
    assert pooled_now == pytest.approx(fresh_now)
    assert pooled_moved == fresh_moved == [len(payload)] * 2


# -- the setup-time keygen optimizations ---------------------------------------


def test_ca_key_pregeneration_is_bit_identical():
    def issue(pregenerate: int):
        world = World(seed=77)
        ca = CertificateAuthority(
            DistinguishedName.make(("O", "T"), ("CN", "CA")),
            world.clock,
            world.rng.python("ca"),
        )
        if pregenerate:
            ca.pregenerate(pregenerate)
        creds = [
            ca.issue_credential(
                DistinguishedName.make(("O", "T"), ("CN", f"u{i}")))
            for i in range(3)
        ]
        return [
            (c.certificate.serial, c.certificate.public_key.n)
            for c in creds
        ]

    assert issue(pregenerate=0) == issue(pregenerate=5)
    assert issue(pregenerate=0) == issue(pregenerate=2)  # pool underrun


def test_bpsw_fast_path_matches_plain_miller_rabin(monkeypatch):
    import random

    import repro.pki.rsa as rsa

    if rsa._bpsw_isprime is None:
        pytest.skip("sympy unavailable: already on the plain path")
    with_bpsw = generate_keypair(512, random.Random(1234))
    state_with = random.Random(1234)
    generate_keypair(512, state_with)
    monkeypatch.setattr(rsa, "_bpsw_isprime", None)
    rsa._KEYGEN_MEMO.clear()
    without = generate_keypair(512, random.Random(1234))
    state_without = random.Random(1234)
    generate_keypair(512, state_without)
    assert with_bpsw == without
    assert state_with.getstate() == state_without.getstate()


def test_no_session_cache_env_is_read_per_call(monkeypatch):
    from repro.gsi.session_cache import caching_enabled

    monkeypatch.delenv("REPRO_NO_SESSION_CACHE", raising=False)
    assert caching_enabled()
    monkeypatch.setenv("REPRO_NO_SESSION_CACHE", "1")
    assert not caching_enabled()
    assert os.environ.get("REPRO_NO_SESSION_CACHE") == "1"
