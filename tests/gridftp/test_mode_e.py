"""Extended block mode framing."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.mode_e import Block, iter_blocks, plan_blocks, round_robin
from repro.storage.data import LiteralData, SyntheticData
from repro.util.ranges import ByteRangeSet


def test_block_header_round_trip():
    b = Block(offset=123456, size=789, payload=b"x" * 789, eof=True, eod=True)
    header = b.header_bytes()
    assert len(header) == 17
    flags, size, offset = Block.parse_header(header)
    assert size == 789
    assert offset == 123456
    assert flags == b.flags


def test_header_wrong_length_rejected():
    with pytest.raises(ProtocolError):
        Block.parse_header(b"short")


def test_block_payload_size_must_match():
    with pytest.raises(ProtocolError):
        Block(offset=0, size=5, payload=b"abc")


def test_negative_geometry_rejected():
    with pytest.raises(ProtocolError):
        Block(offset=-1, size=0, payload=b"")


def test_plan_whole_file():
    plan = plan_blocks(total_size=1000, block_size=300)
    assert plan == [(0, 300), (300, 300), (600, 300), (900, 100)]


def test_plan_restricted_ranges():
    needed = ByteRangeSet([(100, 250), (800, 1000)])
    plan = plan_blocks(1000, block_size=100, needed=needed)
    assert plan == [(100, 100), (200, 50), (800, 100), (900, 100)]


def test_plan_zero_block_size_rejected():
    with pytest.raises(ProtocolError):
        plan_blocks(100, block_size=0)


def test_iter_blocks_literal_reassembles():
    data = LiteralData(bytes(range(256)) * 10)
    blocks = list(iter_blocks(data, block_size=100))
    buf = bytearray(data.size)
    for b in blocks:
        buf[b.offset : b.offset + b.size] = b.payload
    assert bytes(buf) == data.read_all()
    assert blocks[-1].eof and blocks[-1].eod
    assert not any(b.eof for b in blocks[:-1])


def test_iter_blocks_synthetic_descriptors():
    data = SyntheticData(seed=1, length=1000)
    blocks = list(iter_blocks(data, block_size=256))
    assert all(b.payload is None for b in blocks)
    assert all(b.synthetic is data for b in blocks)
    assert sum(b.size for b in blocks) == 1000


def test_iter_blocks_zero_byte_file():
    blocks = list(iter_blocks(LiteralData(b"")))
    assert len(blocks) == 1
    assert blocks[0].size == 0
    assert blocks[0].eof


def test_round_robin_distribution():
    data = LiteralData(b"a" * 1000)
    blocks = list(iter_blocks(data, block_size=100))
    lanes = round_robin(blocks, 3)
    assert len(lanes) == 3
    assert sum(len(l) for l in lanes) == len(blocks)
    # every block present exactly once
    seen = sorted(b.offset for lane in lanes for b in lane)
    assert seen == [b.offset for b in blocks]


def test_round_robin_invalid_streams():
    with pytest.raises(ProtocolError):
        round_robin([], 0)
