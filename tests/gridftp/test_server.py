"""The server PI state machine, driven command by command."""

import pytest

from repro.gridftp.replies import Reply
from repro.storage.data import LiteralData
from tests.conftest import make_conventional_site


@pytest.fixture
def session(simple_pair):
    """A raw (already GSI-authenticated + logged-in) server session."""
    world, site, laptop = simple_pair
    site.storage.write_file(
        "/home/alice/data.bin", LiteralData(b"0123456789" * 100),
        uid=site.accounts.get("alice").uid,
    )
    client = site.client_for(world, "alice", laptop)
    cs = client.connect(site.server)
    return world, site, cs.server_session, cs


def last_code(replies):
    return Reply.parse(replies[-1]).code


def test_unauthenticated_commands_rejected(simple_pair):
    world, site, laptop = simple_pair
    session = site.server.open_session(laptop)
    assert last_code(session.handle("RETR /x")) == 530
    assert last_code(session.handle("PWD")) == 530


def test_unknown_command(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("FROBNICATE")) == 500
    assert last_code(ss.handle("")) == 500


def test_feat_lists_extensions(session):
    world, site, ss, cs = session
    lines = ss.handle("FEAT")
    assert lines[0].startswith("211-")
    assert lines[-1] == "211 End"
    assert any("DCSC" in l for l in lines)


def test_type_and_mode(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("TYPE I")) == 200
    assert ss.type_ == "I"
    assert last_code(ss.handle("MODE E")) == 200
    assert ss.mode == "E"
    assert last_code(ss.handle("TYPE X")) == 501
    assert last_code(ss.handle("MODE Q")) == 501


def test_opts_parallelism(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("OPTS RETR Parallelism=8,8,8;")) == 200
    assert ss.parallelism == 8
    assert last_code(ss.handle("OPTS RETR Parallelism=x;")) == 501
    assert last_code(ss.handle("OPTS STOR foo")) == 501


def test_pbsz_prot_dcau(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("PBSZ 0")) == 200
    assert last_code(ss.handle("PROT P")) == 200
    assert ss.protection.value == "P"
    assert last_code(ss.handle("PROT Z")) == 501
    assert last_code(ss.handle("DCAU N")) == 200
    assert ss.dcau_mode.value == "N"
    assert last_code(ss.handle("DCAU S /O=Lab/CN=someone")) == 200
    assert str(ss.dcau_subject) == "/O=Lab/CN=someone"
    assert last_code(ss.handle("DCAU S")) == 501


def test_sbuf(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("SBUF 4194304")) == 200
    assert ss.tcp_window == 4194304
    assert last_code(ss.handle("SBUF big")) == 501


def test_pwd_cwd(session):
    world, site, ss, cs = session
    assert "/home/alice" in ss.handle("PWD")[0]
    site.storage.makedirs("/home/alice/sub", 0)
    site.storage.chown("/home/alice/sub", site.accounts.get("alice").uid)
    assert last_code(ss.handle("CWD sub")) == 250
    assert ss.cwd == "/home/alice/sub"
    assert last_code(ss.handle("CWD /nonexistent")) == 550


def test_mkd_dele_rnfr_rnto(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("MKD newdir")) == 257
    assert site.storage.exists("/home/alice/newdir")
    site.storage.write_file("/home/alice/f", b"x",
                            uid=site.accounts.get("alice").uid)
    assert last_code(ss.handle("RNFR f")) == 350
    assert last_code(ss.handle("RNTO g")) == 250
    assert site.storage.exists("/home/alice/g")
    assert last_code(ss.handle("RNTO h")) == 503  # no RNFR pending
    assert last_code(ss.handle("DELE g")) == 250
    assert last_code(ss.handle("RNFR missing")) == 550


def test_size_and_mdtm(session):
    world, site, ss, cs = session
    assert ss.handle("SIZE /home/alice/data.bin")[0] == "213 1000"
    assert last_code(ss.handle("SIZE /missing")) == 550
    assert ss.handle("MDTM /home/alice/data.bin")[0].startswith("213 ")


def test_cksm(session):
    world, site, ss, cs = session
    reply = ss.handle("CKSM sha256 /home/alice/data.bin")[0]
    import hashlib

    assert reply == "213 " + hashlib.sha256(b"0123456789" * 100).hexdigest()
    assert last_code(ss.handle("CKSM nope /home/alice/data.bin")) == 504
    assert last_code(ss.handle("CKSM sha256")) == 501


def test_list_inline(session):
    world, site, ss, cs = session
    lines = ss.handle("LIST /home/alice")
    assert lines[0].startswith("250-")
    assert " data.bin" in lines
    assert lines[-1] == "250 End"


def test_pasv_allocates_port(session):
    world, site, ss, cs = session
    reply = ss.handle("PASV")[0]
    assert reply.startswith("227 ")
    assert "server1:" in reply
    addr = reply.split("(")[1].rstrip(")")
    host, port = addr.rsplit(":", 1)
    assert (host, int(port)) in world.network.listeners


def test_pasv_releases_previous_port(session):
    world, site, ss, cs = session
    first = ss.handle("PASV")[0].split("(")[1].rstrip(")")
    ss.handle("PASV")
    host, port = first.rsplit(":", 1)
    assert (host, int(port)) not in world.network.listeners


def test_port_and_spor(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("PORT laptop:50001")) == 200
    assert ss.remote_ports == [("laptop", 50001)]
    assert last_code(ss.handle("SPOR h1:1 h2:2")) == 200
    assert ss.remote_ports == [("h1", 1), ("h2", 2)]
    assert last_code(ss.handle("SPOR")) == 501
    assert last_code(ss.handle("PORT nonsense")) == 501


def test_rest_retr_sets_needed(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("REST 0-500")) == 350
    assert last_code(ss.handle("RETR /home/alice/data.bin")) == 150
    intent = ss.take_intent()
    assert intent.direction == "send"
    # receiver holds [0,500); sender must send [500,1000)
    assert intent.needed.ranges == [(500, 1000)]


def test_retr_missing_file(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("RETR /home/alice/ghost")) == 550


def test_retr_permission_denied(session):
    world, site, ss, cs = session
    site.storage.write_file("/home/alice/secret", b"s", uid=0)
    site.storage.chmod("/home/alice/secret", 0o600, uid=0)
    assert last_code(ss.handle("RETR /home/alice/secret")) == 550


def test_stor_creates_intent(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("STOR /home/alice/up.bin")) == 150
    intent = ss.take_intent()
    assert intent.direction == "recv"
    sink = ss.make_sink(intent, 10)
    sink.write_block(0, b"0123456789")
    sink.close(complete=True)
    uid = site.accounts.get("alice").uid
    assert site.storage.open_read("/home/alice/up.bin", uid).read_all() == b"0123456789"


def test_take_intent_requires_pending(session):
    world, site, ss, cs = session
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        ss.take_intent()


def test_abor_clears_pending(session):
    world, site, ss, cs = session
    ss.handle("RETR /home/alice/data.bin")
    assert last_code(ss.handle("ABOR")) == 226
    from repro.errors import ProtocolError

    with pytest.raises(ProtocolError):
        ss.take_intent()


def test_eret_partial_retrieve(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("ERET P 100 200 /home/alice/data.bin")) == 150
    intent = ss.take_intent()
    assert intent.needed.ranges == [(100, 300)]
    assert last_code(ss.handle("ERET X 1 2 /f")) == 501


def test_dcsc_p_and_d(session):
    world, site, ss, cs = session
    from repro.gridftp.dcsc import encode_dcsc_blob
    from repro.pki.ca import self_signed_credential
    from repro.pki.dn import DistinguishedName as DN

    ss_cred = self_signed_credential(DN.parse("/CN=ctx"), world.clock,
                                     world.rng.python("t"))
    blob = encode_dcsc_blob(ss_cred)
    assert last_code(ss.handle(f"DCSC P {blob}")) == 200
    assert ss.dcsc is not None
    assert last_code(ss.handle("DCSC D")) == 200
    assert ss.dcsc is None
    assert last_code(ss.handle("DCSC Q blah")) == 501
    assert last_code(ss.handle("DCSC P garbage!!!")) == 501
    assert last_code(ss.handle("DCSC")) == 501


def test_legacy_server_rejects_dcsc(simple_pair):
    world, site, laptop = simple_pair
    world.network.add_host("server2")
    world.network.add_link("server2", "laptop", 1e9, 0.01)
    legacy_site = make_conventional_site(world, "Legacy", "server2", port=2812)
    legacy_site.server.dcsc_enabled = False
    legacy_site.add_user(world, "alice")
    client = legacy_site.client_for(world, "alice", laptop)
    cs = client.connect(legacy_site.server)
    assert last_code(cs.server_session.handle("DCSC P whatever")) == 500
    assert not any("DCSC" in l for l in cs.server_session.handle("FEAT"))


def test_quit_closes(session):
    world, site, ss, cs = session
    assert last_code(ss.handle("QUIT")) == 221
    assert ss.closed
    assert last_code(ss.handle("NOOP")) == 421


def test_bad_adat_drops_connection(simple_pair):
    world, site, laptop = simple_pair
    ss = site.server.open_session(laptop)
    ss.handle("AUTH GSSAPI")
    replies = ss.handle("ADAT notbase64!!!")
    assert last_code(replies) == 535
    assert ss.closed


def test_adat_untrusted_credential_rejected(simple_pair):
    world, site, laptop = simple_pair
    from repro.pki.ca import CertificateAuthority
    from repro.pki.dn import DistinguishedName as DN
    from repro.util.encoding import b64encode_str

    other = CertificateAuthority(DN.parse("/O=X/CN=X"), world.clock,
                                 world.rng.python("o"), key_bits=256)
    eve = other.issue_credential(DN.parse("/O=X/CN=eve"))
    ss = site.server.open_session(laptop)
    ss.handle("AUTH GSSAPI")
    replies = ss.handle(f"ADAT {b64encode_str(eve.to_pem().encode())}")
    assert last_code(replies) == 535


def test_usage_reporting_toggle(session):
    world, site, ss, cs = session
    from repro.gridftp.transfer import TransferResult

    result = TransferResult(nbytes=10, start_time=0, end_time=1, streams=1,
                            stripes=1, verified=True, checksum="x")
    site.server.usage_reporting = False
    site.server.record_transfer(result, "retrieve", "/p")
    assert world.log.count("usage.record") == 0
    site.server.usage_reporting = True
    site.server.record_transfer(result, "retrieve", "/p")
    assert world.log.count("usage.record") == 1
