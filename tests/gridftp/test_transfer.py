"""The transfer engine."""

import pytest

from repro.errors import TransferError, TransferFaultError
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.transfer import (
    SinkSpec,
    SourceSpec,
    TransferEngine,
    TransferOptions,
    estimate_rate_bps,
)
from repro.pki.validation import TrustStore
from repro.sim.world import World
from repro.storage.data import LiteralData, SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import GB, MB, gbps
from repro.xio.drivers import Protection


@pytest.fixture
def env():
    world = World(seed=77)
    net = world.network
    net.add_host("src", nic_bps=gbps(10))
    net.add_host("dst", nic_bps=gbps(10))
    net.add_link("src", "dst", gbps(10), 0.025, loss=1e-5)
    src_fs = PosixStorage(world.clock)
    src_fs.makedirs("/data", 0)
    dst_fs = PosixStorage(world.clock)
    dst_fs.makedirs("/data", 0)
    return world, src_fs, dst_fs


def no_auth(name="ep"):
    return DataChannelSecurity(mode=DCAUMode.NONE, credential=None,
                               trust=TrustStore(), endpoint_name=name)


def run(world, src_fs, dst_fs, data, options=None, needed=None,
        src_hosts=("src",), dst_hosts=("dst",), resume=False, path="/data/f"):
    src_fs.write_file(path, data)
    source = SourceSpec(hosts=src_hosts, data=src_fs.open_read(path, 0),
                        security=no_auth("s"), needed=needed)
    sink = dst_fs.open_write(path, 0, data.size, resume=resume)
    sink_spec = SinkSpec(hosts=dst_hosts, sink=sink, security=no_auth("d"))
    engine = TransferEngine(world)
    return engine.execute(source, sink_spec, options or TransferOptions())


def test_literal_round_trip(env):
    world, src_fs, dst_fs = env
    data = LiteralData(bytes(range(256)) * 1000)
    res = run(world, src_fs, dst_fs, data)
    assert res.verified
    assert res.nbytes == data.size
    assert dst_fs.open_read("/data/f", 0).read_all() == data.read_all()


def test_synthetic_round_trip(env):
    world, src_fs, dst_fs = env
    data = SyntheticData(seed=4, length=50 * GB)
    res = run(world, src_fs, dst_fs, data, TransferOptions(parallelism=8, tcp_window_bytes=16 * MB))
    assert res.verified
    assert dst_fs.open_read("/data/f", 0).fingerprint() == data.fingerprint()


def test_clock_advances_by_transfer_time(env):
    world, src_fs, dst_fs = env
    t0 = world.now
    res = run(world, src_fs, dst_fs, SyntheticData(seed=1, length=1 * GB),
              TransferOptions(parallelism=8, tcp_window_bytes=16 * MB))
    assert world.now == pytest.approx(t0 + res.duration_s)
    assert res.duration_s > 0


def test_parallelism_speeds_up_transfer(env):
    world, src_fs, dst_fs = env
    data = SyntheticData(seed=2, length=4 * GB)
    r1 = run(world, src_fs, dst_fs, data, TransferOptions(parallelism=1), path="/data/a")
    r8 = run(world, src_fs, dst_fs, data, TransferOptions(parallelism=8), path="/data/b")
    assert r8.duration_s < r1.duration_s / 4
    assert r8.streams == 8


def test_protection_slows_transfer(env):
    world, src_fs, dst_fs = env
    data = SyntheticData(seed=3, length=4 * GB)
    opts = TransferOptions(parallelism=16, tcp_window_bytes=16 * MB)
    clear = run(world, src_fs, dst_fs, data, opts, path="/data/a")
    private = run(world, src_fs, dst_fs, data,
                  opts.with_(protection=Protection.PRIVATE), path="/data/b")
    assert private.duration_s > clear.duration_s
    assert private.rate_bps <= gbps(0.95)  # cipher-capped
    assert clear.rate_bps > private.rate_bps


def test_udt_transport(env):
    world, src_fs, dst_fs = env
    data = SyntheticData(seed=9, length=1 * GB)
    res = run(world, src_fs, dst_fs, data, TransferOptions(transport="udt"))
    assert res.verified
    assert res.rate_bps > gbps(5)


def test_invalid_options():
    with pytest.raises(TransferError):
        TransferOptions(parallelism=0)
    with pytest.raises(TransferError):
        TransferOptions(transport="carrier-pigeon")
    with pytest.raises(TransferError):
        TransferOptions(concurrency=0)


def test_restart_needed_ranges_only(env):
    world, src_fs, dst_fs = env
    from repro.util.ranges import ByteRangeSet

    content = bytes(range(256)) * 400  # 102400 bytes
    data = LiteralData(content)
    src_fs.write_file("/data/f", data)
    # first: receive only [0, 60000)
    sink = dst_fs.open_write("/data/f", 0, data.size)
    sink.write_block(0, content[:60000])
    sink.close(complete=False)
    needed = ByteRangeSet([(60000, data.size)])
    res = run(world, src_fs, dst_fs, data, needed=needed, resume=True)
    assert res.nbytes == data.size - 60000
    assert res.verified  # whole-file fingerprint checked after resume
    assert dst_fs.open_read("/data/f", 0).read_all() == content


def test_fault_interrupts_and_persists_partial(env):
    world, src_fs, dst_fs = env
    data = SyntheticData(seed=5, length=10 * GB)
    opts = TransferOptions(parallelism=8, tcp_window_bytes=16 * MB)
    link_id = next(iter(world.network.links))
    # cut the link mid-transfer
    world.faults.cut_link(link_id, at=world.now + 2.0, duration=30.0)
    src_fs.write_file("/data/f", data)
    source = SourceSpec(hosts=("src",), data=src_fs.open_read("/data/f", 0),
                        security=no_auth())
    sink = dst_fs.open_write("/data/f", 0, data.size)
    spec = SinkSpec(hosts=("dst",), sink=sink, security=no_auth())
    with pytest.raises(TransferFaultError) as exc:
        TransferEngine(world).execute(source, spec, opts)
    received = exc.value.received
    assert 0 < received.total_bytes() < data.size
    # the partial is persisted for restart
    partial = dst_fs.partial_for("/data/f", 0)
    assert partial is not None
    assert partial.received.total_bytes() == received.total_bytes()
    # clock stopped at the fault
    assert world.now == pytest.approx(exc.value.at_time)


def test_fault_before_payload_delivers_nothing(env):
    world, src_fs, dst_fs = env
    link_id = next(iter(world.network.links))
    world.faults.cut_link(link_id, at=world.now + 0.01, duration=10.0)
    data = SyntheticData(seed=6, length=1 * GB)
    src_fs.write_file("/data/f", data)
    source = SourceSpec(hosts=("src",), data=src_fs.open_read("/data/f", 0),
                        security=no_auth())
    sink = dst_fs.open_write("/data/f", 0, data.size)
    with pytest.raises(TransferFaultError) as exc:
        TransferEngine(world).execute(
            source, SinkSpec(hosts=("dst",), sink=sink, security=no_auth()),
            TransferOptions(),
        )
    assert exc.value.received.total_bytes() == 0


def test_markers_generated(env):
    world, src_fs, dst_fs = env
    data = SyntheticData(seed=7, length=2 * GB)
    res = run(world, src_fs, dst_fs, data,
              TransferOptions(parallelism=4, marker_interval_s=2.0))
    assert len(res.markers) > 0
    assert all(m.stripe_count == 1 for m in res.markers)


def test_zero_byte_file(env):
    world, src_fs, dst_fs = env
    res = run(world, src_fs, dst_fs, LiteralData(b""))
    assert res.nbytes == 0
    assert res.verified
    assert dst_fs.open_read("/data/f", 0).read_all() == b""


def test_striped_flows_aggregate(env):
    world, src_fs, dst_fs = env
    net = world.network
    for i in range(4):
        net.add_host(f"src{i}", nic_bps=gbps(1))
        net.add_host(f"dst{i}", nic_bps=gbps(1))
        for j in range(4):
            pass
    for i in range(4):
        for j in range(4):
            net.add_link(f"src{i}", f"dst{j}", gbps(1), 0.02)
    data = SyntheticData(seed=8, length=4 * GB)
    opts = TransferOptions(parallelism=4, tcp_window_bytes=16 * MB)
    one = run(world, src_fs, dst_fs, data, opts,
              src_hosts=("src0",), dst_hosts=("dst0",), path="/data/a")
    four = run(world, src_fs, dst_fs, data, opts,
               src_hosts=tuple(f"src{i}" for i in range(4)),
               dst_hosts=tuple(f"dst{i}" for i in range(4)), path="/data/b")
    assert four.stripes == 4
    assert four.rate_bps > 3 * one.rate_bps


def test_estimate_rate(env):
    world, src_fs, dst_fs = env
    est = estimate_rate_bps(world, "src", "dst",
                            TransferOptions(parallelism=8, tcp_window_bytes=16 * MB))
    assert 0 < est <= gbps(10)


def test_empty_hosts_rejected(env):
    world, src_fs, dst_fs = env
    with pytest.raises(TransferError):
        SourceSpec(hosts=(), data=LiteralData(b"x"), security=no_auth())
