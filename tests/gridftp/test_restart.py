"""Restart marker wire format."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.restart import (
    ByteRangeSet,
    format_restart_marker,
    marker_reply_line,
    parse_restart_marker,
)


def test_format():
    s = ByteRangeSet([(0, 100), (200, 300)])
    assert format_restart_marker(s) == "0-100,200-300"


def test_parse_round_trip():
    s = ByteRangeSet([(0, 1048576), (2097152, 3145728)])
    assert parse_restart_marker(format_restart_marker(s)) == s


def test_parse_empty():
    assert parse_restart_marker("").is_empty()
    assert parse_restart_marker("  ").is_empty()


def test_parse_stream_mode_offset():
    """A bare offset means 'I have the prefix [0, offset)'."""
    s = parse_restart_marker("12345")
    assert s.ranges == [(0, 12345)]


def test_parse_coalesces():
    s = parse_restart_marker("0-100,100-200,50-150")
    assert s.ranges == [(0, 200)]


@pytest.mark.parametrize("bad", ["abc", "10-", "-5", "1-2-3", "5-1"])
def test_parse_malformed(bad):
    with pytest.raises(ProtocolError):
        parse_restart_marker(bad)


def test_marker_reply_line():
    line = marker_reply_line(ByteRangeSet([(0, 10)]))
    assert line.startswith("111 Range Marker ")
    assert "0-10" in line
