"""Protocol edge cases across the client/server pair."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.dcau import DCAUMode
from repro.gridftp.restart import ByteRangeSet
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import LiteralData
from repro.util.units import MB, HOUR


@pytest.fixture
def loaded(simple_pair):
    world, site, laptop = simple_pair
    uid = site.accounts.get("alice").uid
    site.storage.write_file("/home/alice/d.bin", LiteralData(b"ee" * 50_000), uid=uid)
    client = site.client_for(world, "alice", laptop)
    return world, site, client, client.connect(site.server)


def test_esto_append_at_offset(loaded):
    """ESTO A <offset> <path>: adjusted store."""
    world, site, client, session = loaded
    ss = session.server_session
    assert ss.handle("ESTO A 0 /home/alice/up.bin")[0].startswith("150")
    intent = ss.take_intent()
    sink = ss.make_sink(intent, 4)
    sink.write_block(0, b"abcd")
    sink.close(complete=True)
    uid = site.accounts.get("alice").uid
    assert site.storage.open_read("/home/alice/up.bin", uid).read_all() == b"abcd"
    assert ss.handle("ESTO Z 0 /f")[0].startswith("501")


def test_udt_transport_end_to_end(loaded):
    world, site, client, session = loaded
    res = session.get("/home/alice/d.bin", "/tmp/d.bin",
                      TransferOptions(transport="udt"))
    assert res.verified
    assert client.local_storage.open_read("/tmp/d.bin", 0).read_all() == b"ee" * 50_000


def test_dcau_subject_mode_end_to_end(loaded):
    world, site, client, session = loaded
    subject = str(client.credential.identity)
    opts = TransferOptions(dcau=DCAUMode.SUBJECT, dcau_subject=subject)
    res = session.get("/home/alice/d.bin", "/tmp/d2.bin", opts)
    assert session.server_session.dcau_mode is DCAUMode.SUBJECT
    assert res.verified
    # the wrong expected subject is refused
    from repro.errors import DCAUError

    bad = TransferOptions(dcau=DCAUMode.SUBJECT, dcau_subject="/O=Lab/CN=other")
    with pytest.raises(DCAUError):
        session.get("/home/alice/d.bin", "/tmp/d3.bin", bad)


def test_dcau_none_skips_auth_time(loaded):
    world, site, client, session = loaded
    opts_auth = TransferOptions(dcau=DCAUMode.SELF)
    opts_none = TransferOptions(dcau=DCAUMode.NONE)
    session.apply_options(opts_auth)
    t0 = world.now
    session.get("/home/alice/d.bin", "/tmp/a.bin", opts_auth)
    with_auth = world.now - t0
    t0 = world.now
    session.get("/home/alice/d.bin", "/tmp/b.bin", opts_none)
    without = world.now - t0
    assert without < with_auth


def test_expired_dcsc_blob_rejected(loaded):
    """A blob whose certificate already expired must be refused."""
    world, site, client, session = loaded
    from repro.gridftp.dcsc import encode_dcsc_blob
    from repro.pki.ca import self_signed_credential
    from repro.pki.dn import DistinguishedName as DN

    short = self_signed_credential(DN.parse("/CN=brief"), world.clock,
                                   world.rng.python("b"), lifetime=1.0)
    blob = encode_dcsc_blob(short)
    world.advance(2 * HOUR)
    # the self-signed leaf is its own anchor, but validity is checked at
    # data-channel time; installing is allowed, *using* it fails.
    reply = session.server_session.handle(f"DCSC P {blob}")
    # self-signed leaf passes the self-containedness check (no chain walk
    # needed) — acceptance here mirrors the real server; DCAU later fails.
    assert reply[0].startswith("200")
    from repro.errors import DCAUError
    from repro.gridftp.dcau import authenticate_data_channel

    sec = session.server_session.data_channel_security()
    with pytest.raises(DCAUError):
        authenticate_data_channel(sec, sec, world.now)


def test_multiple_concurrent_sessions_one_server(loaded):
    world, site, client, session = loaded
    second = site.client_for(world, "alice", "laptop").connect(site.server)
    assert second.server_session is not session.server_session
    # both sessions work independently
    r1 = session.get("/home/alice/d.bin", "/tmp/s1.bin")
    r2 = second.get("/home/alice/d.bin", "/tmp/s2.bin")
    assert r1.verified and r2.verified
    assert len(site.server.sessions) >= 2


def test_relative_paths_follow_cwd(loaded):
    world, site, client, session = loaded
    session.mkdir("sub")
    session.cwd("sub")
    ss = session.server_session
    assert ss.handle("STOR rel.bin")[0].startswith("150")
    intent = ss.take_intent()
    assert intent.path == "/home/alice/sub/rel.bin"


def test_rest_without_transfer_is_cleared_by_abor(loaded):
    world, site, client, session = loaded
    session.rest(ByteRangeSet([(0, 10)]))
    assert session.server_session.restart is not None
    session.command("ABOR")
    assert session.server_session.restart is None


def test_command_after_quit_is_421(loaded):
    world, site, client, session = loaded
    ss = session.server_session
    ss.handle("QUIT")
    assert ss.handle("PWD")[0].startswith("421")


def test_get_nonexistent_file_raises_550(loaded):
    world, site, client, session = loaded
    with pytest.raises(ProtocolError) as exc:
        session.get("/home/alice/ghost.bin", "/tmp/x.bin")
    assert exc.value.code == 550


def test_mode_e_channel_reuse_cheaper_than_fresh(loaded):
    """Cached data channels: the second file skips setup cost."""
    world, site, client, session = loaded
    uid = site.accounts.get("alice").uid
    site.storage.write_file("/home/alice/a.bin", LiteralData(b"q" * MB), uid=uid)
    site.storage.write_file("/home/alice/b.bin", LiteralData(b"q" * MB), uid=uid)
    paths = [("/home/alice/a.bin", "/tmp/ra.bin"), ("/home/alice/b.bin", "/tmp/rb.bin")]
    t0 = world.now
    session.get_many(paths, TransferOptions(pipelining=True))
    batched = world.now - t0
    t0 = world.now
    session.get("/home/alice/a.bin", "/tmp/fa.bin")
    session.get("/home/alice/b.bin", "/tmp/fb.bin")
    individual = world.now - t0
    assert batched < individual
