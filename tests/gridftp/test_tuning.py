"""Auto-tuning heuristics."""

from repro.gridftp.tuning import DatasetShape, autotune, bandwidth_delay_product
from repro.net.topology import PathStats
from repro.util.units import GB, KB, MB, gbps
from repro.xio.drivers import Protection


def path(rtt=0.05, bw=gbps(10)):
    return PathStats(src="a", dst="b", rtt_s=rtt, bottleneck_bps=bw, loss=0.0,
                     link_ids=("l",), hosts=("a", "b"))


def test_bdp():
    assert bandwidth_delay_product(path(rtt=0.1, bw=gbps(10))) == 10e9 / 8 * 0.1


def test_shape_from_sizes():
    shape = DatasetShape.from_sizes([100, 200, 300])
    assert shape.file_count == 3
    assert shape.total_bytes == 600
    assert shape.mean_size == 200


def test_small_files_get_concurrency_and_pipelining():
    shape = DatasetShape(file_count=5000, total_bytes=5000 * 100 * KB)
    opts = autotune(shape, path())
    assert opts.pipelining
    assert opts.concurrency >= 2
    assert opts.parallelism <= 4


def test_bulk_file_gets_parallel_streams_and_windows():
    shape = DatasetShape(file_count=1, total_bytes=100 * GB)
    opts = autotune(shape, path(rtt=0.1))
    assert opts.parallelism >= 8
    assert opts.tcp_window_bytes >= 1 * MB
    assert opts.concurrency == 1


def test_short_rtt_bulk_uses_fewer_streams():
    shape = DatasetShape(file_count=1, total_bytes=10 * GB)
    lan = autotune(shape, path(rtt=0.001))
    wan = autotune(shape, path(rtt=0.1))
    assert lan.parallelism <= wan.parallelism


def test_protection_is_passed_through():
    shape = DatasetShape(file_count=1, total_bytes=GB)
    opts = autotune(shape, path(), protection=Protection.PRIVATE)
    assert opts.protection is Protection.PRIVATE


def test_empty_dataset_gets_defaults():
    opts = autotune(DatasetShape(file_count=0, total_bytes=0), path())
    assert opts.parallelism == 1


def test_autotuned_options_are_valid():
    for count, total in [(1, GB), (10, 10 * GB), (100000, 100000 * 10 * KB)]:
        opts = autotune(DatasetShape(file_count=count, total_bytes=total), path())
        assert opts.parallelism >= 1
        assert opts.concurrency >= 1
