"""Two-party (client <-> striped server) transfers."""

import pytest

from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.transfer import TransferOptions
from repro.gsi.authz import GridmapCallout
from repro.pki.dn import DistinguishedName as DN
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage
from repro.util.units import MB, gbps
from tests.conftest import make_conventional_site

CONTENT = bytes(range(256)) * 1024  # 256 KiB patterned


@pytest.fixture
def striped(world):
    net = world.network
    net.add_router("lan")
    net.add_host("head", nic_bps=gbps(10))
    net.add_link("head", "lan", gbps(10), 0.002)
    for i in range(2):
        net.add_host(f"dtp{i}", nic_bps=gbps(1))
        net.add_link(f"dtp{i}", "lan", gbps(1), 0.002)
    net.add_host("laptop", nic_bps=gbps(10))
    net.add_link("laptop", "lan", gbps(10), 0.002)
    # anchor CA etc. borrowed from a conventional site on the head node
    site = make_conventional_site(world, "Org", "head", port=9999)
    site.add_user(world, "alice")
    fs = PosixStorage(world.clock)
    fs.makedirs("/home/alice", 0)
    fs.chown("/home/alice", site.accounts.get("alice").uid)
    fs.write_file("/home/alice/d.bin", LiteralData(CONTENT),
                  uid=site.accounts.get("alice").uid)
    server = StripedGridFTPServer(
        world, "head", ["dtp0", "dtp1"],
        site.ca.issue_credential(DN.parse("/O=Org/OU=hosts/CN=head")),
        site.trust, GridmapCallout(site.gridmap), site.accounts, fs, port=2811,
    ).start()
    return world, site, server, fs


def test_get_from_striped_server(striped):
    world, site, server, fs = striped
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(server)
    res = session.get("/home/alice/d.bin", "/tmp/d.bin",
                      TransferOptions(parallelism=2, block_size=16 * 1024))
    assert res.stripes == 2  # one flow per DTP node
    assert res.verified
    assert client.local_storage.open_read("/tmp/d.bin", 0).read_all() == CONTENT


def test_put_to_striped_server(striped):
    world, site, server, fs = striped
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(server)
    client.local_storage.write_file("/tmp/up.bin", CONTENT)
    res = session.put("/tmp/up.bin", "/home/alice/up.bin",
                      TransferOptions(parallelism=2))
    assert res.verified
    uid = site.accounts.get("alice").uid
    assert fs.open_read("/home/alice/up.bin", uid).read_all() == CONTENT


def test_striped_pasv_lands_on_stripe_node(striped):
    world, site, server, fs = striped
    client = site.client_for(world, "alice", "laptop")
    session = client.connect(server)
    host, port = session.passive()
    assert host == "dtp0"  # data ports live on the movers, not the head


def test_striped_two_party_faster_than_single_node(striped):
    world, site, server, fs = striped
    uid = site.accounts.get("alice").uid
    from repro.storage.data import SyntheticData
    from repro.util.units import GB

    fs.write_file("/home/alice/big.bin", SyntheticData(seed=2, length=2 * GB), uid=uid)
    single = StripedGridFTPServer(
        world, "head", ["dtp0"], server.credential, site.trust,
        server.authz, site.accounts, fs, port=2899, name="one-stripe",
    ).start()
    client = site.client_for(world, "alice", "laptop")
    opts = TransferOptions(parallelism=4, tcp_window_bytes=4 * MB)
    s1 = client.connect(single)
    r1 = s1.get("/home/alice/big.bin", "/tmp/b1.bin", opts)
    s2 = client.connect(server)
    r2 = s2.get("/home/alice/big.bin", "/tmp/b2.bin", opts)
    assert r2.rate_bps > 1.7 * r1.rate_bps
