"""Performance markers."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.perf import PerfMarker, progress_markers


def test_format_and_parse_round_trip():
    m = PerfMarker(timestamp=123.5, stripe_index=1, stripe_count=4,
                   bytes_transferred=1 << 30)
    text = m.format()
    assert text.startswith("112-Perf Marker")
    assert PerfMarker.parse(text) == m


def test_parse_malformed():
    with pytest.raises(ProtocolError):
        PerfMarker.parse("112-Perf Marker\n112 End")


def test_progress_markers_monotonic():
    markers = progress_markers(start_time=0.0, duration=60.0, total_bytes=6000,
                               stripes=1, interval_s=10.0)
    assert len(markers) == 5  # t=10..50
    byte_counts = [m.bytes_transferred for m in markers]
    assert byte_counts == sorted(byte_counts)
    assert byte_counts[-1] < 6000  # never reports completion early


def test_progress_markers_stripes_sum_to_total():
    markers = progress_markers(0.0, 100.0, 1000, stripes=3, interval_s=50.0)
    at_t50 = [m for m in markers if m.timestamp == 50.0]
    assert len(at_t50) == 3
    assert sum(m.bytes_transferred for m in at_t50) == 500


def test_progress_markers_empty_cases():
    assert progress_markers(0.0, 0.0, 100) == []
    assert progress_markers(0.0, 10.0, 0) == []


def test_progress_markers_invalid():
    with pytest.raises(ValueError):
        progress_markers(0.0, -1.0, 100)
    with pytest.raises(ValueError):
        progress_markers(0.0, 1.0, 100, stripes=0)
