"""Command parsing and the registry."""

import pytest

from repro.errors import ProtocolError
from repro.gridftp.commands import (
    feature_labels,
    known_verbs,
    lookup,
    parse_command,
)


def test_parse_verb_and_arg():
    cmd = parse_command("RETR /data/file.dat")
    assert cmd.verb == "RETR"
    assert cmd.arg == "/data/file.dat"


def test_parse_lowercase_verb_normalized():
    assert parse_command("retr x").verb == "RETR"


def test_parse_no_arg():
    cmd = parse_command("PASV")
    assert cmd.verb == "PASV"
    assert cmd.arg == ""
    assert cmd.line == "PASV"


def test_parse_empty_line_rejected():
    with pytest.raises(ProtocolError):
        parse_command("   ")


def test_lookup_known_and_unknown():
    assert lookup("RETR") is not None
    assert lookup("retr") is not None
    assert lookup("FROB") is None


def test_auth_requirements():
    assert not lookup("AUTH").requires_auth
    assert not lookup("FEAT").requires_auth
    assert lookup("RETR").requires_auth
    assert lookup("DCSC").requires_auth


def test_dcsc_is_registered_feature():
    assert lookup("DCSC").feature == "DCSC"
    assert "DCSC" in feature_labels(dcsc_enabled=True)
    assert "DCSC" not in feature_labels(dcsc_enabled=False)


def test_feature_labels_sorted_and_complete():
    labels = feature_labels()
    assert labels == sorted(labels)
    for expected in ("SPAS", "SPOR", "DCAU", "PBSZ", "CKSM", "ERET", "ESTO"):
        assert expected in labels


def test_known_verbs_cover_rfc959_core():
    verbs = known_verbs()
    for v in ("USER", "PASS", "QUIT", "TYPE", "MODE", "PASV", "PORT", "RETR",
              "STOR", "REST", "ABOR"):
        assert v in verbs
