"""Striped servers (Figure 2's cluster composition)."""

import pytest

from repro.errors import NetworkError
from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import SyntheticData
from repro.storage.posix import PosixStorage
from repro.util.units import GB, MB, gbps
from tests.conftest import make_conventional_site


@pytest.fixture
def cluster(world):
    """A 4-node striped cluster facing a plain remote server."""
    net = world.network
    net.add_host("head", nic_bps=gbps(1))
    stripe_hosts = []
    for i in range(4):
        h = f"dtp{i}"
        net.add_host(h, nic_bps=gbps(1))
        stripe_hosts.append(h)
    net.add_host("remote", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_router("wan")
    net.add_link("head", "wan", gbps(10), 0.01)
    for h in stripe_hosts:
        net.add_link(h, "wan", gbps(1), 0.01)
    net.add_link("remote", "wan", gbps(10), 0.02)
    net.add_link("laptop", "wan", gbps(1), 0.02)

    remote_site = make_conventional_site(world, "Remote", "remote")
    remote_site.add_user(world, "alice")

    # the striped cluster shares the remote site's CA for simplicity
    from repro.gsi.authz import GridmapCallout
    from repro.pki.dn import DistinguishedName as DN

    shared_fs = PosixStorage(world.clock)
    cluster_server = StripedGridFTPServer(
        world,
        "head",
        stripe_hosts,
        remote_site.ca.issue_credential(DN.parse("/O=Remote/OU=hosts/CN=head")),
        remote_site.trust,
        GridmapCallout(remote_site.gridmap),
        remote_site.accounts,
        shared_fs,
        port=2811,
    ).start()
    shared_fs.makedirs("/home/alice", 0)
    shared_fs.chown("/home/alice", remote_site.accounts.get("alice").uid)
    return world, remote_site, cluster_server, shared_fs


def test_requires_stripe_hosts(world):
    net = world.network
    net.add_host("h")
    from repro.pki.ca import CertificateAuthority
    from repro.pki.dn import DistinguishedName as DN
    from repro.pki.validation import TrustStore
    from repro.gsi.authz import GridmapCallout
    from repro.gsi.gridmap import Gridmap
    from repro.auth.accounts import AccountDatabase

    ca = CertificateAuthority(DN.parse("/CN=CA"), world.clock,
                              world.rng.python("x"), key_bits=256)
    with pytest.raises(NetworkError):
        StripedGridFTPServer(
            world, "h", [], ca.issue_credential(DN.parse("/CN=h")), TrustStore(),
            GridmapCallout(Gridmap()), AccountDatabase(), PosixStorage(world.clock),
        )


def test_spas_returns_one_address_per_stripe(cluster):
    world, remote_site, striped, fs = cluster
    client = remote_site.client_for(world, "alice", "laptop")
    session = client.connect(striped)
    addrs = session.striped_passive()
    assert len(addrs) == 4
    assert {h for h, _ in addrs} == {f"dtp{i}" for i in range(4)}


def test_striping_aggregates_bandwidth(cluster):
    """4 x 1 Gb/s stripe nodes beat a single 1 Gb/s mover."""
    world, remote_site, striped, fs = cluster
    uid = remote_site.accounts.get("alice").uid
    data = SyntheticData(seed=31, length=4 * GB)
    fs.write_file("/home/alice/big.bin", data, uid=uid)
    remote_site.storage.write_file("/home/alice/big.bin", data, uid=uid)

    from repro.gridftp.third_party import third_party_transfer

    opts = TransferOptions(parallelism=4, tcp_window_bytes=16 * MB)
    client = remote_site.client_for(world, "alice", "laptop")

    # striped source -> plain destination
    src = client.connect(striped)
    dst = client.connect(remote_site.server)
    striped_res = third_party_transfer(src, "/home/alice/big.bin",
                                       dst, "/home/alice/copy1.bin", opts)
    assert striped_res.stripes == 4
    assert striped_res.verified

    # plain source (single 1 Gb/s-ish mover behind same WAN): compare rate
    # against a single stripe by measuring a 1-stripe striped server
    single = StripedGridFTPServer(
        world, "head", ["dtp0"],
        striped.credential, remote_site.trust, striped.authz,
        remote_site.accounts, fs, port=2899, name="single-stripe",
    ).start()
    src1 = client.connect(single)
    dst1 = client.connect(remote_site.server)
    single_res = third_party_transfer(src1, "/home/alice/big.bin",
                                      dst1, "/home/alice/copy2.bin", opts)
    assert striped_res.rate_bps > 2.5 * single_res.rate_bps


def test_internal_messages_logged_with_security_flag(cluster):
    world, remote_site, striped, fs = cluster
    striped.dispatch_stripe_plan(["/home/alice/x"])
    events = world.log.select("gridftp.striped.internal")
    assert events
    assert all(ev.fields["secure"] is True for ev in events)


def test_internal_message_rejects_foreign_host(cluster):
    world, remote_site, striped, fs = cluster
    with pytest.raises(NetworkError):
        striped.internal_message("remote", "hello")


def test_insecure_internal_channel_flag(cluster):
    world, remote_site, striped, fs = cluster
    insecure = StripedGridFTPServer(
        world, "head", ["dtp0"], striped.credential, remote_site.trust,
        striped.authz, remote_site.accounts, fs, port=2900,
        internal_channel_secure=False, name="lite-like",
    )
    insecure.internal_message("dtp0", "open /f")
    ev = world.log.select("gridftp.striped.internal", server="lite-like")[-1]
    assert ev.fields["secure"] is False
