"""The client PI and high-level operations."""

import pytest

from repro.errors import AuthenticationError, ProtocolError, TransferError
from repro.gridftp.client import GridFTPClient, GridFTPUrl, globus_url_copy
from repro.gridftp.restart import ByteRangeSet
from repro.gridftp.transfer import TransferOptions
from repro.pki.validation import TrustStore
from repro.storage.data import LiteralData
from repro.util.units import MB


# -- URL parsing -------------------------------------------------------------


def test_url_gsiftp_with_port():
    u = GridFTPUrl.parse("gsiftp://dtn1:2811/data/f.dat")
    assert (u.scheme, u.host, u.port, u.path) == ("gsiftp", "dtn1", 2811, "/data/f.dat")


def test_url_default_port():
    assert GridFTPUrl.parse("gsiftp://dtn1/f").port == 2811


def test_url_file_forms():
    assert GridFTPUrl.parse("file:///x/y").path == "/x/y"
    assert GridFTPUrl.parse("file:/x/y").path == "/x/y"  # paper's spelling


def test_url_rejects_unknown_scheme():
    with pytest.raises(ProtocolError):
        GridFTPUrl.parse("sftp://host/f")
    with pytest.raises(ProtocolError):
        GridFTPUrl.parse("garbage")


def test_url_str_round_trip():
    u = GridFTPUrl.parse("gsiftp://h:2812/p/q")
    assert str(u) == "gsiftp://h:2812/p/q"


# -- login -----------------------------------------------------------------------


def test_login_maps_user(simple_pair):
    world, site, laptop = simple_pair
    client = site.client_for(world, "alice", laptop)
    session = client.connect(site.server)
    assert session.logged_in_as == "alice"
    assert session.authenticated


def test_login_without_credential_fails(simple_pair):
    world, site, laptop = simple_pair
    client = GridFTPClient(world, laptop, credential=None, trust=site.trust)
    with pytest.raises(AuthenticationError):
        client.connect(site.server)


def test_client_rejects_untrusted_server(simple_pair):
    """Mutual auth: the client must validate the server's host cert."""
    world, site, laptop = simple_pair
    client = GridFTPClient(
        world, laptop,
        credential=site.proxy_for(world, "alice"),
        trust=TrustStore(),  # empty: trusts nobody
    )
    with pytest.raises(AuthenticationError, match="rejected server certificate"):
        client.connect(site.server)


def test_login_as_specific_requested_user(simple_pair):
    world, site, laptop = simple_pair
    site.gridmap.add(site.user_credentials["alice"].subject, "shared")
    site.accounts.add_user("shared")
    site.storage.makedirs("/home/shared", 0)
    client = site.client_for(world, "alice", laptop)
    session = client.connect(site.server, username="shared")
    assert session.logged_in_as == "shared"


# -- get/put ------------------------------------------------------------------------


@pytest.fixture
def loaded(simple_pair):
    world, site, laptop = simple_pair
    uid = site.accounts.get("alice").uid
    site.storage.write_file("/home/alice/d.bin", LiteralData(b"ab" * 5000), uid=uid)
    client = site.client_for(world, "alice", laptop)
    return world, site, client, client.connect(site.server)


def test_get_round_trip(loaded):
    world, site, client, session = loaded
    res = session.get("/home/alice/d.bin", "/tmp/d.bin")
    assert res.nbytes == 10000
    assert res.verified
    assert client.local_storage.open_read("/tmp/d.bin", 0).read_all() == b"ab" * 5000


def test_put_round_trip(loaded):
    world, site, client, session = loaded
    client.local_storage.write_file("/tmp/up.bin", b"XYZ" * 1000)
    res = session.put("/tmp/up.bin", "/home/alice/up.bin")
    assert res.verified
    uid = site.accounts.get("alice").uid
    assert site.storage.open_read("/home/alice/up.bin", uid).read_all() == b"XYZ" * 1000


def test_get_applies_options_to_server(loaded):
    world, site, client, session = loaded
    opts = TransferOptions(parallelism=8)
    session.get("/home/alice/d.bin", "/tmp/d.bin", opts)
    assert session.server_session.parallelism == 8
    assert session.server_session.mode == "E"


def test_get_restart_moves_only_missing(loaded):
    world, site, client, session = loaded
    have = ByteRangeSet([(0, 6000)])
    sink = client.local_storage.open_write("/tmp/d.bin", 0, 10000)
    sink.write_block(0, (b"ab" * 5000)[:6000])
    sink.close(complete=False)
    res = session.get("/home/alice/d.bin", "/tmp/d.bin", restart=have)
    assert res.nbytes == 4000  # only the complement moved
    assert client.local_storage.open_read("/tmp/d.bin", 0).read_all() == b"ab" * 5000


def test_get_without_local_storage(simple_pair):
    world, site, laptop = simple_pair
    client = GridFTPClient(
        world, laptop, credential=site.proxy_for(world, "alice"),
        trust=site.trust, local_storage=None,
    )
    session = client.connect(site.server)
    with pytest.raises(TransferError):
        session.get("/x", "/y")


def test_namespace_helpers(loaded):
    world, site, client, session = loaded
    assert session.pwd() == "/home/alice"
    session.mkdir("newdir")
    session.cwd("newdir")
    assert session.pwd() == "/home/alice/newdir"
    assert session.size("/home/alice/d.bin") == 10000
    assert "d.bin" in session.list_dir("/home/alice")
    session.rename("/home/alice/d.bin", "/home/alice/e.bin")
    session.delete("/home/alice/e.bin")
    assert "e.bin" not in session.list_dir("/home/alice")


def test_features_and_supports(loaded):
    world, site, client, session = loaded
    assert session.supports("DCSC")
    assert not session.supports("NOPE")


def test_checksum_matches_local(loaded):
    world, site, client, session = loaded
    import hashlib

    assert session.checksum("/home/alice/d.bin") == hashlib.sha256(b"ab" * 5000).hexdigest()


def test_get_many_pipelining_saves_round_trips(loaded):
    world, site, client, session = loaded
    uid = site.accounts.get("alice").uid
    paths = []
    for i in range(20):
        site.storage.write_file(f"/home/alice/s{i}.dat", LiteralData(b"x" * 1000), uid=uid)
        paths.append((f"/home/alice/s{i}.dat", f"/tmp/s{i}.dat"))
    t0 = world.now
    session.get_many(paths, TransferOptions(pipelining=False))
    serial = world.now - t0
    t1 = world.now
    session.get_many(paths, TransferOptions(pipelining=True))
    pipelined = world.now - t1
    assert pipelined < serial
    # data is intact either way
    assert client.local_storage.open_read("/tmp/s7.dat", 0).read_all() == b"x" * 1000


def test_get_many_concurrency_faster_when_flow_limited(loaded):
    world, site, client, session = loaded
    uid = site.accounts.get("alice").uid
    paths = []
    for i in range(8):
        site.storage.write_file(f"/home/alice/c{i}.dat", LiteralData(b"y" * (2 * MB)), uid=uid)
        paths.append((f"/home/alice/c{i}.dat", f"/tmp/c{i}.dat"))
    t0 = world.now
    session.get_many(paths, TransferOptions(pipelining=True, concurrency=1))
    serial = world.now - t0
    t1 = world.now
    session.get_many(paths, TransferOptions(pipelining=True, concurrency=4))
    concurrent = world.now - t1
    assert concurrent < serial


def test_quit(loaded):
    world, site, client, session = loaded
    session.quit()
    assert session.channel.closed


# -- globus-url-copy -------------------------------------------------------------------


def test_globus_url_copy_get(loaded):
    world, site, client, session = loaded
    res = globus_url_copy(
        world, "gsiftp://server1:2811/home/alice/d.bin", "file:///tmp/copy.bin", client
    )
    assert res.verified
    assert client.local_storage.open_read("/tmp/copy.bin", 0).read_all() == b"ab" * 5000


def test_globus_url_copy_put(loaded):
    world, site, client, session = loaded
    client.local_storage.write_file("/tmp/src.bin", b"q" * 100)
    res = globus_url_copy(
        world, "file:///tmp/src.bin", "gsiftp://server1:2811/home/alice/dst.bin", client
    )
    assert res.verified


def test_globus_url_copy_rejects_file_to_file(loaded):
    world, site, client, session = loaded
    with pytest.raises(ProtocolError):
        globus_url_copy(world, "file:///a", "file:///b", client)
