"""End-to-end observability over a faulted third-party transfer.

The ISSUE acceptance scenario: one injected data-channel fault during a
cross-domain third-party transfer must yield a *single* trace whose
timeline shows control-channel, DCSC, data-channel, and retry spans with
correct parent/child nesting — and the Prometheus exposition must agree
with what actually happened (``retries_total``,
``bytes_transferred_total``).
"""

import pytest

from repro.gridftp.third_party import third_party_with_restart
from repro.gridftp.transfer import TransferOptions
from repro.storage.data import SyntheticData
from repro.util.units import GB


@pytest.fixture
def faulted_transfer(two_domain_world):
    """Run a 20 GB third-party transfer through one injected link fault."""
    d = two_domain_world
    uid = d.site_a.accounts.get("alice").uid
    big = SyntheticData(seed=12, length=20 * GB)
    d.site_a.storage.write_file("/home/alice/big.bin", big, uid=uid)
    client_a = d.site_a.client_for(d.world, "alice", d.laptop)
    client_b = d.site_b.client_for(d.world, "asmith", d.laptop)
    sa = client_a.connect(d.site_a.server)
    sb = client_b.connect(d.site_b.server)
    d.world.faults.cut_link(d.inter_site_link_id, at=d.world.now + 10.0, duration=20.0)
    res, attempts = third_party_with_restart(
        sa, "/home/alice/big.bin", sb, "/home/asmith/big.bin",
        options=TransferOptions(parallelism=8, tcp_window_bytes=16 * 1024 * 1024),
        use_dcsc=client_a.credential,
    )
    return d, big, res, attempts


def test_single_trace_with_nested_retry_spans(faulted_transfer):
    d, big, res, attempts = faulted_transfer
    assert attempts == 2
    tracer = d.world.tracer

    # the whole retry loop is one trace
    loops = [s for s in tracer.spans if s.name == "retry_loop"]
    assert len(loops) == 1
    trace = tracer.trace(loops[0].context.trace_id)

    # root: retry_loop; children: one span per attempt
    roots = trace.timeline()
    assert [r.span.name for r in roots] == ["retry_loop"]
    attempts_spans = trace.children_of(loops[0])
    assert [s.name for s in attempts_spans] == ["attempt", "attempt"]
    assert [s.fields["attempt"] for s in attempts_spans] == [1, 2]
    # the faulted attempt is marked errored; the retry succeeded
    assert attempts_spans[0].status == "error"
    assert "TransferFaultError" in attempts_spans[0].error
    assert attempts_spans[1].status == "ok"

    # each attempt nests a third_party span holding control-channel,
    # DCSC, and data-channel children, in that causal order
    for attempt_span, outcome in zip(attempts_spans, ("error", "ok")):
        (tp,) = trace.children_of(attempt_span)
        assert tp.name == "third_party"
        child_names = [s.name for s in trace.children_of(tp)]
        assert child_names == [
            "control_channel", "dcsc", "control_channel", "data_channel",
        ]
        data = trace.find("data_channel")
        assert all(s.context.trace_id == trace.trace_id for s in data)
        (dc,) = [s for s in trace.children_of(tp) if s.name == "data_channel"]
        assert dc.status == outcome

    # individual control commands traced under the control-channel spans
    commands = trace.find("gridftp.command")
    assert commands, "server command dispatch must join the trace"
    control_ids = {s.context.span_id for s in trace.find("control_channel")}
    dcsc_ids = {s.context.span_id for s in trace.find("dcsc")}
    assert all(
        c.context.parent_id in control_ids | dcsc_ids for c in commands
    )

    # virtual-time durations: the data channel dominates the timeline
    (dc_ok,) = [
        s for s in trace.find("data_channel") if s.status == "ok"
    ]
    assert dc_ok.duration_s > 0


def test_events_carry_the_trace_id(faulted_transfer):
    d, big, res, attempts = faulted_transfer
    (loop,) = [s for s in d.world.tracer.spans if s.name == "retry_loop"]
    fault_ev = d.world.log.last("gridftp.transfer.fault")
    complete_ev = d.world.log.last("gridftp.transfer.complete")
    assert fault_ev.trace_id == loop.context.trace_id
    assert complete_ev.trace_id == loop.context.trace_id
    assert fault_ev.span_id != complete_ev.span_id


def test_prometheus_exposition_matches_the_transfer(faulted_transfer):
    d, big, res, attempts = faulted_transfer
    metrics = d.world.metrics

    # exactly one retry, counted for the client-side loop
    retries = metrics.counter("retries_total", labelnames=("component",))
    assert retries.value(component="client") == 1

    # both endpoints reported the successful (restarted) transfer: the
    # retry moved only the missing ranges, so nbytes < the full file
    assert res.nbytes < big.size
    reported = metrics.counter(
        "bytes_transferred_total", labelnames=("direction", "mode")
    )
    assert reported.value(direction="store", mode="E") == res.nbytes
    assert reported.value(direction="retrieve", mode="E") == res.nbytes

    # data-channel accounting: fault bytes + completed bytes cover the file
    moved = metrics.counter(
        "data_channel_bytes_total", labelnames=("outcome", "transport")
    )
    fault_bytes = moved.value(outcome="fault", transport="tcp")
    done_bytes = moved.value(outcome="complete", transport="tcp")
    assert fault_bytes > 0
    assert fault_bytes + done_bytes >= big.size

    assert metrics.counter("faults_injected_total", labelnames=("kind",)).value(
        kind="data_channel"
    ) == 1

    # the text exposition carries the same numbers
    text = metrics.render_prometheus()
    assert 'retries_total{component="client"} 1' in text
    assert (
        f'bytes_transferred_total{{direction="store",mode="E"}} {res.nbytes}' in text
    )
    assert 'faults_injected_total{kind="data_channel"} 1' in text
    assert 'transfer_duration_seconds_count 1' in text

    # gauge returned to idle but remembers the transfer was active
    gauge = metrics.gauge("active_data_channels")
    assert gauge.value() == 0
    assert gauge.high_water() >= 1


def test_myproxy_issuance_metric_and_span():
    """A GCMU activation issues certificates under its own span/counter."""
    from repro.sim.world import World
    from repro.util.units import gbps
    from tests.conftest import make_gcmu_site

    world = World(seed=5)
    world.network.add_host("gcmu-dtn", nic_bps=gbps(10))
    world.network.add_host("laptop", nic_bps=gbps(1))
    world.network.add_link("gcmu-dtn", "laptop", gbps(1), 0.01)
    endpoint = make_gcmu_site(world, "gcmu-dtn", "TestSite", {"carol": "pw"})
    endpoint.myproxy.logon("carol", "pw")
    counter = world.metrics.counter(
        "myproxy_certs_issued_total", labelnames=("site",)
    )
    assert counter.value(site="TestSite") == 1
    spans = [s for s in world.tracer.spans if s.name == "myproxy.logon"]
    assert len(spans) == 1 and spans[0].status == "ok"
