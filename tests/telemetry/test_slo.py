"""The SLO engine: burn-rate math, alerting, and event wiring."""

import pytest

from repro.sim.world import World
from repro.telemetry.slo import (
    BurnWindow,
    ServiceObjective,
    SLOEngine,
    default_slos,
    wire_slos,
)

#: a tight two-window objective for direct unit exercises
TIGHT = ServiceObjective(
    name="probe",
    description="99% of probes succeed",
    objective=0.99,
    windows=(BurnWindow(100.0, 6.0), BurnWindow(400.0, 3.0)),
    min_events=10,
)


def _engine(world, spec=TIGHT):
    return SLOEngine(world, [spec])


def test_burn_rate_math():
    world = World(seed=1)
    eng = _engine(world)
    # 50 good + 2 bad in-window: error rate 2/52, budget 0.01
    eng.record("probe", good=50)
    eng.record("probe", bad=2)
    expected = (2 / 52) / 0.01
    g = world.metrics.get("slo_burn_rate")
    assert g.value(slo="probe", window="100s") == pytest.approx(expected)
    assert g.value(slo="probe", window="400s") == pytest.approx(expected)
    budget = world.metrics.get("slo_error_budget_remaining")
    assert budget.value(slo="probe") == pytest.approx(1.0 - expected)


def test_alert_fires_only_when_all_windows_burn():
    world = World(seed=1)
    eng = _engine(world)
    # 9 bad of 9: far past threshold, but below min_events — no alert
    eng.record("probe", good=0, bad=9)
    assert not eng.alert_active("probe")
    eng.record("probe", bad=1, trace_id="trace-0042")
    assert eng.alert_active("probe")
    fired = world.log.select("slo.alert_fired")
    assert len(fired) == 1
    assert fired[0].fields["slo"] == "probe"
    assert fired[0].fields["exemplar_trace"] == "trace-0042"
    assert world.metrics.get("slo_alert_active").value(slo="probe") == 1
    assert world.metrics.get("slo_alerts_total").value(slo="probe") == 1
    # a second evaluation while firing does not re-fire
    eng.record("probe", bad=1)
    assert len(world.log.select("slo.alert_fired")) == 1


def test_alert_clears_when_fast_window_recovers():
    world = World(seed=1)
    eng = _engine(world)
    eng.record("probe", bad=10)
    assert eng.alert_active("probe")
    # advance past the fast window so the bad samples age out of it,
    # then feed good traffic: the fast burn drops below threshold
    world.advance(150.0)
    eng.record("probe", good=50)
    assert not eng.alert_active("probe")
    cleared = world.log.select("slo.alert_cleared")
    assert len(cleared) == 1
    assert world.metrics.get("slo_alert_active").value(slo="probe") == 0


def test_windows_prune_on_virtual_time():
    world = World(seed=1)
    eng = _engine(world)
    eng.record("probe", bad=10)
    world.advance(500.0)  # past both windows
    eng.record("probe", good=1)
    g = world.metrics.get("slo_burn_rate")
    assert g.value(slo="probe", window="100s") == 0.0
    assert g.value(slo="probe", window="400s") == 0.0


def test_observe_latency_splits_on_threshold():
    world = World(seed=1)
    spec = ServiceObjective(
        name="wait", description="fast waits", objective=0.9,
        threshold_s=60.0, min_events=1,
        windows=(BurnWindow(100.0, 1.0),))
    eng = _engine(world, spec)
    eng.observe_latency("wait", 59.9)
    eng.observe_latency("wait", 60.0)  # inclusive: still good
    eng.observe_latency("wait", 60.1, trace_id="trace-0007")
    c = world.metrics.get("slo_events_total")
    assert c.value(slo="wait", outcome="good") == 2
    assert c.value(slo="wait", outcome="bad") == 1
    assert eng.status()[0]["exemplar_trace"] == "trace-0007"
    with pytest.raises(ValueError):
        _engine(World(seed=1)).observe_latency("probe", 1.0)  # no threshold


def test_status_rows():
    world = World(seed=1)
    eng = _engine(world)
    eng.record("probe", good=99, bad=1)  # burn 1x: under both thresholds
    (row,) = eng.status()
    assert row["slo"] == "probe"
    assert row["good"] == 99
    assert row["bad"] == 1
    assert row["alert"] is False
    assert set(row["burn"]) == {"100s", "400s"}


def test_declaration_validation():
    with pytest.raises(ValueError):
        ServiceObjective(name="x", description="", objective=1.0)
    with pytest.raises(ValueError):
        ServiceObjective(name="x", description="", objective=0.9, windows=())
    with pytest.raises(ValueError):
        BurnWindow(0.0, 1.0)
    with pytest.raises(ValueError):
        BurnWindow(10.0, 0.0)
    world = World(seed=1)
    with pytest.raises(ValueError):
        SLOEngine(world, [TIGHT, TIGHT])  # duplicate names
    eng = _engine(World(seed=1))
    with pytest.raises(KeyError):
        eng.record("unknown", good=1)
    with pytest.raises(ValueError):
        eng.record("probe", good=-1)
    eng.record("probe")  # zero-sample call is a no-op
    assert eng.status()[0]["good"] == 0


def test_default_slos_cover_the_issue_objectives():
    specs = default_slos()
    assert {s.name for s in specs} == {
        "queue_wait_p99", "transfer_success", "retry_budget", "lease_expiry"}
    wait = next(s for s in specs if s.name == "queue_wait_p99")
    assert wait.threshold_s == 600.0
    assert default_slos(queue_wait_slo_s=42.0)[0].threshold_s == 42.0


def test_wire_slos_feeds_from_scheduler_events():
    world = World(seed=1)
    eng = SLOEngine(world, default_slos(queue_wait_slo_s=100.0))
    wire_slos(world, eng)
    c = world.metrics.get("slo_events_total")
    world.emit("scheduler.claimed", "c", task="t", worker="w0",
               attempt=1, wait_s=50.0, trace="trace-0001")
    assert c.value(slo="queue_wait_p99", outcome="good") == 1
    assert c.value(slo="lease_expiry", outcome="good") == 1
    world.emit("scheduler.claimed", "c", task="t", worker="w0",
               attempt=2, wait_s=500.0, trace="trace-0001")
    assert c.value(slo="queue_wait_p99", outcome="bad") == 1
    world.emit("scheduler.task_done", "d", task="t", user="u",
               bytes=1, attempts=1)
    assert c.value(slo="transfer_success", outcome="good") == 1
    world.emit("scheduler.task_failed", "f", task="t", error="x",
               trace="trace-0001")
    assert c.value(slo="transfer_success", outcome="bad") == 1
    world.emit("scheduler.lease_expired", "e", task="t", worker="w0",
               attempt=1, trace="trace-0001")
    assert c.value(slo="lease_expiry", outcome="bad") == 1
    world.emit("recovery.succeeded", "s", component="x", attempts=3,
               faults_survived=2, backoff_s=1.0)
    assert c.value(slo="retry_budget", outcome="good") == 1
    assert c.value(slo="retry_budget", outcome="bad") == 2
    world.emit("recovery.exhausted", "x", component="x", attempts=4, error="E")
    assert c.value(slo="retry_budget", outcome="bad") == 6


def test_wire_slos_tolerates_subset_of_objectives():
    world = World(seed=1)
    eng = SLOEngine(world, [TIGHT])
    wire_slos(world, eng)
    # none of the default names exist; scheduler events must not raise
    world.emit("scheduler.claimed", "c", task="t", worker="w0",
               attempt=1, wait_s=50.0, trace=None)
    world.emit("scheduler.task_done", "d", task="t", user="u",
               bytes=1, attempts=1)
    assert world.log.subscriber_errors == 0


def test_engine_is_deterministic_over_virtual_time():
    def run():
        world = World(seed=9)
        eng = _engine(world)
        for i in range(30):
            world.advance(7.0)
            eng.record("probe", good=2, bad=1 if i % 3 == 0 else 0,
                       trace_id=f"trace-{i:04d}")
        return (
            [ev.to_dict() for ev in world.log.select("slo.")],
            eng.status(),
        )

    assert run() == run()
