"""The flight recorder: per-task causal records from the event stream."""

import json

import pytest

from repro.errors import TransferFaultError
from repro.recovery.engine import RecoveryEngine
from repro.recovery.policy import RetryPolicy
from repro.scheduler import FleetScheduler, ScheduledTask, SchedulerConfig
from repro.sim.world import World
from repro.telemetry.flightrecorder import FlightRecorder


def _task(world, i, user=None, duration_s=5.0, src="alcf#dtn", dst="nersc#dtn"):
    def run():
        world.advance(duration_s)
    return ScheduledTask(
        task_id=f"task-{i:06d}", user=user or f"user{i % 3}",
        src_endpoint=src, dst_endpoint=dst,
        size_hint=(i + 1) * 1_000_000, execute=run,
    )


def _drain(world, n_tasks=6, **config):
    sched = FleetScheduler(world, SchedulerConfig(
        workers=2, batch_threshold_bytes=0, **config))
    for i in range(n_tasks):
        sched.submit(_task(world, i))
    sched.run_until_idle()
    return sched


def test_records_assemble_full_lifecycle():
    world = World(seed=7)
    rec, _ = world.enable_observability()
    _drain(world)
    assert len(rec) == 6
    r = rec.record("task-000002")
    assert r is not None
    assert r.complete
    assert r.status == "done"
    assert r.user == "user2"
    assert r.src_endpoint == "alcf#dtn"
    assert r.dst_endpoint == "nersc#dtn"
    assert r.submitted_at is not None
    assert r.claimed_at is not None
    assert r.completed_at is not None
    assert r.queue_wait_s == r.claimed_at - r.submitted_at
    assert r.total_s == r.completed_at - r.submitted_at
    assert r.delivered_bytes == 3_000_000
    assert r.attempts == 1
    assert r.lane_vtime is not None
    # the causal chain is in order: submitted -> claimed -> dispatch -> done
    kinds = [ev.kind for ev in r.events]
    for expected in ("scheduler.submitted", "scheduler.claimed",
                     "scheduler.dispatch", "scheduler.task_done"):
        assert expected in kinds
    assert kinds.index("scheduler.submitted") < kinds.index("scheduler.claimed")
    assert kinds.index("scheduler.claimed") < kinds.index("scheduler.task_done")


def test_exemplar_trace_resolves_to_record():
    world = World(seed=7)
    rec, _ = world.enable_observability()
    _drain(world)
    # every queue-wait exemplar must resolve through the recorder
    h = world.metrics.get("scheduler_queue_wait_seconds")
    exemplars = h.exemplars()
    assert exemplars, "queue-wait histogram captured no exemplars"
    for ex in exemplars.values():
        record = rec.by_trace(ex.trace_id)
        assert record is not None
        assert record.trace_id == ex.trace_id
        assert record.complete


def test_queries_by_user_endpoint_and_slowness():
    world = World(seed=7)
    rec, _ = world.enable_observability()
    _drain(world)
    assert {r.task_id for r in rec.for_user("user0")} == {
        "task-000000", "task-000003"}
    assert len(rec.for_endpoint("nersc#dtn")) == 6
    assert rec.for_endpoint("absent#dtn") == []
    slowest = rec.slowest(2, by="total_s")
    assert len(slowest) == 2
    assert slowest[0].total_s >= slowest[1].total_s
    waits = rec.slowest(3, by="queue_wait_s")
    assert waits[0].queue_wait_s >= waits[-1].queue_wait_s
    with pytest.raises(ValueError):
        rec.slowest(3, by="bogus")


def test_ring_evicts_completed_before_inflight():
    world = World(seed=3)
    recorder = FlightRecorder(world, capacity=3)
    # two terminal tasks, then three in-flight submissions
    for i in range(2):
        world.emit("scheduler.submitted", "q", task=f"done-{i}", user="u")
        world.emit("scheduler.task_done", "d", task=f"done-{i}", user="u",
                   bytes=1, attempts=1)
    for i in range(3):
        world.emit("scheduler.submitted", "q", task=f"live-{i}", user="u")
    assert len(recorder) == 3
    # the completed records went first; all in-flight ones survive
    assert recorder.record("done-0") is None
    assert recorder.record("done-1") is None
    for i in range(3):
        assert recorder.record(f"live-{i}") is not None
    assert world.metrics.get("flightrecorder_evicted_total").total() == 2
    assert world.metrics.get("flightrecorder_records").value() == 3


def test_ring_falls_back_to_oldest_when_nothing_terminal():
    world = World(seed=3)
    recorder = FlightRecorder(world, capacity=2)
    for i in range(4):
        world.emit("scheduler.submitted", "q", task=f"live-{i}", user="u")
    assert len(recorder) == 2
    assert recorder.record("live-0") is None
    assert recorder.record("live-1") is None
    assert recorder.record("live-3") is not None


def test_per_record_event_bound_counts_drops():
    world = World(seed=3)
    recorder = FlightRecorder(world, capacity=8, events_per_record=3)
    world.emit("scheduler.submitted", "q", task="t", user="u")
    for _ in range(5):
        world.emit("scheduler.claimed", "c", task="t", worker="w0", attempt=1)
    r = recorder.record("t")
    assert len(r.events) == 3
    assert r.dropped_events == 3


def test_lease_expiry_flips_status_back_to_queued():
    world = World(seed=11)
    rec, _ = world.enable_observability()
    # the crash begins inside the first lease window, so the initial
    # claim is abandoned, the lease lapses, and the task requeues
    world.faults.crash_host("wh-0", 5.0, 30.0)
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, worker_hosts=("wh-0",), lease_s=10.0, heartbeat_s=2.0,
        batch_threshold_bytes=0))
    sched.submit(_task(world, 0, duration_s=3.0))
    sched.run_until_idle()
    r = rec.record("task-000000")
    assert r.status == "done"
    assert r.attempts >= 2
    assert r.events_of("scheduler.lease_expired")
    # requeue cost shows up as multiple claims
    assert len(r.events_of("scheduler.claimed")) >= 2


def test_recovery_events_attach_via_dispatch_trace():
    world = World(seed=5)
    rec, _ = world.enable_observability()
    engine = RecoveryEngine(world, RetryPolicy(
        max_attempts=3, initial_backoff_s=1.0, jitter=0.0), component="test")
    calls = {"n": 0}

    def flaky(attempt):
        calls["n"] += 1
        if calls["n"] < 2:
            raise TransferFaultError("boom", at_time=world.now)
        return "ok"

    def payload():
        engine.run(flaky, describe="flaky op")

    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, batch_threshold_bytes=0))
    sched.submit(ScheduledTask(
        task_id="task-000000", user="u", src_endpoint="a#d", dst_endpoint="b#d",
        size_hint=1, execute=payload))
    sched.run_until_idle()
    r = rec.record("task-000000")
    assert r.status == "done"
    assert r.recovery_faults == 1
    assert r.events_of("recovery.fault")
    assert r.events_of("recovery.succeeded")
    # the claim trace was bound alongside the submit trace
    assert len(r.trace_ids) >= 2
    for tid in r.trace_ids:
        assert rec.by_trace(tid) is r


def test_rejections_land_in_side_channel():
    world = World(seed=2)
    rec, _ = world.enable_observability()
    from repro.errors import QueueFullError
    from repro.scheduler.limits import SchedulerLimits
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, batch_threshold_bytes=0,
        limits=SchedulerLimits(max_queue_depth=1)))
    sched.submit(_task(world, 0))
    with pytest.raises(QueueFullError):
        sched.submit(_task(world, 1))
    assert len(rec.rejections) == 1
    assert rec.rejections[0].detail["reason"] == "queue_full"
    # the rejected submission never became a record
    assert rec.record("task-000001") is None


def test_jsonl_dump_roundtrips(tmp_path):
    world = World(seed=7)
    rec, _ = world.enable_observability()
    _drain(world)
    path = tmp_path / "flight.jsonl"
    written = rec.dump(str(path))
    assert written == 6
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 6
    rows = [json.loads(line) for line in lines]
    by_id = {row["task_id"]: row for row in rows}
    r = rec.record("task-000004")
    row = by_id["task-000004"]
    assert row["status"] == "done"
    assert row["trace_id"] == r.trace_id
    assert row["queue_wait_s"] == pytest.approx(r.queue_wait_s)
    assert row["events"][0]["kind"] == "scheduler.submitted"


def test_detach_stops_recording_but_keeps_records():
    world = World(seed=7)
    rec, _ = world.enable_observability()
    _drain(world, n_tasks=2)
    assert len(rec) == 2
    rec.detach()
    world.emit("scheduler.submitted", "q", task="late", user="u")
    assert rec.record("late") is None
    assert rec.record("task-000000") is not None
    rec.detach()  # idempotent


def test_determinism_across_identical_runs():
    def run():
        world = World(seed=13)
        rec, _ = world.enable_observability()
        _drain(world)
        return rec.to_jsonl()

    assert run() == run()


def test_enable_observability_is_idempotent():
    world = World(seed=1)
    pair1 = world.enable_observability()
    pair2 = world.enable_observability()
    assert pair1[0] is pair2[0]
    assert pair1[1] is pair2[1]


def test_recorder_validates_bounds():
    world = World(seed=1)
    with pytest.raises(ValueError):
        FlightRecorder(world, capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(world, events_per_record=0)
