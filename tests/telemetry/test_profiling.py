"""The @timed decorator and the slow-operation log."""

import pytest

from repro.sim.world import World
from repro.telemetry.profiling import OP_HISTOGRAM, SlowOpLog, timed


class _Component:
    """A world-owning object with instrumented operations."""

    def __init__(self, world: World) -> None:
        self.world = world

    @timed("demo.cheap")
    def cheap(self) -> str:
        return "ok"

    @timed("demo.costly")
    def costly(self, seconds: float) -> None:
        self.world.advance(seconds)

    @timed("demo.failing")
    def failing(self) -> None:
        self.world.advance(5.0)
        raise RuntimeError("op failed")


def test_timed_records_histogram_by_category():
    w = World(seed=1)
    comp = _Component(w)
    assert comp.cheap() == "ok"
    comp.costly(3.0)
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="demo.cheap") == 1
    assert h.sum(category="demo.cheap") == 0.0
    assert h.count(category="demo.costly") == 1
    assert h.sum(category="demo.costly") == pytest.approx(3.0)


def test_timed_records_even_when_op_raises():
    w = World(seed=1)
    comp = _Component(w)
    with pytest.raises(RuntimeError):
        comp.failing()
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="demo.failing") == 1
    assert h.sum(category="demo.failing") == pytest.approx(5.0)


def test_timed_feeds_slow_op_log_above_threshold():
    w = World(seed=1, slow_op_threshold_s=1.0)
    comp = _Component(w)
    comp.costly(0.25)  # below threshold: not logged
    comp.costly(4.0)
    entries = w.slow_ops.entries("demo.costly")
    assert len(entries) == 1
    assert entries[0].duration_s == pytest.approx(4.0)


def test_timed_without_world_is_a_no_op():
    class Bare:
        @timed("demo.bare")
        def op(self) -> int:
            return 42

    assert Bare().op() == 42


def test_slow_op_log_capacity_and_queries():
    log = SlowOpLog(threshold_s=1.0, capacity=3)
    assert not log.record("quick", 0.0, 0.5)
    for i in range(5):
        assert log.record(f"op-{i}", float(i), 1.0 + i)
    assert len(log) == 3  # ring buffer keeps newest
    assert log.total_recorded == 5
    assert [op.name for op in log] == ["op-2", "op-3", "op-4"]
    assert log.slowest(1)[0].name == "op-4"
    log.clear()
    assert len(log) == 0


def test_dtp_storage_ops_are_instrumented():
    from repro.gridftp.dtp import DataTransferProcess
    from repro.storage.posix import PosixStorage
    from repro.storage.data import LiteralData

    w = World(seed=3)
    w.network.add_host("dtn")
    fs = PosixStorage(w.clock)
    fs.makedirs("/data", 0)
    fs.write_file("/data/f.bin", LiteralData(b"x" * 100), uid=0)
    dtp = DataTransferProcess(w, "dtn", fs)
    dtp.open_source("/data/f.bin", 0)
    dtp.open_sink("/data/g.bin", 0, expected_size=100)
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="storage.open_source") == 1
    assert h.count(category="storage.open_sink") == 1
