"""The @timed decorator and the slow-operation log."""

import pytest

from repro.sim.world import World
from repro.telemetry.profiling import OP_HISTOGRAM, SlowOpLog, timed


class _Component:
    """A world-owning object with instrumented operations."""

    def __init__(self, world: World) -> None:
        self.world = world

    @timed("demo.cheap")
    def cheap(self) -> str:
        return "ok"

    @timed("demo.costly")
    def costly(self, seconds: float) -> None:
        self.world.advance(seconds)

    @timed("demo.failing")
    def failing(self) -> None:
        self.world.advance(5.0)
        raise RuntimeError("op failed")


def test_timed_records_histogram_by_category():
    w = World(seed=1)
    comp = _Component(w)
    assert comp.cheap() == "ok"
    comp.costly(3.0)
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="demo.cheap") == 1
    assert h.sum(category="demo.cheap") == 0.0
    assert h.count(category="demo.costly") == 1
    assert h.sum(category="demo.costly") == pytest.approx(3.0)


def test_timed_records_even_when_op_raises():
    w = World(seed=1)
    comp = _Component(w)
    with pytest.raises(RuntimeError):
        comp.failing()
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="demo.failing") == 1
    assert h.sum(category="demo.failing") == pytest.approx(5.0)


def test_timed_feeds_slow_op_log_above_threshold():
    w = World(seed=1, slow_op_threshold_s=1.0)
    comp = _Component(w)
    comp.costly(0.25)  # below threshold: not logged
    comp.costly(4.0)
    entries = w.slow_ops.entries("demo.costly")
    assert len(entries) == 1
    assert entries[0].duration_s == pytest.approx(4.0)


def test_timed_without_world_is_a_no_op():
    class Bare:
        @timed("demo.bare")
        def op(self) -> int:
            return 42

    assert Bare().op() == 42


def test_slow_op_log_capacity_and_queries():
    log = SlowOpLog(threshold_s=1.0, capacity=3)
    assert not log.record("quick", 0.0, 0.5)
    for i in range(5):
        assert log.record(f"op-{i}", float(i), 1.0 + i)
    assert len(log) == 3  # ring buffer keeps newest
    assert log.total_recorded == 5
    assert [op.name for op in log] == ["op-2", "op-3", "op-4"]
    assert log.slowest(1)[0].name == "op-4"
    log.clear()
    assert len(log) == 0


def test_threshold_boundary_is_inclusive():
    log = SlowOpLog(threshold_s=2.0)
    assert not log.record("under", 0.0, 1.999999)
    assert log.record("exact", 0.0, 2.0)  # at-threshold ops are slow ops
    assert log.record("over", 0.0, 2.5)
    assert [op.name for op in log] == ["exact", "over"]
    assert log.total_recorded == 2


def test_slow_op_log_records_span_id():
    log = SlowOpLog(threshold_s=0.5)
    assert log.record("spanned", 3.0, 1.0, span_id="span-0007")
    (entry,) = log.entries("spanned")
    assert entry.span_id == "span-0007"
    assert entry.start_time == 3.0
    # record() without a span id leaves it None
    log.record("bare", 4.0, 1.0)
    assert log.entries("bare")[0].span_id is None


def test_slow_op_log_validates_capacity():
    import pytest as _pytest
    with _pytest.raises(ValueError):
        SlowOpLog(threshold_s=1.0, capacity=0)


def test_entries_filters_by_name_prefix():
    log = SlowOpLog(threshold_s=0.0)
    log.record("gridftp.retr", 0.0, 1.0)
    log.record("gridftp.stor", 1.0, 2.0)
    log.record("scheduler.claim", 2.0, 3.0)
    assert len(log.entries("gridftp.")) == 2
    assert len(log.entries("scheduler.")) == 1
    assert len(log.entries()) == 3
    assert [op.name for op in log.slowest(2)] == [
        "scheduler.claim", "gridftp.stor"]


def test_timed_metric_emission_spans_buckets():
    w = World(seed=2)
    comp = _Component(w)
    for seconds in (0.25, 3.0, 40.0):
        comp.costly(seconds)
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="demo.costly") == 3
    assert h.sum(category="demo.costly") == pytest.approx(43.25)
    buckets = h.bucket_counts(category="demo.costly")
    assert buckets[0.5] == 1   # only the 0.25s op
    assert buckets[5.0] == 2   # plus the 3s op
    assert buckets[60.0] == 3  # all of them


def test_timed_ring_eviction_under_sustained_slowness():
    w = World(seed=2, slow_op_threshold_s=0.5)
    w.slow_ops._entries = type(w.slow_ops._entries)(maxlen=4)
    comp = _Component(w)
    for _ in range(6):
        comp.costly(1.0)
    assert len(w.slow_ops) == 4  # ring keeps only the newest
    assert w.slow_ops.total_recorded == 6


def test_dtp_storage_ops_are_instrumented():
    from repro.gridftp.dtp import DataTransferProcess
    from repro.storage.posix import PosixStorage
    from repro.storage.data import LiteralData

    w = World(seed=3)
    w.network.add_host("dtn")
    fs = PosixStorage(w.clock)
    fs.makedirs("/data", 0)
    fs.write_file("/data/f.bin", LiteralData(b"x" * 100), uid=0)
    dtp = DataTransferProcess(w, "dtn", fs)
    dtp.open_source("/data/f.bin", 0)
    dtp.open_sink("/data/g.bin", 0, expected_size=100)
    h = w.metrics.get(OP_HISTOGRAM)
    assert h.count(category="storage.open_source") == 1
    assert h.count(category="storage.open_sink") == 1
