"""Tracer mechanics: context propagation, nesting, timeline reconstruction."""

import pytest

from repro.sim.world import World


@pytest.fixture
def fresh_world() -> World:
    return World(seed=7)


def test_span_outside_any_trace_starts_a_root(fresh_world):
    w = fresh_world
    assert w.tracer.current is None
    with w.span("outer") as sp:
        assert w.tracer.current is sp.context
        assert sp.context.is_root
    assert w.tracer.current is None
    trace = w.tracer.last_trace()
    assert trace is not None and len(trace) == 1


def test_nested_spans_share_trace_and_chain_parents(fresh_world):
    w = fresh_world
    with w.span("outer") as outer:
        with w.span("inner") as inner:
            assert inner.context.trace_id == outer.context.trace_id
            assert inner.context.parent_id == outer.context.span_id
    with w.span("separate") as sep:
        assert sep.context.trace_id != outer.context.trace_id


def test_span_durations_use_virtual_time(fresh_world):
    w = fresh_world
    with w.span("outer") as outer:
        w.advance(2.0)
        with w.span("inner") as inner:
            w.advance(3.0)
    assert inner.duration_s == pytest.approx(3.0)
    assert outer.duration_s == pytest.approx(5.0)


def test_span_exception_marks_error_and_propagates(fresh_world):
    w = fresh_world
    with pytest.raises(ValueError):
        with w.span("doomed") as sp:
            raise ValueError("boom")
    assert sp.status == "error"
    assert "boom" in sp.error
    assert w.tracer.current is None  # stack unwound


def test_emit_stamps_active_context(fresh_world):
    w = fresh_world
    w.emit("plain", "no trace")
    with w.span("traced") as sp:
        ev = w.emit("inside", "has trace")
    assert w.log.last("plain").trace_id is None
    assert ev.trace_id == sp.context.trace_id
    assert ev.span_id == sp.context.span_id


def test_timeline_reconstructs_tree(fresh_world):
    w = fresh_world
    with w.span("root"):
        with w.span("child-a"):
            with w.span("grandchild"):
                pass
        with w.span("child-b"):
            pass
    trace = w.tracer.last_trace()
    roots = trace.timeline()
    assert len(roots) == 1
    root = roots[0]
    assert root.span.name == "root"
    assert [c.span.name for c in root.children] == ["child-a", "child-b"]
    assert root.children[0].children[0].span.name == "grandchild"
    walked = [(depth, span.name) for depth, span in root.walk()]
    assert walked == [
        (0, "root"), (1, "child-a"), (2, "grandchild"), (1, "child-b"),
    ]


def test_trace_find_and_render(fresh_world):
    w = fresh_world
    with w.span("job"):
        with w.span("attempt", attempt=1):
            pass
        with w.span("attempt", attempt=2):
            pass
    trace = w.tracer.last_trace()
    assert len(trace.find("attempt")) == 2
    text = trace.render()
    assert "job" in text
    assert text.count("attempt") == 2


def test_tracer_clear_drops_closed_spans(fresh_world):
    w = fresh_world
    with w.span("one"):
        pass
    w.tracer.clear()
    assert w.tracer.spans == []
    assert w.tracer.traces() == []


def test_slow_spans_feed_slow_op_log(fresh_world):
    w = fresh_world
    w.slow_ops.threshold_s = 1.0
    with w.span("fast"):
        w.advance(0.5)
    with w.span("slow"):
        w.advance(2.5)
    names = [op.name for op in w.slow_ops]
    assert "slow" in names
    assert "fast" not in names
