"""Prometheus text exposition conformance, parsed line-by-line.

Every line the registry renders must match the exposition grammar
(``text/plain; version=0.0.4`` plus the OpenMetrics exemplar clause):

    # HELP <name> <escaped text>
    # TYPE <name> counter|gauge|histogram
    <name>{<label>="<escaped value>",...} <value> [# {trace_id="..."} <value>]

Label values escape backslash, double-quote, and newline; HELP text
escapes backslash and newline; exemplar syntax appears only on
histogram bucket lines that actually captured one.
"""

import re

from repro.sim.world import World
from repro.telemetry.metrics import MetricsRegistry

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
_VALUE = r"(?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)"
_EXEMPLAR = rf'(?: # \{{trace_id="(?:[^"\\\n]|\\\\|\\"|\\n)*"\}} {_VALUE})?'

HELP_RE = re.compile(rf"^# HELP {_NAME} (?:[^\n\\]|\\\\|\\n)*$")
TYPE_RE = re.compile(rf"^# TYPE {_NAME} (?:counter|gauge|histogram)$")
SERIES_RE = re.compile(
    rf"^{_NAME}(?:\{{{_LABEL}(?:,{_LABEL})*\}})? {_VALUE}{_EXEMPLAR}$")


def assert_conformant(text: str) -> None:
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# HELP"):
            assert HELP_RE.match(line), f"bad HELP line: {line!r}"
        elif line.startswith("# TYPE"):
            assert TYPE_RE.match(line), f"bad TYPE line: {line!r}"
        else:
            assert SERIES_RE.match(line), f"bad series line: {line!r}"


def test_plain_registry_conforms():
    reg = MetricsRegistry()
    reg.counter("requests_total", "Requests served", labelnames=("code",)).inc(
        3, code="200")
    reg.gauge("queue_depth", "Tasks waiting").set(7)
    reg.histogram("latency_seconds", "Latency", buckets=(0.1, 1.0)).observe(0.5)
    assert_conformant(reg.render_prometheus())


def test_nasty_label_values_escape():
    reg = MetricsRegistry()
    c = reg.counter("weird_total", "Weird labels", labelnames=("path",))
    c.inc(1, path='C:\\data\\"quoted"\nline2')
    text = reg.render_prometheus()
    assert_conformant(text)
    series = [l for l in text.splitlines() if l.startswith("weird_total{")]
    assert series == [
        'weird_total{path="C:\\\\data\\\\\\"quoted\\"\\nline2"} 1']
    # no raw newline leaked into the body
    assert all("\n" not in line for line in series)


def test_help_text_escapes():
    reg = MetricsRegistry()
    reg.counter("c_total", "line one\nline two \\ backslash").inc()
    text = reg.render_prometheus()
    assert_conformant(text)
    assert "# HELP c_total line one\\nline two \\\\ backslash" in text


def test_exemplar_syntax_only_when_present():
    reg = MetricsRegistry()
    h = reg.histogram("op_seconds", "Op latency", buckets=(1.0, 10.0))
    h.observe(0.5)
    baseline = reg.render_prometheus()
    assert "# {" not in baseline
    assert_conformant(baseline)
    h.observe(5.0, exemplar="trace-0001")
    text = reg.render_prometheus()
    assert_conformant(text)
    lines = text.splitlines()
    exemplar_lines = [l for l in lines if "# {" in l]
    assert exemplar_lines == [
        'op_seconds_bucket{le="10"} 2 # {trace_id="trace-0001"} 5']
    # the bucket without an exemplar renders exactly as before
    assert 'op_seconds_bucket{le="1"} 1' in lines


def test_overflow_bucket_carries_exemplar():
    reg = MetricsRegistry()
    h = reg.histogram("big_seconds", "Huge ops", buckets=(1.0,))
    h.observe(100.0, exemplar="trace-0099")
    text = reg.render_prometheus()
    assert_conformant(text)
    assert ('big_seconds_bucket{le="+Inf"} 1 '
            '# {trace_id="trace-0099"} 100') in text


def test_labelled_histogram_child_exemplars_conform():
    reg = MetricsRegistry()
    h = reg.histogram("svc_seconds", "Per-component latency",
                      buckets=(1.0, 60.0), labelnames=("component",))
    child = h.labels(component="gridftp")
    child.observe(0.5, exemplar="trace-0003")
    child.observe(30.0)
    text = reg.render_prometheus()
    assert_conformant(text)
    assert ('svc_seconds_bucket{component="gridftp",le="1"} 1 '
            '# {trace_id="trace-0003"} 0.5') in text
    assert h.exemplars(component="gridftp")[1.0].trace_id == "trace-0003"


def test_latest_observation_wins_the_bucket_exemplar():
    reg = MetricsRegistry()
    h = reg.histogram("x_seconds", "X", buckets=(10.0,))
    h.observe(1.0, exemplar="trace-0001")
    h.observe(2.0, exemplar="trace-0002")
    h.observe(3.0)  # no exemplar: previous one is kept
    assert h.exemplars()[10.0].trace_id == "trace-0002"
    assert h.exemplars()[10.0].value == 2.0


def test_full_world_under_load_conforms():
    from repro.scheduler import FleetScheduler, ScheduledTask, SchedulerConfig

    world = World(seed=7)
    world.enable_observability()
    sched = FleetScheduler(world, SchedulerConfig(
        workers=2, batch_threshold_bytes=0))
    for i in range(8):
        sched.submit(ScheduledTask(
            task_id=f"task-{i:06d}", user=f"user{i % 3}",
            src_endpoint="a#d", dst_endpoint="b#d", size_hint=1_000_000,
            execute=lambda: world.advance(3.0)))
    sched.run_until_idle()
    text = world.metrics.render_prometheus()
    assert_conformant(text)
    assert "slo_burn_rate{" in text
    assert "flightrecorder_records" in text
    assert "# {trace_id=" in text  # queue-wait exemplars made it out
