"""Counters, gauges, histograms, and the Prometheus exposition format."""

import pytest

from repro.telemetry.metrics import MetricError, MetricsRegistry


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


# -- counters -----------------------------------------------------------------


def test_counter_accumulates_per_labelset(registry):
    c = registry.counter("bytes_total", "bytes", labelnames=("direction",))
    c.inc(100, direction="store")
    c.inc(50, direction="store")
    c.inc(7, direction="retrieve")
    assert c.value(direction="store") == 150
    assert c.value(direction="retrieve") == 7
    assert c.value(direction="other") == 0
    assert c.total() == 157


def test_counter_rejects_decrease(registry):
    c = registry.counter("ops_total")
    with pytest.raises(MetricError):
        c.inc(-1)


def test_counter_label_mismatch_rejected(registry):
    c = registry.counter("x_total", labelnames=("a",))
    with pytest.raises(MetricError):
        c.inc(1, b="nope")
    with pytest.raises(MetricError):
        c.inc(1)  # missing label


def test_get_or_create_shares_series(registry):
    registry.counter("shared_total", labelnames=("k",)).inc(k="v")
    registry.counter("shared_total", labelnames=("k",)).inc(k="v")
    assert registry.counter("shared_total", labelnames=("k",)).value(k="v") == 2


def test_redeclare_with_different_kind_or_labels_fails(registry):
    registry.counter("thing_total", labelnames=("a",))
    with pytest.raises(MetricError):
        registry.gauge("thing_total", labelnames=("a",))
    with pytest.raises(MetricError):
        registry.counter("thing_total", labelnames=("b",))


# -- gauges -----------------------------------------------------------------


def test_gauge_up_down_and_high_water(registry):
    g = registry.gauge("active_channels")
    g.inc()
    g.inc()
    g.inc()
    g.dec()
    assert g.value() == 2
    assert g.high_water() == 3
    g.set(0)
    assert g.value() == 0
    assert g.high_water() == 3


# -- histograms --------------------------------------------------------------


def test_histogram_bucket_edges_are_inclusive(registry):
    h = registry.histogram("dur_seconds", buckets=(1.0, 5.0, 10.0))
    h.observe(1.0)   # exactly on the first edge -> le="1"
    h.observe(1.001)  # just over -> le="5"
    h.observe(10.0)  # exactly on the last edge -> le="10"
    h.observe(99.0)  # overflow -> +Inf only
    counts = h.bucket_counts()
    assert counts[1.0] == 1
    assert counts[5.0] == 2  # cumulative
    assert counts[10.0] == 3
    assert counts[float("inf")] == 4
    assert h.count() == 4
    assert h.sum() == pytest.approx(111.001)


def test_histogram_requires_buckets(registry):
    with pytest.raises(MetricError):
        registry.histogram("bad_seconds", buckets=())


def test_histogram_labelled_series_are_independent(registry):
    h = registry.histogram("t_seconds", buckets=(1.0,), labelnames=("op",))
    h.observe(0.5, op="read")
    h.observe(2.0, op="write")
    assert h.count(op="read") == 1
    assert h.bucket_counts(op="read")[1.0] == 1
    assert h.bucket_counts(op="write")[1.0] == 0


# -- exposition --------------------------------------------------------------


def test_render_prometheus_golden():
    registry = MetricsRegistry()
    c = registry.counter("bytes_transferred_total", "Payload bytes moved",
                         labelnames=("direction", "mode"))
    c.inc(1024, direction="store", mode="E")
    c.inc(512, direction="retrieve", mode="E")
    registry.gauge("active_data_channels", "Open data channels").set(2)
    h = registry.histogram("transfer_duration_seconds", "Transfer durations",
                           buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(3.0)
    expected = (
        "# HELP active_data_channels Open data channels\n"
        "# TYPE active_data_channels gauge\n"
        "active_data_channels 2\n"
        "# HELP bytes_transferred_total Payload bytes moved\n"
        "# TYPE bytes_transferred_total counter\n"
        'bytes_transferred_total{direction="retrieve",mode="E"} 512\n'
        'bytes_transferred_total{direction="store",mode="E"} 1024\n'
        "# HELP transfer_duration_seconds Transfer durations\n"
        "# TYPE transfer_duration_seconds histogram\n"
        'transfer_duration_seconds_bucket{le="1"} 1\n'
        'transfer_duration_seconds_bucket{le="10"} 2\n'
        'transfer_duration_seconds_bucket{le="+Inf"} 2\n'
        "transfer_duration_seconds_sum 3.5\n"
        "transfer_duration_seconds_count 2\n"
    )
    assert registry.render_prometheus() == expected


def test_render_prometheus_escapes_label_values(registry):
    registry.counter("odd_total", labelnames=("path",)).inc(path='a"b\\c\nd')
    out = registry.render_prometheus()
    assert 'odd_total{path="a\\"b\\\\c\\nd"} 1' in out


def test_render_table_lists_every_series(registry):
    registry.counter("a_total", labelnames=("k",)).inc(5, k="x")
    registry.gauge("b").set(1.5)
    table = registry.render_table(caption="World metrics")
    assert "World metrics" in table
    assert "a_total" in table and "k=x" in table
    assert "b" in table

    # histogram series show as _count/_sum rows
    registry.histogram("h_seconds", buckets=(1.0,)).observe(0.2)
    table = registry.render_table()
    assert "h_seconds_count" in table
    assert "h_seconds_sum" in table


def test_empty_registry_renders_empty(registry):
    assert registry.render_prometheus() == ""
