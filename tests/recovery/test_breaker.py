"""CircuitBreaker: the three-state machine against a virtual clock."""

import pytest

from repro.errors import CircuitOpenError
from repro.recovery import CircuitBreaker, CircuitState
from repro.sim.clock import Clock


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(clock, failure_threshold=3, reset_timeout_s=60.0)


def test_starts_closed_and_admits(breaker):
    assert breaker.state("ep") is CircuitState.CLOSED
    breaker.check("ep")  # no raise


def test_opens_at_threshold(breaker):
    for _ in range(2):
        assert breaker.record_failure("ep") is CircuitState.CLOSED
    assert breaker.record_failure("ep") is CircuitState.OPEN
    assert breaker.state("ep") is CircuitState.OPEN
    with pytest.raises(CircuitOpenError) as exc:
        breaker.check("ep")
    assert exc.value.endpoint == "ep"
    assert exc.value.retry_after_s == pytest.approx(60.0)


def test_success_resets_failure_count(breaker):
    breaker.record_failure("ep")
    breaker.record_failure("ep")
    breaker.record_success("ep")
    assert breaker.failures("ep") == 0
    breaker.record_failure("ep")
    assert breaker.state("ep") is CircuitState.CLOSED


def test_half_open_admits_one_trial(clock, breaker):
    for _ in range(3):
        breaker.record_failure("ep")
    clock.advance(60.0)
    assert breaker.state("ep") is CircuitState.HALF_OPEN
    breaker.check("ep")  # the trial goes through
    with pytest.raises(CircuitOpenError):
        breaker.check("ep")  # second concurrent caller refused


def test_half_open_success_closes(clock, breaker):
    for _ in range(3):
        breaker.record_failure("ep")
    clock.advance(61.0)
    breaker.check("ep")
    breaker.record_success("ep")
    assert breaker.state("ep") is CircuitState.CLOSED
    breaker.check("ep")


def test_half_open_failure_reopens_full_timeout(clock, breaker):
    for _ in range(3):
        breaker.record_failure("ep")
    clock.advance(60.0)
    breaker.check("ep")
    assert breaker.record_failure("ep") is CircuitState.OPEN
    assert breaker.retry_after_s("ep") == pytest.approx(60.0)
    assert breaker.times_opened("ep") == 2


def test_keys_are_independent(breaker):
    for _ in range(3):
        breaker.record_failure("a")
    assert breaker.state("a") is CircuitState.OPEN
    assert breaker.state("b") is CircuitState.CLOSED
    breaker.check("b")


def test_reset(breaker):
    for _ in range(3):
        breaker.record_failure("a")
    breaker.reset("a")
    assert breaker.state("a") is CircuitState.CLOSED
    for _ in range(3):
        breaker.record_failure("b")
    breaker.reset()
    assert breaker.state("b") is CircuitState.CLOSED


def test_validation():
    clock = Clock()
    with pytest.raises(ValueError):
        CircuitBreaker(clock, failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(clock, reset_timeout_s=0.0)
