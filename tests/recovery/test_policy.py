"""RetryPolicy: backoff shape, jitter determinism, validation."""

import random

import pytest

from repro.recovery import RetryPolicy


def test_base_backoff_doubles_until_cap():
    p = RetryPolicy(initial_backoff_s=1.0, multiplier=2.0, max_backoff_s=8.0,
                    max_attempts=10, jitter=0.0)
    assert [p.base_backoff_s(n) for n in range(1, 7)] == [1, 2, 4, 8, 8, 8]


def test_backoff_is_monotone_and_capped():
    p = RetryPolicy(initial_backoff_s=0.5, multiplier=3.0, max_backoff_s=20.0,
                    max_attempts=12, jitter=0.0)
    seq = [p.base_backoff_s(n) for n in range(1, 12)]
    assert all(a <= b for a, b in zip(seq, seq[1:]))
    assert max(seq) == 20.0


def test_jitter_only_adds():
    p = RetryPolicy(initial_backoff_s=10.0, jitter=0.25)
    rng = random.Random(7)
    for n in range(1, 6):
        base = p.base_backoff_s(n)
        jittered = p.backoff_s(n, rng)
        assert base <= jittered <= base * 1.25


def test_schedule_is_deterministic_per_seed():
    p = RetryPolicy(max_attempts=6, jitter=0.3)
    assert p.schedule(random.Random(99)) == p.schedule(random.Random(99))
    assert p.schedule(random.Random(99)) != p.schedule(random.Random(100))


def test_no_rng_means_no_jitter():
    p = RetryPolicy(initial_backoff_s=4.0, jitter=0.5)
    assert p.backoff_s(1) == 4.0
    assert p.backoff_s(1, None) == 4.0


def test_with_override():
    p = RetryPolicy(max_attempts=5)
    q = p.with_(max_attempts=2, initial_backoff_s=0.1)
    assert q.max_attempts == 2 and q.initial_backoff_s == 0.1
    assert p.max_attempts == 5  # original untouched


def test_attempt_numbers_are_one_based():
    with pytest.raises(ValueError):
        RetryPolicy().base_backoff_s(0)


@pytest.mark.parametrize("kwargs", [
    {"max_attempts": 0},
    {"multiplier": 0.5},
    {"jitter": 1.0},
    {"jitter": -0.1},
    {"initial_backoff_s": -1.0},
    {"max_backoff_s": 0.5, "initial_backoff_s": 1.0},
    {"attempt_timeout_s": 0.0},
    {"max_elapsed_s": -5.0},
])
def test_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)
