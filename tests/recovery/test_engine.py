"""RecoveryEngine: the loop itself, against a bare world."""

import pytest

from repro.errors import (
    AuthenticationError,
    CircuitOpenError,
    LinkDownError,
    TransferFaultError,
)
from repro.gridftp.restart import ByteRangeSet
from repro.recovery import CircuitBreaker, RecoveryEngine, RetryPolicy
from repro.sim.faults import ChaosConfig
from repro.sim.world import World


@pytest.fixture
def world():
    return World(seed=7)


def flaky(n_failures, marker_per_attempt=None, exc=TransferFaultError):
    """An operation failing its first ``n_failures`` calls."""
    calls = {"n": 0}

    def op(att):
        calls["n"] += 1
        if calls["n"] <= n_failures:
            received = None
            if marker_per_attempt is not None:
                received = ByteRangeSet(marker_per_attempt[calls["n"] - 1])
            if exc is TransferFaultError:
                raise TransferFaultError("boom", received=received)
            raise exc("boom")
        return f"ok after {calls['n']}"

    return op


def test_first_attempt_success(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=3))
    outcome = engine.run(flaky(0))
    assert outcome.result == "ok after 1"
    assert outcome.attempts == 1
    assert outcome.faults_survived == 0
    assert outcome.total_backoff_s == 0.0
    assert world.metrics.counter(
        "recovery_attempts_total", labelnames=("component",)
    ).value(component="recovery") == 1


def test_retries_until_success_and_counts(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=5, initial_backoff_s=2.0),
                            component="t")
    t0 = world.now
    outcome = engine.run(flaky(2))
    assert outcome.attempts == 3
    assert outcome.faults_survived == 2
    # backoff actually advanced the virtual clock
    assert world.now - t0 == pytest.approx(outcome.total_backoff_s)
    assert outcome.total_backoff_s >= 2.0 + 4.0  # base schedule, jitter adds
    m = world.metrics
    assert m.counter("recovery_retries_total", labelnames=("component",)).value(component="t") == 2
    assert m.counter("retries_total", labelnames=("component",)).value(component="t") == 2
    assert m.counter("recovery_recovered_total", labelnames=("component",)).value(component="t") == 1


def test_checkpoint_accumulates_markers(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=4, initial_backoff_s=0.1))
    seen = []

    def op(att):
        seen.append(att.checkpoint.copy() if att.checkpoint else None)
        if att.number == 1:
            raise TransferFaultError("cut", received=ByteRangeSet([(0, 100)]))
        if att.number == 2:
            raise TransferFaultError("cut", received=ByteRangeSet([(100, 250)]))
        return "done"

    outcome = engine.run(op)
    assert seen[0] is None
    assert list(seen[1]) == [(0, 100)]
    assert list(seen[2]) == [(0, 250)]  # coalesced union
    assert list(outcome.checkpoint) == [(0, 250)]


def test_exhaustion_reraises_with_checkpoint(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=3, initial_backoff_s=0.1))
    with pytest.raises(TransferFaultError, match="failed after 3 attempts") as exc:
        engine.run(
            flaky(99, marker_per_attempt=[[(0, 10)], [(10, 20)], [(20, 30)]]),
            describe="the transfer",
        )
    assert list(exc.value.received) == [(0, 30)]
    assert world.metrics.counter(
        "recovery_exhausted_total", labelnames=("component",)
    ).value(component="recovery") == 1


def test_non_retryable_propagates_immediately(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=5))
    calls = {"n": 0}

    def op(att):
        calls["n"] += 1
        raise AuthenticationError("bad password")

    with pytest.raises(AuthenticationError):
        engine.run(op)
    assert calls["n"] == 1


def test_wrap_exhausted_wraps_link_down(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=2, initial_backoff_s=0.1))
    with pytest.raises(TransferFaultError, match="attempts"):
        engine.run(flaky(99, exc=LinkDownError), retry_on=(LinkDownError,),
                   wrap_exhausted=True)


def test_unwrapped_exhaustion_reraises_original(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=2, initial_backoff_s=0.1))
    with pytest.raises(LinkDownError):
        engine.run(flaky(99, exc=LinkDownError), retry_on=(LinkDownError,))


def test_max_elapsed_budget_stops_early(world):
    policy = RetryPolicy(max_attempts=10, initial_backoff_s=100.0, jitter=0.0,
                         max_elapsed_s=150.0)
    engine = RecoveryEngine(world, policy)
    calls = {"n": 0}

    def op(att):
        calls["n"] += 1
        raise TransferFaultError("boom", received=None)

    with pytest.raises(TransferFaultError):
        engine.run(op)
    # attempt 1 fails, backoff 100 fits; attempt 2 fails, next backoff
    # (200 elapsed-with-delay) busts the budget -> stop at 2 attempts
    assert calls["n"] == 2


def test_breaker_integration_opens_and_refuses(world):
    breaker = CircuitBreaker(world.clock, failure_threshold=2, reset_timeout_s=1e6)
    policy = RetryPolicy(max_attempts=2, initial_backoff_s=0.1)
    engine = RecoveryEngine(world, policy, breaker=breaker)
    with pytest.raises(TransferFaultError):
        engine.run(flaky(99), endpoint="a->b")
    # two failures opened the circuit; a new loop is refused up front
    with pytest.raises(CircuitOpenError):
        engine.run(flaky(0), endpoint="a->b")
    # a different endpoint is unaffected
    assert engine.run(flaky(0), endpoint="a->c").attempts == 1


def test_breaker_success_closes(world):
    breaker = CircuitBreaker(world.clock, failure_threshold=3, reset_timeout_s=60.0)
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=5, initial_backoff_s=0.1),
                            breaker=breaker)
    outcome = engine.run(flaky(2), endpoint="x")
    assert outcome.attempts == 3
    assert breaker.failures("x") == 0


def test_wait_clear_called_per_attempt(world):
    calls = []
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=3, initial_backoff_s=0.1))
    engine.run(flaky(1), wait_clear=calls.append)
    assert calls == [1, 2]


def test_on_failure_hook_sees_checkpoint(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=3, initial_backoff_s=0.1))
    hooks = []
    engine.run(
        flaky(1, marker_per_attempt=[[(0, 50)]]),
        on_failure=lambda exc, n, cp: hooks.append((type(exc).__name__, n, list(cp))),
    )
    assert hooks == [("TransferFaultError", 1, [(0, 50)])]


def test_span_names_are_configurable(world):
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=3, initial_backoff_s=0.1),
                            loop_span_name="retry_loop", attempt_span_name="attempt")
    engine.run(flaky(1))
    names = [s.name for s in world.tracer.spans]
    assert "retry_loop" in names
    assert names.count("attempt") == 2


def test_jitter_schedule_replays_per_seed():
    def backoffs(seed):
        w = World(seed=seed)
        engine = RecoveryEngine(w, RetryPolicy(max_attempts=4, initial_backoff_s=1.0))
        t0 = w.now
        with pytest.raises(TransferFaultError):
            engine.run(flaky(99))
        return w.now - t0

    assert backoffs(11) == backoffs(11)
    assert backoffs(11) != backoffs(12)


def test_garbled_marker_is_discarded_not_trusted(world):
    """A chaos-garbled restart marker must never enter the checkpoint."""
    world.chaos.configure(ChaosConfig(marker_corruption_prob=1.0))
    engine = RecoveryEngine(world, RetryPolicy(max_attempts=6, initial_backoff_s=0.1))
    checkpoints = []

    def op(att):
        checkpoints.append(att.checkpoint)
        if att.number < 4:
            raise TransferFaultError("cut", received=ByteRangeSet([(0, 100 * att.number)]))
        return "done"

    engine.run(op)
    corruptions = world.metrics.counter(
        "chaos_marker_corruptions_total", labelnames=("mode",)
    )
    assert corruptions.value(mode="garbled") + corruptions.value(mode="truncated") >= 1
    # every checkpoint the operation saw is a subset of what was really received
    for cp, bound in zip(checkpoints[1:], (100, 200, 300)):
        if cp is not None:
            assert cp.total_bytes() <= bound
