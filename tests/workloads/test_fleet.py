"""The fleet model behind Figure 1."""

import pytest

from repro.util.units import PB
from repro.workloads.fleet import FleetModel


def test_final_day_matches_paper_figures():
    """Section II.A: ~5000 servers, >10M transfers/day, ~0.5 PB/day."""
    model = FleetModel(seed=1)
    last = model.day(model.days - 1)
    assert last.servers_total == pytest.approx(5000, rel=0.02)
    assert last.transfers == pytest.approx(10e6, rel=0.5)
    assert last.bytes_moved == pytest.approx(0.5 * PB, rel=0.5)


def test_growth_is_roughly_monotonic():
    model = FleetModel(seed=1)
    series = model.series(step_days=30)
    servers = [d.servers_total for d in series]
    assert servers == sorted(servers)
    assert series[0].transfers < series[-1].transfers / 5


def test_reporting_subset():
    """'presumably a subset of all servers' — reporting < total."""
    model = FleetModel(seed=1, reporting_fraction=0.6)
    day = model.day(model.days - 1)
    assert day.servers_reporting < day.servers_total
    assert day.servers_reporting == pytest.approx(0.6 * day.servers_total, rel=0.05)


def test_deterministic_by_seed():
    a = FleetModel(seed=3).day(500)
    b = FleetModel(seed=3).day(500)
    assert a == b


def test_day_bounds():
    model = FleetModel(days=100)
    with pytest.raises(ValueError):
        model.day(100)
    with pytest.raises(ValueError):
        model.day(-1)


def test_weekend_dip():
    model = FleetModel(seed=1)
    # average weekday vs weekend transfers near the end of the window
    weekday = [model.day(d).transfers for d in range(1200, 1300) if d % 7 < 5]
    weekend = [model.day(d).transfers for d in range(1200, 1300) if d % 7 >= 5]
    assert sum(weekend) / len(weekend) < sum(weekday) / len(weekday)


def test_series_includes_sampling():
    model = FleetModel(seed=1, days=365)
    series = model.series(step_days=7)
    assert len(series) == 53
    assert series[0].day_index == 0
