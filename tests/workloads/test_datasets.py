"""Workload dataset generators."""

from repro.sim.clock import Clock
from repro.storage.data import LiteralData, SyntheticData
from repro.storage.posix import PosixStorage
from repro.workloads.datasets import (
    LITERAL_THRESHOLD,
    climate_mix,
    hep_mix,
    lots_of_small_files,
    materialize,
    single_huge_file,
    total_bytes,
)
from repro.util.units import GB, KB, MB


def test_single_huge_file():
    specs = single_huge_file(size=100 * GB)
    assert len(specs) == 1
    assert specs[0].size == 100 * GB
    assert isinstance(specs[0].make_data(), SyntheticData)


def test_lots_of_small_files():
    specs = lots_of_small_files(count=100, size=100 * KB)
    assert len(specs) == 100
    assert all(s.size == 100 * KB for s in specs)
    assert len({s.path for s in specs}) == 100
    assert isinstance(specs[0].make_data(), LiteralData)


def test_small_files_have_distinct_content():
    specs = lots_of_small_files(count=3, size=1 * KB)
    contents = {s.make_data().read_all() for s in specs}
    assert len(contents) == 3


def test_literal_threshold():
    small = lots_of_small_files(count=1, size=LITERAL_THRESHOLD)[0]
    big = single_huge_file(size=LITERAL_THRESHOLD + 1)[0]
    assert isinstance(small.make_data(), LiteralData)
    assert isinstance(big.make_data(), SyntheticData)


def test_climate_mix_shape():
    specs = climate_mix(count=200)
    sizes = [s.size for s in specs]
    assert len(specs) == 200
    assert min(sizes) >= 1 * MB
    assert max(sizes) <= 8 * GB
    mean = sum(sizes) / len(sizes)
    assert 50 * MB < mean < 2 * GB


def test_hep_mix_shape():
    specs = hep_mix(count=100)
    sizes = [s.size for s in specs]
    mean = sum(sizes) / len(sizes)
    assert 1 * GB < mean < 3 * GB


def test_generators_deterministic():
    assert climate_mix(count=10, seed=5) == climate_mix(count=10, seed=5)
    assert climate_mix(count=10, seed=5) != climate_mix(count=10, seed=6)


def test_total_bytes():
    specs = lots_of_small_files(count=10, size=KB)
    assert total_bytes(specs) == 10 * KB


def test_materialize():
    clock = Clock()
    fs = PosixStorage(clock)
    specs = lots_of_small_files(count=5, size=KB, directory="/data/small")
    materialize(specs, fs)
    for spec in specs:
        assert fs.open_read(spec.path, 0).size == KB
