"""The virtual appliance and admin console (Section VIII future work)."""

import pytest

from repro.core.appliance import ApplianceImage
from repro.errors import ReproError
from repro.myproxy.client import myproxy_logon
from repro.util.units import gbps


@pytest.fixture
def booted(world):
    net = world.network
    net.add_host("vm-host", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("vm-host", "laptop", gbps(1), 0.01)
    image = ApplianceImage(site_name="biolab", with_oauth=True,
                           preloaded_users=(("alice", "pw"),))
    return world, image, image.boot(world, "vm-host")


def test_boot_provisions_everything(booted):
    world, image, appliance = booted
    status = appliance.console.api_status()
    assert status["site"] == "biolab"
    assert status["gridftp"]["up"]
    assert status["myproxy"]["up"]
    assert status["oauth"]["up"]
    assert status["users"] == 1


def test_image_is_reusable_configuration(booted):
    world, image, appliance = booted
    world.network.add_host("vm-host-2", nic_bps=gbps(10))
    second = image.boot(world, "vm-host-2")
    # independent deployments, same settings
    assert second.endpoint.host == "vm-host-2"
    assert second.endpoint.myproxy.ca.certificate.fingerprint() != (
        appliance.endpoint.myproxy.ca.certificate.fingerprint()
    )


def test_preloaded_user_can_logon(booted):
    world, image, appliance = booted
    cred = myproxy_logon(world, "laptop", appliance.endpoint.myproxy, "alice", "pw")
    assert cred.subject.common_name == "alice"


def test_console_add_and_lock_user(booted):
    world, image, appliance = booted
    console = appliance.console
    out = console.run("add-user bob hunter2")
    assert "bob" in out
    cred = myproxy_logon(world, "laptop", appliance.endpoint.myproxy, "bob", "hunter2")
    assert cred.subject.common_name == "bob"
    console.run("lock-user bob")
    # PAM still passes (htpasswd), but GridFTP authorization refuses later;
    # locking is a local-account concern.
    assert appliance.endpoint.accounts.get("bob").locked
    console.run("unlock-user bob")
    assert not appliance.endpoint.accounts.get("bob").locked


def test_console_restart_services(booted):
    world, image, appliance = booted
    console = appliance.console
    t0 = world.now
    out = console.run("restart-services")
    assert "restart #1" in out
    assert world.now > t0  # the bounce takes time
    status = console.api_status()
    assert status["gridftp"]["up"] and status["myproxy"]["up"]
    # still usable after the bounce
    myproxy_logon(world, "laptop", appliance.endpoint.myproxy, "alice", "pw")


def test_console_trust_ca(booted):
    world, image, appliance = booted
    from repro.pki.ca import CertificateAuthority
    from repro.pki.dn import DistinguishedName as DN

    other = CertificateAuthority(DN.parse("/O=X/CN=X"), world.clock,
                                 world.rng.python("x"), key_bits=256)
    before = len(appliance.endpoint.server.trust)
    out = appliance.console.api_trust_ca(other.certificate)
    assert out["anchors"] == before + 1


def test_console_register_with_globus_online(booted):
    world, image, appliance = booted
    from repro.globusonline.service import GlobusOnline

    world.network.add_host("saas", nic_bps=gbps(10))
    world.network.add_link("saas", "vm-host", gbps(1), 0.02)
    go = GlobusOnline(world, "saas")
    appliance.console.api_register(go, "biolab#vm")
    record = go.endpoint("biolab#vm")
    assert record.info.supports_oauth  # the packaged OAuth is advertised
    user = go.register_user("alice@globusid")
    act = go.activate_oauth(user, "biolab#vm", "alice", "pw")
    assert act.credential.subject.common_name == "alice"


def test_console_cli_errors_and_help(booted):
    world, image, appliance = booted
    console = appliance.console
    assert "commands:" in console.run("help")
    with pytest.raises(ReproError):
        console.run("frobnicate")
    with pytest.raises(ReproError):
        console.run("")


def test_console_audit_log(booted):
    world, image, appliance = booted
    console = appliance.console
    console.run("add-user carol pw")
    console.run("restart-services")
    assert console.audit_log == ["add-user carol", "restart-services"]
    assert world.log.count("gcmu.appliance.admin") == 2


def test_oauth_packaging_flag(world):
    world.network.add_host("plain", nic_bps=gbps(10))
    image = ApplianceImage(site_name="no-oauth", with_oauth=False)
    appliance = image.boot(world, "plain")
    assert appliance.endpoint.oauth is None
    assert appliance.console.api_status()["oauth"] is None


def test_stop_stops_oauth_too(booted):
    world, image, appliance = booted
    appliance.endpoint.stop()
    assert ("vm-host", 443) not in world.network.listeners
