"""The install-step models behind the CLAIM-SETUP benchmark."""

from repro.core.installer import (
    StepCategory,
    conventional_admin_steps,
    conventional_user_steps,
    expert_step_count,
    gcmu_admin_steps,
    gcmu_user_steps,
    gridftp_lite_admin_steps,
    gridftp_lite_user_steps,
    step_count,
    total_minutes,
)


def test_conventional_admin_has_the_paper_steps():
    names = [s.name for s in conventional_admin_steps()]
    for tag in ["(a)", "(b)", "(c)", "(d)", "(e)", "(f)", "(g)", "(h)"]:
        assert any(n.startswith(tag) for n in names)


def test_gcmu_admin_is_four_commands():
    steps = gcmu_admin_steps()
    assert len(steps) == 4
    assert all(not s.expert for s in steps)
    assert all(s.category is StepCategory.SOFTWARE for s in steps)


def test_gcmu_eliminates_security_steps():
    conventional_security = [
        s for s in conventional_admin_steps() if s.category is StepCategory.SECURITY
    ]
    gcmu_security = [
        s for s in gcmu_admin_steps() if s.category is StepCategory.SECURITY
    ]
    assert conventional_security and not gcmu_security


def test_totals_gcmu_vastly_cheaper():
    conv = total_minutes(conventional_admin_steps()) + total_minutes(
        conventional_user_steps()
    )
    gcmu = total_minutes(gcmu_admin_steps()) + total_minutes(gcmu_user_steps())
    assert conv / gcmu > 100  # days vs minutes


def test_per_user_steps_scale():
    one = total_minutes(conventional_user_steps(), users=1)
    hundred = total_minutes(conventional_user_steps(), users=100)
    assert hundred == 100 * one
    # GCMU per-user cost is trivial even at 100 users
    assert total_minutes(gcmu_user_steps(), users=100) < one


def test_expert_steps():
    assert expert_step_count(conventional_admin_steps()) >= 5
    assert expert_step_count(gcmu_admin_steps()) == 0
    assert expert_step_count(gcmu_user_steps(), users=50) == 0
    assert expert_step_count(conventional_user_steps(), users=50) >= 100


def test_gridftp_lite_cheap_but_not_secure():
    """Lite rivals GCMU on setup cost (its security gaps cost elsewhere)."""
    lite = total_minutes(gridftp_lite_admin_steps()) + total_minutes(
        gridftp_lite_user_steps()
    )
    conv = total_minutes(conventional_admin_steps())
    assert lite < conv / 50
    assert expert_step_count(gridftp_lite_admin_steps()) == 0


def test_step_count_multiplies_per_user():
    assert step_count(conventional_user_steps(), users=3) == 12
    assert step_count(gcmu_admin_steps(), users=10) == 4  # not per-user
