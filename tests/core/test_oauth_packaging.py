"""GCMU with the packaged OAuth server (Section VIII, implemented)."""

import pytest

from repro.globusonline.service import GlobusOnline
from repro.scenarios import gcmu_site
from repro.util.units import gbps


@pytest.fixture
def net(world):
    n = world.network
    for h in ("dtn", "saas", "laptop"):
        n.add_host(h, nic_bps=gbps(10))
    n.add_link("dtn", "saas", gbps(1), 0.02)
    n.add_link("dtn", "laptop", gbps(1), 0.01)
    return world


def test_with_oauth_installs_and_registers(net):
    world = net
    from repro.auth import AccountDatabase, Control, LdapDirectory, LdapPamModule, PamStack
    from repro.core.gcmu import install_gcmu

    go = GlobusOnline(world, "saas")
    accounts = AccountDatabase()
    accounts.add_user("alice")
    ldap = LdapDirectory()
    ldap.add_entry("alice", "pw")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    ep = install_gcmu(world, "dtn", "site", accounts, pam,
                      register_with=go, endpoint_name="site#dtn",
                      with_oauth=True, charge_install_time=False)
    assert ep.oauth is not None
    assert ep.endpoint_info.supports_oauth
    record = go.endpoint("site#dtn")
    assert record.oauth is ep.oauth
    # OAuth activation works with zero extra wiring
    user = go.register_user("alice@globusid")
    world.log.clear()
    act = go.activate_oauth(user, "site#dtn", "alice", "pw")
    assert act.credential.subject.common_name == "alice"
    parties = {e.fields["party"] for e in world.log.select("credential.exposure")}
    assert parties == {"site:site"}


def test_default_install_has_no_oauth(net):
    world = net
    ep = gcmu_site(world, "dtn", "plain", {"u": "p"})
    assert ep.oauth is None


def test_oauth_port_configurable(net):
    world = net
    from repro.auth import AccountDatabase, PamStack
    from repro.core.gcmu import install_gcmu

    ep = install_gcmu(world, "dtn", "s", AccountDatabase(), PamStack(),
                      with_oauth=True, oauth_port=8443,
                      charge_install_time=False)
    assert ep.oauth.address == ("dtn", 8443)
    ep.stop()
    assert ("dtn", 8443) not in world.network.listeners
