"""GCMU installation and the Figure 3 workflow."""

import pytest

from repro.errors import AuthenticationError
from repro.gridftp.client import GridFTPClient
from repro.pki.validation import TrustStore
from repro.util.units import gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def gcmu(world):
    net = world.network
    net.add_host("dtn.site.edu", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn.site.edu", "laptop", gbps(1), 0.01)
    ep = make_gcmu_site(world, "dtn.site.edu", "siteX",
                        {"alice": "pwA", "bob": "pwB"})
    return world, ep


def test_install_provisions_everything(gcmu):
    world, ep = gcmu
    assert ep.server.address == ("dtn.site.edu", 2811)
    assert ep.myproxy.address == ("dtn.site.edu", 7512)
    # the server trusts exactly the local CA
    assert len(ep.server.trust) == 1
    assert ep.server.trust.find_anchor(ep.myproxy.ca.certificate) is not None
    # host credential issued by the local CA, not an external one
    assert ep.server.credential.chain[0].issuer == ep.myproxy.ca.subject
    # the callout is the DN parser, not a gridmap
    assert ep.server.authz.name == "gcmu-myproxy-dn"


def test_figure3_full_workflow(gcmu):
    """Steps 1-5 of Figure 3, inline."""
    world, ep = gcmu
    from repro.myproxy.client import myproxy_logon

    trust = TrustStore()
    # steps 1-3: username/password -> PAM -> short-lived certificate
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pwA", trust=trust)
    assert str(cred.subject) == "/O=GCMU/OU=siteX/CN=alice"
    # step 4: authenticate to GridFTP with that certificate
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust)
    session = client.connect(ep.server)
    # step 5: AUTHZ parsed the username from the DN; setuid done
    assert session.logged_in_as == "alice"
    assert session.server_session.account.uid == ep.accounts.get("alice").uid
    ev = world.log.select("gridftp.authz.ok")[-1]
    assert ev.fields["callout"] == "gcmu-myproxy-dn"


def test_wrong_password_stops_at_step_2(gcmu):
    world, ep = gcmu
    from repro.myproxy.client import myproxy_logon

    with pytest.raises(AuthenticationError):
        myproxy_logon(world, "laptop", ep.myproxy, "alice", "wrong")


def test_users_cannot_cross_accounts(gcmu):
    """Bob's certificate maps to bob, and only bob."""
    world, ep = gcmu
    from repro.myproxy.client import myproxy_logon

    trust = TrustStore()
    bob_cred = myproxy_logon(world, "laptop", ep.myproxy, "bob", "pwB", trust=trust)
    client = GridFTPClient(world, "laptop", credential=bob_cred, trust=trust)
    with pytest.raises(AuthenticationError, match="Authorization failed"):
        client.connect(ep.server, username="alice")


def test_locked_account_refused_at_authorization(gcmu):
    world, ep = gcmu
    from repro.myproxy.client import myproxy_logon

    trust = TrustStore()
    cred = myproxy_logon(world, "laptop", ep.myproxy, "alice", "pwA", trust=trust)
    ep.accounts.lock("alice")
    client = GridFTPClient(world, "laptop", credential=cred, trust=trust)
    with pytest.raises(AuthenticationError):
        client.connect(ep.server)


def test_make_home(gcmu):
    world, ep = gcmu
    st = ep.storage.stat("/home/alice", 0)
    assert st.is_dir
    assert st.owner_uid == ep.accounts.get("alice").uid


def test_no_gridmap_anywhere(gcmu):
    """The deliverable of Section IV.C: no DN->user table to maintain."""
    world, ep = gcmu
    from repro.core.authz_callout import MyProxyDNCallout

    assert isinstance(ep.server.authz, MyProxyDNCallout)
    assert ep.server.authz.fallback is None


def test_stop_releases_ports(gcmu):
    world, ep = gcmu
    ep.stop()
    assert ("dtn.site.edu", 2811) not in world.network.listeners
    assert ("dtn.site.edu", 7512) not in world.network.listeners


def test_install_charges_time(world):
    net = world.network
    net.add_host("h", nic_bps=gbps(10))
    from repro.auth import AccountDatabase, PamStack
    from repro.core.gcmu import install_gcmu

    t0 = world.now
    install_gcmu(world, "h", "s", AccountDatabase(), PamStack(),
                 charge_install_time=True)
    assert world.now - t0 > 60.0  # minutes, not days


def test_registration_with_globus_online(world):
    from repro.globusonline.service import GlobusOnline

    net = world.network
    net.add_host("h", nic_bps=gbps(10))
    net.add_host("saas", nic_bps=gbps(10))
    net.add_link("h", "saas", gbps(1), 0.02)
    go = GlobusOnline(world, "saas")
    ep = make_gcmu_site(world, "h", "alcf", {"u": "p"},
                        register_with=go, endpoint_name="alcf#dtn")
    assert "alcf#dtn" in go.endpoints
    assert ep.endpoint_info.name == "alcf#dtn"
    assert go.endpoints["alcf#dtn"].info.supports_activation
