"""GCMU client tools: the Section IV.E user experience."""

import pytest

from repro.core.client_tools import install_client
from repro.errors import AuthenticationError, SecurityError
from repro.storage.data import LiteralData
from repro.util.units import HOUR, gbps
from tests.conftest import make_gcmu_site


@pytest.fixture
def env(world):
    net = world.network
    net.add_host("dtn", nic_bps=gbps(10))
    net.add_host("laptop", nic_bps=gbps(1))
    net.add_link("dtn", "laptop", gbps(1), 0.01)
    ep = make_gcmu_site(world, "dtn", "lab", {"alice": "pw"})
    uid = ep.accounts.get("alice").uid
    ep.storage.write_file("/home/alice/r.dat", LiteralData(b"results"), uid=uid)
    tools = install_client(world, "laptop", username="alice",
                           charge_install_time=False)
    return world, ep, tools


def test_logon_installs_credential_and_trust(env):
    world, ep, tools = env
    cred = tools.myproxy_logon(ep, "alice", "pw")
    assert tools.store.active_credential() is cred
    assert tools.trust.find_anchor(ep.myproxy.ca.certificate) is not None


def test_gridftp_client_requires_logon_first(env):
    world, ep, tools = env
    with pytest.raises(SecurityError):
        tools.gridftp_client()


def test_connect_and_transfer(env):
    world, ep, tools = env
    tools.myproxy_logon(ep, "alice", "pw")
    session = tools.connect(ep)
    assert session.logged_in_as == "alice"
    tools.local_storage.makedirs("/dl", 0)
    res = tools.globus_url_copy("gsiftp://dtn:2811/home/alice/r.dat", "file:///dl/r.dat")
    assert res.verified
    assert tools.local_storage.open_read("/dl/r.dat", 0).read_all() == b"results"


def test_expired_logon_requires_new_one(env):
    world, ep, tools = env
    tools.myproxy_logon(ep, "alice", "pw", lifetime_s=1 * HOUR)
    world.advance(2 * HOUR)
    with pytest.raises(SecurityError):
        tools.gridftp_client()
    tools.myproxy_logon(ep, "alice", "pw")
    tools.gridftp_client()  # fine again


def test_bad_password(env):
    world, ep, tools = env
    with pytest.raises(AuthenticationError):
        tools.myproxy_logon(ep, "alice", "nope")


def test_install_charges_time(world):
    world.network.add_host("l")
    t0 = world.now
    install_client(world, "l", charge_install_time=True)
    assert world.now > t0
