"""The GCMU authorization callout (Section IV.C)."""

import pytest

from repro.auth import Control, LdapDirectory, LdapPamModule, PamStack
from repro.core.authz_callout import MyProxyDNCallout
from repro.errors import AuthorizationError, GridmapError
from repro.gsi.gridmap import Gridmap
from repro.myproxy.server import MyProxyOnlineCA
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.pki.validation import TrustStore, validate_chain
from repro.util.units import gbps


@pytest.fixture
def env(world):
    world.network.add_host("dtn", nic_bps=gbps(10))
    ldap = LdapDirectory()
    ldap.add_entry("alice", "pw")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))
    myproxy = MyProxyOnlineCA(world, "dtn", "site", pam).start()
    trust = TrustStore()
    trust.add_anchor(myproxy.ca.certificate)
    return world, myproxy, trust


def validated(world, myproxy, trust, username="alice", password="pw"):
    cred = myproxy.logon(username, password)
    return validate_chain(cred.chain, trust, world.now)


def test_username_parsed_from_dn(env):
    world, myproxy, trust = env
    callout = MyProxyDNCallout(myproxy.ca.certificate)
    assert callout.map_subject(validated(world, myproxy, trust)) == "alice"


def test_requested_user_must_match_dn(env):
    world, myproxy, trust = env
    callout = MyProxyDNCallout(myproxy.ca.certificate)
    result = validated(world, myproxy, trust)
    assert callout.map_subject(result, "alice") == "alice"
    with pytest.raises(AuthorizationError):
        callout.map_subject(result, "root")


def test_foreign_ca_refused_without_fallback(env):
    """Only chains anchored at the *local* CA get the DN shortcut."""
    world, myproxy, trust = env
    other = CertificateAuthority(DN.parse("/O=Other/CN=CA"), world.clock,
                                 world.rng.python("o"), key_bits=256)
    trust.add_anchor(other.certificate)
    # a cert that *claims* a local-looking DN but is signed elsewhere
    imposter = other.issue_credential(DN.parse("/O=GCMU/OU=site/CN=alice"))
    result = validate_chain(imposter.chain, trust, world.now)
    callout = MyProxyDNCallout(myproxy.ca.certificate)
    with pytest.raises(AuthorizationError, match="not issued by the local MyProxy CA"):
        callout.map_subject(result)


def test_foreign_ca_falls_back_to_gridmap(env):
    world, myproxy, trust = env
    other = CertificateAuthority(DN.parse("/O=Other/CN=CA"), world.clock,
                                 world.rng.python("o2"), key_bits=256)
    trust.add_anchor(other.certificate)
    visitor = other.issue_credential(DN.parse("/O=Other/CN=bob"))
    result = validate_chain(visitor.chain, trust, world.now)
    gm = Gridmap()
    gm.add(visitor.subject, "visiting-bob")
    callout = MyProxyDNCallout(myproxy.ca.certificate, fallback=gm)
    assert callout.map_subject(result) == "visiting-bob"
    # unmapped visitor still refused
    stranger = other.issue_credential(DN.parse("/O=Other/CN=carol"))
    result2 = validate_chain(stranger.chain, trust, world.now)
    with pytest.raises(GridmapError):
        callout.map_subject(result2)


def test_fallback_with_requested_user(env):
    world, myproxy, trust = env
    other = CertificateAuthority(DN.parse("/O=Other/CN=CA"), world.clock,
                                 world.rng.python("o3"), key_bits=256)
    trust.add_anchor(other.certificate)
    visitor = other.issue_credential(DN.parse("/O=Other/CN=bob"))
    result = validate_chain(visitor.chain, trust, world.now)
    gm = Gridmap()
    gm.add(visitor.subject, "acct1")
    gm.add(visitor.subject, "acct2")
    callout = MyProxyDNCallout(myproxy.ca.certificate, fallback=gm)
    assert callout.map_subject(result, "acct2") == "acct2"
    with pytest.raises(AuthorizationError):
        callout.map_subject(result, "acct3")
