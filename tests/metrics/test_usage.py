"""Usage records and the collector."""

from repro.metrics.usage import UsageCollector, UsageRecord
from repro.util.logging import EventLog
from repro.util.units import DAY


def rec(t, server="s1", nbytes=100):
    return UsageRecord(time=t, server=server, nbytes=nbytes, duration_s=1.0)


def test_day_bucketing():
    c = UsageCollector()
    c.add(rec(0.0))
    c.add(rec(DAY - 1))
    c.add(rec(DAY))
    days = c.days()
    assert [d.day_index for d in days] == [0, 1]
    assert days[0].transfers == 2
    assert days[1].transfers == 1


def test_bytes_and_servers_aggregate():
    c = UsageCollector()
    c.add(rec(0.0, server="a", nbytes=10))
    c.add(rec(100.0, server="b", nbytes=20))
    c.add(rec(200.0, server="a", nbytes=30))
    day = c.day(0)
    assert day.bytes_moved == 60
    assert day.server_count == 2


def test_add_aggregate_path():
    c = UsageCollector()
    c.add_aggregate(day_index=10, transfers=1_000_000, bytes_moved=5 * 10**13,
                    servers=3000)
    day = c.day(10)
    assert day.transfers == 1_000_000
    assert day.server_count == 3000
    assert c.total_records == 1_000_000


def test_totals_and_series():
    c = UsageCollector()
    c.add(rec(0.0, nbytes=5))
    c.add(rec(DAY, nbytes=7))
    assert c.totals() == (2, 12)
    xs, transfers, nbytes = c.series()
    assert xs == [0, 1]
    assert transfers == [1, 1]
    assert nbytes == [5, 7]


def test_subscription_to_event_log():
    log = EventLog()
    c = UsageCollector()
    c.subscribe_to(log)
    log.emit(100.0, "usage.record", "r", server="dtn1", nbytes=42, duration=2.0)
    log.emit(100.0, "gridftp.command", "not usage", server="dtn1")
    assert c.total_records == 1
    assert c.day(0).bytes_moved == 42


def test_empty_day_lookup():
    c = UsageCollector()
    assert c.day(99).transfers == 0
