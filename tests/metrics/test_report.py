"""Table and series rendering."""

from repro.metrics.report import render_series, render_table


def test_table_alignment_and_caption():
    out = render_table(
        "Throughput comparison",
        ["tool", "rate"],
        [["scp", "12.1 Mb/s"], ["gridftp", "9.4 Gb/s"]],
    )
    lines = out.splitlines()
    assert lines[0] == "Throughput comparison"
    assert "tool" in lines[2] and "rate" in lines[2]
    assert "gridftp" in out and "scp" in out
    # columns align: header and rows have same separator positions
    assert lines[2].index("|") == lines[4].index("|")


def test_table_formats_numbers():
    out = render_table("c", ["n"], [[1234567], [0.000123], [3.14159]])
    assert "1,234,567" in out
    assert "0.000123" in out
    assert "3.14" in out


def test_series_downsamples():
    xs = list(range(1000))
    out = render_series("s", "day", xs, {"v": [x * 2 for x in xs]}, max_points=10)
    lines = [l for l in out.splitlines() if l and l[0].isdigit()]
    assert len(lines) <= 12
    assert "999" in out  # last point always included


def test_series_empty():
    assert "empty" in render_series("s", "x", [], {"v": []})
