"""Unit tests for the byte-weighted fair-share queue."""

import pytest

from repro.scheduler import FairShareQueue, ScheduledTask, TaskState, jain_index


def mk(user, size=1000, priority=0, task_id=""):
    return ScheduledTask(
        task_id=task_id or f"{user}-{size}",
        user=user,
        src_endpoint="src",
        dst_endpoint="dst",
        size_hint=size,
        execute=lambda: None,
        priority=priority,
    )


def drain(q, charge=True):
    """Pop everything, charging actual bytes; returns dispatch order."""
    order = []
    while True:
        task = q.pop_next()
        if task is None:
            return order
        if charge:
            q.charge(task.user, task.size_hint)
        order.append(task)


def test_fifo_within_one_user():
    q = FairShareQueue()
    for i in range(5):
        q.push(mk("alice", task_id=f"t{i}"))
    assert [t.task_id for t in drain(q)] == [f"t{i}" for i in range(5)]


def test_equal_weights_interleave_by_bytes():
    q = FairShareQueue()
    # alice's tasks are 4x bob's size: bob should dispatch ~4 tasks per
    # alice task once virtual times accumulate.
    for i in range(3):
        q.push(mk("alice", size=4000, task_id=f"a{i}"))
    for i in range(12):
        q.push(mk("bob", size=1000, task_id=f"b{i}"))
    order = [t.user for t in drain(q)]
    # byte totals delivered by the midpoint should be close, so bob gets
    # several dispatches between alice's.
    first_half = order[: len(order) // 2]
    assert first_half.count("bob") > first_half.count("alice")
    assert q.delivered_bytes() == {"alice": 12000, "bob": 12000}


def test_weights_shift_byte_shares():
    q = FairShareQueue()
    q.set_weight("heavy", 3.0)
    q.set_weight("light", 1.0)
    # plenty of equal-sized work on both sides; cut dispatch off early to
    # observe the share under contention.
    for i in range(40):
        q.push(mk("heavy", size=1000, task_id=f"h{i}"))
        q.push(mk("light", size=1000, task_id=f"l{i}"))
    served = []
    for _ in range(20):
        task = q.pop_next()
        q.charge(task.user, task.size_hint)
        served.append(task.user)
    heavy_share = served.count("heavy") / len(served)
    assert heavy_share == pytest.approx(0.75, abs=0.1)


def test_priority_band_dispatches_first():
    q = FairShareQueue()
    q.push(mk("alice", task_id="normal"))
    q.push(mk("bob", priority=1, task_id="urgent"))
    assert q.pop_next().task_id == "urgent"


def test_idle_user_earns_no_retroactive_credit():
    q = FairShareQueue()
    # alice works through a lot of bytes while bob is idle
    for i in range(10):
        q.push(mk("alice", size=10_000, task_id=f"a{i}"))
    for _ in range(10):
        q.charge("alice", q.pop_next().size_hint)
    # bob arrives: he enters at the global virtual time, so alice is not
    # locked out for 100k bytes worth of catch-up.
    q.push(mk("bob", size=1000, task_id="b0"))
    q.push(mk("alice", size=1000, task_id="a-new"))
    order = [t.task_id for t in drain(q)]
    # bob goes first (alice's vtime is at/above global), but alice's new
    # task follows immediately rather than after a starvation window.
    assert order == ["b0", "a-new"]


def test_requeue_goes_to_front():
    q = FairShareQueue()
    q.push(mk("alice", task_id="first"))
    q.push(mk("alice", task_id="second"))
    claimed = q.pop_next()
    assert claimed.task_id == "first"
    q.requeue(claimed)
    assert [t.task_id for t in drain(q)] == ["first", "second"]


def test_admissible_hook_skips_lane_without_losing_position():
    q = FairShareQueue()
    q.push(mk("alice", task_id="blocked"))
    q.push(mk("bob", task_id="ok"))
    task = q.pop_next(admissible=lambda t: t.user != "alice")
    assert task.task_id == "ok"
    assert [t.task_id for t in q.tasks()] == ["blocked"]


def test_pop_state_transition_and_depth():
    q = FairShareQueue()
    t = q.push(mk("alice"))
    assert t.state is TaskState.QUEUED and len(q) == 1
    popped = q.pop_next()
    assert popped.state is TaskState.CLAIMED and len(q) == 0


def test_weight_must_be_positive():
    q = FairShareQueue()
    with pytest.raises(ValueError):
        q.set_weight("alice", 0.0)


def test_fair_share_error_zero_when_balanced():
    q = FairShareQueue()
    q.push(mk("a"))
    q.push(mk("b"))
    drain(q)
    assert q.fair_share_error() == pytest.approx(0.0)


def test_jain_index_extremes():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_index([]) == 1.0
    assert jain_index([0, 0]) == 1.0


# -- lane introspection (observability) ------------------------------------


def test_lane_stats_and_vtime_tags():
    q = FairShareQueue()
    q.set_weight("bob", 2.0)
    q.push(mk("alice", size=4000))
    q.push(mk("bob", size=4000))
    stats = {row["user"]: row for row in q.lane_stats()}
    assert stats["alice"]["depth"] == 1
    assert stats["alice"]["vtime"] == 0.0
    assert stats["bob"]["weight"] == 2.0
    assert stats["alice"]["head_seq"] == 1
    drain(q)
    stats = {row["user"]: row for row in q.lane_stats()}
    assert stats["alice"]["depth"] == 0
    assert stats["alice"]["head_seq"] is None
    assert stats["alice"]["delivered_bytes"] == 4000
    # alice charged 4000/1.0, bob 4000/2.0; bob's charge emptied the
    # queue, so global vtime catches up to his finish tag
    assert stats["alice"]["vtime"] == pytest.approx(4000.0)
    assert stats["bob"]["vtime"] == pytest.approx(2000.0)
    assert q.global_vtime == pytest.approx(2000.0)


def test_idle_lane_vtime_reports_reentry_tag():
    q = FairShareQueue()
    q.push(mk("alice", size=8000))
    drain(q)
    assert q.global_vtime == pytest.approx(8000.0)
    # bob never queued: a push now would re-enter at the global vtime,
    # and lane_vtime says so before the push happens
    assert q.lane_vtime("bob") == pytest.approx(8000.0)
    t = q.push(mk("bob"))
    assert q.lane_vtime("bob") == pytest.approx(8000.0)
    assert t.state is TaskState.QUEUED
