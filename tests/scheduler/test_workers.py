"""Unit tests for leases, heartbeats, and the worker pool."""

import pytest

from repro.errors import LeaseLostError, SchedulerError
from repro.scheduler import (
    FleetScheduler,
    LeaseTable,
    ScheduledTask,
    SchedulerConfig,
    SchedulerLimits,
    TaskState,
)
from repro.sim.faults import ChaosConfig


def mk(world, user="alice", size=1000, duration_s=5.0, task_id="", log=None):
    def run():
        world.advance(duration_s)
        if log is not None:
            log.append(task_id or f"{user}-{size}")
        return size

    return ScheduledTask(
        task_id=task_id,
        user=user,
        src_endpoint="ep-a",
        dst_endpoint="ep-b",
        size_hint=size,
        execute=run,
        measure=lambda r: r,
    )


# -- LeaseTable ------------------------------------------------------------


def test_lease_grant_renew_release():
    table = LeaseTable()
    task = ScheduledTask(task_id="t1", user="a", src_endpoint="s",
                         dst_endpoint="d", size_hint=1, execute=lambda: None)
    lease = table.grant(task, "w0", now=0.0, lease_s=60.0)
    assert not lease.expired(59.0) and lease.expired(60.0)
    assert table.renew(lease, now=50.0, lease_s=60.0)
    assert not lease.expired(100.0)
    table.release(lease)
    assert len(table) == 0


def test_double_lease_is_a_bug():
    table = LeaseTable()
    task = ScheduledTask(task_id="t1", user="a", src_endpoint="s",
                         dst_endpoint="d", size_hint=1, execute=lambda: None)
    table.grant(task, "w0", now=0.0, lease_s=60.0)
    with pytest.raises(LeaseLostError):
        table.grant(task, "w1", now=0.0, lease_s=60.0)


def test_lapsed_lease_cannot_renew():
    table = LeaseTable()
    task = ScheduledTask(task_id="t1", user="a", src_endpoint="s",
                         dst_endpoint="d", size_hint=1, execute=lambda: None)
    lease = table.grant(task, "w0", now=0.0, lease_s=10.0)
    assert not table.renew(lease, now=10.0, lease_s=10.0)


# -- FleetScheduler --------------------------------------------------------


def test_drains_everything_once(world):
    sched = FleetScheduler(world, SchedulerConfig(workers=2))
    log = []
    for i in range(7):
        sched.submit(mk(world, task_id=f"t{i}", log=log))
    assert sched.run_until_idle() == 7
    assert sorted(log) == [f"t{i}" for i in range(7)]
    assert len(sched.queue) == 0 and len(sched.leases) == 0


def test_heartbeat_outlives_long_executions(world):
    # execution takes 10x the lease: heartbeats must keep renewing so the
    # claim is never reclaimed mid-flight.
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, lease_s=30.0, heartbeat_s=5.0))
    sched.submit(mk(world, duration_s=300.0, task_id="slow"))
    assert sched.run_until_idle() == 1
    assert world.metrics.counter("scheduler_lease_expirations_total").value() == 0


def test_crashed_worker_requeues_task(world):
    world.chaos.configure(ChaosConfig(
        host_crash_every_s=50.0, host_downtime_s=(30.0, 60.0), horizon_s=3600.0))
    world.chaos.arm(hosts=["w-host"])
    sched = FleetScheduler(world, SchedulerConfig(
        workers=2, worker_hosts=("w-host",), lease_s=20.0, heartbeat_s=5.0))
    log = []
    for i in range(10):
        sched.submit(mk(world, task_id=f"t{i}", log=log, duration_s=10.0))
    assert sched.run_until_idle() == 10
    # every task executed exactly once despite crashes
    assert sorted(log) == [f"t{i}" for i in range(10)]
    crashes = world.metrics.counter("scheduler_worker_crashes_total").value()
    requeues = world.metrics.counter("scheduler_requeued_total").value()
    assert crashes >= 1 and requeues >= crashes


def test_all_workers_dead_is_a_stall(world):
    # one worker whose host is down forever and a task that can never run
    world.faults.crash_host("w-host", 0.0, float("inf"))
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, worker_hosts=("w-host",)))
    sched.submit(mk(world))
    with pytest.raises(SchedulerError, match="stalled"):
        sched.run_until_idle()


def test_max_attempts_fails_task(world):
    # crash on every claim: the task must eventually FAIL, not loop forever
    world.chaos.configure(ChaosConfig(
        host_crash_every_s=5.0, host_downtime_s=(1.0, 2.0), horizon_s=10**7))
    world.chaos.arm(hosts=["w-host"])
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, worker_hosts=("w-host",), lease_s=1000.0, heartbeat_s=10.0,
        max_task_attempts=3))
    task = sched.submit(mk(world, task_id="doomed"))
    sched.run_until_idle(max_ticks=100)
    assert task.state is TaskState.FAILED
    assert "3" in task.error


def test_backpressure_keeps_endpoint_within_cap(world):
    cap = 1
    sched = FleetScheduler(world, SchedulerConfig(
        workers=4, limits=SchedulerLimits(max_active_per_endpoint=cap)))
    peak = 0

    def probing(task_id):
        def run():
            nonlocal peak
            peak = max(peak, sched.admission.active_for("ep-a"))
            world.advance(1.0)
            return 10

        return run

    for i in range(6):
        task = mk(world, task_id=f"t{i}")
        task.execute = probing(f"t{i}")
        sched.submit(task)
    assert sched.run_until_idle() == 6
    assert peak == cap


def test_metrics_preregistered_before_traffic(world):
    FleetScheduler(world, SchedulerConfig(workers=1))
    text = world.metrics.render_prometheus()
    for name in (
        "scheduler_submitted_total",
        "scheduler_completed_total",
        "scheduler_requeued_total",
        "scheduler_lease_expirations_total",
        "scheduler_worker_crashes_total",
        "scheduler_queue_depth",
        "scheduler_workers_alive",
        "scheduler_queue_wait_seconds",
        "scheduler_inflight_tasks",
    ):
        assert f"# TYPE {name}" in text, name


def test_snapshot_shape(world):
    sched = FleetScheduler(world, SchedulerConfig(workers=1))
    sched.submit(mk(world, task_id="q1"))
    snap = sched.snapshot()
    assert snap["queued"] == [] or snap["queued"][0]["task"]  # coalesced or queued
    assert snap["workers"][0]["worker"] == "w0"
    assert snap["leases"] == []


def test_config_validation():
    with pytest.raises(ValueError):
        SchedulerConfig(workers=0)
    with pytest.raises(ValueError):
        SchedulerConfig(heartbeat_s=60.0, lease_s=60.0)
    with pytest.raises(ValueError):
        SchedulerConfig(max_task_attempts=0)


# -- observability wiring --------------------------------------------------


def test_submit_stamps_trace_and_events_carry_it(world):
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, batch_threshold_bytes=0))
    task = sched.submit(mk(world, task_id="t1"))
    assert task.trace_id.startswith("trace-")
    sub = world.log.select("scheduler.submitted")[0]
    assert sub.trace_id == task.trace_id
    assert "lane_vtime" in sub.fields
    assert sub.fields["src"] == "ep-a"
    sched.run_until_idle()
    claimed = world.log.select("scheduler.claimed")[0]
    assert claimed.fields["trace"] == task.trace_id
    assert claimed.fields["wait_s"] >= 0.0
    done = world.log.select("scheduler.task_done")[0]
    assert done.fields["trace"] == task.trace_id
    dispatch = world.log.select("scheduler.dispatch")[0]
    assert dispatch.fields["task"] == "t1"
    # the dispatch event fires inside the claim span: its trace differs
    # from the submit trace and binds the claim's causal tree
    assert dispatch.trace_id is not None
    assert dispatch.trace_id != task.trace_id


def test_queue_wait_histogram_captures_exemplars(world):
    sched = FleetScheduler(world, SchedulerConfig(
        workers=1, batch_threshold_bytes=0))
    t1 = sched.submit(mk(world, task_id="t1"))
    sched.submit(mk(world, user="bob", task_id="t2"))
    sched.run_until_idle()
    h = world.metrics.get("scheduler_queue_wait_seconds")
    exemplars = h.exemplars()
    assert exemplars
    assert any(ex.trace_id == t1.trace_id for ex in exemplars.values())
    assert world.metrics.get("scheduler_service_seconds").exemplars()


def test_snapshot_includes_observability_sections(world):
    sched = FleetScheduler(world, SchedulerConfig(
        workers=2, batch_threshold_bytes=0))
    for i in range(3):
        sched.submit(mk(world, user=f"u{i}", task_id=f"t{i}"))
    task = sched.queue.pop_next()
    task.attempts += 1
    sched.leases.grant(task, "w0", world.now, sched.config.lease_s)
    snap = sched.snapshot()
    assert {row["user"] for row in snap["lanes"]} == {"u0", "u1", "u2"}
    assert snap["global_vtime"] == 0.0
    assert snap["admission"]["rejections"] == {}
    (entry,) = snap["expiry_heap"]
    assert entry["task"] == task.task_id
    assert entry["expires_in_s"] == pytest.approx(sched.config.lease_s)
    assert entry["abandoned"] is False
