"""Differential harness: the sharded control plane vs the single scheduler.

Two claims, two test families (DESIGN.md §14):

* **N=1 is the single scheduler, bitwise.**  An identical 5k-job,
  50-user workload — crashes included — runs through `FleetScheduler`
  and `ShardedFleetScheduler(shards=1)`; the PR-5 fingerprint
  (completion order, delivered bytes, crash/requeue/batch counts,
  virtual clock) must be equal field for field.

* **Any N dispatches the same job set.**  A Hypothesis property drives
  arbitrary workloads through arbitrary shard counts and asserts the
  union of per-shard dispatches equals the single-shard job set — no
  duplicates, no losses — and per-user delivered bytes are preserved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler import (
    FleetScheduler,
    ScheduledTask,
    SchedulerConfig,
    ShardedFleetScheduler,
    scheduler_fingerprint,
)
from repro.sim.faults import ChaosConfig
from repro.sim.world import World

N_JOBS = 5000
N_USERS = 50
WORKER_HOSTS = tuple(f"wh-{i}" for i in range(8))

_CONFIG = dict(
    workers=len(WORKER_HOSTS), worker_hosts=WORKER_HOSTS,
    lease_s=40.0, heartbeat_s=8.0, max_task_attempts=100,
)


def _drive(make_sched, seed=7, chaos=True):
    """Run the canonical 5k-job workload and return its fingerprint."""
    world = World(seed=seed)
    if chaos:
        world.chaos.configure(ChaosConfig(
            host_crash_every_s=600.0, host_downtime_s=(10.0, 30.0),
            horizon_s=10 * 24 * 3600.0,
        ))
        world.chaos.arm(hosts=list(WORKER_HOSTS))
    sched = make_sched(world)
    for i in range(N_USERS):
        sched.set_weight(f"user{i}", 1.0 + (i % 4))
    for i in range(N_JOBS):
        size = 1000 + (i * 7919) % 50000
        sched.submit(ScheduledTask(
            task_id="", user=f"user{i % N_USERS}",
            src_endpoint=f"ep-{i % 4}", dst_endpoint=f"ep-{(i + 1) % 4}",
            size_hint=size,
            execute=lambda size=size: (world.advance(2.0), size)[1],
            measure=lambda r: r,
        ))
    serviced = sched.run_until_idle(max_ticks=10_000_000)
    assert serviced == N_JOBS
    return scheduler_fingerprint(world, sched)


_fingerprints: dict[str, dict] = {}


def _fingerprint(kind):
    if kind not in _fingerprints:
        if kind == "single":
            _fingerprints[kind] = _drive(
                lambda w: FleetScheduler(w, SchedulerConfig(**_CONFIG)))
        else:
            _fingerprints[kind] = _drive(
                lambda w: ShardedFleetScheduler(
                    w, SchedulerConfig(**_CONFIG), shards=int(kind)))
    return _fingerprints[kind]


def test_n1_fingerprint_bit_for_bit_identical():
    """The tentpole gate: sharded-at-one IS the single scheduler."""
    single = _fingerprint("single")
    sharded = _fingerprint("1")
    for key in single:
        assert sharded[key] == single[key], f"fingerprint field {key!r} diverged"
    # the run was genuinely chaotic, so the equality is earned
    assert single["crashes"] > 0
    assert single["requeued"] > 0


def test_n4_preserves_job_set_and_user_bytes():
    """Sharding changes interleaving, never the work: same job set
    completed exactly once, same bytes delivered to every user."""
    single = _fingerprint("single")
    sharded = _fingerprint("4")
    assert sorted(sharded["completion_order"]) == sorted(single["completion_order"])
    assert len(set(sharded["completion_order"])) == N_JOBS
    assert sharded["delivered_bytes"] == single["delivered_bytes"]
    assert sharded["bytes_by_user"] == single["bytes_by_user"]
    assert sharded["completed"] == single["completed"]
    assert sharded["failed"] == single["failed"] == 0


# -- the union property across arbitrary shard counts -----------------------

def _union_run(seed, shards, njobs, nusers):
    world = World(seed=seed)
    sched = ShardedFleetScheduler(
        world, SchedulerConfig(workers=6), shards=shards)
    executions: list[str] = []

    def payload(task_id):
        def run():
            executions.append(task_id)
            world.advance(1.0)
            return 500
        return run

    for i in range(njobs):
        sched.submit(ScheduledTask(
            task_id=f"t{i}", user=f"u{i % nusers}",
            src_endpoint="a", dst_endpoint="b", size_hint=500,
            execute=payload(f"t{i}"), measure=lambda r: r,
        ))
    assert sched.run_until_idle(max_ticks=1_000_000) == njobs
    return executions, sched.queue.delivered_bytes()


@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.integers(1, 6),
    st.integers(5, 60),
    st.integers(1, 8),
)
def test_union_of_shard_dispatches_equals_single_shard_set(
        seed, shards, njobs, nusers):
    """For any shard count: every job dispatches exactly once, and the
    union of per-shard dispatches is the single-shard job set."""
    sharded_execs, sharded_bytes = _union_run(seed, shards, njobs, nusers)
    single_execs, single_bytes = _union_run(seed, 1, njobs, nusers)
    # no losses, no duplicates
    assert sorted(sharded_execs) == sorted(f"t{i}" for i in range(njobs))
    assert len(sharded_execs) == len(set(sharded_execs))
    # the union equals the single-shard set, bytes and all
    assert sorted(sharded_execs) == sorted(single_execs)
    assert sharded_bytes == single_bytes
