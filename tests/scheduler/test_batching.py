"""Unit tests for small-file coalescing."""

import pytest

from repro.scheduler import BatchCoalescer, CoalescedBatch, ScheduledTask


def mk(user="alice", size=1000, src="ep-a", dst="ep-b", task_id="", coalesce=True):
    return ScheduledTask(
        task_id=task_id or f"{user}-{size}",
        user=user,
        src_endpoint=src,
        dst_endpoint=dst,
        size_hint=size,
        execute=lambda: None,
        coalesce=coalesce,
    )


def fold_marker(bucket: CoalescedBatch) -> ScheduledTask:
    task = mk(bucket.user, bucket.total_bytes, bucket.src_endpoint,
              bucket.dst_endpoint, task_id=f"batch-{len(bucket.tasks)}")
    task.coalesce = False
    return task


def test_large_tasks_pass_through():
    c = BatchCoalescer(threshold_bytes=1000)
    task = mk(size=1000)
    assert c.add(task) is task
    assert len(c) == 0


def test_small_tasks_absorb_and_fold():
    c = BatchCoalescer(threshold_bytes=1000)
    for i in range(3):
        assert c.add(mk(size=100, task_id=f"t{i}")) is None
    assert len(c) == 3
    out = c.flush(fold_marker)
    assert [t.task_id for t in out] == ["batch-3"]
    assert len(c) == 0


def test_singleton_flushes_back_unchanged():
    c = BatchCoalescer(threshold_bytes=1000)
    task = mk(size=100)
    c.add(task)
    assert c.flush(fold_marker) == [task]


def test_buckets_keyed_by_user_and_route():
    c = BatchCoalescer(threshold_bytes=1000)
    c.add(mk(user="alice", size=10, task_id="a1"))
    c.add(mk(user="alice", size=10, task_id="a2"))
    c.add(mk(user="bob", size=10, task_id="b1"))
    c.add(mk(user="alice", size=10, dst="ep-c", task_id="a3"))
    out = c.flush(fold_marker)
    # alice's ep-b pair folds; bob's single and alice's ep-c single return
    assert sorted(t.task_id for t in out) == ["a3", "b1", "batch-2"]


def test_max_files_chunks_buckets():
    c = BatchCoalescer(threshold_bytes=1000, max_files=4)
    for i in range(9):
        c.add(mk(size=10, task_id=f"t{i}"))
    out = c.flush(fold_marker)
    assert [t.task_id for t in out] == ["batch-4", "batch-4", "t8"]


def test_coalesce_false_opts_out():
    c = BatchCoalescer(threshold_bytes=1000)
    task = mk(size=10, coalesce=False)
    assert c.add(task) is task


def test_zero_threshold_disables():
    c = BatchCoalescer(threshold_bytes=0)
    task = mk(size=1)
    assert c.add(task) is task


def test_max_files_validation():
    with pytest.raises(ValueError):
        BatchCoalescer(max_files=1)
