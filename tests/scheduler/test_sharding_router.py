"""Router edge cases: hashing, resharding, stealing, and admission hints.

The sharded control plane's correctness lives in a handful of small
deterministic decisions — who owns a user, who steals from whom, what
backoff a rejected client is quoted.  Each gets pinned here.
"""

import zlib

import pytest

from repro.errors import SchedulerError
from repro.scheduler import (
    ScheduledTask,
    SchedulerConfig,
    SchedulerLimits,
    ShardedFleetScheduler,
    user_shard,
)
from repro.sim.world import World


def _task(user, task_id, world, size=1000, advance=1.0):
    return ScheduledTask(
        task_id=task_id, user=user, src_endpoint="a", dst_endpoint="b",
        size_hint=size,
        execute=lambda: (world.advance(advance), size)[1],
        measure=lambda r: r,
    )


def _users_on_shard(shard, shards, count, prefix="u"):
    """Deterministic user names that all hash to one shard."""
    out, i = [], 0
    while len(out) < count:
        name = f"{prefix}{i}"
        if user_shard(name, shards) == shard:
            out.append(name)
        i += 1
    return out


# -- hashing ----------------------------------------------------------------

def test_user_shard_is_crc32_stable():
    """The shard map is a pure function of the name — never of
    PYTHONHASHSEED, process, or insertion order."""
    for user in ("alice", "bob", "user42", ""):
        for n in (1, 2, 7, 64):
            expected = zlib.crc32(user.encode()) % n
            assert user_shard(user, n) == expected
            assert user_shard(user, n) == user_shard(user, n)
    assert user_shard("anyone", 1) == 0
    with pytest.raises(ValueError):
        user_shard("alice", 0)


def test_router_homes_submissions_by_hash():
    world = World(seed=1)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=4), shards=4)
    for i in range(40):
        sched.submit(_task(f"u{i}", f"t{i}", world))
    for idx, shard in enumerate(sched.shards):
        for task in shard.queue.tasks():
            assert user_shard(task.user, 4) == idx
    assert len(sched.queue) == 40


# -- resharding -------------------------------------------------------------

def test_reshard_rehashes_users_and_preserves_state():
    world = World(seed=2)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=6), shards=3)
    sched.set_weight("u7", 4.0)
    for i in range(30):
        sched.submit(_task(f"u{i % 10}", f"t{i:03d}", world))
    before_bytes = sched.queue.delivered_bytes()
    before_tasks = sorted(t.task_id for t in sched.queue.tasks())

    sched.reshard(5)

    assert sched.n_shards == 5
    assert len(sched.shards) == 5
    # every queued task re-homed under the new hash, none lost
    assert sorted(t.task_id for t in sched.queue.tasks()) == before_tasks
    for idx, shard in enumerate(sched.shards):
        for task in shard.queue.tasks():
            assert user_shard(task.user, 5) == idx
    # lane state survived the move
    assert sched.queue.delivered_bytes() == before_bytes
    assert sched.shard_for("u7").queue.weight("u7") == 4.0
    # and the fleet still drains to completion, exactly once each
    assert sched.run_until_idle(max_ticks=100_000) == 30
    assert sorted(t.task_id for t in sched.completed_tasks) == before_tasks


def test_reshard_refuses_non_quiescent_fleet():
    world = World(seed=3)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=2), shards=2)
    task = sched.submit(_task("u0", "t0", world))
    sched.shards[user_shard("u0", 2)].queue.pop_next()
    sched.shards[0].leases.grant(task, "s0w0", world.now, 10.0)
    with pytest.raises(SchedulerError, match="quiescent"):
        sched.reshard(1)


def test_shard_count_validation():
    world = World(seed=4)
    with pytest.raises(ValueError, match="at least one worker per shard"):
        ShardedFleetScheduler(world, SchedulerConfig(workers=2), shards=3)
    with pytest.raises(ValueError, match="positive"):
        ShardedFleetScheduler(world, SchedulerConfig(workers=2), shards=0)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=2), shards=2)
    with pytest.raises(ValueError, match="at least one worker per shard"):
        sched.reshard(3)


# -- work-stealing ----------------------------------------------------------

def test_empty_shard_workers_steal_from_loaded_shard():
    """All work hashes to one shard; the other shard's workers must
    steal it rather than idle, and every steal stays exactly-once."""
    world = World(seed=5)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=4), shards=2)
    loaded = _users_on_shard(1, 2, 3)
    for i in range(24):
        sched.submit(_task(loaded[i % 3], f"t{i:02d}", world, advance=5.0))
    assert len(sched.shards[0].queue) == 0
    assert len(sched.shards[1].queue) == 24
    assert sched.run_until_idle(max_ticks=100_000) == 24
    steals = world.metrics.get("scheduler_steals_total")
    assert steals.value(thief="0", victim="1") > 0
    # stolen work is charged to the victim's books: completions all
    # landed on shard 1, shard 0's own counters never moved
    completed = world.metrics.get("scheduler_completed_total")
    assert completed.value(shard="1") == 24
    assert completed.value(shard="0") == 0
    assert len(set(t.task_id for t in sched.completed_tasks)) == 24


def test_victim_selection_deepest_then_lowest_index():
    """_pick_victim is the steal protocol's whole brain: deepest
    foreign queue wins, ties break to the lowest shard index."""
    world = World(seed=6)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=4), shards=4)
    depth_targets = {0: 2, 1: 5, 2: 5, 3: 0}
    for shard_idx, depth in depth_targets.items():
        users = _users_on_shard(shard_idx, 4, 1)
        for j in range(depth):
            sched.shards[shard_idx].queue.push(
                _task(users[0], f"s{shard_idx}-{j}", world))
    # deepest foreign shard: 1 and 2 tie at depth 5 -> lowest index wins
    assert sched.shards.index(sched._pick_victim(3)) == 1
    assert sched.shards.index(sched._pick_victim(0)) == 1
    # the thief's own shard never counts, even when deepest
    assert sched.shards.index(sched._pick_victim(1)) == 2
    # no foreign work at all -> no victim
    for idx in (0, 1, 2):
        for _ in range(depth_targets[idx]):
            sched.shards[idx].queue.pop_next()
    assert sched._pick_victim(3) is None


def test_local_dispatch_beats_stealing():
    """A worker whose home shard has runnable work never steals: steal
    events only ever name thieves whose home queue came up empty."""
    world = World(seed=7)
    steal_events = []
    world.log.subscribe(
        lambda ev: steal_events.append(ev)
        if ev.category == "scheduler.steal" else None)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=4), shards=2)
    # both shards loaded equally: nobody should ever need to steal
    for shard_idx in (0, 1):
        users = _users_on_shard(shard_idx, 2, 2)
        for i in range(10):
            sched.submit(_task(users[i % 2], f"s{shard_idx}t{i}", world))
    assert sched.run_until_idle(max_ticks=100_000) == 20
    # balanced load, balanced workers: local dispatch covered everything
    assert world.metrics.get("scheduler_steals_total").total() == len(steal_events)


def test_steal_order_is_deterministic_across_replays():
    def run():
        world = World(seed=8)
        sched = ShardedFleetScheduler(world, SchedulerConfig(workers=6), shards=3)
        # deliberately lopsided: shard 2 gets everything
        users = _users_on_shard(2, 3, 4)
        for i in range(30):
            sched.submit(_task(users[i % 4], f"t{i:02d}", world, advance=3.0))
        sched.run_until_idle(max_ticks=100_000)
        return ([t.task_id for t in sched.completed_tasks],
                world.metrics.get("scheduler_steals_total").total(),
                world.now)

    a, b = run(), run()
    assert a == b
    assert a[1] > 0  # the run exercised stealing at all


# -- admission consistency --------------------------------------------------

def test_retry_after_hints_consistent_across_shards():
    """Every shard quotes backoff from one shared service-time EWMA and
    the fleet-wide worker count: equal depth -> equal hint, whichever
    shard rejects you."""
    world = World(seed=9)
    sched = ShardedFleetScheduler(world, SchedulerConfig(workers=6), shards=3)
    ewmas = {id(s.admission.service_ewma) for s in sched.shards}
    assert len(ewmas) == 1, "shards must share one ServiceTimeEwma"
    assert all(s.admission.workers == 6 for s in sched.shards)
    # before any completion: everyone quotes the default
    hints = {s.admission.retry_after_hint(100) for s in sched.shards}
    assert len(hints) == 1
    # train the EWMA through real completions, then re-check
    for i in range(12):
        sched.submit(_task(f"u{i}", f"t{i}", world, advance=7.0))
    sched.run_until_idle(max_ticks=100_000)
    assert sched.shards[0].admission.service_ewma.value is not None
    for depth in (1, 50, 5000):
        hints = {s.admission.retry_after_hint(depth) for s in sched.shards}
        assert len(hints) == 1, f"shards diverged at depth {depth}: {hints}"


def test_sharded_admission_rejects_with_shard_label():
    from repro.errors import QueueFullError
    world = World(seed=10)
    config = SchedulerConfig(
        workers=2, limits=SchedulerLimits(max_queue_depth=3))
    sched = ShardedFleetScheduler(world, config, shards=2)
    user = _users_on_shard(0, 2, 1)[0]
    for i in range(3):
        sched.submit(_task(user, f"t{i}", world))
    with pytest.raises(QueueFullError) as err:
        sched.submit(_task(user, "t-overflow", world))
    assert err.value.retry_after_s > 0
    rejected = world.metrics.get("scheduler_rejected_total")
    assert rejected.value(shard="0", reason="queue_full") == 1
