"""Unit tests for admission control and backpressure."""

import pytest

from repro.errors import QueueFullError, QuotaExceededError
from repro.scheduler import AdmissionController, ScheduledTask, SchedulerLimits
from repro.sim.world import World


def mk(user="alice", size=1000, src="ep-a", dst="ep-b"):
    return ScheduledTask(
        task_id=f"{user}-{size}",
        user=user,
        src_endpoint=src,
        dst_endpoint=dst,
        size_hint=size,
        execute=lambda: None,
    )


@pytest.fixture
def ctrl(world):
    return AdmissionController(
        world,
        SchedulerLimits(
            max_queue_depth=3,
            max_queued_per_user=2,
            max_active_per_endpoint=2,
            max_bytes_in_flight_per_endpoint=10_000,
        ),
        workers=2,
    )


def test_queue_full_rejects_with_hint(ctrl):
    with pytest.raises(QueueFullError) as exc_info:
        ctrl.admit(mk(), queue_depth=3, user_depth=0)
    assert exc_info.value.retry_after_s > 0


def test_user_quota_rejects_with_user(ctrl):
    with pytest.raises(QuotaExceededError) as exc_info:
        ctrl.admit(mk(user="greedy"), queue_depth=1, user_depth=2)
    assert exc_info.value.user == "greedy"


def test_under_limits_admits(ctrl):
    ctrl.admit(mk(), queue_depth=2, user_depth=1)  # no raise


def test_endpoint_concurrency_cap(ctrl):
    a, b = mk(size=10), mk(size=10)
    ctrl.on_start(a)
    ctrl.on_start(b)
    # both endpoints of the route are saturated now
    assert not ctrl.can_start(mk(size=10))
    # a different route is unaffected
    assert ctrl.can_start(mk(size=10, src="ep-c", dst="ep-d"))
    ctrl.on_finish(a)
    assert ctrl.can_start(mk(size=10))


def test_bytes_budget_blocks_but_allows_oversized_when_idle(ctrl):
    big = mk(size=50_000)  # alone it exceeds the 10k budget
    assert ctrl.can_start(big)  # idle endpoint: oversized is admitted
    ctrl.on_start(big)
    assert not ctrl.can_start(mk(size=10))  # budget now exhausted
    ctrl.on_finish(big)
    assert ctrl.can_start(mk(size=10))


def test_capacity_books_balance(ctrl):
    task = mk(size=500)
    ctrl.on_start(task)
    assert ctrl.active_for("ep-a") == 1
    assert ctrl.bytes_in_flight_for("ep-b") == 500
    ctrl.on_finish(task)
    assert ctrl.active_for("ep-a") == 0
    assert ctrl.bytes_in_flight_for("ep-b") == 0


def test_retry_after_tracks_service_ewma(ctrl):
    before = ctrl.retry_after_hint(depth=4)
    ctrl.on_start(mk())
    ctrl.on_finish(mk(), service_s=10.0)
    after = ctrl.retry_after_hint(depth=4)
    # 4 queued over 2 workers at ~10s each -> ~20s, not the 30s default
    assert after == pytest.approx(20.0)
    assert before == 30.0


def test_rejections_are_counted(ctrl, world):
    for _ in range(2):
        with pytest.raises(QueueFullError):
            ctrl.admit(mk(), queue_depth=3, user_depth=0)
    text = world.metrics.render_prometheus()
    assert 'scheduler_rejected_total{reason="queue_full"} 2' in text


def test_limit_validation():
    with pytest.raises(ValueError):
        SchedulerLimits(max_queue_depth=0)
    with pytest.raises(ValueError):
        SchedulerLimits(max_active_per_endpoint=-1)


def test_none_disables_every_knob(world):
    ctrl = AdmissionController(world, SchedulerLimits(
        max_queue_depth=None, max_queued_per_user=None,
        max_active_per_endpoint=None, max_bytes_in_flight_per_endpoint=None,
    ))
    ctrl.admit(mk(), queue_depth=10**6, user_depth=10**6)
    for _ in range(100):
        ctrl.on_start(mk(size=10**9))
    assert ctrl.can_start(mk(size=10**9))


# -- rejection telemetry (observability) -----------------------------------


def test_rejections_emit_events_and_stats(world, ctrl):
    with pytest.raises(QueueFullError):
        ctrl.admit(mk(), queue_depth=3, user_depth=0)
    with pytest.raises(QuotaExceededError):
        ctrl.admit(mk(user="bob"), queue_depth=1, user_depth=2)
    events = world.log.select("scheduler.rejected")
    assert [ev.fields["reason"] for ev in events] == ["queue_full", "user_quota"]
    assert events[1].fields["user"] == "bob"
    assert events[0].fields["retry_after_s"] > 0
    stats = ctrl.stats()
    assert stats["rejections"] == {"queue_full": 1, "user_quota": 1}
    assert stats["service_ewma_s"] is None
    assert stats["retry_after_hint_s"] > 0


def test_stats_tracks_service_ewma(world, ctrl):
    task = mk()
    ctrl.on_start(task)
    ctrl.on_finish(task, service_s=10.0)
    assert ctrl.stats()["service_ewma_s"] == pytest.approx(10.0)
    ctrl.on_start(task)
    ctrl.on_finish(task, service_s=20.0)
    assert ctrl.stats()["service_ewma_s"] == pytest.approx(12.0)
