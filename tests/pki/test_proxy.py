"""Proxy certificates and delegation chains."""

import pytest

from repro.errors import CertificateError
from repro.pki.ca import CertificateAuthority
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy, is_proxy_subject, proxy_depth, strip_proxy_cns
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY, HOUR


@pytest.fixture
def setup():
    clock = Clock()
    rng = RngFactory(4).python("proxy-tests")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    user = ca.issue_credential(DN.parse("/O=T/CN=alice"), lifetime=30 * DAY)
    return clock, rng, ca, user


def test_proxy_subject_extends_parent(setup):
    clock, rng, ca, user = setup
    proxy = create_proxy(user, clock, rng)
    assert user.subject.is_prefix_of(proxy.subject)
    assert len(proxy.subject.rdns) == len(user.subject.rdns) + 1
    assert proxy.certificate.is_proxy


def test_proxy_issuer_is_parent_subject(setup):
    clock, rng, ca, user = setup
    proxy = create_proxy(user, clock, rng)
    assert proxy.certificate.issuer == user.subject
    assert proxy.certificate.verify_signature(user.key.public)


def test_proxy_has_fresh_key(setup):
    clock, rng, ca, user = setup
    proxy = create_proxy(user, clock, rng)
    assert proxy.key != user.key


def test_proxy_chain_includes_parent_chain(setup):
    clock, rng, ca, user = setup
    proxy = create_proxy(user, clock, rng)
    assert proxy.chain == (proxy.certificate, *user.chain)


def test_proxy_lifetime_clipped_to_parent(setup):
    clock, rng, ca, user = setup
    proxy = create_proxy(user, clock, rng, lifetime=90 * DAY)
    assert proxy.certificate.not_after <= user.expires_at()


def test_proxy_of_expired_credential_rejected(setup):
    clock, rng, ca, user = setup
    clock.advance(31 * DAY)
    with pytest.raises(CertificateError):
        create_proxy(user, clock, rng)


def test_identity_strips_proxy_cns(setup):
    clock, rng, ca, user = setup
    p1 = create_proxy(user, clock, rng)
    p2 = create_proxy(p1, clock, rng, lifetime=HOUR)
    assert strip_proxy_cns(p2.subject) == user.subject
    assert p2.identity == user.subject


def test_strip_does_not_eat_non_numeric_cn():
    dn = DN.parse("/O=T/CN=alice")
    assert strip_proxy_cns(dn) == dn


def test_is_proxy_subject(setup):
    clock, rng, ca, user = setup
    proxy = create_proxy(user, clock, rng)
    assert is_proxy_subject(proxy.subject, user.subject)
    assert not is_proxy_subject(user.subject, proxy.subject)
    assert not is_proxy_subject(user.subject, user.subject)


def test_proxy_depth(setup):
    clock, rng, ca, user = setup
    p1 = create_proxy(user, clock, rng)
    p2 = create_proxy(p1, clock, rng, lifetime=HOUR)
    assert proxy_depth(user.chain) == 0
    assert proxy_depth(p1.chain) == 1
    assert proxy_depth(p2.chain) == 2
