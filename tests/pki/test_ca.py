"""Certificate authorities."""

import pytest

from repro.errors import SigningPolicyError
from repro.pki.ca import CertificateAuthority, self_signed_credential
from repro.pki.dn import DistinguishedName as DN
from repro.pki.policy import SigningPolicy
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY, HOUR


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def rng():
    return RngFactory(3).python("ca-tests")


def make_ca(clock, rng, policy=None, enforce=True):
    return CertificateAuthority(
        DN.parse("/O=Test/CN=CA"), clock, rng, key_bits=256,
        policy=policy, enforce_own_policy=enforce,
    )


def test_root_is_self_signed_ca(clock, rng):
    ca = make_ca(clock, rng)
    root = ca.certificate
    assert root.is_self_signed
    assert root.is_ca
    assert root.verify_signature(ca.key.public)


def test_issue_certificate(clock, rng):
    ca = make_ca(clock, rng)
    cred = ca.issue_credential(DN.parse("/O=Test/CN=alice"), lifetime=DAY)
    cert = cred.certificate
    assert cert.issuer == ca.subject
    assert cert.verify_signature(ca.key.public)
    assert cert.not_after - cert.not_before == DAY
    assert not cert.is_ca


def test_issuance_uses_clock(clock, rng):
    ca = make_ca(clock, rng)
    clock.advance(500.0)
    cert = ca.issue(DN.parse("/O=Test/CN=x"), ca.key.public, lifetime=HOUR)
    assert cert.not_before == 500.0
    assert cert.not_after == 500.0 + HOUR


def test_serials_unique(clock, rng):
    ca = make_ca(clock, rng)
    serials = {
        ca.issue(DN.parse(f"/O=Test/CN=u{i}"), ca.key.public).serial for i in range(20)
    }
    assert len(serials) == 20


def test_policy_enforced_on_issue(clock, rng):
    policy = SigningPolicy.namespace(DN.parse("/O=Test/CN=CA"), DN.parse("/O=Test"))
    ca = make_ca(clock, rng, policy=policy)
    ca.issue(DN.parse("/O=Test/CN=ok"), ca.key.public)
    with pytest.raises(SigningPolicyError):
        ca.issue(DN.parse("/O=Evil/CN=bad"), ca.key.public)


def test_rogue_ca_can_disable_own_policy(clock, rng):
    policy = SigningPolicy.namespace(DN.parse("/O=Test/CN=CA"), DN.parse("/O=Test"))
    rogue = make_ca(clock, rng, policy=policy, enforce=False)
    cert = rogue.issue(DN.parse("/O=Evil/CN=bad"), rogue.key.public)
    assert cert.subject == DN.parse("/O=Evil/CN=bad")


def test_issue_credential_bundles_chain(clock, rng):
    ca = make_ca(clock, rng)
    cred = ca.issue_credential(DN.parse("/O=Test/CN=alice"))
    assert len(cred.chain) == 2
    assert cred.chain[1] == ca.certificate
    assert cred.certificate.public_key == cred.key.public


def test_self_signed_credential(clock, rng):
    cred = self_signed_credential(DN.parse("/CN=random"), clock, rng, lifetime=HOUR)
    cert = cred.certificate
    assert cert.is_self_signed
    assert cert.verify_signature(cred.key.public)
    assert not cert.is_ca
    assert cert.not_after == clock.now + HOUR


def test_self_signed_credential_extensions(clock, rng):
    cred = self_signed_credential(
        DN.parse("/CN=lite"), clock, rng, extensions={"no_delegation": True}
    )
    assert cred.certificate.extensions["no_delegation"] is True
