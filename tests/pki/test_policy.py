"""Signing policies."""

import pytest

from repro.errors import CertificateError
from repro.pki.dn import DistinguishedName as DN
from repro.pki.policy import SigningPolicy


def test_namespace_permits_subtree():
    ca = DN.parse("/O=GCMU/OU=alcf/CN=MyProxy CA")
    pol = SigningPolicy.namespace(ca, DN.parse("/O=GCMU/OU=alcf"))
    assert pol.permits(DN.parse("/O=GCMU/OU=alcf/CN=alice"))
    assert pol.permits(DN.parse("/O=GCMU/OU=alcf"))
    assert not pol.permits(DN.parse("/O=GCMU/OU=nersc/CN=bob"))
    assert not pol.permits(DN.parse("/O=Other/CN=mallory"))


def test_make_with_explicit_patterns():
    pol = SigningPolicy.make(DN.parse("/CN=CA"), "/O=Grid/*", "/O=Edu/CN=special")
    assert pol.permits(DN.parse("/O=Grid/CN=anyone"))
    assert pol.permits(DN.parse("/O=Edu/CN=special"))
    assert not pol.permits(DN.parse("/O=Edu/CN=other"))


def test_format_and_parse_file_round_trip():
    pol = SigningPolicy.namespace(
        DN.parse("/O=GCMU/OU=site/CN=MyProxy CA"), DN.parse("/O=GCMU/OU=site")
    )
    text = pol.format_file()
    assert "access_id_CA" in text
    assert "cond_subjects" in text
    back = SigningPolicy.parse_file(text)
    assert back.ca_subject == pol.ca_subject
    assert set(back.allowed_patterns) == set(pol.allowed_patterns)


def test_parse_malformed_file():
    with pytest.raises(CertificateError):
        SigningPolicy.parse_file("not a policy")


def test_namespace_does_not_permit_similar_prefix():
    """/O=GCMU/OU=alcf must not cover /O=GCMU/OU=alcf-evil."""
    pol = SigningPolicy.namespace(DN.parse("/CN=CA"), DN.parse("/O=GCMU/OU=alcf"))
    assert not pol.permits(DN.parse("/O=GCMU/OU=alcf-evil/CN=x"))
