"""Credentials: chain + key bundles, PEM round trips."""

import pytest

from repro.errors import CertificateError
from repro.pki.ca import CertificateAuthority
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName as DN
from repro.pki.proxy import create_proxy
from repro.pki.rsa import generate_keypair
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(6).python("cred-tests")
    ca = CertificateAuthority(DN.parse("/O=T/CN=CA"), clock, rng, key_bits=256)
    cred = ca.issue_credential(DN.parse("/O=T/CN=alice"), lifetime=10 * DAY)
    return clock, rng, ca, cred


def test_key_must_match_leaf(env):
    clock, rng, ca, cred = env
    wrong = generate_keypair(256, rng)
    with pytest.raises(CertificateError):
        Credential(chain=cred.chain, key=wrong)


def test_empty_chain_rejected(env):
    clock, rng, ca, cred = env
    with pytest.raises(CertificateError):
        Credential(chain=(), key=cred.key)


def test_identity_vs_subject(env):
    clock, rng, ca, cred = env
    proxy = create_proxy(cred, clock, rng)
    assert proxy.subject != cred.subject
    assert proxy.identity == cred.subject


def test_valid_at_considers_whole_chain(env):
    clock, rng, ca, cred = env
    assert cred.valid_at(clock.now)
    assert not cred.valid_at(clock.now + 11 * DAY)


def test_expires_at_is_min_over_chain(env):
    clock, rng, ca, cred = env
    assert cred.expires_at() == cred.certificate.not_after


def test_pem_round_trip_with_key(env):
    clock, rng, ca, cred = env
    back = Credential.from_pem(cred.to_pem(include_key=True))
    assert back.chain == cred.chain
    assert back.key == cred.key


def test_pem_without_key_not_a_credential(env):
    clock, rng, ca, cred = env
    with pytest.raises(CertificateError, match="exactly one private key"):
        Credential.from_pem(cred.to_pem(include_key=False))


def test_pem_with_two_keys_rejected(env):
    clock, rng, ca, cred = env
    from repro.pki.certificate import keypair_to_pem

    doubled = cred.to_pem() + keypair_to_pem(generate_keypair(256, rng))
    with pytest.raises(CertificateError, match="exactly one private key"):
        Credential.from_pem(doubled)


def test_pem_without_certificate_rejected(env):
    clock, rng, ca, cred = env
    from repro.pki.certificate import keypair_to_pem

    with pytest.raises(CertificateError, match="no certificate"):
        Credential.from_pem(keypair_to_pem(cred.key))


def test_pem_leaf_is_first_block(env):
    """DCSC blob layout: leaf cert first, then key, then chain."""
    clock, rng, ca, cred = env
    proxy = create_proxy(cred, clock, rng)
    back = Credential.from_pem(proxy.to_pem())
    assert back.certificate == proxy.certificate
    assert back.chain[-1] == ca.certificate
