"""Certificates: TBS encoding, signatures, serialization."""

import dataclasses
import random

import pytest

from repro.errors import CertificateError
from repro.pki.certificate import (
    Certificate,
    keypair_from_pem,
    keypair_to_pem,
)
from repro.pki.dn import DistinguishedName as DN
from repro.pki.rsa import generate_keypair


@pytest.fixture(scope="module")
def issuer_key():
    return generate_keypair(256, random.Random(10))


@pytest.fixture(scope="module")
def subject_key():
    return generate_keypair(256, random.Random(11))


@pytest.fixture
def cert(issuer_key, subject_key):
    return Certificate(
        subject=DN.parse("/O=Grid/CN=alice"),
        issuer=DN.parse("/O=Grid/CN=CA"),
        serial=7,
        not_before=0.0,
        not_after=1000.0,
        public_key=subject_key.public,
        extensions={"local_username": "alice"},
    ).signed_by(issuer_key)


def test_empty_validity_window_rejected(subject_key):
    with pytest.raises(CertificateError):
        Certificate(
            subject=DN.parse("/CN=x"), issuer=DN.parse("/CN=y"), serial=1,
            not_before=10.0, not_after=10.0, public_key=subject_key.public,
        )


def test_signature_verifies_with_issuer_key(cert, issuer_key):
    assert cert.verify_signature(issuer_key.public)


def test_signature_fails_with_other_key(cert, subject_key):
    assert not cert.verify_signature(subject_key.public)


@pytest.mark.parametrize(
    "field,value",
    [
        ("serial", 8),
        ("not_after", 2000.0),
        ("is_ca", True),
    ],
)
def test_any_tbs_change_breaks_signature(cert, issuer_key, field, value):
    tampered = dataclasses.replace(cert, **{field: value})
    assert not tampered.verify_signature(issuer_key.public)


def test_extension_change_breaks_signature(cert, issuer_key):
    tampered = dataclasses.replace(cert, extensions={"local_username": "root"})
    assert not tampered.verify_signature(issuer_key.public)


def test_validity_window(cert):
    assert not cert.valid_at(-1.0)
    assert cert.valid_at(0.0)
    assert cert.valid_at(1000.0)
    assert not cert.valid_at(1000.1)
    assert cert.lifetime() == 1000.0


def test_is_self_signed(cert, issuer_key):
    assert not cert.is_self_signed
    root = Certificate(
        subject=DN.parse("/CN=root"), issuer=DN.parse("/CN=root"), serial=1,
        not_before=0, not_after=10, public_key=issuer_key.public, is_ca=True,
    ).signed_by(issuer_key)
    assert root.is_self_signed


def test_dict_round_trip(cert):
    assert Certificate.from_dict(cert.to_dict()) == cert


def test_pem_round_trip(cert):
    pem = cert.to_pem()
    assert pem.startswith("-----BEGIN CERTIFICATE-----")
    assert Certificate.from_pem(pem) == cert


def test_malformed_dict_raises():
    with pytest.raises(CertificateError):
        Certificate.from_dict({"subject": []})


def test_fingerprint_distinguishes(cert, issuer_key):
    other = dataclasses.replace(cert, serial=cert.serial + 1).signed_by(issuer_key)
    assert cert.fingerprint() != other.fingerprint()
    assert cert.fingerprint() == cert.fingerprint()


def test_keypair_pem_round_trip(subject_key):
    pem = keypair_to_pem(subject_key)
    assert "RSA PRIVATE KEY" in pem
    assert keypair_from_pem(pem) == subject_key
