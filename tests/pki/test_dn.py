"""Distinguished names."""

import pytest

from repro.errors import CertificateError
from repro.pki.dn import DistinguishedName as DN


def test_parse_and_format():
    dn = DN.parse("/O=Grid/OU=people/CN=alice")
    assert str(dn) == "/O=Grid/OU=people/CN=alice"
    assert dn.rdns == (("O", "Grid"), ("OU", "people"), ("CN", "alice"))


def test_make():
    dn = DN.make(("O", "GCMU"), ("CN", "bob"))
    assert str(dn) == "/O=GCMU/CN=bob"


def test_must_start_with_slash():
    with pytest.raises(CertificateError):
        DN.parse("O=Grid/CN=x")


def test_malformed_rdn():
    with pytest.raises(CertificateError):
        DN.parse("/O=Grid/justtext")


def test_empty_dn_rejected():
    with pytest.raises(CertificateError):
        DN(rdns=())


def test_empty_component_rejected():
    with pytest.raises(CertificateError):
        DN.make(("O", ""))


def test_escaped_slash_in_value():
    dn = DN.make(("CN", "host/server1"))
    text = str(dn)
    assert "\\/" in text
    assert DN.parse(text) == dn


def test_get_multiple_values():
    dn = DN.parse("/O=Grid/CN=alice/CN=12345")
    assert dn.get("CN") == ["alice", "12345"]
    assert dn.common_name == "12345"


def test_common_name_none_when_absent():
    assert DN.parse("/O=Grid").common_name is None


def test_with_cn_appends():
    dn = DN.parse("/O=Grid/CN=alice")
    proxy = dn.with_cn("98765")
    assert str(proxy) == "/O=Grid/CN=alice/CN=98765"
    assert dn.is_prefix_of(proxy)
    assert not proxy.is_prefix_of(dn)


def test_parent():
    dn = DN.parse("/O=Grid/CN=alice/CN=1")
    assert str(dn.parent()) == "/O=Grid/CN=alice"
    with pytest.raises(CertificateError):
        DN.parse("/O=Grid").parent()


def test_prefix_of_self():
    dn = DN.parse("/O=Grid/CN=x")
    assert dn.is_prefix_of(dn)


def test_dict_round_trip():
    dn = DN.parse("/O=Grid/OU=x/CN=y")
    assert DN.from_dict(dn.to_dict()) == dn


def test_equality_and_hash():
    a = DN.parse("/O=Grid/CN=x")
    b = DN.make(("O", "Grid"), ("CN", "x"))
    assert a == b
    assert hash(a) == hash(b)
    assert a != DN.parse("/O=Grid/CN=y")
