"""Chain validation — the machinery behind Figures 4 and 5."""

import dataclasses

import pytest

from repro.errors import CertificateError, SigningPolicyError, UntrustedIssuerError
from repro.pki.ca import CertificateAuthority, self_signed_credential
from repro.pki.dn import DistinguishedName as DN
from repro.pki.policy import SigningPolicy
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore, validate_chain
from repro.sim.clock import Clock
from repro.sim.random import RngFactory
from repro.util.units import DAY


@pytest.fixture
def env():
    clock = Clock()
    rng = RngFactory(5).python("val-tests")
    ca_a = CertificateAuthority(DN.parse("/O=A/CN=CA-A"), clock, rng, key_bits=256)
    ca_b = CertificateAuthority(DN.parse("/O=B/CN=CA-B"), clock, rng, key_bits=256)
    alice = ca_a.issue_credential(DN.parse("/O=A/CN=alice"), lifetime=30 * DAY)
    trust_a = TrustStore()
    trust_a.add_anchor(ca_a.certificate)
    trust_b = TrustStore()
    trust_b.add_anchor(ca_b.certificate)
    return clock, rng, ca_a, ca_b, alice, trust_a, trust_b


def test_valid_chain_yields_identity(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    result = validate_chain(alice.chain, trust_a, clock.now)
    assert result.subject == alice.subject
    assert result.identity == alice.subject
    assert result.anchor.subject == ca_a.subject


def test_proxy_chain_validates_and_strips(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    proxy = create_proxy(alice, clock, rng)
    result = validate_chain(proxy.chain, trust_a, clock.now)
    assert result.subject == proxy.subject
    assert result.identity == alice.subject


def test_figure4_unknown_ca_rejected(env):
    """The exact Figure 4 failure: CA-A unknown at endpoint B."""
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    with pytest.raises(UntrustedIssuerError):
        validate_chain(alice.chain, trust_b, clock.now)


def test_figure5_extra_anchor_fixes_it(env):
    """The DCSC fix: CA-A arrives as a policy-exempt extra anchor."""
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    result = validate_chain(
        alice.chain, trust_b, clock.now, extra_anchors=[ca_a.certificate]
    )
    assert result.identity == alice.subject


def test_leaf_only_chain_completed_from_intermediates(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    leaf_only = alice.chain[:1]
    result = validate_chain(
        leaf_only, trust_a, clock.now, extra_intermediates=[ca_a.certificate]
    )
    assert result.identity == alice.subject


def test_expired_certificate_rejected(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    clock.advance(31 * DAY)
    with pytest.raises(CertificateError, match="expired"):
        validate_chain(alice.chain, trust_a, clock.now)


def test_not_yet_valid_rejected(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    future = ca_a.issue(
        DN.parse("/O=A/CN=later"), ca_a.key.public, not_before=clock.now + 100.0
    )
    with pytest.raises(CertificateError, match="not yet valid"):
        validate_chain([future, ca_a.certificate], trust_a, clock.now)


def test_empty_chain_rejected(env):
    clock, *_, trust_a, _ = env
    with pytest.raises(CertificateError):
        validate_chain([], trust_a, clock.now)


def test_tampered_leaf_rejected(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    evil = dataclasses.replace(
        alice.certificate, subject=DN.parse("/O=A/CN=root-account")
    )
    with pytest.raises(CertificateError):
        validate_chain([evil, *alice.chain[1:]], trust_a, clock.now)


def test_non_ca_cannot_sign_end_entity(env):
    """An EEC signing another EEC (not a proxy) must be rejected."""
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    from repro.pki.certificate import Certificate
    from repro.pki.rsa import generate_keypair

    victim_key = generate_keypair(256, rng)
    forged = Certificate(
        subject=DN.parse("/O=A/CN=forged"),
        issuer=alice.subject,  # signed by a non-CA end entity
        serial=99,
        not_before=clock.now,
        not_after=clock.now + DAY,
        public_key=victim_key.public,
    ).signed_by(alice.key)
    with pytest.raises(CertificateError):
        validate_chain([forged, *alice.chain], trust_a, clock.now)


def test_signing_policy_enforced_at_validation(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    # trust CA-A but constrain it to /O=A/... ; a cert it signed outside
    # that namespace must be rejected by the *validator*.
    rogue = CertificateAuthority(
        DN.parse("/O=A/CN=CA-A2"), clock, rng, key_bits=256, enforce_own_policy=False
    )
    constrained = TrustStore()
    constrained.add_anchor(
        rogue.certificate,
        policy=SigningPolicy.namespace(rogue.subject, DN.parse("/O=A")),
    )
    ok = rogue.issue_credential(DN.parse("/O=A/CN=fine"))
    validate_chain(ok.chain, constrained, clock.now)
    bad = rogue.issue_credential(DN.parse("/O=Evil/CN=mallory"))
    with pytest.raises(SigningPolicyError):
        validate_chain(bad.chain, constrained, clock.now)


def test_policy_checked_flag(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    policied = TrustStore()
    policied.add_anchor(
        ca_a.certificate, policy=SigningPolicy.namespace(ca_a.subject, DN.parse("/O=A"))
    )
    result = validate_chain(alice.chain, policied, clock.now)
    assert result.policy_checked


def test_self_signed_leaf_as_extra_anchor(env):
    """The DCSC 'random self-signed certificate' context (Section V)."""
    clock, rng, *_ = env
    ss = self_signed_credential(DN.parse("/CN=ctx"), clock, rng)
    result = validate_chain(
        ss.chain, TrustStore(), clock.now, extra_anchors=[ss.certificate]
    )
    assert result.subject == DN.parse("/CN=ctx")


def test_self_signed_leaf_without_anchor_rejected(env):
    clock, rng, *_ = env
    ss = self_signed_credential(DN.parse("/CN=ctx"), clock, rng)
    with pytest.raises(UntrustedIssuerError):
        validate_chain(ss.chain, TrustStore(), clock.now)


def test_trust_store_operations(env):
    clock, rng, ca_a, ca_b, alice, trust_a, trust_b = env
    store = TrustStore()
    assert len(store) == 0
    store.add_anchor(ca_a.certificate)
    assert len(store) == 1
    assert store.find_anchor(ca_a.certificate) is not None
    copy = store.copy()
    store.remove_anchor(ca_a.certificate)
    assert len(store) == 0
    assert len(copy) == 1  # copies are independent
