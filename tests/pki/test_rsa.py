"""The RSA implementation."""

import random

import pytest

from repro.pki.rsa import KeyPair, PublicKey, generate_keypair, sign, verify


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(256, random.Random(1))


def test_keypair_structure(keypair):
    assert keypair.e == 65537
    assert keypair.n.bit_length() >= 250
    assert keypair.public == PublicKey(n=keypair.n, e=keypair.e)


def test_sign_verify_round_trip(keypair):
    data = b"the quick brown fox"
    sig = sign(keypair, data)
    assert verify(keypair.public, data, sig)


def test_tampered_data_fails(keypair):
    sig = sign(keypair, b"original")
    assert not verify(keypair.public, b"originaL", sig)


def test_tampered_signature_fails(keypair):
    data = b"payload"
    sig = sign(keypair, data)
    assert not verify(keypair.public, data, sig ^ 1)


def test_wrong_key_fails(keypair):
    other = generate_keypair(256, random.Random(2))
    sig = sign(keypair, b"data")
    assert not verify(other.public, b"data", sig)


def test_signature_out_of_range_rejected(keypair):
    assert not verify(keypair.public, b"x", 0)
    assert not verify(keypair.public, b"x", keypair.n)
    assert not verify(keypair.public, b"x", -5)


def test_deterministic_keygen():
    a = generate_keypair(256, random.Random(42))
    b = generate_keypair(256, random.Random(42))
    assert a == b


def test_different_seeds_different_keys():
    a = generate_keypair(256, random.Random(1))
    b = generate_keypair(256, random.Random(2))
    assert a.n != b.n


def test_minimum_bits_enforced():
    with pytest.raises(ValueError):
        generate_keypair(32)


def test_key_dict_round_trip(keypair):
    assert KeyPair.from_dict(keypair.to_dict()) == keypair
    assert PublicKey.from_dict(keypair.public.to_dict()) == keypair.public


def test_public_fingerprint_stable(keypair):
    assert keypair.public.fingerprint() == keypair.public.fingerprint()
    other = generate_keypair(256, random.Random(9))
    assert keypair.public.fingerprint() != other.public.fingerprint()
