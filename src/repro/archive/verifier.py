"""Site-move verifier: re-checksums every replica at its destination.

Under a claim on a ``verifying`` bundle, each replica's archived copy is
read back through the destination site's DSI and hashed with the shared
:func:`repro.storage.checksum` helper — an end-to-end check that the
bytes *on the far disk* match the staged bundle, not just that the
transfer engine reported success.  A clean quorum commits ``completed``;
any mismatched replica is deleted at the destination and the bundle
drops back to ``staged`` so the replicator re-cuts exactly the bad
copies (its submit phase skips replicas already marked transferred).

Verification models a control-plane checksum request the archive
service can issue even while a site's data plane is dark, so the
verifier never waits out blackouts — it charges read time at
``verify_bps`` and renews its lease across the advance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.archive.base import ArchiveComponent
from repro.archive.catalog import Bundle, BundleStatus
from repro.storage.data import checksum

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.campaign import ArchiveSite
    from repro.archive.catalog import Catalog
    from repro.scheduler.leases import Lease
    from repro.sim.world import World


class SiteMoveVerifier(ArchiveComponent):
    """``verifying`` -> ``completed`` (quorum) or back to ``staged``."""

    name = "verifier"

    def __init__(
        self,
        world: "World",
        catalog: "Catalog",
        sites: dict[str, "ArchiveSite"],
        host: str | None = None,
        verify_bps: float = 500 * 1024 * 1024,
        quorum: int = 2,
        max_per_cycle: int | None = None,
    ) -> None:
        super().__init__(world, catalog, host, max_per_cycle)
        if verify_bps <= 0:
            raise ValueError("verify_bps must be positive")
        if quorum < 1:
            raise ValueError("quorum must be at least 1")
        self.sites = sites
        self.verify_bps = verify_bps
        self.quorum = quorum
        self._verified_c = world.metrics.counter(
            "archive_replicas_verified_total",
            "Replica copies whose destination re-checksum matched")
        self._mismatch_c = world.metrics.counter(
            "archive_checksum_mismatches_total",
            "Replica copies whose destination re-checksum did not match")
        self._verified_c.inc(0)
        self._mismatch_c.inc(0)

    def _claim(self):
        return self.catalog.claim_bundle(BundleStatus.VERIFYING, self.name)

    def work(self, bundle: Bundle, lease: "Lease") -> None:
        for replica in bundle.replicas:
            if replica.verified:
                continue
            site = self.sites[replica.site]
            self._advance(lease, bundle.size / self.verify_bps)
            digest = checksum(site.storage.open_read(replica.path, 0))
            if digest == bundle.checksum:
                replica.verified = True
                self._verified_c.inc()
                self.world.emit(
                    "archive.replica_verified", "destination checksum matched",
                    bundle=bundle.bundle_id, site=replica.site,
                    checksum=digest,
                )
            else:
                self._mismatch_c.inc()
                self.world.emit(
                    "archive.replica_corrupt",
                    "destination checksum mismatch; replica discarded",
                    bundle=bundle.bundle_id, site=replica.site,
                    expected=bundle.checksum, got=digest,
                )
                site.storage.delete(replica.path, 0)
                replica.transferred = False
                replica.verified = False
                replica.task = None
        good = bundle.verified_replicas()
        if good >= self.quorum and good == len(bundle.replicas):
            self.catalog.commit(lease, BundleStatus.COMPLETED, actor=self.name)
        else:
            # drop back so the replicator re-cuts the discarded copies
            self.catalog.commit(lease, BundleStatus.STAGED, actor=self.name)
