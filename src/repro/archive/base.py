"""The claim-cycle discipline shared by every archival component.

A component is one single-purpose daemon (LTA-style): it serves exactly
one catalog status queue, claiming rows under leases and committing
transitions.  The crash model is the fleet scheduler's, verbatim: at
claim time the component's host is checked for a fault onset anywhere
inside the lease window — if one exists, the claim is *abandoned* with
no side effects (the component dies before doing anything), the lease
lapses, and :meth:`~repro.archive.catalog.Catalog.requeue_lapsed` puts
the row back.  Deciding the crash at claim time is what makes
exactly-once provable: work either fully happens under a live lease or
never starts.

An abandoned claim parks the component (mirroring how a crashed
scheduler worker holds its dead lease) until the lease is released by
the lapse sweep — by which point the host's downtime window has normally
passed and the component resumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.scheduler.leases import Lease

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.catalog import Catalog
    from repro.sim.world import World


class ArchiveComponent:
    """One claim-based pipeline stage bound to a catalog queue."""

    name = "component"

    def __init__(self, world: "World", catalog: "Catalog",
                 host: str | None = None,
                 max_per_cycle: int | None = None) -> None:
        self.world = world
        self.catalog = catalog
        self.host = host
        #: claim at most this many rows per cycle (None = drain the queue).
        #: Capping makes the pipeline interleave stages instead of moving
        #: the whole backlog through each stage in one burst, so work
        #: spreads across the campaign timeline and fault windows.
        self.max_per_cycle = max_per_cycle
        self.crashes = 0
        self._parked: Lease | None = None

    def alive(self, now: float) -> bool:
        """Is the component's host up (hostless components never crash)?"""
        return self.host is None or not self.world.faults.host_down(self.host, now)

    # -- the claim cycle ---------------------------------------------------

    def _claim(self):
        """Claim the next row this component serves (or None)."""
        raise NotImplementedError

    def work(self, item, lease: Lease) -> None:
        """Process one claimed row and commit its transition(s)."""
        raise NotImplementedError

    def cycle(self) -> int:
        """Claim-and-process rows until the queue is dry or the host dies."""
        return self._drive(self._claim, self.work)

    def _drive(self, claim, work) -> int:
        """The shared claim loop (components with a second queue reuse it)."""
        world = self.world
        catalog = self.catalog
        if self._parked is not None:
            if not self._parked.released:
                return 0  # still holding an abandoned claim; lease must lapse
            self._parked = None
        done = 0
        while True:
            if self.max_per_cycle is not None and done >= self.max_per_cycle:
                return done
            now = world.now
            if not self.alive(now):
                return done
            claimed = claim()
            if claimed is None:
                return done
            item, lease = claimed
            # Crash model: a host fault beginning inside the lease window
            # kills this claim before any side effect.  The lease lapses
            # and the row requeues — identical discipline to
            # FleetScheduler._claim_for.
            crash_at = None
            if self.host is not None:
                crash_at = world.faults.first_interruption(
                    (), (self.host,), now, now + catalog.lease_s)
            if crash_at is not None:
                lease.abandoned = True
                self._parked = lease
                self.crashes += 1
                catalog.note_component_crash(self.name, item, crash_at)
                return done
            with world.tracer.span(
                f"archive.{self.name}",
                item=item.task_id, attempt=item.attempts,
            ):
                world.emit(
                    f"archive.{self.name}.dispatch", "claim executing",
                    item=item.task_id, attempt=item.attempts,
                )
                work(item, lease)
            done += 1

    def _advance(self, lease: Lease, dt: float) -> None:
        """Charge virtual work time, renewing the lease across it."""
        if dt > 0:
            self.world.advance(dt)
        self.catalog.renew(lease)
