"""Deleter: retires source copies once enough replicas verified.

The pipeline's only destructive stage, so it is the most defensive:
under a claim on a ``completed`` bundle it re-asserts the quorum
invariant (``verified_replicas() >= quorum``) before touching anything,
then removes the bundle's member files and staged payload from the
source site.  Every delete is ``exists()``-guarded, making the work
idempotent — a deleter crash after removing half the files lapses the
lease, the bundle requeues as ``completed``, and the retry deletes the
remainder without erroring on the already-gone half.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.archive.base import ArchiveComponent
from repro.archive.catalog import Bundle, BundleStatus
from repro.errors import ArchiveError

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.campaign import ArchiveSite
    from repro.archive.catalog import Catalog
    from repro.scheduler.leases import Lease
    from repro.sim.world import World


class Deleter(ArchiveComponent):
    """``completed`` -> ``source-deleted``, never before quorum."""

    name = "deleter"

    def __init__(
        self,
        world: "World",
        catalog: "Catalog",
        source: "ArchiveSite",
        host: str | None = None,
        quorum: int = 2,
        max_per_cycle: int | None = None,
    ) -> None:
        super().__init__(world, catalog, host, max_per_cycle)
        if quorum < 1:
            raise ValueError("quorum must be at least 1")
        self.source = source
        self.quorum = quorum
        self._deletes_c = world.metrics.counter(
            "archive_source_deletes_total",
            "Source files retired after quorum-verified replication")
        self._deletes_c.inc(0)

    def _claim(self):
        return self.catalog.claim_bundle(BundleStatus.COMPLETED, self.name)

    def work(self, bundle: Bundle, lease: "Lease") -> None:
        good = bundle.verified_replicas()
        if good < self.quorum:
            raise ArchiveError(
                f"refusing source delete for {bundle.bundle_id}: only "
                f"{good} verified replicas (quorum {self.quorum})")
        storage = self.source.storage
        uid = self.catalog.request(bundle.request_id).uid
        removed = 0
        for path in bundle.files:
            if storage.exists(path):
                storage.delete(path, uid)
                removed += 1
        if bundle.staged_path and storage.exists(bundle.staged_path):
            storage.delete(bundle.staged_path, 0)
        self._deletes_c.inc(removed)
        self.world.emit(
            "archive.source_deleted", "source copies retired",
            bundle=bundle.bundle_id, files=removed,
            verified_replicas=good,
        )
        self.catalog.commit(lease, BundleStatus.SOURCE_DELETED, actor=self.name)
