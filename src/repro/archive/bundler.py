"""Bundler: coalesces a bundle's files into one staged payload.

Under a claim on a ``specified`` bundle, the bundler reads every member
file from the source DSI, builds the manifest — per-file (size, digest)
rows through the shared :func:`repro.storage.checksum` helper, so
payloads the transfer engine already hashed are never re-hashed — and
writes the concatenated payload to the source site's staging area.  Two
transitions under the same lease: ``created`` once the payload and
manifest exist, ``staged`` once the staged file re-reads clean.  I/O
time is charged in virtual seconds at ``io_bps`` with the lease renewed
across the advance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.archive.base import ArchiveComponent
from repro.archive.catalog import Bundle, BundleStatus
from repro.errors import ArchiveError
from repro.storage.data import LiteralData, checksum

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.campaign import ArchiveSite
    from repro.archive.catalog import Catalog
    from repro.scheduler.leases import Lease
    from repro.sim.world import World


class Bundler(ArchiveComponent):
    """``specified`` -> ``created`` -> ``staged``."""

    name = "bundler"

    def __init__(
        self,
        world: "World",
        catalog: "Catalog",
        source: "ArchiveSite",
        host: str | None = None,
        io_bps: float = 200 * 1024 * 1024,
        staging_dir: str = "/archive/staging",
        max_per_cycle: int | None = None,
    ) -> None:
        super().__init__(world, catalog, host, max_per_cycle)
        if io_bps <= 0:
            raise ValueError("io_bps must be positive")
        self.source = source
        self.io_bps = io_bps
        self.staging_dir = staging_dir

    def _claim(self):
        return self.catalog.claim_bundle(BundleStatus.SPECIFIED, self.name)

    def work(self, bundle: Bundle, lease: "Lease") -> None:
        storage = self.source.storage
        uid = self.catalog.request(bundle.request_id).uid
        manifest: dict[str, tuple[int, str]] = {}
        payload = bytearray()
        for path in bundle.files:
            raw = storage.open_read(path, uid).read_all()
            manifest[path] = (len(raw), checksum(raw))
            payload += raw
        blob = bytes(payload)
        digest = checksum(blob)
        # read every member + write the staged copy, in virtual time
        self._advance(lease, 2 * len(blob) / self.io_bps)
        staged_path = f"{self.staging_dir}/{bundle.bundle_id}.bundle"
        storage.write_file(staged_path, LiteralData(blob), uid=0)
        self.catalog.commit(
            lease, BundleStatus.CREATED, actor=self.name, release=False,
            manifest=manifest, checksum=digest, size=len(blob),
            staged_path=staged_path,
        )
        # staging verification: the staged copy must re-read to the same
        # digest before any replica is cut from it
        staged_digest = checksum(storage.open_read(staged_path, 0))
        if staged_digest != digest:  # pragma: no cover - staging is lossless here
            raise ArchiveError(
                f"staged bundle {bundle.bundle_id} digest mismatch: "
                f"{staged_digest} != {digest}")
        self.world.emit(
            "archive.bundled", "bundle payload staged",
            bundle=bundle.bundle_id, files=len(bundle.files),
            bytes=len(blob), checksum=digest,
        )
        self.catalog.commit(lease, BundleStatus.STAGED, actor=self.name)
