"""ArchivePipeline: drives the five components to campaign completion.

One ``run_until_idle()`` loop interleaves every stage round-robin —
requeue lapsed leases, pick, bundle, submit replicas, drain the fleet
scheduler, collect landed transfers, verify, delete — counting work
units per pass.  When a full pass makes no progress and the catalog is
not done, the pipeline is event-blocked: either a lease must lapse
(crashed claimant) or a downed component host must come back.  The loop
advances virtual time to the earliest such event, exactly the
``_wait_for_next_event`` discipline of :class:`FleetScheduler`; if no
future event exists the catalog has genuinely stalled and that is an
error, never a silent hang.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.errors import ArchiveError

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.bundler import Bundler
    from repro.archive.catalog import Catalog
    from repro.archive.deleter import Deleter
    from repro.archive.picker import Picker
    from repro.archive.replicator import Replicator
    from repro.archive.verifier import SiteMoveVerifier
    from repro.sim.world import World


class ArchivePipeline:
    """Round-robin driver over picker/bundler/replicator/verifier/deleter."""

    def __init__(
        self,
        world: "World",
        catalog: "Catalog",
        picker: "Picker",
        bundler: "Bundler",
        replicator: "Replicator",
        verifier: "SiteMoveVerifier",
        deleter: "Deleter",
        scheduler,
        max_cycles: int = 10_000,
    ) -> None:
        self.world = world
        self.catalog = catalog
        self.picker = picker
        self.bundler = bundler
        self.replicator = replicator
        self.verifier = verifier
        self.deleter = deleter
        self.scheduler = scheduler
        self.max_cycles = max_cycles
        self.cycles = 0

    @property
    def components(self):
        return (self.picker, self.bundler, self.replicator,
                self.verifier, self.deleter)

    def component_crashes(self) -> int:
        return sum(c.crashes for c in self.components)

    def run_until_idle(self) -> dict[str, Any]:
        """Drive every stage until all bundles are terminal."""
        catalog = self.catalog
        while not catalog.done():
            self.cycles += 1
            if self.cycles > self.max_cycles:
                raise ArchiveError(
                    f"archive pipeline exceeded {self.max_cycles} cycles; "
                    f"catalog counts: {catalog.counts()}")
            progress = 0
            progress += catalog.requeue_lapsed()
            progress += self.picker.cycle()
            progress += self.bundler.cycle()
            progress += self.replicator.cycle()
            progress += self.scheduler.run_until_idle()
            progress += self.replicator.collect_cycle()
            progress += self.verifier.cycle()
            progress += self.deleter.cycle()
            if progress == 0 and not catalog.done():
                self._wait_for_next_event()
        return self.stats()

    def _wait_for_next_event(self) -> None:
        """Advance virtual time to the earliest unblocking event."""
        world = self.world
        now = world.now
        candidates: list[float] = []
        expiry = self.catalog.leases.next_expiry()
        if expiry is not None:
            candidates.append(expiry)
        for component in self.components:
            if component.host is not None and not component.alive(now):
                candidates.append(
                    world.faults.next_clear_time((), (component.host,), now))
        candidates = [t for t in candidates if t > now and math.isfinite(t)]
        if not candidates:
            raise ArchiveError(
                f"archive pipeline stalled at t={now:.1f}s with no future "
                f"event; catalog counts: {self.catalog.counts()}")
        world.advance_to(min(candidates))

    def stats(self) -> dict[str, Any]:
        counts = self.catalog.counts()
        return {
            "cycles": self.cycles,
            "counts": counts,
            "component_crashes": self.component_crashes(),
            "crashes_by_component": {
                c.name: c.crashes for c in self.components},
            "history_digest": self.catalog.history_digest(),
        }
