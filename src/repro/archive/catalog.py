"""The archival catalog: a transactional table of requests and bundles.

Modeled on the LTA (Long Term Archive) component pipeline: every unit
of archival work is a row here, components *claim* rows under leases
(the same :class:`~repro.scheduler.leases.LeaseTable` the fleet
scheduler's workers use), and every status change is a validated,
history-logged transaction.  The bundle state machine::

    ephemeral -> specified -> created -> staged -> transferring
              -> verifying -> completed -> source-deleted

with two loops: ``verifying -> staged`` re-replicates a bundle whose
far-end checksum failed, and any non-terminal status may quarantine to
``failed`` after exhausting its claim attempts.

Crash-recovery invariants (DESIGN.md §16):

* a claim abandoned to a component crash has no side effects — the
  lease lapses, :meth:`Catalog.requeue_lapsed` puts the row back at the
  *front* of its status queue, and the next claimant redoes the work;
* :meth:`Catalog.commit` refuses a transition on a lapsed lease, so a
  zombie claimant can never double-apply;
* ``source-deleted`` is reachable only from ``completed``, and
  ``completed`` is only committed by the verifier after every replica
  re-checksums clean — the source copy cannot be retired early;
* every claim, lapse, crash, and transition appends one row to the
  history log, and :meth:`Catalog.history_digest` hashes the log, so a
  seed replay can assert the whole campaign is bit-for-bit identical.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import IllegalTransitionError, LeaseLostError
from repro.scheduler.leases import Lease, LeaseTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World

#: bundle end-to-end latency buckets (virtual seconds, created -> completed)
_LATENCY_BUCKETS = (1.0, 5.0, 15.0, 60.0, 300.0, 900.0, 1800.0, 3600.0, 4 * 3600.0)


class BundleStatus(enum.Enum):
    """Lifecycle of one archival bundle."""

    EPHEMERAL = "ephemeral"
    SPECIFIED = "specified"
    CREATED = "created"
    STAGED = "staged"
    TRANSFERRING = "transferring"
    VERIFYING = "verifying"
    COMPLETED = "completed"
    SOURCE_DELETED = "source-deleted"
    FAILED = "failed"


class RequestStatus(enum.Enum):
    """Lifecycle of one archival request (fans out into bundles)."""

    QUEUED = "queued"
    PICKED = "picked"
    FAILED = "failed"


#: bundle statuses with a claim queue (a component serves each)
CLAIMABLE = (
    BundleStatus.SPECIFIED,
    BundleStatus.STAGED,
    BundleStatus.TRANSFERRING,
    BundleStatus.VERIFYING,
    BundleStatus.COMPLETED,
)

#: terminal bundle statuses
TERMINAL = frozenset({BundleStatus.SOURCE_DELETED, BundleStatus.FAILED})

_LEGAL: dict[BundleStatus, frozenset[BundleStatus]] = {
    BundleStatus.EPHEMERAL: frozenset({BundleStatus.SPECIFIED, BundleStatus.FAILED}),
    BundleStatus.SPECIFIED: frozenset({BundleStatus.CREATED, BundleStatus.FAILED}),
    BundleStatus.CREATED: frozenset({BundleStatus.STAGED, BundleStatus.FAILED}),
    BundleStatus.STAGED: frozenset({BundleStatus.TRANSFERRING, BundleStatus.FAILED}),
    BundleStatus.TRANSFERRING: frozenset({BundleStatus.VERIFYING, BundleStatus.FAILED}),
    # verifying -> staged is the re-replication loop after a bad checksum
    BundleStatus.VERIFYING: frozenset(
        {BundleStatus.COMPLETED, BundleStatus.STAGED, BundleStatus.FAILED}),
    BundleStatus.COMPLETED: frozenset(
        {BundleStatus.SOURCE_DELETED, BundleStatus.FAILED}),
    BundleStatus.SOURCE_DELETED: frozenset(),
    BundleStatus.FAILED: frozenset(),
}


@dataclass
class Replica:
    """One destination copy of a bundle."""

    site: str
    path: str
    transferred: bool = False
    verified: bool = False
    #: the scheduler task currently (or last) moving this replica
    task: Any = None


@dataclass
class ArchiveRequest:
    """A client's ask: archive these source paths to these sites."""

    request_id: str
    user: str
    source_site: str
    dest_sites: tuple[str, ...]
    paths: tuple[str, ...]
    uid: int = 0
    status: RequestStatus = RequestStatus.QUEUED
    attempts: int = 0
    submitted_at: float = 0.0
    error: str = ""

    @property
    def task_id(self) -> str:
        """Lease-table identity (requests and bundles share one table)."""
        return self.request_id


@dataclass
class Bundle:
    """One coalesced unit of archival transfer."""

    bundle_id: str
    request_id: str
    files: tuple[str, ...]
    size: int
    status: BundleStatus = BundleStatus.EPHEMERAL
    attempts: int = 0
    #: source-side digest of the bundle payload (repro.storage.checksum)
    checksum: str = ""
    #: per-file (size, digest) rows, in bundle byte order
    manifest: dict[str, tuple[int, str]] = field(default_factory=dict)
    staged_path: str = ""
    replicas: list[Replica] = field(default_factory=list)
    created_at: float = 0.0
    completed_at: float = 0.0
    error: str = ""

    @property
    def task_id(self) -> str:
        """Lease-table identity (requests and bundles share one table)."""
        return self.bundle_id

    def verified_replicas(self) -> int:
        """How many replicas have re-checksummed clean at the far end."""
        return sum(1 for r in self.replicas if r.verified)


class Catalog:
    """Requests + bundles + leases + history, behind one transactional facade.

    Per-status FIFO queues make claim order deterministic; the shared
    :class:`LeaseTable` makes claims exclusive; ``commit`` validates the
    lease *and* the transition before anything changes.
    """

    def __init__(
        self,
        world: "World",
        lease_s: float = 120.0,
        max_claim_attempts: int = 10,
    ) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        if max_claim_attempts < 1:
            raise ValueError("max_claim_attempts must be at least 1")
        self.world = world
        self.lease_s = lease_s
        self.max_claim_attempts = max_claim_attempts
        self.leases = LeaseTable()
        self._requests: dict[str, ArchiveRequest] = {}
        self._bundles: dict[str, Bundle] = {}
        self._pickable: deque[str] = deque()
        self._ready: dict[BundleStatus, deque[str]] = {s: deque() for s in CLAIMABLE}
        self._history: list[tuple[int, float, str, str, str, str, str]] = []
        self._hseq = itertools.count(1)

        metrics = world.metrics
        self._requests_c = metrics.counter(
            "archive_requests_total", "Archival requests accepted into the catalog")
        self._transitions_c = metrics.counter(
            "archive_transitions_total", "Catalog status transitions committed",
            labelnames=("status",))
        self._claims_c = metrics.counter(
            "archive_claims_total", "Catalog rows claimed under lease",
            labelnames=("component",))
        self._expired_c = metrics.counter(
            "archive_lease_expirations_total",
            "Catalog leases that lapsed without release")
        self._crashes_c = metrics.counter(
            "archive_component_crashes_total",
            "Claims lost to archival component host crashes",
            labelnames=("component",))
        self._failed_c = metrics.counter(
            "archive_bundles_failed_total",
            "Bundles quarantined after exhausting their claim attempts")
        self._status_g = metrics.gauge(
            "archive_bundles", "Bundles currently in each status",
            labelnames=("status",))
        self._latency_h = metrics.histogram(
            "archive_bundle_latency_seconds",
            "Virtual seconds from bundle creation to quorum-verified completion",
            buckets=_LATENCY_BUCKETS)
        self._requests_c.inc(0)
        self._expired_c.inc(0)
        self._failed_c.inc(0)
        for status in BundleStatus:
            self._status_g.set(0, status=status.value)
            self._transitions_c.inc(0, status=status.value)

    # -- history ----------------------------------------------------------

    def _record(self, kind: str, item_id: str, frm: str, to: str, actor: str) -> None:
        self._history.append(
            (next(self._hseq), self.world.now, kind, item_id, frm, to, actor))

    @property
    def history(self) -> tuple[tuple[int, float, str, str, str, str, str], ...]:
        """Every claim/lapse/crash/transition, in commit order."""
        return tuple(self._history)

    def history_digest(self) -> str:
        """sha256 over the canonical history log (the replay fingerprint)."""
        h = hashlib.sha256()
        for row in self._history:
            h.update("|".join(map(repr, row)).encode())
            h.update(b"\n")
        return h.hexdigest()

    # -- intake -----------------------------------------------------------

    def submit(self, request: ArchiveRequest) -> ArchiveRequest:
        """Accept a request; the picker will claim it."""
        if request.request_id in self._requests:
            raise LeaseLostError(f"request {request.request_id} already submitted")
        request.submitted_at = self.world.now
        self._requests[request.request_id] = request
        self._pickable.append(request.request_id)
        self._requests_c.inc()
        self._record("request", request.request_id, "", "queued", "client")
        self.world.emit(
            "archive.request_submitted", "archival request queued",
            request=request.request_id, user=request.user,
            files=len(request.paths), dests=",".join(request.dest_sites),
        )
        return request

    def add_bundle(self, bundle: Bundle, actor: str) -> Bundle:
        """Register a new bundle (ephemeral; created under a request claim)."""
        if bundle.bundle_id in self._bundles:
            raise LeaseLostError(f"bundle {bundle.bundle_id} already exists")
        bundle.created_at = self.world.now
        self._bundles[bundle.bundle_id] = bundle
        self._status_g.inc(status=bundle.status.value)
        self._record("bundle", bundle.bundle_id, "", bundle.status.value, actor)
        return bundle

    def specify(self, bundle: Bundle, actor: str) -> None:
        """ephemeral -> specified: the bundle enters the work queues.

        Runs under the *request's* lease (the picker is mid-claim), so
        no bundle lease exists yet.
        """
        self._transition(bundle, BundleStatus.SPECIFIED, actor)

    # -- claims -----------------------------------------------------------

    def claim_request(self, component: str) -> tuple[ArchiveRequest, Lease] | None:
        """Lease the next pickable request to ``component``."""
        if not self._pickable:
            return None
        rid = self._pickable.popleft()
        request = self._requests[rid]
        return request, self._grant(request, component)

    def claim_bundle(
        self, status: BundleStatus, component: str, predicate=None,
    ) -> tuple[Bundle, Lease] | None:
        """Lease the next ``status`` bundle (optionally the next passing
        ``predicate``; skipped bundles rotate to the back of the queue)."""
        queue = self._ready[status]
        for _ in range(len(queue)):
            bid = queue.popleft()
            bundle = self._bundles[bid]
            if predicate is not None and not predicate(bundle):
                queue.append(bid)
                continue
            return bundle, self._grant(bundle, component)
        return None

    def _grant(self, item: ArchiveRequest | Bundle, component: str) -> Lease:
        now = self.world.now
        item.attempts += 1
        lease = self.leases.grant(item, component, now, self.lease_s)
        self._claims_c.inc(component=component)
        self._record("claim", item.task_id, self._status_of(item), component, component)
        self.world.emit(
            "archive.claimed", "catalog row leased",
            item=item.task_id, component=component, attempt=item.attempts,
            lease_expires_at=lease.expires_at,
        )
        return lease

    def note_component_crash(self, component: str, item: ArchiveRequest | Bundle,
                             crash_at: float) -> None:
        """Record a claim lost to a component host crash (lease will lapse)."""
        self._crashes_c.inc(component=component)
        self._record("crash", item.task_id, self._status_of(item), component, component)
        self.world.emit(
            "archive.component_crashed",
            "component lost mid-claim; lease will lapse",
            item=item.task_id, component=component, crash_at=crash_at,
        )

    @staticmethod
    def _status_of(item: ArchiveRequest | Bundle) -> str:
        return item.status.value

    def _check_live(self, lease: Lease) -> None:
        if lease.released or lease.expired(self.world.now):
            raise LeaseLostError(
                f"lease on {lease.task.task_id} held by {lease.worker_id} "
                f"lapsed at {lease.expires_at:.3f} (now {self.world.now:.3f})"
            )

    def renew(self, lease: Lease) -> bool:
        """Heartbeat a claim through long virtual-time work."""
        return self.leases.renew(lease, self.world.now, self.lease_s)

    # -- transactions ------------------------------------------------------

    def commit(
        self,
        lease: Lease,
        new_status: BundleStatus,
        actor: str,
        release: bool = True,
        **fields: Any,
    ) -> None:
        """Apply one bundle transition under a still-live lease.

        ``release=False`` keeps the claim for a follow-up transition in
        the same unit of work (the bundler's created -> staged pair).
        ``fields`` update bundle columns atomically with the transition.
        """
        self._check_live(lease)
        bundle = lease.task
        if not isinstance(bundle, Bundle):
            raise IllegalTransitionError(
                f"commit() is for bundles; {bundle.task_id} is a request")
        for key, value in fields.items():
            setattr(bundle, key, value)
        self._transition(bundle, new_status, actor)
        if new_status is BundleStatus.COMPLETED:
            bundle.completed_at = self.world.now
            latency = bundle.completed_at - bundle.created_at
            self._latency_h.observe(latency)
            self._slo_latency("archive_bundle_latency", latency)
        if release:
            self.leases.release(lease)

    def commit_request(self, lease: Lease, new_status: RequestStatus,
                       actor: str) -> None:
        """Apply one request transition under a still-live lease."""
        self._check_live(lease)
        request = lease.task
        if not isinstance(request, ArchiveRequest):
            raise IllegalTransitionError(
                f"commit_request() is for requests; {request.task_id} is a bundle")
        old = request.status
        if old is not RequestStatus.QUEUED or new_status is RequestStatus.QUEUED:
            raise IllegalTransitionError(
                f"request {request.request_id}: {old.value} -> {new_status.value}")
        request.status = new_status
        self._record("request", request.request_id, old.value, new_status.value, actor)
        self.world.emit(
            "archive.request_done", "request fanned out into bundles",
            request=request.request_id, status=new_status.value, actor=actor,
        )
        self.leases.release(lease)

    def release_claim(self, lease: Lease, actor: str) -> None:
        """Yield a claim without transitioning (row rejoins its queue's back)."""
        self._check_live(lease)
        item = lease.task
        self.leases.release(lease)
        self._record("yield", item.task_id, self._status_of(item),
                     self._status_of(item), actor)
        self._enqueue(item, front=False)

    def _transition(self, bundle: Bundle, new_status: BundleStatus,
                    actor: str) -> None:
        old = bundle.status
        if new_status not in _LEGAL[old]:
            raise IllegalTransitionError(
                f"bundle {bundle.bundle_id}: {old.value} -> {new_status.value}")
        bundle.status = new_status
        self._status_g.dec(status=old.value)
        self._status_g.inc(status=new_status.value)
        self._transitions_c.inc(status=new_status.value)
        self._record("bundle", bundle.bundle_id, old.value, new_status.value, actor)
        self.world.emit(
            "archive.transition", "bundle status advanced",
            bundle=bundle.bundle_id, request=bundle.request_id,
            frm=old.value, to=new_status.value, actor=actor,
        )
        if new_status in self._ready:
            self._ready[new_status].append(bundle.bundle_id)
        self._slo_ratio("archive_replication_success",
                        good=int(new_status is BundleStatus.COMPLETED),
                        bad=int(new_status is BundleStatus.FAILED))

    # -- lapse recovery ----------------------------------------------------

    def requeue_lapsed(self) -> int:
        """Release every lapsed lease; rows rejoin the *front* of their queue.

        A row that lapsed ``max_claim_attempts`` times quarantines to
        ``failed`` instead of cycling forever.
        """
        now = self.world.now
        requeued = 0
        for lease in self.leases.expired(now):
            item = lease.task
            self.leases.release(lease)
            self._expired_c.inc()
            self._record("lapse", item.task_id, self._status_of(item),
                         lease.worker_id, lease.worker_id)
            self.world.emit(
                "archive.lease_expired", "claim lapsed; requeueing row",
                item=item.task_id, component=lease.worker_id,
                attempt=lease.attempt,
            )
            if item.attempts >= self.max_claim_attempts:
                self._quarantine(item, lease.worker_id)
                continue
            self._enqueue(item, front=True)
            requeued += 1
        return requeued

    def _enqueue(self, item: ArchiveRequest | Bundle, front: bool) -> None:
        if isinstance(item, Bundle):
            queue = self._ready[item.status]
        else:
            queue = self._pickable
        if front:
            queue.appendleft(item.task_id)
        else:
            queue.append(item.task_id)

    def _quarantine(self, item: ArchiveRequest | Bundle, actor: str) -> None:
        old = self._status_of(item)
        item.error = (
            f"quarantined after {item.attempts} lapsed claims "
            f"(max_claim_attempts={self.max_claim_attempts})"
        )
        if isinstance(item, Bundle):
            item.status = BundleStatus.FAILED
            self._status_g.dec(status=old)
            self._status_g.inc(status=BundleStatus.FAILED.value)
            self._transitions_c.inc(status=BundleStatus.FAILED.value)
        else:
            item.status = RequestStatus.FAILED
        self._failed_c.inc()
        self._record("quarantine", item.task_id, old, "failed", actor)
        self.world.emit(
            "archive.quarantined", "row exhausted its claim attempts",
            item=item.task_id, attempts=item.attempts,
        )
        self._slo_ratio("archive_replication_success", good=0, bad=1)

    # -- SLO hooks ---------------------------------------------------------

    def _slo_latency(self, name: str, value_s: float) -> None:
        slo = self.world.slo
        if slo is None:
            return
        try:
            slo.observe_latency(name, value_s)
        except KeyError:
            pass  # world observes with a non-archival objective set

    def _slo_ratio(self, name: str, good: int, bad: int) -> None:
        slo = self.world.slo
        if slo is None or (good == 0 and bad == 0):
            return
        try:
            slo.record(name, good=good, bad=bad)
        except KeyError:
            pass  # world observes with a non-archival objective set

    # -- introspection -----------------------------------------------------

    def request(self, request_id: str) -> ArchiveRequest:
        """Look up one request."""
        return self._requests[request_id]

    def bundle(self, bundle_id: str) -> Bundle:
        """Look up one bundle."""
        return self._bundles[bundle_id]

    @property
    def requests(self) -> tuple[ArchiveRequest, ...]:
        """Every request, in submission order."""
        return tuple(self._requests.values())

    @property
    def bundles(self) -> tuple[Bundle, ...]:
        """Every bundle, in creation order."""
        return tuple(self._bundles.values())

    def counts(self) -> dict[str, int]:
        """Bundle counts per status (tools and assertions)."""
        out = {status.value: 0 for status in BundleStatus}
        for bundle in self._bundles.values():
            out[bundle.status.value] += 1
        return out

    def done(self) -> bool:
        """Nothing left: every request fanned out, every bundle terminal."""
        return (
            not self._pickable
            and not len(self.leases)
            and all(r.status is not RequestStatus.QUEUED
                    for r in self._requests.values())
            and all(b.status in TERMINAL for b in self._bundles.values())
        )

    def snapshot(self) -> dict[str, Any]:
        """Catalog state for dumps and the tools' status tables."""
        return {
            "now": self.world.now,
            "requests": [
                {
                    "request": r.request_id, "user": r.user,
                    "status": r.status.value, "files": len(r.paths),
                    "dests": ",".join(r.dest_sites), "attempts": r.attempts,
                    "bundles": sum(1 for b in self._bundles.values()
                                   if b.request_id == r.request_id),
                }
                for r in self._requests.values()
            ],
            "bundles": [
                {
                    "bundle": b.bundle_id, "request": b.request_id,
                    "status": b.status.value, "files": len(b.files),
                    "bytes": b.size, "attempts": b.attempts,
                    "replicas": f"{b.verified_replicas()}/{len(b.replicas)}",
                    "checksum": b.checksum[:18] if b.checksum else "-",
                }
                for b in self._bundles.values()
            ],
            "leases": [
                {
                    "item": lease.task.task_id, "component": lease.worker_id,
                    "expires_at": lease.expires_at, "abandoned": lease.abandoned,
                }
                for lease in self.leases.outstanding()
            ],
            "counts": self.counts(),
        }


def archive_slos(bundle_latency_slo_s: float = 1800.0):
    """The archival pipeline's objectives (append to ``default_slos()``)."""
    from repro.telemetry.slo import ServiceObjective

    return (
        ServiceObjective(
            name="archive_bundle_latency",
            description=f"95% of bundles reach quorum-verified completion "
                        f"within {bundle_latency_slo_s:g} virtual seconds",
            objective=0.95,
            threshold_s=bundle_latency_slo_s,
        ),
        ServiceObjective(
            name="archive_replication_success",
            description="99% of terminal bundles complete rather than quarantine",
            objective=0.99,
        ),
    )
