"""Replicator: fans a staged bundle out to every destination site.

Two claim queues:

* ``cycle()`` serves ``staged`` bundles: under the claim it submits one
  transfer task per missing replica into the fleet scheduler and
  commits ``transferring`` — the catalog lease is released immediately,
  because from here the *scheduler's* lease machinery owns the in-flight
  work (its workers crash and requeue under chaos exactly as PR 4/5
  built them to).
* ``collect_cycle()`` serves ``transferring`` bundles whose replica
  tasks have all gone terminal: all replicas landed -> ``verifying``;
  any task dead after exhausting its claim attempts -> resubmit just
  those replicas and yield the claim (the bundle stays
  ``transferring``).

Each replica transfer runs inside a :class:`RecoveryEngine` loop —
checkpoint-restart with resumed sinks, waiting out known outages — so a
whole-site blackout mid-transfer costs a retry, not the campaign.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.archive.base import ArchiveComponent
from repro.archive.catalog import Bundle, BundleStatus, Replica
from repro.gridftp.dcau import DataChannelSecurity, DCAUMode
from repro.gridftp.transfer import (
    SinkSpec,
    SourceSpec,
    TransferEngine,
    TransferOptions,
)
from repro.pki.validation import TrustStore
from repro.recovery import RecoveryEngine, RetryPolicy
from repro.scheduler.queue import ScheduledTask, TaskState

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.campaign import ArchiveSite
    from repro.archive.catalog import Catalog
    from repro.scheduler.leases import Lease
    from repro.sim.world import World

#: longest one replica retry will sleep waiting for an outage to end
_MAX_OUTAGE_WAIT_S = 3600.0


class Replicator(ArchiveComponent):
    """``staged`` -> ``transferring`` -> ``verifying`` (via the scheduler)."""

    name = "replicator"

    def __init__(
        self,
        world: "World",
        catalog: "Catalog",
        source: "ArchiveSite",
        sites: dict[str, "ArchiveSite"],
        scheduler,
        host: str | None = None,
        options: TransferOptions | None = None,
        policy: RetryPolicy | None = None,
        max_per_cycle: int | None = None,
    ) -> None:
        super().__init__(world, catalog, host, max_per_cycle)
        self.source = source
        self.sites = sites
        self.scheduler = scheduler
        self.options = options or TransferOptions()
        self.engine = TransferEngine.for_world(world)
        self.recovery = RecoveryEngine(
            world,
            policy=policy or RetryPolicy(
                max_attempts=8, initial_backoff_s=5.0, multiplier=2.0,
                max_backoff_s=300.0, jitter=0.1,
            ),
            component="archive.replicator",
            loop_span_name="archive.replica_loop",
            attempt_span_name="archive.replica_attempt",
        )
        self._security = DataChannelSecurity(
            mode=DCAUMode.NONE, credential=None, trust=TrustStore(),
            endpoint_name="archive",
        )
        self._xfer_seq = itertools.count(1)
        self._bytes_c = world.metrics.counter(
            "archive_bytes_replicated_total",
            "Bundle payload bytes landed at destination sites")
        self._replicas_c = world.metrics.counter(
            "archive_replicas_submitted_total",
            "Replica transfer tasks submitted to the fleet scheduler")
        self._retries_c = world.metrics.counter(
            "archive_replica_resubmissions_total",
            "Replica transfers resubmitted after a dead scheduler task")
        self._bytes_c.inc(0)
        self._replicas_c.inc(0)
        self._retries_c.inc(0)

    # -- submit phase ------------------------------------------------------

    def _claim(self):
        return self.catalog.claim_bundle(BundleStatus.STAGED, self.name)

    def work(self, bundle: Bundle, lease: "Lease") -> None:
        data = self.source.storage.open_read(bundle.staged_path, 0)
        for replica in bundle.replicas:
            if not replica.transferred:
                self._submit_replica(bundle, replica, data)
        self.catalog.commit(lease, BundleStatus.TRANSFERRING, actor=self.name)

    def _submit_replica(self, bundle: Bundle, replica: Replica, data) -> None:
        user = self.catalog.request(bundle.request_id).user
        task = ScheduledTask(
            task_id=f"xfer-{bundle.bundle_id}-{replica.site}"
                    f"-{next(self._xfer_seq):05d}",
            user=user,
            src_endpoint=self.source.name,
            dst_endpoint=replica.site,
            size_hint=bundle.size,
            execute=self._make_execute(bundle, replica, data),
            coalesce=False,  # bundling already coalesced the small files
            measure=lambda result: result.nbytes,
        )
        replica.task = task
        self.scheduler.submit(task)
        self._replicas_c.inc()
        self.world.emit(
            "archive.replica_submitted", "replica transfer queued",
            bundle=bundle.bundle_id, site=replica.site, task=task.task_id,
            bytes=bundle.size,
        )

    def _make_execute(self, bundle: Bundle, replica: Replica, data):
        world = self.world
        site = self.sites[replica.site]

        def operation(att):
            resume = att.checkpoint is not None
            needed = att.checkpoint.complement(data.size) if resume else None
            sink = site.storage.open_write(
                replica.path, 0, data.size, resume=resume)
            return self.engine.execute(
                SourceSpec(hosts=(self.source.host,), data=data,
                           security=self._security, needed=needed),
                SinkSpec(hosts=(site.host,), sink=sink,
                         security=self._security),
                self.options,
            )

        def wait_clear(_attempt):
            links: set[str] = set()
            hosts = {self.source.host, site.host}
            try:
                path = world.network.path(self.source.host, site.host)
            except Exception:
                pass
            else:
                links.update(path.link_ids)
                hosts.update(path.hosts)
            clear = world.faults.next_clear_time(links, hosts, world.now)
            if clear > world.now:
                world.emit(
                    "archive.replica_blocked",
                    "destination path dark; waiting for the outage to clear",
                    bundle=bundle.bundle_id, site=replica.site,
                    until=min(clear, world.now + _MAX_OUTAGE_WAIT_S),
                )
                world.advance_to(min(clear, world.now + _MAX_OUTAGE_WAIT_S))

        def execute():
            outcome = self.recovery.run(
                operation,
                endpoint=replica.site,
                wait_clear=wait_clear,
                describe=f"replicate {bundle.bundle_id} -> {replica.site}",
                span_fields={"bundle": bundle.bundle_id, "site": replica.site},
                wrap_exhausted=True,
            )
            # flipping the flag *inside* execute means a worker crash
            # before this point leaves the replica untransferred — the
            # collect phase resubmits; nothing is double-counted
            replica.transferred = True
            self._bytes_c.inc(outcome.result.nbytes)
            world.emit(
                "archive.replica_transferred", "replica landed",
                bundle=bundle.bundle_id, site=replica.site,
                nbytes=outcome.result.nbytes, attempts=outcome.attempts,
            )
            return outcome.result

        return execute

    # -- collect phase -----------------------------------------------------

    def collect_cycle(self) -> int:
        """Settle ``transferring`` bundles whose replica tasks finished."""
        return self._drive(self._claim_transferring, self._collect)

    def _claim_transferring(self):
        return self.catalog.claim_bundle(
            BundleStatus.TRANSFERRING, self.name, predicate=self._settled)

    @staticmethod
    def _settled(bundle: Bundle) -> bool:
        """All replica tasks terminal (landed, or dead and resubmittable)."""
        return all(
            replica.transferred
            or (replica.task is not None
                and replica.task.state in (TaskState.DONE, TaskState.FAILED))
            for replica in bundle.replicas
        )

    def _collect(self, bundle: Bundle, lease: "Lease") -> None:
        stranded = [r for r in bundle.replicas if not r.transferred]
        if not stranded:
            self.catalog.commit(lease, BundleStatus.VERIFYING, actor=self.name)
            return
        data = self.source.storage.open_read(bundle.staged_path, 0)
        for replica in stranded:
            self._retries_c.inc()
            self.world.emit(
                "archive.replica_retry", "replica task died; resubmitting",
                bundle=bundle.bundle_id, site=replica.site,
            )
            self._submit_replica(bundle, replica, data)
        # still transferring: yield the claim, keep the status
        self.catalog.release_claim(lease, actor=self.name)
