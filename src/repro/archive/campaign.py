"""A seeded multi-site archival campaign (the pipeline's test harness).

Builds one :class:`World` with a source site and N destination sites
around a core router, a crashing component/worker fleet, a fleet
scheduler (optionally sharded), a catalog, and the five pipeline
components — then submits a small-file-heavy request backlog and drives
it to completion under chaos.  Every payload byte written to the source
is retained in ``source_payloads`` so tests and benchmarks can assert
replica byte-identity after the source copies are gone.

Component hosts and worker hosts are *control-plane* names: they carry
chaos crashes (killing claims) but sit outside the data topology, so a
picker crash never perturbs a transfer's path — exactly the scheduler
soak's discipline.  The optional site blackout is the opposite: it
crashes a destination *data* host mid-campaign, forcing the replicator's
recovery loop to checkpoint-restart through it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any

from repro.archive.bundler import Bundler
from repro.archive.catalog import ArchiveRequest, Catalog, archive_slos
from repro.archive.deleter import Deleter
from repro.archive.picker import Picker
from repro.archive.pipeline import ArchivePipeline
from repro.archive.replicator import Replicator
from repro.archive.verifier import SiteMoveVerifier
from repro.scheduler import FleetScheduler, SchedulerConfig
from repro.scheduler.sharding import ShardedFleetScheduler
from repro.sim.faults import ChaosConfig
from repro.sim.world import World
from repro.storage.data import LiteralData
from repro.storage.posix import PosixStorage
from repro.telemetry.slo import default_slos
from repro.util.units import KB, gbps

COMPONENT_HOSTS = (
    "arch-picker", "arch-bundler", "arch-replicator",
    "arch-verifier", "arch-deleter",
)
WORKER_HOSTS = ("arch-w0", "arch-w1", "arch-w2", "arch-w3")


@dataclass
class ArchiveSite:
    """One storage endpoint: a topology host plus its DSI."""

    name: str
    host: str
    storage: PosixStorage


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one archival campaign run."""

    seed: int = 7
    requests: int = 6
    files_per_request: int = 24
    file_bytes: int = 64 * KB
    dest_sites: int = 2
    max_bundle_bytes: int = 512 * KB
    max_bundle_files: int = 8
    chaos: bool = True
    site_blackout: bool = True
    lease_s: float = 45.0
    quorum: int = 2
    shards: int = 1
    #: a bundle's claims accumulate across all five stages, and dense
    #: chaos costs many lapses per stage — keep the quarantine valve far
    #: from normal-operation reach
    max_claim_attempts: int = 200

    def quick(self) -> "CampaignConfig":
        """A CI-smoke-sized copy (same faults per unit work, fewer units)."""
        return replace(self, requests=2, files_per_request=8)


#: component crashes arrive at this per-host mean (Poisson); with the
#: campaign lease the clean-claim odds per attempt are e^(-45/25) ~ 0.17,
#: so claims retry repeatedly but converge well inside 50 attempts
_CHAOS = ChaosConfig(
    host_crash_every_s=25.0,
    host_downtime_s=(5.0, 20.0),
    marker_corruption_prob=0.05,
    horizon_s=3600.0,
)


class ArchivalCampaign:
    """One reproducible end-to-end run of the archival pipeline."""

    #: whole-site blackout windows on site-1 (onset, duration), virtual s
    BLACKOUTS = (
        (30.0, 90.0), (300.0, 120.0), (700.0, 150.0),
        (1200.0, 120.0), (1800.0, 150.0), (2500.0, 120.0),
    )

    def __init__(self, config: CampaignConfig | None = None) -> None:
        self.config = cfg = config or CampaignConfig()
        # unbounded event log: soak assertions scan the full campaign
        # (a run emits a few tens of thousands of events, well in budget)
        self.world = world = World(seed=cfg.seed, span_capacity=8192)
        world.enable_observability(slos=default_slos() + archive_slos())

        net = world.network
        net.add_router("archive-core")
        self.source = self._make_site(world, 0)
        self.sites: dict[str, ArchiveSite] = {}
        for i in range(1, cfg.dest_sites + 1):
            site = self._make_site(world, i)
            self.sites[site.name] = site
            site.storage.makedirs("/archive", 0)

        sched_config = SchedulerConfig(
            workers=len(WORKER_HOSTS),
            worker_hosts=WORKER_HOSTS if cfg.chaos else (),
            lease_s=40.0,
            heartbeat_s=8.0,
            max_task_attempts=50,
        )
        if cfg.shards > 1:
            self.scheduler = ShardedFleetScheduler(
                world, sched_config, shards=cfg.shards)
        else:
            self.scheduler = FleetScheduler(world, sched_config)

        self.catalog = Catalog(
            world, lease_s=cfg.lease_s,
            max_claim_attempts=cfg.max_claim_attempts)
        hosts = COMPONENT_HOSTS if cfg.chaos else (None,) * 5
        self.picker = Picker(
            world, self.catalog, self.source, host=hosts[0],
            max_bundle_bytes=cfg.max_bundle_bytes,
            max_bundle_files=cfg.max_bundle_files)
        self.bundler = Bundler(
            world, self.catalog, self.source, host=hosts[1], max_per_cycle=3)
        self.replicator = Replicator(
            world, self.catalog, self.source, self.sites, self.scheduler,
            host=hosts[2], max_per_cycle=2)
        self.verifier = SiteMoveVerifier(
            world, self.catalog, self.sites, host=hosts[3], quorum=cfg.quorum)
        self.deleter = Deleter(
            world, self.catalog, self.source, host=hosts[4], quorum=cfg.quorum)
        self.pipeline = ArchivePipeline(
            world, self.catalog, self.picker, self.bundler, self.replicator,
            self.verifier, self.deleter, self.scheduler)

        self.source_payloads: dict[str, bytes] = {}
        self.requests: list[ArchiveRequest] = []
        self._seed_source_data()

        if cfg.chaos:
            world.chaos.configure(_CHAOS)
            world.chaos.arm(
                links=(), hosts=list(COMPONENT_HOSTS) + list(WORKER_HOSTS))
        if cfg.site_blackout:
            # a destination site goes dark repeatedly across the campaign
            # span, so replica transfers and retries land inside windows
            for at, duration in self.BLACKOUTS:
                world.faults.crash_host("site-1", at=at, duration=duration)

    @staticmethod
    def _make_site(world: World, index: int) -> ArchiveSite:
        name = f"site-{index}"
        world.network.add_host(name, nic_bps=gbps(10))
        world.network.add_link(name, "archive-core", gbps(10), 0.005)
        return ArchiveSite(
            name=name, host=name, storage=PosixStorage(world.clock))

    def _seed_source_data(self) -> None:
        cfg = self.config
        rng = random.Random(cfg.seed)
        storage = self.source.storage
        for r in range(cfg.requests):
            user = f"user{r}"
            storage.makedirs(f"/data/{user}", 0)
            paths = []
            for j in range(cfg.files_per_request):
                path = f"/data/{user}/f{j:03d}.dat"
                payload = rng.randbytes(cfg.file_bytes)
                storage.write_file(path, LiteralData(payload), uid=0)
                self.source_payloads[path] = payload
                paths.append(path)
            self.requests.append(ArchiveRequest(
                request_id=f"req-{r:03d}",
                user=user,
                source_site=self.source.name,
                dest_sites=tuple(sorted(self.sites)),
                paths=tuple(paths),
            ))

    # -- driving -----------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Submit every request and drive the pipeline to completion."""
        for request in self.requests:
            self.catalog.submit(request)
        stats = self.pipeline.run_until_idle()
        stats["injected_faults"] = self.injected_faults()
        stats["worker_crashes"] = self._worker_crashes()
        return stats

    def injected_faults(self) -> int:
        """Faults that actually bit a claim (component + worker crashes)."""
        return self.pipeline.component_crashes() + self._worker_crashes()

    def _worker_crashes(self) -> int:
        # get() + total() sums labelled series, so this works sharded or not
        metric = self.world.metrics.get("scheduler_worker_crashes_total")
        return int(metric.total()) if metric is not None else 0

    # -- assertions helpers ------------------------------------------------

    def replica_payload(self, bundle_id: str, site_name: str) -> bytes:
        """The archived bundle bytes at one destination site."""
        bundle = self.catalog.bundle(bundle_id)
        path = next(r.path for r in bundle.replicas if r.site == site_name)
        return self.sites[site_name].storage.open_read(path, 0).read_all()

    def expected_bundle_payload(self, bundle_id: str) -> bytes:
        """The bundle's bytes recomputed from the retained source payloads."""
        bundle = self.catalog.bundle(bundle_id)
        return b"".join(self.source_payloads[p] for p in bundle.files)
