"""Durable multi-site archival pipeline over the fleet scheduler.

The LTA-style subsystem: a transactional :class:`Catalog` of archival
requests and bundles, five claim-based components
(:class:`Picker` -> :class:`Bundler` -> :class:`Replicator` ->
:class:`SiteMoveVerifier` -> :class:`Deleter`), an
:class:`ArchivePipeline` driver, and the seeded
:class:`ArchivalCampaign` harness that runs all of it under chaos.
"""

from repro.archive.base import ArchiveComponent
from repro.archive.bundler import Bundler
from repro.archive.campaign import (
    ArchivalCampaign,
    ArchiveSite,
    CampaignConfig,
)
from repro.archive.catalog import (
    CLAIMABLE,
    TERMINAL,
    ArchiveRequest,
    Bundle,
    BundleStatus,
    Catalog,
    Replica,
    RequestStatus,
    archive_slos,
)
from repro.archive.deleter import Deleter
from repro.archive.picker import Picker
from repro.archive.pipeline import ArchivePipeline
from repro.archive.replicator import Replicator
from repro.archive.verifier import SiteMoveVerifier

__all__ = [
    "ArchiveComponent",
    "ArchivalCampaign",
    "ArchivePipeline",
    "ArchiveRequest",
    "ArchiveSite",
    "Bundle",
    "BundleStatus",
    "Bundler",
    "CLAIMABLE",
    "CampaignConfig",
    "Catalog",
    "Deleter",
    "Picker",
    "Replica",
    "Replicator",
    "RequestStatus",
    "SiteMoveVerifier",
    "TERMINAL",
    "archive_slos",
]
