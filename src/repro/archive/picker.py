"""Picker: splits an archival request into bundle specifications.

The LTA pipeline's first stage.  Under a claim on the *request*, the
picker stats every source path, greedily packs files into bundle specs
bounded by ``max_bundle_bytes``/``max_bundle_files`` (small-file
coalescing is the whole point of bundling), registers each bundle as
``ephemeral`` and immediately specifies it — then marks the request
picked.  All of that is one unit of work under one lease: a picker
crash leaves no bundles behind, and a re-pick after a lapse recreates
the identical split (stats are deterministic), so bundle identity is
stable across crashes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.archive.base import ArchiveComponent
from repro.archive.catalog import ArchiveRequest, Bundle, Replica, RequestStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.archive.campaign import ArchiveSite
    from repro.archive.catalog import Catalog
    from repro.scheduler.leases import Lease
    from repro.sim.world import World


class Picker(ArchiveComponent):
    """request -> bundle specs (``queued`` request, ``specified`` bundles)."""

    name = "picker"

    def __init__(
        self,
        world: "World",
        catalog: "Catalog",
        source: "ArchiveSite",
        host: str | None = None,
        max_bundle_bytes: int = 16 * 1024 * 1024,
        max_bundle_files: int = 64,
        max_per_cycle: int | None = None,
    ) -> None:
        super().__init__(world, catalog, host, max_per_cycle)
        if max_bundle_bytes < 1 or max_bundle_files < 1:
            raise ValueError("bundle caps must be positive")
        self.source = source
        self.max_bundle_bytes = max_bundle_bytes
        self.max_bundle_files = max_bundle_files

    def _claim(self):
        return self.catalog.claim_request(self.name)

    def work(self, request: ArchiveRequest, lease: "Lease") -> None:
        groups = self._split(request)
        for index, group in enumerate(groups):
            paths, nbytes = group
            bundle_id = f"{request.request_id}-b{index:03d}"
            bundle = Bundle(
                bundle_id=bundle_id,
                request_id=request.request_id,
                files=tuple(paths),
                size=nbytes,
                replicas=[
                    Replica(site=site, path=f"/archive/{bundle_id}.bundle")
                    for site in request.dest_sites
                ],
            )
            self.catalog.add_bundle(bundle, actor=self.name)
            self.catalog.specify(bundle, actor=self.name)
        self.world.emit(
            "archive.picked", "request split into bundles",
            request=request.request_id, bundles=len(groups),
            files=len(request.paths),
        )
        self.catalog.commit_request(lease, RequestStatus.PICKED, actor=self.name)

    def _split(self, request: ArchiveRequest) -> list[tuple[list[str], int]]:
        """Greedy first-fit pack, in path order (deterministic)."""
        storage = self.source.storage
        groups: list[tuple[list[str], int]] = []
        current: list[str] = []
        current_bytes = 0
        for path in request.paths:
            size = storage.stat(path, request.uid).size
            if current and (
                current_bytes + size > self.max_bundle_bytes
                or len(current) >= self.max_bundle_files
            ):
                groups.append((current, current_bytes))
                current, current_bytes = [], 0
            current.append(path)
            current_bytes += size
        if current:
            groups.append((current, current_bytes))
        return groups
