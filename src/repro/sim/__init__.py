"""Virtual-time simulation substrate: clock, scheduler, faults, world."""

from repro.sim.clock import Clock
from repro.sim.events import Scheduler, ScheduledEvent
from repro.sim.faults import FaultPlan, LinkFault, HostFault
from repro.sim.random import RngFactory
from repro.sim.world import World

__all__ = [
    "Clock",
    "Scheduler",
    "ScheduledEvent",
    "FaultPlan",
    "LinkFault",
    "HostFault",
    "RngFactory",
    "World",
]
