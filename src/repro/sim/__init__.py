"""Virtual-time simulation substrate: clock, scheduler, faults, world."""

from repro.sim.clock import Clock
from repro.sim.events import (
    HAS_NUMPY,
    VECTOR_BACKEND,
    EventHandle,
    ScalarScheduler,
    ScheduledEvent,
    Scheduler,
)
from repro.sim.faults import FaultPlan, LinkFault, HostFault
from repro.sim.random import RngFactory
from repro.sim.world import World

__all__ = [
    "Clock",
    "Scheduler",
    "ScalarScheduler",
    "ScheduledEvent",
    "EventHandle",
    "HAS_NUMPY",
    "VECTOR_BACKEND",
    "FaultPlan",
    "LinkFault",
    "HostFault",
    "RngFactory",
    "World",
]
