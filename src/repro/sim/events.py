"""A scheduled-event queue with an array-backed hot path.

Used for things that must happen at an absolute virtual time regardless of
what the foreground activity is doing: credential expiry sweeps, usage
report rollups, lease heartbeats, and fault triggers.  The foreground code
advances the clock through :class:`repro.sim.world.World`, which fires due
events.

Two implementations share one API:

* :class:`Scheduler` — the production engine.  Event records live in
  struct-of-arrays columns (``array('d')`` timestamps, a ``bytearray``
  of cancel flags, plain lists for callbacks/labels) addressed by slot
  index, with a min-heap of bare ``(time, seq, slot)`` tuples on top so
  ordering comparisons run in C.  :meth:`Scheduler.fire_due` pops whole
  *runs* of events sharing the earliest due timestamp per step and fires
  them as one batch; the common no-event case is a single tuple peek.
* :class:`ScalarScheduler` — the original heap-of-dataclasses engine,
  kept as an executable specification (the PR-5 pattern).  The
  Hypothesis differential suite drains random schedules through both and
  requires identical firing order, timestamps, and counts.

Batch-firing is behaviour-preserving, not an approximation: ``at()``
refuses to schedule in the past, so a callback running inside a batch can
only insert events at ``time >= now`` with a larger sequence number —
never *before* any not-yet-fired member of the current run.  Cancel flags
are re-checked per event at fire time, so a callback cancelling a
same-timestamp sibling suppresses it exactly as the scalar engine does.

numpy is an optional accelerator elsewhere in the tree (mode-E range
arithmetic, scheduler cohort math); this module only decides availability
once at import time so every consumer gates on the same answer.  Set
``REPRO_NO_NUMPY=1`` to force the pure-Python fallbacks even when numpy
is installed.
"""

from __future__ import annotations

import heapq
import itertools
from array import array
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import Clock
from repro.util.vector import HAS_NUMPY, VECTOR_BACKEND, np

__all__ = [
    "HAS_NUMPY", "VECTOR_BACKEND", "np",
    "ScheduledEvent", "RepeatingEvent", "EventHandle", "BatchStats",
    "Scheduler", "ScalarScheduler",
]


@dataclass(order=True)
class ScheduledEvent:
    """A callback due at an absolute virtual time (scalar-spec record).

    Ordering is (time, seq) so same-time events fire in scheduling order.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class RepeatingEvent:
    """A callback re-armed every ``interval`` seconds until cancelled.

    The worker pool's lease heartbeats use this: each firing re-schedules
    the next one, so renewals keep pace with however far a foreground
    transfer advances the clock.  ``cancel`` stops the chain.
    """

    def __init__(self, scheduler: "Scheduler | ScalarScheduler", interval: float,
                 callback: Callable[[], Any], label: str = "") -> None:
        if interval <= 0:
            raise ValueError(f"repeat interval must be positive (got {interval})")
        self._scheduler = scheduler
        self.interval = interval
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = 0
        self._current = scheduler.after(interval, self._fire, label)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired += 1
        self.callback()
        if not self.cancelled:
            self._current = self._scheduler.after(self.interval, self._fire, self.label)

    def cancel(self) -> None:
        """Stop the chain; the pending occurrence never fires."""
        self.cancelled = True
        self._current.cancel()


class EventHandle:
    """Cancellation handle for one scheduled event (API-compatible with
    :class:`ScheduledEvent`: exposes ``time``/``seq``/``label``/
    ``cancelled`` and ``cancel()``)."""

    __slots__ = ("time", "seq", "label", "cancelled", "_scheduler", "_slot")

    def __init__(self, scheduler: "Scheduler", slot: int,
                 time: float, seq: int, label: str) -> None:
        self._scheduler = scheduler
        self._slot = slot
        self.time = time
        self.seq = seq
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self.cancelled = True
        self._scheduler._cancel(self._slot, self.seq)


class BatchStats:
    """Counters describing how fire_due batched its work.

    ``runs`` is the number of same-timestamp batches extracted,
    ``batched_events`` how many events fired inside runs of length >= 2,
    ``scalar_events`` how many fired alone.  ``run_histogram()`` buckets
    run lengths by powers of two (1, 2, 4, 8, ...) for the profile
    report, so a regression in batching is visible in CI artifacts.
    """

    __slots__ = ("runs", "batched_events", "scalar_events", "max_run", "_buckets")

    def __init__(self) -> None:
        self.runs = 0
        self.batched_events = 0
        self.scalar_events = 0
        self.max_run = 0
        self._buckets: dict[int, int] = {}

    def record(self, run_len: int) -> None:
        self.runs += 1
        if run_len > 1:
            self.batched_events += run_len
        else:
            self.scalar_events += 1
        if run_len > self.max_run:
            self.max_run = run_len
        bucket = 1 << (run_len.bit_length() - 1)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def run_histogram(self) -> dict[int, int]:
        """{power-of-two bucket: run count}, ascending."""
        return dict(sorted(self._buckets.items()))

    @property
    def total_events(self) -> int:
        return self.batched_events + self.scalar_events


class Scheduler:
    """Array-backed event queue, driven by a :class:`Clock`.

    Struct-of-arrays layout: ``_times``/``_seq_of`` are C-contiguous
    numeric columns, ``_cancelled`` a bytearray bitmap, ``_callbacks``/
    ``_labels`` parallel object columns, all addressed by a recycled slot
    index.  A heap of bare ``(time, seq, slot)`` tuples provides ordering;
    freed slots go to a free list so steady-state scheduling allocates no
    column storage.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._heap: list[tuple[float, int, int]] = []
        self._seq = itertools.count()
        # struct-of-arrays event store, indexed by slot
        self._times = array("d")
        self._seq_of = array("q")       # seq occupying each slot; -1 = free
        self._cancelled = bytearray()
        self._callbacks: list[Callable[[], Any] | None] = []
        self._labels: list[str] = []
        self._free: list[int] = []
        self._live = 0                  # queued and not cancelled
        # in-flight run: slots popped from the heap but not yet fired.
        # A cursor (not a plain loop) so a reentrant fire_due — a callback
        # advancing the clock — drains the rest of the run first, exactly
        # as the scalar engine would pop them next.
        self._run_buf: list[int] = []
        self._run_pos = 0
        self.stats = BatchStats()

    # -- slot management -----------------------------------------------------

    def _alloc(self, time: float, seq: int,
               callback: Callable[[], Any], label: str) -> int:
        free = self._free
        if free:
            slot = free.pop()
            self._times[slot] = time
            self._seq_of[slot] = seq
            self._cancelled[slot] = 0
            self._callbacks[slot] = callback
            self._labels[slot] = label
        else:
            slot = len(self._times)
            self._times.append(time)
            self._seq_of.append(seq)
            self._cancelled.append(0)
            self._callbacks.append(callback)
            self._labels.append(label)
        return slot

    def _release(self, slot: int) -> None:
        self._seq_of[slot] = -1
        self._callbacks[slot] = None    # drop the reference, keep the column
        self._free.append(slot)

    def _cancel(self, slot: int, seq: int) -> None:
        # Guarded by seq so a stale handle (event already fired, slot
        # recycled) can never cancel its successor.
        if self._seq_of[slot] == seq and not self._cancelled[slot]:
            self._cancelled[slot] = 1
            self._live -= 1

    # -- scheduling ----------------------------------------------------------

    def at(self, time: float, callback: Callable[[], Any], label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self._clock._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._clock._now}"
            )
        seq = next(self._seq)
        slot = self._alloc(time, seq, callback, label)
        heapq.heappush(self._heap, (time, seq, slot))
        self._live += 1
        return EventHandle(self, slot, time, seq, label)

    def after(self, delay: float, callback: Callable[[], Any], label: str = "") -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        return self.at(self._clock._now + delay, callback, label)

    def every(self, interval: float, callback: Callable[[], Any],
              label: str = "") -> RepeatingEvent:
        """Schedule ``callback`` every ``interval`` seconds until cancelled."""
        return RepeatingEvent(self, interval, callback, label)

    # -- queries -------------------------------------------------------------

    @property
    def next_due(self) -> float | None:
        """Time of the earliest pending event, or None when empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            top = heap[0]
            if cancelled[top[2]]:
                heapq.heappop(heap)
                self._release(top[2])
            else:
                return top[0]
        return None

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return self._live

    # -- firing --------------------------------------------------------------

    def fire_due(self) -> int:
        """Run every event whose time is <= now; return how many fired.

        Due events are extracted in *runs* — maximal groups sharing the
        earliest pending timestamp, in scheduling order — and fired as a
        batch.  Because scheduling in the past is impossible, anything a
        callback inserts lands strictly after the current run, so batch
        order is identical to one-at-a-time heap popping.
        """
        if self._run_pos >= len(self._run_buf):
            heap = self._heap
            if not heap:
                return 0
            top = heap[0]
            # fast path: nothing due, nothing cancelled at the head
            if top[0] > self._clock._now and not self._cancelled[top[2]]:
                return 0
        return self._fire_slow()

    def _fire_slow(self) -> int:
        heap = self._heap
        clock = self._clock
        cancelled = self._cancelled
        callbacks = self._callbacks
        buf = self._run_buf
        pop = heapq.heappop
        stats = self.stats
        fired = 0
        while True:
            # 1) drain the in-flight run first — ours, or an outer frame's
            # interrupted by a reentrant call.  Run members are the
            # earliest (time, seq) keys anywhere, so the scalar engine
            # would pop exactly these next.
            while self._run_pos < len(buf):
                slot = buf[self._run_pos]
                self._run_pos += 1
                if cancelled[slot]:
                    # cancelled mid-run by an earlier sibling
                    self._release(slot)
                    continue
                cb = callbacks[slot]
                self._release(slot)
                self._live -= 1
                cb()
                fired += 1
            # 2) refill: drop cancelled heads, extract the next due run
            # (re-reading the clock — a callback may have advanced it)
            while heap:
                top = heap[0]
                if cancelled[top[2]]:
                    pop(heap)
                    self._release(top[2])
                else:
                    break
            if not heap or heap[0][0] > clock._now:
                return fired
            run_time = heap[0][0]
            del buf[:]
            self._run_pos = 0
            while heap and heap[0][0] == run_time:
                slot = pop(heap)[2]
                if cancelled[slot]:
                    self._release(slot)
                else:
                    buf.append(slot)
            if buf:
                stats.record(len(buf))


class ScalarScheduler:
    """Reference heap-of-dataclasses queue (executable specification).

    This is the original one-event-at-a-time engine, kept verbatim so the
    differential suite can drain random schedules through both engines
    and demand identical behaviour.  Not used on hot paths.
    """

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def at(self, time: float, callback: Callable[[], Any], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self._clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._clock.now}"
            )
        ev = ScheduledEvent(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, delay: float, callback: Callable[[], Any], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        return self.at(self._clock.now + delay, callback, label)

    def every(self, interval: float, callback: Callable[[], Any],
              label: str = "") -> RepeatingEvent:
        """Schedule ``callback`` every ``interval`` seconds until cancelled."""
        return RepeatingEvent(self, interval, callback, label)

    @property
    def next_due(self) -> float | None:
        """Time of the earliest pending event, or None when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def fire_due(self) -> int:
        """Run every event whose time is <= now; return how many fired."""
        fired = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time > self._clock.now:
                return fired
            ev = heapq.heappop(self._heap)
            ev.callback()
            fired += 1

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)
