"""A small scheduled-event queue.

Used for things that must happen at an absolute virtual time regardless of
what the foreground activity is doing: credential expiry sweeps, usage
report rollups, and fault triggers.  The foreground code advances the
clock through :class:`repro.sim.world.World`, which fires due events.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.clock import Clock


@dataclass(order=True)
class ScheduledEvent:
    """A callback due at an absolute virtual time.

    Ordering is (time, seq) so same-time events fire in scheduling order.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing."""
        self.cancelled = True


class RepeatingEvent:
    """A callback re-armed every ``interval`` seconds until cancelled.

    The worker pool's lease heartbeats use this: each firing re-schedules
    the next one, so renewals keep pace with however far a foreground
    transfer advances the clock.  ``cancel`` stops the chain.
    """

    def __init__(self, scheduler: "Scheduler", interval: float,
                 callback: Callable[[], Any], label: str = "") -> None:
        if interval <= 0:
            raise ValueError(f"repeat interval must be positive (got {interval})")
        self._scheduler = scheduler
        self.interval = interval
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = 0
        self._current = scheduler.after(interval, self._fire, label)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fired += 1
        self.callback()
        if not self.cancelled:
            self._current = self._scheduler.after(self.interval, self._fire, self.label)

    def cancel(self) -> None:
        """Stop the chain; the pending occurrence never fires."""
        self.cancelled = True
        self._current.cancel()


class Scheduler:
    """Priority queue of :class:`ScheduledEvent`, driven by a :class:`Clock`."""

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()

    def at(self, time: float, callback: Callable[[], Any], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run at absolute virtual time ``time``."""
        if time < self._clock.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._clock.now}"
            )
        ev = ScheduledEvent(time=time, seq=next(self._seq), callback=callback, label=label)
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, delay: float, callback: Callable[[], Any], label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        return self.at(self._clock.now + delay, callback, label)

    def every(self, interval: float, callback: Callable[[], Any],
              label: str = "") -> RepeatingEvent:
        """Schedule ``callback`` every ``interval`` seconds until cancelled."""
        return RepeatingEvent(self, interval, callback, label)

    @property
    def next_due(self) -> float | None:
        """Time of the earliest pending event, or None when empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def fire_due(self) -> int:
        """Run every event whose time is <= now; return how many fired."""
        fired = 0
        while True:
            self._drop_cancelled()
            if not self._heap or self._heap[0].time > self._clock.now:
                return fired
            ev = heapq.heappop(self._heap)
            ev.callback()
            fired += 1

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for ev in self._heap if not ev.cancelled)
