"""Deterministic random-number streams.

Every stochastic component (key generation, workload synthesis, fleet
growth noise) draws from a named stream derived from the world seed, so
two components never perturb each other's sequences and any run can be
replayed bit-for-bit from its seed.
"""

from __future__ import annotations

import hashlib
import random

from repro.util.vector import HAS_NUMPY, np


class RngFactory:
    """Derives independent, reproducible RNG streams from a master seed."""

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The master seed this factory derives streams from."""
        return self._seed

    def _derive(self, name: str) -> int:
        h = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(h[:8], "big")

    def python(self, name: str) -> random.Random:
        """A stdlib :class:`random.Random` for the named stream."""
        return random.Random(self._derive(name))

    def numpy(self, name: str) -> "np.random.Generator":
        """A numpy :class:`~numpy.random.Generator` for the named stream.

        Raises :class:`RuntimeError` when numpy is unavailable — callers
        that can fall back should check :data:`repro.util.vector.HAS_NUMPY`
        and use :meth:`python` instead.
        """
        if not HAS_NUMPY:
            raise RuntimeError(
                "numpy is not available in this environment; "
                "use RngFactory.python() for a stdlib stream"
            )
        return np.random.default_rng(self._derive(name))
