"""The World: one object tying a simulation run together.

A :class:`World` owns the virtual clock, the scheduler, the fault plan,
the deterministic RNG factory, the event log, and the network.  Every
higher-level component (servers, CAs, the Globus Online service) is
constructed against a world and reads time/network/faults from it.

Creating a world is the first line of every example and benchmark::

    world = World(seed=7)
    site = world.network.add_host("alcf-dtn1", nic_bps=gbps(10))
"""

from __future__ import annotations

from typing import Any

from repro.sim.clock import Clock
from repro.sim.events import Scheduler
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.random import RngFactory
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import SlowOpLog
from repro.telemetry.trace import Tracer
from repro.util.logging import Event, EventLog


class World:
    """Container for one reproducible simulation run.

    ``event_capacity`` bounds the event log and ``span_capacity`` the
    tracer's retained spans (ring-buffer eviction) for fleet-scale runs;
    the defaults keep everything.
    """

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        event_capacity: int | None = None,
        span_capacity: int | None = None,
        slow_op_threshold_s: float = 1.0,
    ) -> None:
        self.clock = Clock(start_time)
        self.scheduler = Scheduler(self.clock)
        self.faults = FaultPlan()
        self.rng = RngFactory(seed)
        self.log = EventLog(capacity=event_capacity)
        self.metrics = MetricsRegistry()
        self.slow_ops = SlowOpLog(threshold_s=slow_op_threshold_s)
        self.tracer = Tracer(self, span_capacity=span_capacity)
        # Imported here to avoid a circular import: repro.net needs World
        # type hints only, but World owns the concrete Network.
        from repro.net.topology import Network

        self.network = Network(self)
        # Seeded chaos: disabled until configured and armed, but always
        # present so recovery code can route restart markers through it.
        self.chaos = FaultInjector(self)
        # Fleet observability (flight recorder + SLO engine) is opt-in:
        # both stay None until enable_observability() attaches them, so a
        # plain world pays nothing for the subsystem.
        self.flight_recorder = None
        self.slo = None

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self.clock._now  # one property hop, not two: hottest call in the tree

    def advance(self, dt: float) -> float:
        """Advance the clock and fire any scheduler events that came due."""
        t = self.clock.advance(dt)
        self.scheduler.fire_due()
        return t

    def advance_to(self, t: float) -> float:
        """Advance the clock to absolute time ``t`` and fire due events."""
        now = self.clock.advance_to(t)
        self.scheduler.fire_due()
        return now

    # -- telemetry -----------------------------------------------------------

    def emit(self, category: str, message: str, **fields: Any):
        """Append a structured event stamped with the current virtual time.

        Events emitted inside an active tracer span carry its trace and
        span ids, tying the flat log to the causal tree.
        """
        stack = self.tracer._stack
        if stack:
            ctx = stack[-1].context
            trace_id, span_id = ctx.trace_id, ctx.span_id
        else:
            trace_id = span_id = None
        # build the Event here and hand it straight to the log: emit()
        # runs tens of thousands of times per drain, and the kwargs
        # repack through EventLog.emit was a measurable slice of it
        return self.log.emit_event(Event(
            self.clock._now, category, message, fields, trace_id, span_id,
        ))

    def span(self, name: str, **fields: Any):
        """Open a tracer span (convenience for ``world.tracer.span``)."""
        return self.tracer.span(name, **fields)

    def enable_observability(
        self,
        *,
        flight_capacity: int = 4096,
        slos=None,
        queue_wait_slo_s: float = 600.0,
    ):
        """Attach the flight recorder and SLO engine to this world.

        Idempotent: a second call returns the already-attached pair.
        ``slos`` overrides the default objective set; ``queue_wait_slo_s``
        tunes the stock queue-wait latency cut when defaults are used.
        """
        if self.flight_recorder is not None and self.slo is not None:
            return self.flight_recorder, self.slo
        # Lazy imports: telemetry.flightrecorder/slo import scheduler-facing
        # types and must not load for worlds that never observe.
        from repro.telemetry.flightrecorder import FlightRecorder
        from repro.telemetry.slo import SLOEngine, default_slos, wire_slos

        if self.flight_recorder is None:
            self.flight_recorder = FlightRecorder(self, capacity=flight_capacity)
        if self.slo is None:
            if slos is None:
                slos = default_slos(queue_wait_slo_s=queue_wait_slo_s)
            self.slo = SLOEngine(self, slos)
            wire_slos(self, self.slo)
        return self.flight_recorder, self.slo

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"World(now={self.clock.now:.3f}, hosts={len(self.network.hosts)}, "
            f"events={len(self.log)})"
        )
