"""The virtual clock.

All timing in the library — transfer durations, certificate validity,
fault schedules, usage timestamps — reads this clock.  Nothing consults
wall time, which makes every benchmark and test exactly reproducible.
"""

from __future__ import annotations


class Clock:
    """Monotonic virtual clock measured in seconds.

    The epoch is arbitrary; benchmarks that model calendar behaviour (the
    Figure 1 usage series) interpret ``now`` as seconds since their own
    chosen start date.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time.

        Negative advances are a programming error: the clock is monotonic.
        """
        if dt < 0:
            raise ValueError(f"clock cannot move backwards (dt={dt})")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (no-op if already past)."""
        if t > self._now:
            self._now = t
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Clock(now={self._now:.6f})"
