"""Fault injection: scheduled outages and seeded chaos.

The reliability claims in the paper — restart markers, Globus Online
"restart the transfer from the last checkpoint" — only mean anything if
things actually fail.  Two layers live here:

* :class:`FaultPlan` holds *scheduled* faults: link outages, host
  crash-restarts, bandwidth-degradation episodes, and control-channel
  disconnects.  The transfer engine consults it to decide whether a
  transfer window [start, end) is interrupted, and baselines consult it
  the same way so comparisons are apples-to-apples.

* :class:`FaultInjector` (owned by every :class:`~repro.sim.world.World`
  as ``world.chaos``) generates *adversarial* fault schedules from the
  world seed: Poisson link flaps, degradation episodes, host
  crash-restarts with configurable downtime, control-channel drops, and
  corrupted/truncated restart markers.  Every stream is derived from
  :class:`repro.sim.random.RngFactory`, so a chaos run is replayable
  bit-for-bit from its seed — ``arm()`` twice with the same seed and
  config produces the identical schedule.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


class _IntervalIndex:
    """Per-target interval lookup over scheduled faults.

    Chaos campaigns install thousands of faults, and a fleet-scale run
    asks "is this link down at t?" per transfer — a linear scan over
    every scheduled fault makes the *simulator* O(faults × transfers).
    This index keeps, per target, the faults sorted by onset plus a
    running maximum of their ends, so point queries are one bisect:
    some interval with ``start <= t`` covers ``t`` iff the prefix's max
    end exceeds ``t``.  Arrays are rebuilt lazily per target after a
    mutation (schedules are build-then-query, so rebuilds are rare).
    """

    # A built entry of None caches "this target has no faults at all" —
    # the common case on fleet hot paths (chaos arms worker hosts, not
    # DTNs), so point queries for clean targets cost one dict hit.

    def __init__(self) -> None:
        self._raw: dict[str, list] = {}
        self._built: dict[str, tuple[list, list[float], list[float]] | None] = {}

    def add(self, target: str, fault) -> None:
        self._raw.setdefault(target, []).append(fault)
        self._built.pop(target, None)

    def clear(self) -> None:
        self._raw.clear()
        self._built.clear()

    def _entry(self, target: str) -> tuple[list, list[float], list[float]] | None:
        if target in self._built:
            return self._built[target]
        raw = self._raw.get(target)
        if not raw:
            self._built[target] = None
            return None
        faults = sorted(raw, key=lambda f: f.start)
        starts = [f.start for f in faults]
        prefix_end: list[float] = []
        running = float("-inf")
        for f in faults:
            running = max(running, f.end)
            prefix_end.append(running)
        entry = (faults, starts, prefix_end)
        self._built[target] = entry
        return entry

    def covers(self, target: str, t: float) -> bool:
        """Is any of the target's intervals active at ``t``?"""
        entry = self._built.get(target, False)
        if entry is False:
            entry = self._entry(target)
        if entry is None:
            return False
        _, starts, prefix_end = entry
        i = bisect_right(starts, t)
        return i > 0 and prefix_end[i - 1] > t

    def active(self, target: str, t: float) -> Iterator:
        """The target's intervals covering ``t`` (for min-factor scans).

        Walks backwards from the bisect point and stops as soon as the
        prefix max-end shows nothing earlier can still cover ``t``.
        """
        entry = self._entry(target)
        if entry is None:
            return
        faults, starts, prefix_end = entry
        i = bisect_right(starts, t) - 1
        while i >= 0 and prefix_end[i] > t:
            if faults[i].end > t:
                yield faults[i]
            i -= 1

    def first_overlap(self, target: str, start: float, end: float) -> float | None:
        """Earliest onset in [start, end): ``start`` if an interval is
        already active there, else the first onset inside the window."""
        entry = self._entry(target)
        if entry is None:
            return None
        _, starts, prefix_end = entry
        i = bisect_right(starts, start)
        if i > 0 and prefix_end[i - 1] > start:
            return start
        if i < len(starts) and starts[i] < end:
            return starts[i]
        return None

    def windows(self, target: str) -> list[tuple[float, float]]:
        """The target's (start, end) windows, sorted by onset."""
        entry = self._entry(target)
        if entry is None:
            return []
        faults, _, _ = entry
        return [(f.start, f.end) for f in faults]


@dataclass(frozen=True)
class LinkFault:
    """A link is down during [start, start+duration)."""

    link_id: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End of the outage window (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """True if the fault is in effect at time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class HostFault:
    """A host (server crash / reboot) is down during [start, start+duration)."""

    host: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End of the outage window (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """True if the fault is in effect at time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class DegradationFault:
    """A link runs at ``factor`` of its bandwidth during [start, start+duration).

    Degradation does not interrupt transfers; it slows them.  ``factor``
    is in (0, 1]: 0.25 means the link delivers a quarter of its rate.
    """

    link_id: str
    start: float
    duration: float
    factor: float

    @property
    def end(self) -> float:
        """End of the episode (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """True if the episode is in effect at time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class ControlChannelFault:
    """A host's control plane is unreachable during [start, start+duration).

    Models a control-TCP disconnect / listener restart: commands to (or
    from) the host fail while data channels already in flight keep
    moving.
    """

    host: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End of the disconnect window (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """True if the fault is in effect at time ``t``."""
        return self.start <= t < self.end


class FaultPlan:
    """The set of scheduled faults for a simulation run."""

    def __init__(self) -> None:
        #: bumped on every mutation; callers may cache derived views
        #: (e.g. "which targets on this path have faults at all") keyed
        #: by this counter
        self.epoch = 0
        self._link_faults: list[LinkFault] = []
        self._host_faults: list[HostFault] = []
        self._degradations: list[DegradationFault] = []
        self._control_faults: list[ControlChannelFault] = []
        # per-target interval indexes: every query below is per-resource,
        # so none of them should pay for faults on unrelated targets.
        self._link_idx = _IntervalIndex()
        self._host_idx = _IntervalIndex()
        self._degrade_idx = _IntervalIndex()
        self._control_idx = _IntervalIndex()

    # -- construction --------------------------------------------------------

    def cut_link(self, link_id: str, at: float, duration: float) -> LinkFault:
        """Schedule ``link_id`` to be down during [at, at+duration)."""
        if duration <= 0:
            raise ValueError("fault duration must be positive")
        fault = LinkFault(link_id=link_id, start=at, duration=duration)
        self._link_faults.append(fault)
        self._link_idx.add(link_id, fault)
        self.epoch += 1
        return fault

    def crash_host(self, host: str, at: float, duration: float) -> HostFault:
        """Schedule ``host`` to be down during [at, at+duration)."""
        if duration <= 0:
            raise ValueError("fault duration must be positive")
        fault = HostFault(host=host, start=at, duration=duration)
        self._host_faults.append(fault)
        self._host_idx.add(host, fault)
        self.epoch += 1
        return fault

    def degrade_link(
        self, link_id: str, at: float, duration: float, factor: float
    ) -> DegradationFault:
        """Schedule ``link_id`` to run at ``factor`` bandwidth during the window."""
        if duration <= 0:
            raise ValueError("fault duration must be positive")
        if not 0.0 < factor <= 1.0:
            raise ValueError("degradation factor must be in (0, 1]")
        fault = DegradationFault(link_id=link_id, start=at, duration=duration, factor=factor)
        self._degradations.append(fault)
        self._degrade_idx.add(link_id, fault)
        self.epoch += 1
        return fault

    def drop_control(self, host: str, at: float, duration: float) -> ControlChannelFault:
        """Schedule ``host``'s control plane to be unreachable during the window."""
        if duration <= 0:
            raise ValueError("fault duration must be positive")
        fault = ControlChannelFault(host=host, start=at, duration=duration)
        self._control_faults.append(fault)
        self._control_idx.add(host, fault)
        self.epoch += 1
        return fault

    # -- queries --------------------------------------------------------------

    def link_down(self, link_id: str, t: float) -> bool:
        """Is ``link_id`` down at time ``t``?"""
        return self._link_idx.covers(link_id, t)

    def host_down(self, host: str, t: float) -> bool:
        """Is ``host`` down at time ``t``?"""
        return self._host_idx.covers(host, t)

    def has_link_faults(self, link_id: str) -> bool:
        """Does ``link_id`` have any scheduled down-window at all?"""
        return link_id in self._link_idx._raw

    def has_host_faults(self, host: str) -> bool:
        """Does ``host`` have any scheduled crash window at all?"""
        return host in self._host_idx._raw

    def has_degradations(self, link_id: str) -> bool:
        """Does ``link_id`` have any scheduled degradation episode at all?"""
        return link_id in self._degrade_idx._raw

    def control_down(self, host: str, t: float) -> bool:
        """Is ``host``'s control plane unreachable at time ``t``?"""
        return self._control_idx.covers(host, t)

    def bandwidth_factor(self, link_ids: Iterable[str], t: float) -> float:
        """Worst active degradation factor over the listed links (1.0 = clean)."""
        factor = 1.0
        for link_id in link_ids:
            for f in self._degrade_idx.active(link_id, t):
                factor = min(factor, f.factor)
        return factor

    def first_interruption(
        self,
        link_ids: Iterable[str],
        hosts: Iterable[str],
        start: float,
        end: float,
    ) -> float | None:
        """Earliest fault onset in [start, end) affecting any listed resource.

        A fault already active at ``start`` counts as an interruption at
        ``start``.  Returns the interruption time, or None when the window
        is clean.  Degradation episodes and control-channel drops do not
        interrupt data flows and are not considered here.
        """
        best: float | None = None
        for link_id in link_ids:
            hit = self._link_idx.first_overlap(link_id, start, end)
            if hit is not None and (best is None or hit < best):
                best = hit
        for host in hosts:
            hit = self._host_idx.first_overlap(host, start, end)
            if hit is not None and (best is None or hit < best):
                best = hit
        return best

    def endpoint_disrupted(
        self, hosts: Iterable[str], start: float, end: float
    ) -> bool:
        """Did a host crash *or control-channel drop* hit any listed host
        in [start, end]?

        Unlike :meth:`first_interruption` (which models data flows, where
        control drops don't matter), this is the control-plane question
        the session pool asks: an authenticated control connection does
        not survive either fault class, so a pooled channel whose idle
        window overlaps one must be discarded rather than reused.
        """
        for host in hosts:
            if self._host_idx.first_overlap(host, start, end) is not None:
                return True
            if self._control_idx.first_overlap(host, start, end) is not None:
                return True
        return False

    def next_clear_time(
        self, link_ids: Iterable[str], hosts: Iterable[str], t: float
    ) -> float:
        """Earliest time >= ``t`` at which every listed resource is up.

        Control-channel drops on the listed hosts count as "not up":
        recovery loops wait them out along with link and host outages.
        Iterates because outages may overlap or abut; bounded by the
        number of faults scheduled on the listed resources.
        """
        windows: list[tuple[float, float]] = []
        for link_id in link_ids:
            windows.extend(self._link_idx.windows(link_id))
        for host in hosts:
            windows.extend(self._host_idx.windows(host))
            windows.extend(self._control_idx.windows(host))
        changed = True
        while changed:
            changed = False
            for start, end in windows:
                if start <= t < end:
                    t = end
                    changed = True
        return t

    @property
    def link_faults(self) -> tuple[LinkFault, ...]:
        """All scheduled link outages."""
        return tuple(self._link_faults)

    @property
    def host_faults(self) -> tuple[HostFault, ...]:
        """All scheduled host outages."""
        return tuple(self._host_faults)

    @property
    def degradation_faults(self) -> tuple[DegradationFault, ...]:
        """All scheduled bandwidth-degradation episodes."""
        return tuple(self._degradations)

    @property
    def control_faults(self) -> tuple[ControlChannelFault, ...]:
        """All scheduled control-channel disconnects."""
        return tuple(self._control_faults)

    def clear(self) -> None:
        """Remove all scheduled faults."""
        self.epoch += 1
        self._link_faults.clear()
        self._host_faults.clear()
        self._degradations.clear()
        self._control_faults.clear()
        self._link_idx.clear()
        self._host_idx.clear()
        self._degrade_idx.clear()
        self._control_idx.clear()


# ---------------------------------------------------------------------------
# Seeded chaos
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos campaign.

    Each ``*_every_s`` is the mean Poisson inter-arrival per target (None
    disables that fault class); the matching ``*_duration_s`` pair is a
    uniform (lo, hi) range.  ``marker_corruption_prob`` is the chance a
    restart marker is truncated or garbled in flight when recovery logic
    routes markers through :meth:`FaultInjector.filter_marker`.
    """

    link_flap_every_s: float | None = None
    link_flap_duration_s: tuple[float, float] = (2.0, 15.0)
    degrade_every_s: float | None = None
    degrade_duration_s: tuple[float, float] = (5.0, 30.0)
    degrade_factor: tuple[float, float] = (0.2, 0.7)
    host_crash_every_s: float | None = None
    host_downtime_s: tuple[float, float] = (10.0, 45.0)
    control_drop_every_s: float | None = None
    control_drop_duration_s: tuple[float, float] = (1.0, 8.0)
    marker_corruption_prob: float = 0.0
    horizon_s: float = 600.0

    def __post_init__(self) -> None:
        for name in ("link_flap_every_s", "degrade_every_s",
                     "host_crash_every_s", "control_drop_every_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive")
        if not 0.0 <= self.marker_corruption_prob <= 1.0:
            raise ValueError("marker_corruption_prob must be in [0, 1]")
        if self.horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        lo, hi = self.degrade_factor
        if not 0.0 < lo <= hi <= 1.0:
            raise ValueError("degrade_factor range must satisfy 0 < lo <= hi <= 1")


@dataclass(frozen=True)
class InjectedFault:
    """One fault the injector placed into the plan (the replayable record)."""

    kind: str  # "link_flap" | "degradation" | "host_crash" | "control_drop"
    target: str
    start: float
    duration: float
    param: float = 0.0  # degradation factor, otherwise 0


class FaultInjector:
    """Seeded, replayable chaos: turns a :class:`ChaosConfig` into faults.

    Each (fault class, target) pair draws from its own named RNG stream,
    so the schedule is independent of target enumeration order and two
    runs from the same world seed inject the identical campaign.
    """

    def __init__(self, world: "World", config: ChaosConfig | None = None) -> None:
        self.world = world
        self.config = config or ChaosConfig()
        self._schedule: list[InjectedFault] = []
        self._marker_rng = world.rng.python("chaos:marker")

    def configure(self, config: ChaosConfig) -> "FaultInjector":
        """Replace the config (call before :meth:`arm`)."""
        self.config = config
        return self

    @property
    def schedule(self) -> tuple[InjectedFault, ...]:
        """Every fault injected so far, in onset order."""
        return tuple(self._schedule)

    @property
    def fault_count(self) -> int:
        """Number of faults injected so far."""
        return len(self._schedule)

    def counts_by_kind(self) -> dict[str, int]:
        """Injected fault totals per kind."""
        out: dict[str, int] = {}
        for f in self._schedule:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    # -- the campaign ---------------------------------------------------------

    def arm(
        self,
        links: Iterable[str] | None = None,
        hosts: Iterable[str] | None = None,
        start: float | None = None,
        horizon_s: float | None = None,
    ) -> tuple[InjectedFault, ...]:
        """Generate the campaign and install it into ``world.faults``.

        ``links``/``hosts`` default to every link and every non-transit
        host in the topology.  Returns the newly injected faults in onset
        order; they are also appended to :attr:`schedule`.
        """
        cfg = self.config
        t0 = self.world.now if start is None else start
        horizon = cfg.horizon_s if horizon_s is None else horizon_s
        link_ids = sorted(links) if links is not None else sorted(self.world.network.links)
        host_names = (
            sorted(hosts)
            if hosts is not None
            else sorted(
                name for name, h in self.world.network.hosts.items() if not h.transit
            )
        )
        plan = self.world.faults
        new: list[InjectedFault] = []

        if cfg.link_flap_every_s is not None:
            for link_id in link_ids:
                for at, dur in self._arrivals(
                    f"flap:{link_id}", cfg.link_flap_every_s,
                    cfg.link_flap_duration_s, t0, horizon,
                ):
                    plan.cut_link(link_id, at=at, duration=dur)
                    new.append(InjectedFault("link_flap", link_id, at, dur))

        if cfg.degrade_every_s is not None:
            for link_id in link_ids:
                rng = self.world.rng.python(f"chaos:degrade:{link_id}")
                t = t0
                while True:
                    t += rng.expovariate(1.0 / cfg.degrade_every_s)
                    if t >= t0 + horizon:
                        break
                    dur = rng.uniform(*cfg.degrade_duration_s)
                    factor = rng.uniform(*cfg.degrade_factor)
                    plan.degrade_link(link_id, at=t, duration=dur, factor=factor)
                    new.append(InjectedFault("degradation", link_id, t, dur, factor))

        if cfg.host_crash_every_s is not None:
            for host in host_names:
                for at, dur in self._arrivals(
                    f"crash:{host}", cfg.host_crash_every_s,
                    cfg.host_downtime_s, t0, horizon,
                ):
                    plan.crash_host(host, at=at, duration=dur)
                    new.append(InjectedFault("host_crash", host, at, dur))

        if cfg.control_drop_every_s is not None:
            for host in host_names:
                for at, dur in self._arrivals(
                    f"ctrl:{host}", cfg.control_drop_every_s,
                    cfg.control_drop_duration_s, t0, horizon,
                ):
                    plan.drop_control(host, at=at, duration=dur)
                    new.append(InjectedFault("control_drop", host, at, dur))

        new.sort(key=lambda f: (f.start, f.kind, f.target))
        self._schedule.extend(new)
        injected = self.world.metrics.counter(
            "chaos_faults_injected_total",
            "Faults placed into the plan by the chaos injector",
            labelnames=("kind",),
        )
        for f in new:
            injected.inc(kind=f.kind)
        self.world.emit(
            "chaos.armed", "chaos campaign installed",
            faults=len(new), horizon_s=horizon,
            kinds=dict(sorted(self.counts_by_kind().items())),
        )
        return tuple(new)

    def _arrivals(
        self,
        stream: str,
        every_s: float,
        duration_range: tuple[float, float],
        t0: float,
        horizon: float,
    ) -> list[tuple[float, float]]:
        """Poisson (onset, duration) pairs for one (class, target) stream."""
        rng = self.world.rng.python(f"chaos:{stream}")
        out: list[tuple[float, float]] = []
        t = t0
        while True:
            t += rng.expovariate(1.0 / every_s)
            if t >= t0 + horizon:
                break
            out.append((t, rng.uniform(*duration_range)))
        return out

    # -- restart-marker corruption --------------------------------------------

    def filter_marker(self, text: str) -> str:
        """Pass a restart-marker wire string through the chaos channel.

        With probability ``marker_corruption_prob`` the marker comes back
        *truncated* (trailing ranges dropped — still well-formed, claims
        less than was received, which is safe) or *garbled* (unparseable,
        which recovery must detect and discard).  Deterministic: draws
        come from the ``chaos:marker`` stream in call order.
        """
        prob = self.config.marker_corruption_prob
        if prob <= 0.0 or not text:
            return text
        if self._marker_rng.random() >= prob:
            return text
        corruptions = self.world.metrics.counter(
            "chaos_marker_corruptions_total",
            "Restart markers corrupted in flight by the chaos injector",
            labelnames=("mode",),
        )
        if "," in text and self._marker_rng.random() < 0.5:
            corruptions.inc(mode="truncated")
            return text.rsplit(",", 1)[0]
        corruptions.inc(mode="garbled")
        return text[: max(1, len(text) // 2)] + "-?!"
