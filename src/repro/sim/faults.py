"""Fault injection.

The reliability claims in the paper — restart markers, Globus Online
"restart the transfer from the last checkpoint" — only mean anything if
things actually fail.  A :class:`FaultPlan` holds scheduled outages of
links and hosts; the transfer engine consults it to decide whether a
transfer window [start, end) is interrupted, and baselines consult it the
same way so comparisons are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class LinkFault:
    """A link is down during [start, start+duration)."""

    link_id: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End of the outage window (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """True if the fault is in effect at time ``t``."""
        return self.start <= t < self.end


@dataclass(frozen=True)
class HostFault:
    """A host (server crash / reboot) is down during [start, start+duration)."""

    host: str
    start: float
    duration: float

    @property
    def end(self) -> float:
        """End of the outage window (exclusive)."""
        return self.start + self.duration

    def active_at(self, t: float) -> bool:
        """True if the fault is in effect at time ``t``."""
        return self.start <= t < self.end


class FaultPlan:
    """The set of scheduled faults for a simulation run."""

    def __init__(self) -> None:
        self._link_faults: list[LinkFault] = []
        self._host_faults: list[HostFault] = []

    # -- construction --------------------------------------------------------

    def cut_link(self, link_id: str, at: float, duration: float) -> LinkFault:
        """Schedule ``link_id`` to be down during [at, at+duration)."""
        if duration <= 0:
            raise ValueError("fault duration must be positive")
        fault = LinkFault(link_id=link_id, start=at, duration=duration)
        self._link_faults.append(fault)
        return fault

    def crash_host(self, host: str, at: float, duration: float) -> HostFault:
        """Schedule ``host`` to be down during [at, at+duration)."""
        if duration <= 0:
            raise ValueError("fault duration must be positive")
        fault = HostFault(host=host, start=at, duration=duration)
        self._host_faults.append(fault)
        return fault

    # -- queries --------------------------------------------------------------

    def link_down(self, link_id: str, t: float) -> bool:
        """Is ``link_id`` down at time ``t``?"""
        return any(f.link_id == link_id and f.active_at(t) for f in self._link_faults)

    def host_down(self, host: str, t: float) -> bool:
        """Is ``host`` down at time ``t``?"""
        return any(f.host == host and f.active_at(t) for f in self._host_faults)

    def first_interruption(
        self,
        link_ids: Iterable[str],
        hosts: Iterable[str],
        start: float,
        end: float,
    ) -> float | None:
        """Earliest fault onset in [start, end) affecting any listed resource.

        A fault already active at ``start`` counts as an interruption at
        ``start``.  Returns the interruption time, or None when the window
        is clean.
        """
        link_ids = set(link_ids)
        hosts = set(hosts)
        candidates: list[float] = []
        for f in self._link_faults:
            if f.link_id in link_ids and f.start < end and f.end > start:
                candidates.append(max(f.start, start))
        for hf in self._host_faults:
            if hf.host in hosts and hf.start < end and hf.end > start:
                candidates.append(max(hf.start, start))
        return min(candidates) if candidates else None

    def next_clear_time(
        self, link_ids: Iterable[str], hosts: Iterable[str], t: float
    ) -> float:
        """Earliest time >= ``t`` at which every listed resource is up.

        Iterates because outages may overlap or abut; bounded by the number
        of scheduled faults.
        """
        link_ids = set(link_ids)
        hosts = set(hosts)
        faults_end: list[tuple[float, float]] = [
            (f.start, f.end) for f in self._link_faults if f.link_id in link_ids
        ] + [(f.start, f.end) for f in self._host_faults if f.host in hosts]
        changed = True
        while changed:
            changed = False
            for start, end in faults_end:
                if start <= t < end:
                    t = end
                    changed = True
        return t

    @property
    def link_faults(self) -> tuple[LinkFault, ...]:
        """All scheduled link outages."""
        return tuple(self._link_faults)

    @property
    def host_faults(self) -> tuple[HostFault, ...]:
        """All scheduled host outages."""
        return tuple(self._host_faults)

    def clear(self) -> None:
        """Remove all scheduled faults."""
        self._link_faults.clear()
        self._host_faults.clear()
