"""Declarative SLOs with multi-window burn-rate alerting.

"Is the fleet burning its error budget?" is the question an operator of
the hosted service asks before anything else.  This module answers it
the way production SRE practice does, but over **virtual time**:

* a :class:`ServiceObjective` declares a target good-event ratio (e.g.
  "99% of queue waits complete within 120 virtual seconds") plus the
  burn windows that page;
* the :class:`SLOEngine` ingests good/bad samples, keeps per-window
  rolling counts over the world's virtual clock, and computes **burn
  rate** = observed error rate / error budget per window;
* an alert fires when *every* window burns past its threshold (the
  standard fast+slow multi-window AND rule, which suppresses blips
  without missing slow bleeds) and clears with the fast window —
  emitted as typed ``slo.alert_fired`` / ``slo.alert_cleared`` events
  on the EventLog, carrying the trace id of the most recent bad sample
  so the alert links straight to a flight record;
* every evaluation refreshes ``slo_*`` gauges
  (``slo_burn_rate{slo,window}``, ``slo_error_budget_remaining{slo}``,
  ``slo_alert_active{slo}``) and counters
  (``slo_events_total{slo,outcome}``, ``slo_alerts_total{slo}``), all
  pre-registered at attach time.

:func:`wire_slos` subscribes the engine to the event log so the fleet
scheduler and recovery engine feed it without holding a reference:
``scheduler.claimed`` (queue wait vs threshold), ``scheduler.task_done``
/ ``task_failed`` (success ratio), ``scheduler.claimed`` vs
``scheduler.lease_expired`` (lease-expiry rate), and
``recovery.succeeded`` / ``recovery.exhausted`` (retry budget).
Everything is seed-pure; a world that never attaches an engine pays
nothing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World
    from repro.util.logging import Event


@dataclass(frozen=True)
class BurnWindow:
    """One rolling window and the burn-rate multiple that pages on it."""

    window_s: float
    threshold: float

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")

    @property
    def label(self) -> str:
        return f"{self.window_s:g}s"


@dataclass(frozen=True)
class ServiceObjective:
    """One declarative SLO: a target ratio plus its paging windows."""

    name: str
    description: str
    objective: float  # target good-event ratio in (0, 1)
    windows: tuple[BurnWindow, ...] = (
        BurnWindow(300.0, 6.0),
        BurnWindow(1800.0, 3.0),
    )
    #: a window with fewer samples than this cannot page
    min_events: int = 20
    #: latency SLOs: the good/bad cut for wired wait samples
    threshold_s: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if not self.windows:
            raise ValueError("at least one burn window is required")

    @property
    def budget(self) -> float:
        """The error budget: tolerated bad-event ratio."""
        return 1.0 - self.objective


def default_slos(
    queue_wait_slo_s: float = 600.0,
    queue_wait_objective: float = 0.99,
) -> tuple[ServiceObjective, ...]:
    """The fleet's stock objectives (ISSUE: wait p99, success, retries, leases)."""
    return (
        ServiceObjective(
            name="queue_wait_p99",
            description=f"{queue_wait_objective:.0%} of claims wait <= "
                        f"{queue_wait_slo_s:g} virtual seconds",
            objective=queue_wait_objective,
            threshold_s=queue_wait_slo_s,
        ),
        ServiceObjective(
            name="transfer_success",
            description="99% of scheduled tasks complete successfully",
            objective=0.99,
        ),
        ServiceObjective(
            name="retry_budget",
            description="90% of recovery-loop attempts are first attempts",
            objective=0.90,
        ),
        ServiceObjective(
            name="lease_expiry",
            description="95% of claim events are grants, not lease expiries",
            objective=0.95,
        ),
    )


@dataclass
class _WindowState:
    """Rolling (time, total, bad) samples plus running sums for one window."""

    samples: deque = field(default_factory=deque)
    total: int = 0
    bad: int = 0

    def add(self, t: float, total: int, bad: int, horizon: float) -> None:
        self.samples.append((t, total, bad))
        self.total += total
        self.bad += bad
        self.prune(t, horizon)

    def prune(self, now: float, horizon: float) -> None:
        cutoff = now - horizon
        samples = self.samples
        while samples and samples[0][0] <= cutoff:
            _, total, bad = samples.popleft()
            self.total -= total
            self.bad -= bad

    def error_rate(self) -> float:
        return self.bad / self.total if self.total else 0.0


class _SloState:
    __slots__ = ("spec", "windows", "alert_active", "last_bad_trace",
                 "good_total", "bad_total", "alerts_fired")

    def __init__(self, spec: ServiceObjective) -> None:
        self.spec = spec
        self.windows = [_WindowState() for _ in spec.windows]
        self.alert_active = False
        self.last_bad_trace: str | None = None
        self.good_total = 0
        self.bad_total = 0
        self.alerts_fired = 0


class SLOEngine:
    """Rolling-window burn-rate evaluation over the virtual clock."""

    def __init__(
        self,
        world: "World",
        slos: Sequence[ServiceObjective] | None = None,
    ) -> None:
        self.world = world
        specs = tuple(slos) if slos is not None else default_slos()
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names in {names}")
        self._states: dict[str, _SloState] = {
            spec.name: _SloState(spec) for spec in specs
        }
        metrics = world.metrics
        self._burn_g = metrics.gauge(
            "slo_burn_rate",
            "Error-budget burn-rate multiple per rolling window",
            labelnames=("slo", "window"))
        self._budget_g = metrics.gauge(
            "slo_error_budget_remaining",
            "Fraction of the error budget left in the longest window",
            labelnames=("slo",))
        self._alert_g = metrics.gauge(
            "slo_alert_active", "1 while the SLO's burn-rate alert is firing",
            labelnames=("slo",))
        self._events_c = metrics.counter(
            "slo_events_total", "SLO samples ingested, by outcome",
            labelnames=("slo", "outcome"))
        self._alerts_c = metrics.counter(
            "slo_alerts_total", "Burn-rate alerts fired", labelnames=("slo",))
        for spec in specs:
            self._alert_g.set(0, slo=spec.name)
            self._events_c.inc(0, slo=spec.name, outcome="good")
            self._events_c.inc(0, slo=spec.name, outcome="bad")
            self._alerts_c.inc(0, slo=spec.name)
            self._budget_g.set(1.0, slo=spec.name)
            for w in spec.windows:
                self._burn_g.set(0.0, slo=spec.name, window=w.label)

    # -- declaration ------------------------------------------------------

    @property
    def slos(self) -> tuple[ServiceObjective, ...]:
        """The declared objectives."""
        return tuple(state.spec for state in self._states.values())

    def slo(self, name: str) -> ServiceObjective:
        """Look up one objective by name."""
        return self._states[name].spec

    # -- ingestion --------------------------------------------------------

    def record(self, name: str, good: int = 0, bad: int = 0,
               trace_id: str | None = None) -> None:
        """Ingest ``good``/``bad`` sample counts for one SLO and re-evaluate."""
        state = self._states.get(name)
        if state is None:
            raise KeyError(f"unknown SLO {name!r}")
        if good < 0 or bad < 0:
            raise ValueError("sample counts cannot be negative")
        total = good + bad
        if total == 0:
            return
        now = self.world.now
        state.good_total += good
        state.bad_total += bad
        if good:
            self._events_c.inc(good, slo=name, outcome="good")
        if bad:
            self._events_c.inc(bad, slo=name, outcome="bad")
            if trace_id is not None:
                state.last_bad_trace = trace_id
        for wstate, window in zip(state.windows, state.spec.windows):
            wstate.add(now, total, bad, window.window_s)
        self._evaluate(state)

    def observe_latency(self, name: str, value_s: float,
                        trace_id: str | None = None) -> None:
        """Ingest one latency sample against the SLO's ``threshold_s``."""
        spec = self._states[name].spec
        if spec.threshold_s is None:
            raise ValueError(f"SLO {name!r} has no latency threshold")
        if value_s <= spec.threshold_s:
            self.record(name, good=1)
        else:
            self.record(name, bad=1, trace_id=trace_id)

    # -- evaluation -------------------------------------------------------

    def _evaluate(self, state: _SloState) -> None:
        spec = state.spec
        budget = spec.budget
        now = self.world.now
        burning = True
        burns: list[float] = []
        for wstate, window in zip(state.windows, spec.windows):
            wstate.prune(now, window.window_s)
            burn = wstate.error_rate() / budget
            burns.append(burn)
            self._burn_g.set(burn, slo=spec.name, window=window.label)
            if wstate.total < spec.min_events or burn < window.threshold:
                burning = False
        longest = max(range(len(spec.windows)),
                      key=lambda i: spec.windows[i].window_s)
        remaining = 1.0 - state.windows[longest].error_rate() / budget
        self._budget_g.set(remaining, slo=spec.name)
        if burning and not state.alert_active:
            state.alert_active = True
            state.alerts_fired += 1
            self._alert_g.set(1, slo=spec.name)
            self._alerts_c.inc(slo=spec.name)
            self.world.emit(
                "slo.alert_fired", f"SLO {spec.name} is burning its error budget",
                slo=spec.name,
                objective=spec.objective,
                burn_rates={w.label: round(b, 4)
                            for w, b in zip(spec.windows, burns)},
                budget_remaining=round(remaining, 4),
                exemplar_trace=state.last_bad_trace,
            )
        elif state.alert_active:
            # clear with the fastest window: recovery shows there first
            fastest = min(range(len(spec.windows)),
                          key=lambda i: spec.windows[i].window_s)
            if burns[fastest] < spec.windows[fastest].threshold:
                state.alert_active = False
                self._alert_g.set(0, slo=spec.name)
                self.world.emit(
                    "slo.alert_cleared", f"SLO {spec.name} burn subsided",
                    slo=spec.name,
                    burn_rates={w.label: round(b, 4)
                                for w, b in zip(spec.windows, burns)},
                )

    # -- introspection ----------------------------------------------------

    def alert_active(self, name: str) -> bool:
        """Is the named SLO's alert currently firing?"""
        return self._states[name].alert_active

    def status(self) -> list[dict[str, Any]]:
        """One summary row per SLO (the mission-control view)."""
        now = self.world.now
        out = []
        for state in self._states.values():
            spec = state.spec
            burns = {}
            for wstate, window in zip(state.windows, spec.windows):
                wstate.prune(now, window.window_s)
                burns[window.label] = round(
                    wstate.error_rate() / spec.budget, 3)
            longest = max(range(len(spec.windows)),
                          key=lambda i: spec.windows[i].window_s)
            out.append({
                "slo": spec.name,
                "objective": spec.objective,
                "good": state.good_total,
                "bad": state.bad_total,
                "burn": burns,
                "budget_remaining": round(
                    1.0 - state.windows[longest].error_rate() / spec.budget, 3),
                "alert": state.alert_active,
                "alerts_fired": state.alerts_fired,
                "exemplar_trace": state.last_bad_trace,
            })
        return out


def wire_slos(world: "World", engine: SLOEngine) -> None:
    """Feed the engine from scheduler/recovery events on the EventLog.

    Only objectives actually declared on the engine are wired; a custom
    engine with a subset of :func:`default_slos` names works unchanged.
    """
    names = {spec.name for spec in engine.slos}
    has_wait = "queue_wait_p99" in names
    has_success = "transfer_success" in names
    has_retry = "retry_budget" in names
    has_lease = "lease_expiry" in names

    def on_event(ev: "Event") -> None:
        cat = ev.category
        if cat == "scheduler.claimed":
            trace = ev.fields.get("trace")
            if has_wait:
                wait = ev.fields.get("wait_s")
                if wait is not None:
                    engine.observe_latency("queue_wait_p99", wait, trace_id=trace)
            if has_lease:
                engine.record("lease_expiry", good=1)
        elif cat == "scheduler.task_done":
            if has_success:
                engine.record("transfer_success", good=1)
        elif cat == "scheduler.task_failed":
            if has_success:
                engine.record("transfer_success", bad=1,
                              trace_id=ev.fields.get("trace"))
        elif cat == "scheduler.lease_expired":
            if has_lease:
                engine.record("lease_expiry", bad=1,
                              trace_id=ev.fields.get("trace"))
        elif cat == "recovery.succeeded":
            if has_retry:
                attempts = int(ev.fields.get("attempts", 1))
                engine.record("retry_budget", good=1, bad=max(0, attempts - 1),
                              trace_id=ev.trace_id)
        elif cat == "recovery.exhausted":
            if has_retry:
                attempts = int(ev.fields.get("attempts", 1))
                engine.record("retry_budget", bad=max(1, attempts),
                              trace_id=ev.trace_id)

    world.log.subscribe(on_event)
