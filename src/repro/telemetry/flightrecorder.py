"""The per-job flight recorder: a black box for fleet transfers.

Operating a hosted transfer service means answering "what happened to
*this* job?" long after it ran — why was its queue wait at p99, which
worker crashed under it, how many restart markers did recovery absorb.
The :class:`FlightRecorder` assembles that answer passively: it
subscribes to the world's :class:`~repro.util.logging.EventLog` and
folds scheduler / recovery / transfer events into one causal
:class:`FlightRecord` per task — submit → admission verdict → queue
(with its fair-share lane virtual start tag) → claim/lease → dispatch →
every retry / restart-marker / breaker event → completion.

Correlation works in two steps.  Scheduler events carry an explicit
``task=`` field and bind directly.  Recovery and transfer events carry
no task field, but they fire *inside* the scheduler's claim span, so
their ``trace_id`` matches the trace the scheduler bound to the task at
dispatch time (the ``scheduler.dispatch`` event) — the recorder keeps a
``trace_id → task_id`` index and attaches them causally.  The submit
span's trace id becomes the record's primary :attr:`FlightRecord.trace_id`,
which is exactly the id histograms capture as exemplars, so a p99
bucket's exemplar resolves to a full flight record via :meth:`by_trace`.

The ring is bounded and seed-deterministic: ``capacity`` records are
retained, completed records evicted oldest-first before in-flight ones;
per-record event lists are bounded too (dropped counts are kept).  The
whole store dumps as JSONL — the black box CI uploads when a chaos
matrix job fails.  Nothing here touches the wall clock, and a world
without an attached recorder pays zero cost.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.util.logging import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World

#: default bound on retained records
DEFAULT_CAPACITY = 4096
#: default bound on events kept per record
DEFAULT_EVENTS_PER_RECORD = 256

#: event-category prefixes that land in flight records when trace-bound
_CAUSAL_PREFIXES = (
    "recovery.",
    "gridftp.transfer.",
    "globusonline.",
    "slo.",
    "archive.",
)


@dataclass(frozen=True, slots=True)
class FlightEvent:
    """One timeline entry inside a flight record."""

    time: float
    kind: str
    detail: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {"time": self.time, "kind": self.kind, "detail": dict(self.detail)}


@dataclass
class FlightRecord:
    """The assembled causal history of one scheduled task."""

    task_id: str
    user: str = ""
    job_id: str = ""
    src_endpoint: str = ""
    dst_endpoint: str = ""
    #: the submit span's trace id — the exemplar key for this record
    trace_id: str = ""
    #: home scheduler shard (sharded control plane only; "" unsharded)
    shard: str = ""
    #: every trace bound to this task (submit trace + one per dispatch)
    trace_ids: list[str] = field(default_factory=list)
    status: str = "queued"
    size_hint: int = 0
    delivered_bytes: int = 0
    attempts: int = 0
    #: recovery-loop faults absorbed while this task executed
    recovery_faults: int = 0
    #: pooled control channels reused while this task executed
    session_reuses: int = 0
    #: restart markers discarded/truncated while this task executed
    marker_corruptions: int = 0
    lane_vtime: float | None = None
    submitted_at: float | None = None
    claimed_at: float | None = None
    completed_at: float | None = None
    error: str = ""
    events: list[FlightEvent] = field(default_factory=list)
    dropped_events: int = 0

    @property
    def complete(self) -> bool:
        """The record covers the whole lifecycle (terminal state reached)."""
        return (
            self.status in ("done", "failed")
            and self.submitted_at is not None
            and self.completed_at is not None
        )

    @property
    def queue_wait_s(self) -> float:
        """Virtual seconds between submit and first claim (0 if unclaimed)."""
        if self.submitted_at is None or self.claimed_at is None:
            return 0.0
        return self.claimed_at - self.submitted_at

    @property
    def total_s(self) -> float:
        """Virtual seconds from submit to completion (0 while in flight)."""
        if self.submitted_at is None or self.completed_at is None:
            return 0.0
        return self.completed_at - self.submitted_at

    def events_of(self, kind: str) -> list[FlightEvent]:
        """Timeline entries whose kind starts with ``kind``."""
        return [ev for ev in self.events if ev.kind.startswith(kind)]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict (the JSONL dump row)."""
        return {
            "task_id": self.task_id,
            "user": self.user,
            "job_id": self.job_id,
            "src_endpoint": self.src_endpoint,
            "dst_endpoint": self.dst_endpoint,
            "trace_id": self.trace_id,
            "shard": self.shard,
            "trace_ids": list(self.trace_ids),
            "status": self.status,
            "size_hint": self.size_hint,
            "delivered_bytes": self.delivered_bytes,
            "attempts": self.attempts,
            "recovery_faults": self.recovery_faults,
            "session_reuses": self.session_reuses,
            "marker_corruptions": self.marker_corruptions,
            "lane_vtime": self.lane_vtime,
            "submitted_at": self.submitted_at,
            "claimed_at": self.claimed_at,
            "completed_at": self.completed_at,
            "queue_wait_s": self.queue_wait_s,
            "total_s": self.total_s,
            "error": self.error,
            "dropped_events": self.dropped_events,
            "events": [ev.to_dict() for ev in self.events],
        }


class FlightRecorder:
    """Event-log subscriber assembling bounded per-task flight records."""

    def __init__(
        self,
        world: "World",
        capacity: int = DEFAULT_CAPACITY,
        events_per_record: int = DEFAULT_EVENTS_PER_RECORD,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if events_per_record < 1:
            raise ValueError("events_per_record must be >= 1")
        self.world = world
        self.capacity = capacity
        self.events_per_record = events_per_record
        self._records: dict[str, FlightRecord] = {}
        self._by_trace: dict[str, str] = {}
        #: task ids that reached a terminal state, in completion order
        self._completed_order: deque[str] = deque()
        #: admission rejections (no task id exists for these)
        self.rejections: deque[FlightEvent] = deque(maxlen=256)
        metrics = world.metrics
        self._records_g = metrics.gauge(
            "flightrecorder_records", "Flight records currently retained")
        self._evicted_c = metrics.counter(
            "flightrecorder_evicted_total", "Flight records dropped by the ring bound")
        self._records_g.set(0)
        self._evicted_c.inc(0)
        world.log.subscribe(self._on_event)
        self._attached = True

    # -- lifecycle ---------------------------------------------------------

    def detach(self) -> None:
        """Stop recording (the assembled records stay queryable)."""
        if self._attached:
            self.world.log.unsubscribe(self._on_event)
            self._attached = False

    def __len__(self) -> int:
        return len(self._records)

    # -- assembly ----------------------------------------------------------

    def _record_for(self, task_id: str) -> FlightRecord:
        rec = self._records.get(task_id)
        if rec is None:
            rec = self._records[task_id] = FlightRecord(task_id=task_id)
            self._evict()
            self._records_g.set(len(self._records))
        return rec

    def _evict(self) -> None:
        while len(self._records) > self.capacity:
            victim = None
            while self._completed_order:
                candidate = self._completed_order.popleft()
                if candidate in self._records:
                    victim = candidate
                    break
            if victim is None:
                # nothing terminal to drop: evict the oldest record
                victim = next(iter(self._records))
            self._drop(victim)
            self._evicted_c.inc()

    def _drop(self, task_id: str) -> None:
        rec = self._records.pop(task_id, None)
        if rec is None:
            return
        for tid in rec.trace_ids:
            if self._by_trace.get(tid) == task_id:
                del self._by_trace[tid]

    def _bind_trace(self, rec: FlightRecord, trace_id: str | None) -> None:
        if trace_id and trace_id not in rec.trace_ids:
            rec.trace_ids.append(trace_id)
            self._by_trace[trace_id] = rec.task_id

    def _append(self, rec: FlightRecord, ev: Event) -> None:
        if len(rec.events) >= self.events_per_record:
            rec.dropped_events += 1
            return
        rec.events.append(FlightEvent(ev.time, ev.category, dict(ev.fields)))

    def _on_event(self, ev: Event) -> None:
        cat = ev.category
        if cat.startswith("scheduler."):
            self._on_scheduler_event(ev)
            return
        if cat.startswith(_CAUSAL_PREFIXES):
            tid = ev.trace_id
            if tid is not None:
                task_id = self._by_trace.get(tid)
                if task_id is not None:
                    rec = self._records[task_id]
                    self._append(rec, ev)
                    if cat == "recovery.fault":
                        rec.recovery_faults += 1
                    elif cat in ("recovery.marker_corrupt",
                                 "recovery.marker_truncated"):
                        rec.marker_corruptions += 1
                    elif cat == "globusonline.session.reused":
                        rec.session_reuses += 1

    def _on_scheduler_event(self, ev: Event) -> None:
        fields = ev.fields
        if ev.category == "scheduler.rejected":
            self.rejections.append(
                FlightEvent(ev.time, ev.category, dict(fields)))
            return
        task_id = fields.get("task")
        if not task_id:
            return
        rec = self._record_for(task_id)
        self._append(rec, ev)
        cat = ev.category
        if cat == "scheduler.submitted":
            rec.user = fields.get("user", rec.user)
            rec.job_id = fields.get("job", rec.job_id)
            rec.size_hint = fields.get("bytes", rec.size_hint)
            rec.src_endpoint = fields.get("src", rec.src_endpoint)
            rec.dst_endpoint = fields.get("dst", rec.dst_endpoint)
            rec.lane_vtime = fields.get("lane_vtime", rec.lane_vtime)
            rec.shard = str(fields.get("shard", rec.shard))
            rec.submitted_at = ev.time
            if ev.trace_id is not None and not rec.trace_id:
                rec.trace_id = ev.trace_id
            self._bind_trace(rec, ev.trace_id)
        elif cat == "scheduler.claimed":
            if rec.claimed_at is None:
                rec.claimed_at = ev.time
            rec.attempts = fields.get("attempt", rec.attempts)
            rec.status = "claimed"
        elif cat == "scheduler.dispatch":
            # the claim span's trace: recovery/transfer events of this
            # execution carry it, and bind causally through it
            self._bind_trace(rec, ev.trace_id)
        elif cat == "scheduler.task_done":
            rec.status = "done"
            rec.completed_at = ev.time
            rec.delivered_bytes = fields.get("bytes", rec.delivered_bytes)
            rec.attempts = fields.get("attempts", rec.attempts)
            self._completed_order.append(rec.task_id)
        elif cat == "scheduler.task_failed":
            rec.status = "failed"
            rec.completed_at = ev.time
            rec.error = str(fields.get("error", ""))
            self._completed_order.append(rec.task_id)
        elif cat == "scheduler.lease_expired":
            rec.status = "queued"

    # -- queries -----------------------------------------------------------

    def record(self, task_id: str) -> FlightRecord | None:
        """The flight record for one task id, or None."""
        return self._records.get(task_id)

    def by_trace(self, trace_id: str) -> FlightRecord | None:
        """Resolve any bound trace id (e.g. a metric exemplar) to its record."""
        task_id = self._by_trace.get(trace_id)
        return self._records.get(task_id) if task_id is not None else None

    def records(self) -> Iterator[FlightRecord]:
        """Every retained record, oldest first."""
        return iter(self._records.values())

    def for_user(self, user: str) -> list[FlightRecord]:
        """Records belonging to one user."""
        return [r for r in self._records.values() if r.user == user]

    def for_endpoint(self, endpoint: str) -> list[FlightRecord]:
        """Records touching one endpoint (as source or destination)."""
        return [
            r for r in self._records.values()
            if endpoint in (r.src_endpoint, r.dst_endpoint)
        ]

    def slowest(self, n: int = 10, by: str = "total_s") -> list[FlightRecord]:
        """The ``n`` slowest records (``by`` = total_s or queue_wait_s)."""
        if by not in ("total_s", "queue_wait_s"):
            raise ValueError("by must be 'total_s' or 'queue_wait_s'")
        ranked = sorted(
            self._records.values(),
            key=lambda r: (-getattr(r, by), r.task_id),
        )
        return ranked[:n]

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        """Every record as JSON lines — the black-box dump."""
        return "\n".join(
            json.dumps(rec.to_dict(), sort_keys=True, default=str)
            for rec in self._records.values()
        )

    def dump(self, path: str) -> int:
        """Write :meth:`to_jsonl` to ``path``; returns records written."""
        text = self.to_jsonl()
        with open(path, "w") as fh:
            fh.write(text + ("\n" if text else ""))
        return len(self._records)
