"""Quantitative metrics with Prometheus-style text exposition.

The paper's Figure 1 is built from per-transfer usage reports; a
production deployment of this reproduction needs the same numbers as
live series, not post-hoc log queries.  A :class:`MetricsRegistry`
holds three instrument kinds:

* :class:`Counter` — monotone totals (``bytes_transferred_total``);
* :class:`Gauge` — current levels (``active_data_channels``), with a
  high-water mark so tests can assert a level was reached;
* :class:`Histogram` — fixed-bucket distributions
  (``transfer_duration_seconds``), cumulative-``le`` semantics exactly
  as Prometheus defines them.

Labels are passed as keyword arguments and stored as frozen
``(value, ...)`` tuples in declaration order, so series identity is
hashable and deterministic.  :meth:`MetricsRegistry.render_prometheus`
emits the standard ``text/plain; version=0.0.4`` exposition format;
:meth:`MetricsRegistry.render_table` reuses
:func:`repro.metrics.report.render_table` for the human view benchmarks
print.

Metric name conventions used across the codebase: ``*_total`` for
counters, ``*_seconds`` for time histograms, no ``repro_`` prefix (the
registry is already scoped to one world).

Histograms optionally capture **exemplars** (OpenMetrics syntax): an
``observe(value, exemplar=trace_id)`` call remembers the trace id of
the observation per bucket (latest wins — deterministic under seeded
replay), so a p99 bucket in the exposition links straight to the flight
record of the job that landed there.  Exemplar syntax is emitted only
on bucket lines that actually hold one; a registry with no exemplars
renders byte-identical to before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

#: default buckets for virtual-time operation latencies (seconds)
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 1800.0, 3600.0,
)


class MetricError(ValueError):
    """Inconsistent metric declaration or use."""


@dataclass(frozen=True)
class Sample:
    """One exposed series value (helper for rendering and tests)."""

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


def _freeze_labels(labelnames: tuple[str, ...], labels: dict[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {labelnames}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in labelnames)


@dataclass(frozen=True)
class Exemplar:
    """One trace-linked observation attached to a histogram bucket."""

    trace_id: str
    value: float


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline (quotes are legal there)
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _series(name: str, labelnames: tuple[str, ...], labelvalues: tuple[str, ...],
            value: float) -> str:
    if not labelnames:
        return f"{name} {_fmt_value(value)}"
    pairs = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in zip(labelnames, labelvalues)
    )
    return f"{name}{{{pairs}}} {_fmt_value(value)}"


class _Metric:
    """Shared naming/label plumbing for the three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.labelnames: tuple[str, ...] = tuple(labelnames)

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if not labels and not self.labelnames:
            return ()
        return _freeze_labels(self.labelnames, labels)

    def samples(self) -> list[Sample]:  # pragma: no cover - overridden
        raise NotImplementedError

    def expose(self) -> list[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class CounterChild:
    """A counter bound to one labelset: ``inc`` with no label freezing.

    Hot paths (the transfer engine runs thousands of metric updates per
    wall-clock second) resolve labels once via :meth:`Counter.labels`
    and keep the child; each ``inc`` is then a single dict update.
    """

    __slots__ = ("_values", "_key", "_name")

    def __init__(self, counter: "Counter", key: tuple[str, ...]) -> None:
        self._values = counter._values
        self._key = key
        self._name = counter.name

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the bound series."""
        if amount < 0:
            raise MetricError(f"counter {self._name} cannot decrease")
        self._values[self._key] = self._values.get(self._key, 0.0) + amount


class HistogramChild:
    """A histogram bound to one labelset: ``observe`` with no freezing."""

    __slots__ = ("_histogram", "_key", "_counts")

    def __init__(self, histogram: "Histogram", key: tuple[str, ...]) -> None:
        self._histogram = histogram
        self._key = key
        self._counts = histogram._counts.setdefault(
            key, [0] * (len(histogram.buckets) + 1)
        )

    def observe(self, value: float, exemplar: str | None = None) -> None:
        """Record one observation on the bound series."""
        h, key = self._histogram, self._key
        for i, bound in enumerate(h.buckets):
            if value <= bound:
                self._counts[i] += 1
                break
        else:
            i = len(h.buckets)
            self._counts[-1] += 1
        h._sums[key] = h._sums.get(key, 0.0) + value
        h._totals[key] = h._totals.get(key, 0) + 1
        if exemplar is not None:
            h._exemplars.setdefault(key, {})[i] = Exemplar(exemplar, value)


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def labels(self, **labels: Any) -> CounterChild:
        """A bound child for one labelset (O(1) ``inc`` afterwards)."""
        return CounterChild(self, self._key(labels))

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to one labelled series."""
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current total for one labelled series (0 if never touched)."""
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labelled series."""
        return sum(self._values.values())

    def samples(self) -> list[Sample]:
        return [
            Sample(self.name, tuple(zip(self.labelnames, key)), value)
            for key, value in sorted(self._values.items())
        ]

    def expose(self) -> list[str]:
        return [
            _series(self.name, self.labelnames, key, value)
            for key, value in sorted(self._values.items())
        ]


class GaugeChild:
    """A gauge bound to one labelset: ``set``/``inc``/``dec`` without
    label freezing (same high-water bookkeeping as the parent)."""

    __slots__ = ("_values", "_high_water", "_key")

    def __init__(self, gauge: "Gauge", key: tuple[str, ...]) -> None:
        self._values = gauge._values
        self._high_water = gauge._high_water
        self._key = key

    def set(self, value: float) -> None:
        """Set the bound series to ``value``."""
        value = float(value)
        self._values[self._key] = value
        self._high_water[self._key] = max(self._high_water.get(self._key, value), value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the bound series."""
        self.set(self._values.get(self._key, 0.0) + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the bound series."""
        self.inc(-amount)


class Gauge(_Metric):
    """A level that can go up and down; remembers its high-water mark."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}
        self._high_water: dict[tuple[str, ...], float] = {}

    def labels(self, **labels: Any) -> GaugeChild:
        """A bound child for one labelset (O(1) updates afterwards)."""
        return GaugeChild(self, self._key(labels))

    def set(self, value: float, **labels: Any) -> None:
        """Set one labelled series to ``value``."""
        key = self._key(labels)
        self._values[key] = float(value)
        self._high_water[key] = max(self._high_water.get(key, float(value)), float(value))

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` to one labelled series."""
        self.set(self._values.get(self._key(labels), 0.0) + amount, **labels)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Subtract ``amount`` from one labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        """Current level for one labelled series (0 if never touched)."""
        return self._values.get(self._key(labels), 0.0)

    def high_water(self, **labels: Any) -> float:
        """Highest level a labelled series ever reached."""
        return self._high_water.get(self._key(labels), 0.0)

    def samples(self) -> list[Sample]:
        return [
            Sample(self.name, tuple(zip(self.labelnames, key)), value)
            for key, value in sorted(self._values.items())
        ]

    def expose(self) -> list[str]:
        return [
            _series(self.name, self.labelnames, key, value)
            for key, value in sorted(self._values.items())
        ]


class Histogram(_Metric):
    """A fixed-bucket distribution with Prometheus ``le`` semantics.

    An observation ``v`` lands in every bucket whose upper bound
    satisfies ``v <= le`` (bounds are inclusive); ``+Inf`` is implicit.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError(f"histogram {name} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"histogram {name} has duplicate bucket bounds")
        self.buckets = bounds
        # per-labelset: per-bucket (non-cumulative) counts, +Inf overflow, sum, count
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}
        self._totals: dict[tuple[str, ...], int] = {}
        # per-labelset: bucket index -> latest Exemplar (sampling rule:
        # last observation into a bucket keeps its exemplar)
        self._exemplars: dict[tuple[str, ...], dict[int, Exemplar]] = {}

    def labels(self, **labels: Any) -> HistogramChild:
        """A bound child for one labelset (O(1) ``observe`` afterwards)."""
        return HistogramChild(self, self._key(labels))

    def observe(self, value: float, exemplar: str | None = None, **labels: Any) -> None:
        """Record one observation (``exemplar`` is an optional trace id)."""
        key = self._key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
                break
        else:
            i = len(self.buckets)
            counts[-1] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1
        if exemplar is not None:
            self._exemplars.setdefault(key, {})[i] = Exemplar(exemplar, value)

    def count(self, **labels: Any) -> int:
        """Observations recorded for one labelled series."""
        return self._totals.get(self._key(labels), 0)

    def sum(self, **labels: Any) -> float:
        """Sum of observations for one labelled series."""
        return self._sums.get(self._key(labels), 0.0)

    def bucket_counts(self, **labels: Any) -> dict[float, int]:
        """Cumulative ``{le: count}`` (including ``inf``) for one series."""
        key = self._key(labels)
        counts = self._counts.get(key, [0] * (len(self.buckets) + 1))
        out: dict[float, int] = {}
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out[bound] = running
        out[float("inf")] = running + counts[-1]
        return out

    def exemplars(self, **labels: Any) -> dict[float, Exemplar]:
        """``{le: exemplar}`` for buckets holding one (``inf`` for overflow)."""
        key = self._key(labels)
        stored = self._exemplars.get(key, {})
        bounds = self.buckets + (float("inf"),)
        return {bounds[i]: ex for i, ex in sorted(stored.items())}

    def samples(self) -> list[Sample]:
        out = []
        for key in sorted(self._totals):
            labels = tuple(zip(self.labelnames, key))
            out.append(Sample(self.name + "_count", labels, self._totals[key]))
            out.append(Sample(self.name + "_sum", labels, self._sums[key]))
        return out

    def _exemplar_suffix(self, key: tuple[str, ...], index: int) -> str:
        ex = self._exemplars.get(key, {}).get(index)
        if ex is None:
            return ""
        return (
            f' # {{trace_id="{_escape_label_value(ex.trace_id)}"}}'
            f" {_fmt_value(ex.value)}"
        )

    def expose(self) -> list[str]:
        lines = []
        bucket_labelnames = self.labelnames + ("le",)
        for key in sorted(self._totals):
            running = 0
            counts = self._counts[key]
            for i, (bound, n) in enumerate(zip(self.buckets, counts)):
                running += n
                lines.append(
                    _series(self.name + "_bucket", bucket_labelnames,
                            key + (_fmt_value(bound),), running)
                    + self._exemplar_suffix(key, i)
                )
            lines.append(
                _series(self.name + "_bucket", bucket_labelnames,
                        key + ("+Inf",), running + counts[-1])
                + self._exemplar_suffix(key, len(self.buckets))
            )
            lines.append(_series(self.name + "_sum", self.labelnames, key, self._sums[key]))
            lines.append(_series(self.name + "_count", self.labelnames, key,
                                 self._totals[key]))
        return lines


class MetricsRegistry:
    """One world's metric namespace.

    ``counter``/``gauge``/``histogram`` are get-or-create: instrumented
    code calls them at the point of use and shares series with every
    other caller that declares the same name, provided kind and label
    names agree (a mismatch raises :class:`MetricError` — two meanings
    for one name is a bug).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def __iter__(self) -> Iterator[_Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> _Metric | None:
        """The registered metric, or None."""
        return self._metrics.get(name)

    def _declare(self, cls, name: str, help: str, labelnames: Sequence[str],
                 **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"{name} already registered as a {existing.kind}, not a {cls.kind}"
                )
            if existing.labelnames != tuple(labelnames):
                raise MetricError(
                    f"{name} registered with labels {existing.labelnames}, "
                    f"got {tuple(labelnames)}"
                )
            return existing
        metric = cls(name, help, labelnames=labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        """Get or create a counter."""
        return self._declare(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        """Get or create a gauge."""
        return self._declare(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        metric = self._declare(Histogram, name, help, labelnames, buckets=buckets)
        assert isinstance(metric, Histogram)
        if metric.buckets != tuple(sorted(float(b) for b in buckets)):
            raise MetricError(f"{name} registered with different buckets")
        return metric

    # -- exposition -----------------------------------------------------------

    def samples(self) -> list[Sample]:
        """Every series value, for programmatic scraping in tests."""
        out: list[Sample] = []
        for name in sorted(self._metrics):
            out.extend(self._metrics[name].samples())
        return out

    def render_prometheus(self) -> str:
        """The standard text exposition format (``# HELP``/``# TYPE`` + series)."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def render_table(self, caption: str = "Metrics") -> str:
        """Human-readable table via :mod:`repro.metrics.report`."""
        from repro.metrics.report import render_metrics

        return render_metrics(self, caption=caption)
