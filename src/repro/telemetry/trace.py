"""End-to-end trace propagation over the virtual clock.

A transfer in this reproduction crosses many components — GCMU install,
MyProxy issuance, control channels on two servers, a DCSC exchange, the
data channel, Globus Online's retry loop — and the paper's operational
story (Figure 1 usage reports, ``112 Perf Marker`` monitoring, Section
VI fault recovery) depends on seeing that whole causal chain.  The
:class:`Tracer` gives every world a distributed-tracing view of itself:

* a :class:`TraceContext` (trace id + span id + parent) identifies where
  in the causal tree work is happening;
* :meth:`Tracer.span` is a context manager that opens a child span of
  whatever span is currently active (or starts a fresh trace at the
  root), records virtual start/end times, and marks spans that exit via
  an exception as errored;
* every :meth:`repro.sim.world.World.emit` call stamps the active
  context onto the event, so the flat event log and the span tree
  cross-reference each other;
* :class:`Trace` reconstructs the parent/child timeline for one trace
  id — the "what happened to transfer X" query.

Because all endpoints of a simulated transfer share one world, context
propagates across "processes" for free: a server handling a command
inside a client's control-channel span becomes its child, exactly as a
propagated trace header would behave in a real deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass(slots=True)
class TraceContext:
    """Where in the causal tree a piece of work happens.

    Logically immutable; unfrozen because frozen-dataclass construction
    pays object.__setattr__ per field and one context is minted for
    every span on the fleet hot path.
    """

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @property
    def is_root(self) -> bool:
        """True for the first span of a trace."""
        return self.parent_id is None


@dataclass(slots=True)
class Span:
    """One timed operation inside a trace."""

    context: TraceContext
    name: str
    start_time: float
    end_time: float | None = None
    status: str = "ok"
    error: str = ""
    fields: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Virtual seconds between start and end (0 while still open)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        flag = "" if self.status == "ok" else f" !{self.status}"
        return f"{self.name} [{self.duration_s:.3f}s]{flag} {kv}".rstrip()


@dataclass
class TimelineNode:
    """One span plus its children, as reconstructed by :meth:`Trace.timeline`."""

    span: Span
    children: list["TimelineNode"] = field(default_factory=list)

    def walk(self) -> Iterator[tuple[int, Span]]:
        """(depth, span) pairs in depth-first start order."""
        yield from self._walk(0)

    def _walk(self, depth: int) -> Iterator[tuple[int, Span]]:
        yield depth, self.span
        for child in self.children:
            yield from child._walk(depth + 1)


class Trace:
    """All spans sharing one trace id, with tree queries."""

    def __init__(self, trace_id: str, spans: list[Span]) -> None:
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda s: (s.start_time, s.context.span_id))

    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str) -> list[Span]:
        """Spans whose name starts with ``name``, in start order."""
        return [s for s in self.spans if s.name.startswith(name)]

    def span_by_id(self, span_id: str) -> Span | None:
        """Lookup one span by id."""
        for s in self.spans:
            if s.context.span_id == span_id:
                return s
        return None

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return [s for s in self.spans if s.context.parent_id == span.context.span_id]

    def timeline(self) -> list[TimelineNode]:
        """The causal tree: root nodes (usually one) with nested children."""
        nodes = {s.context.span_id: TimelineNode(span=s) for s in self.spans}
        roots: list[TimelineNode] = []
        for s in self.spans:
            node = nodes[s.context.span_id]
            parent = s.context.parent_id
            if parent is not None and parent in nodes:
                nodes[parent].children.append(node)
            else:
                roots.append(node)
        return roots

    @property
    def duration_s(self) -> float:
        """Virtual span of the whole trace (first start to last end)."""
        if not self.spans:
            return 0.0
        start = min(s.start_time for s in self.spans)
        end = max(s.end_time if s.end_time is not None else s.start_time for s in self.spans)
        return end - start

    def render(self) -> str:
        """An indented text timeline (durations are virtual seconds)."""
        lines = [f"trace {self.trace_id} ({len(self.spans)} spans, {self.duration_s:.3f}s)"]
        for root in self.timeline():
            for depth, span in root.walk():
                mark = "" if span.status == "ok" else f"  !{span.status}: {span.error}"
                lines.append(
                    f"{'  ' * (depth + 1)}{span.name}"
                    f"  t={span.start_time:.3f} +{span.duration_s:.3f}s{mark}"
                )
        return "\n".join(lines)


class Tracer:
    """Per-world span factory and store.

    ``span_capacity`` bounds how many *completed* spans are retained
    (oldest evicted first), mirroring the event log's ring buffer: a
    fleet-scale run opens tens of thousands of spans, and an unbounded
    store makes every GC pass — and therefore every transfer — pay for
    all of history.  The default (None) keeps everything.
    """

    def __init__(self, world: "World", span_capacity: int | None = None) -> None:
        if span_capacity is not None and span_capacity < 1:
            raise ValueError("span_capacity must be >= 1")
        self._world = world
        self._stack: list[Span] = []
        self._spans: list[Span] = []
        self._capacity = span_capacity
        self._trace_seq = 0
        self._span_seq = 0
        # free list of _SpanHandle objects: a handle is dead the moment
        # its ``with`` block exits, so recycling them spares one
        # allocation per span on the fleet hot path
        self._handle_pool: list["_SpanHandle"] = []

    def _evict(self) -> None:
        # amortized: let the store grow to 2x capacity, then trim the
        # oldest completed spans in one pass (open spans stay visible)
        cap = self._capacity
        if cap is None or len(self._spans) <= 2 * cap:
            return
        completed_over = len(self._spans) - cap
        kept: list[Span] = []
        for s in self._spans:
            if completed_over > 0 and s.end_time is not None:
                completed_over -= 1
                continue
            kept.append(s)
        self._spans = kept

    # -- recording -----------------------------------------------------------

    @property
    def current(self) -> TraceContext | None:
        """The active span's context, or None outside any span."""
        return self._stack[-1].context if self._stack else None

    def span(self, name: str, **fields: Any) -> "_SpanHandle":
        """Open a child span of the active span (or a new root trace).

        Returns a context manager yielding the :class:`Span`.  Exceptions
        propagate, but mark the span ``status="error"`` with the
        exception recorded, so fault-interrupted work is visible in the
        timeline.  (A plain handle object, not a generator: span entry
        runs on every control-channel command, and the ``contextmanager``
        machinery was a measurable share of fleet drain time.)
        """
        stack = self._stack
        if stack:
            parent = stack[-1].context
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            self._trace_seq += 1
            trace_id = f"trace-{self._trace_seq:04d}"
            parent_id = None
        self._span_seq += 1
        ctx = TraceContext(
            trace_id=trace_id, span_id=f"span-{self._span_seq:05d}", parent_id=parent_id
        )
        span = Span(context=ctx, name=name, start_time=self._world.now, fields=fields)
        stack.append(span)
        self._spans.append(span)
        pool = self._handle_pool
        if pool:
            handle = pool.pop()
            handle._span = span
            return handle
        return _SpanHandle(self, span)

    # -- queries --------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Every recorded span, in open order."""
        return list(self._spans)

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for s in self._spans:
            seen.setdefault(s.context.trace_id, None)
        return list(seen)

    def trace(self, trace_id: str) -> Trace:
        """The :class:`Trace` for one id (empty if unknown)."""
        return Trace(trace_id, [s for s in self._spans if s.context.trace_id == trace_id])

    def traces(self) -> list[Trace]:
        """All traces, in first-seen order."""
        return [self.trace(tid) for tid in self.trace_ids()]

    def last_trace(self) -> Trace | None:
        """The most recently started trace, or None."""
        ids = self.trace_ids()
        return self.trace(ids[-1]) if ids else None

    def clear(self) -> None:
        """Drop recorded spans (open spans stay on the stack)."""
        self._spans = [s for s in self._spans if s.end_time is None]


class _SpanHandle:
    """Context manager closing one span (see :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: Tracer, span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if exc is not None:
            span.status = "error"
            span.error = f"{type(exc).__name__}: {exc}"
        tracer = self._tracer
        end = tracer._world.now
        span.end_time = end
        tracer._stack.pop()
        cap = tracer._capacity
        if cap is not None and len(tracer._spans) > 2 * cap:
            tracer._evict()
        slow = getattr(tracer._world, "slow_ops", None)
        if slow is not None and end - span.start_time >= slow.threshold_s:
            slow.record(span.name, span.start_time, end - span.start_time,
                        span_id=span.context.span_id)
        self._span = None  # drop the reference before pooling the handle
        if len(tracer._handle_pool) < 64:
            tracer._handle_pool.append(self)
        return False
