"""Profiling hooks: where does virtual time go?

Benchmarks that claim "the hot path got faster" need attribution, not
just end-to-end totals.  Two lightweight tools:

* :func:`timed` — a decorator for methods of world-owning objects
  (anything with a ``.world``).  Each call is recorded into the
  ``op_virtual_seconds`` histogram labelled by category, and into the
  world's :class:`SlowOpLog` when it exceeds the slow threshold.
* :class:`SlowOpLog` — a bounded per-world record of operations (and
  tracer spans) whose virtual duration crossed a threshold, so a test
  can assert e.g. "no single control-channel exchange took more than a
  second of virtual time".
"""

from __future__ import annotations

import functools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, TypeVar

F = TypeVar("F", bound=Callable[..., Any])

#: histogram fed by :func:`timed`
OP_HISTOGRAM = "op_virtual_seconds"


@dataclass(frozen=True)
class SlowOp:
    """One operation that exceeded the slow threshold."""

    name: str
    start_time: float
    duration_s: float
    span_id: str | None = None


class SlowOpLog:
    """Bounded record of slow operations for one world."""

    def __init__(self, threshold_s: float = 1.0, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_s = threshold_s
        self._entries: deque[SlowOp] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(
        self, name: str, start_time: float, duration_s: float, span_id: str | None = None
    ) -> bool:
        """Record the op if it crossed the threshold; True if recorded."""
        if duration_s < self.threshold_s:
            return False
        self._entries.append(
            SlowOp(name=name, start_time=start_time, duration_s=duration_s, span_id=span_id)
        )
        self.total_recorded += 1
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[SlowOp]:
        return iter(self._entries)

    def entries(self, name: str | None = None) -> list[SlowOp]:
        """Recorded ops, optionally filtered by name prefix."""
        if name is None:
            return list(self._entries)
        return [op for op in self._entries if op.name.startswith(name)]

    def slowest(self, n: int = 10) -> list[SlowOp]:
        """The ``n`` slowest recorded ops, slowest first."""
        return sorted(self._entries, key=lambda op: -op.duration_s)[:n]

    def clear(self) -> None:
        """Drop recorded entries (threshold and capacity stay)."""
        self._entries.clear()


def timed(category: str) -> Callable[[F], F]:
    """Record a method's virtual duration under ``category``.

    The wrapped function's first argument must carry a ``.world`` (or
    *be* a world); calls made before telemetry exists, or on objects
    without a world, run unrecorded rather than failing.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            world = None
            if args:
                world = getattr(args[0], "world", None)
                if world is None and hasattr(args[0], "metrics") and hasattr(args[0], "now"):
                    world = args[0]
            metrics = getattr(world, "metrics", None)
            if metrics is None:
                return fn(*args, **kwargs)
            start = world.now
            try:
                return fn(*args, **kwargs)
            finally:
                duration = world.now - start
                metrics.histogram(
                    OP_HISTOGRAM,
                    "Virtual seconds spent per instrumented operation",
                    labelnames=("category",),
                ).observe(duration, category=category)
                slow = getattr(world, "slow_ops", None)
                if slow is not None:
                    slow.record(f"{category}:{fn.__qualname__}", start, duration)

        return wrapper  # type: ignore[return-value]

    return decorate
