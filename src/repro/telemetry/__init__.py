"""Telemetry: tracing, metrics, profiling, and fleet observability.

Five pillars (see DESIGN.md "Observability"):

* :mod:`repro.telemetry.trace` — trace/span propagation over the
  virtual clock, with causal-tree reconstruction per transfer;
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms with Prometheus-style text exposition and optional
  trace-id exemplars per bucket;
* :mod:`repro.telemetry.profiling` — the ``@timed`` decorator and the
  per-world slow-operation log;
* :mod:`repro.telemetry.flightrecorder` — the bounded per-job black
  box: causal records assembled from scheduler/recovery/transfer
  events, keyed by trace id;
* :mod:`repro.telemetry.slo` — declarative objectives with
  multi-window burn-rate alerting over virtual time.

Every :class:`~repro.sim.world.World` owns the first three as
``world.tracer``, ``world.metrics``, and ``world.slow_ops``; the last
two attach on demand via ``world.enable_observability()``.
"""

from repro.telemetry.flightrecorder import FlightEvent, FlightRecord, FlightRecorder
from repro.telemetry.metrics import (
    Counter,
    Exemplar,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Sample,
)
from repro.telemetry.profiling import SlowOp, SlowOpLog, timed
from repro.telemetry.slo import (
    BurnWindow,
    ServiceObjective,
    SLOEngine,
    default_slos,
    wire_slos,
)
from repro.telemetry.trace import Span, Trace, TraceContext, Tracer, TimelineNode

__all__ = [
    "BurnWindow",
    "Counter",
    "Exemplar",
    "FlightEvent",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "SLOEngine",
    "Sample",
    "ServiceObjective",
    "SlowOp",
    "SlowOpLog",
    "Span",
    "TimelineNode",
    "Trace",
    "TraceContext",
    "Tracer",
    "default_slos",
    "timed",
    "wire_slos",
]
