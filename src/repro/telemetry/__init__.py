"""Telemetry: tracing, metrics, and profiling for a world.

Three pillars (see DESIGN.md "Observability"):

* :mod:`repro.telemetry.trace` — trace/span propagation over the
  virtual clock, with causal-tree reconstruction per transfer;
* :mod:`repro.telemetry.metrics` — counters, gauges, and fixed-bucket
  histograms with Prometheus-style text exposition;
* :mod:`repro.telemetry.profiling` — the ``@timed`` decorator and the
  per-world slow-operation log.

Every :class:`~repro.sim.world.World` owns one of each as
``world.tracer``, ``world.metrics``, and ``world.slow_ops``.
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    Sample,
)
from repro.telemetry.profiling import SlowOp, SlowOpLog, timed
from repro.telemetry.trace import Span, Trace, TraceContext, Tracer, TimelineNode

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Sample",
    "SlowOp",
    "SlowOpLog",
    "Span",
    "TimelineNode",
    "Trace",
    "TraceContext",
    "Tracer",
    "timed",
]
