"""Storage: the Data Storage Interface (DSI) and its backends.

Globus GridFTP's "modular architecture enables a standard
GridFTP-compliant client access to any storage system that can implement
its data storage interface, including the HPSS archival storage system
and POSIX-compliant file systems" (paper Section II.A).  The DSI here is
that interface; :class:`PosixStorage` and :class:`HpssStorage` are two
behaviourally distinct backends that exercise it.
"""

from repro.storage.data import (
    FileData,
    LiteralData,
    PartialData,
    SyntheticData,
    checksum,
)
from repro.storage.dsi import DataStorageInterface, FileStat, WriteSink
from repro.storage.posix import PosixStorage
from repro.storage.hpss import HpssStorage

__all__ = [
    "FileData",
    "LiteralData",
    "SyntheticData",
    "PartialData",
    "DataStorageInterface",
    "FileStat",
    "WriteSink",
    "PosixStorage",
    "HpssStorage",
    "checksum",
]
