"""File content representations.

Small files carry literal bytes end-to-end through the transfer stack,
so integrity tests are real.  The paper's workloads also include
terabyte files, which obviously cannot be materialized; those use
:class:`SyntheticData` — content *defined* by (seed, size), whose bytes
are generated deterministically on demand for any requested window, and
whose fingerprint both sides can compute without reading everything.
A partially-received file is a :class:`PartialData` until its coverage
is complete.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from functools import lru_cache

from repro.errors import StorageError
from repro.util.ranges import ByteRangeSet


@lru_cache(maxsize=1024)
def _sha256_hex(content: bytes) -> str:
    """Memoized digest: fleets move the same payload thousands of times,
    and bytes objects cache their own hash, so repeat lookups are cheap."""
    return hashlib.sha256(content).hexdigest()


def checksum(source: "bytes | FileData") -> str:
    """The canonical content digest, memoized where content is literal.

    Accepts raw bytes or any :class:`FileData`.  Every integrity check in
    the system — transfer verification, archival bundle manifests, the
    site-move verifier's far-end re-checksum — routes through here, so
    identical payloads hash once per process regardless of which layer
    asks.  For non-literal content the digest is the data's own
    :meth:`~FileData.fingerprint` (synthetic content is *defined* by its
    seed, so both ends agree without materializing bytes).
    """
    if isinstance(source, (bytes, bytearray, memoryview)):
        return "sha256:" + _sha256_hex(bytes(source))
    return source.fingerprint()

_CHUNK = 32  # one sha256 digest's worth of synthetic bytes per counter block
#: refuse to materialize more than this many synthetic bytes in one read
_MAX_SYNTH_READ = 64 * 1024 * 1024


class FileData(ABC):
    """Immutable file content."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Content length in bytes."""

    @abstractmethod
    def read(self, offset: int, length: int) -> bytes:
        """The bytes of [offset, offset+length) (clipped at EOF)."""

    @abstractmethod
    def fingerprint(self) -> str:
        """A digest both ends of a transfer can compute independently."""

    def read_all(self) -> bytes:
        """Entire content (only sensible for literal-sized data)."""
        return self.read(0, self.size)


@dataclass(frozen=True)
class LiteralData(FileData):
    """Real bytes held in memory."""

    content: bytes

    @property
    def size(self) -> int:
        """Content length in bytes."""
        return len(self.content)

    def read(self, offset: int, length: int) -> bytes:
        """Bytes of [offset, offset+length), clipped at EOF."""
        if offset < 0 or length < 0:
            raise StorageError(f"invalid read window [{offset}, +{length})")
        return self.content[offset : offset + length]

    def fingerprint(self) -> str:
        """Digest both transfer ends compute independently.

        Memoized: content is immutable and verification hashes the same
        payload several times per transfer (source, sink, audit).
        """
        return "sha256:" + _sha256_hex(self.content)


@dataclass(frozen=True)
class SyntheticData(FileData):
    """Deterministic pseudo-random content defined by (seed, size).

    ``read`` produces genuine bytes for any window (bounded, to protect
    the host from accidental terabyte materialization); the fingerprint
    is derived from the definition so a receiver holding the same
    (seed, size) agrees without generating anything.
    """

    seed: int
    length: int

    @property
    def size(self) -> int:
        """Content length in bytes."""
        return self.length

    def read(self, offset: int, length: int) -> bytes:
        """Bytes of [offset, offset+length), clipped at EOF."""
        if offset < 0 or length < 0:
            raise StorageError(f"invalid read window [{offset}, +{length})")
        end = min(offset + length, self.length)
        if end <= offset:
            return b""
        if end - offset > _MAX_SYNTH_READ:
            raise StorageError(
                f"refusing to materialize {end - offset} synthetic bytes in one read"
            )
        first_block = offset // _CHUNK
        last_block = (end - 1) // _CHUNK
        out = bytearray()
        for block in range(first_block, last_block + 1):
            out += hashlib.sha256(f"{self.seed}:{block}".encode()).digest()[:_CHUNK]
        start_in = offset - first_block * _CHUNK
        return bytes(out[start_in : start_in + (end - offset)])

    def fingerprint(self) -> str:
        """Digest both transfer ends compute independently."""
        return f"synthetic:{self.seed}:{self.length}"


@dataclass
class PartialData(FileData):
    """A file being assembled: the ranges received so far plus the source.

    ``source`` describes where complete content *would* come from so a
    completed assembly can be promoted: for literal transfers we keep the
    actual fragments; for synthetic transfers we keep the definition.
    """

    expected_size: int
    received: ByteRangeSet = field(default_factory=ByteRangeSet)
    #: (offset, bytes) in arrival order; later fragments overwrite earlier
    #: ones where they overlap, so a short rewrite never loses longer data
    fragments: list[tuple[int, bytes]] = field(default_factory=list)
    synthetic_source: SyntheticData | None = None

    @property
    def size(self) -> int:
        """Content length in bytes."""
        return self.expected_size

    def write_fragment(self, offset: int, data: bytes) -> None:
        """Record literally-received bytes at ``offset``."""
        if data:
            self.fragments.append((offset, data))
            self.received.add(offset, offset + len(data))

    def mark_received(self, start: int, end: int) -> None:
        """Record synthetically-transferred range (no literal bytes kept)."""
        self.received.add(start, end)

    def is_complete(self) -> bool:
        """True when received ranges cover the expected size."""
        return self.received.covers(self.expected_size)

    def promote(self) -> FileData:
        """Finish assembly into real content; raises if incomplete."""
        if not self.is_complete():
            missing = self.received.complement(self.expected_size)
            raise StorageError(
                f"cannot promote partial file: {missing.total_bytes()} bytes missing"
            )
        if self.synthetic_source is not None:
            return SyntheticData(self.synthetic_source.seed, self.expected_size)
        if (
            len(self.fragments) == 1
            and self.fragments[0][0] == 0
            and len(self.fragments[0][1]) == self.expected_size
        ):
            # one fragment covering everything (the bulk write_range
            # path): promote without assembling a copy
            return LiteralData(self.fragments[0][1])
        buf = bytearray(self.expected_size)
        for offset, data in self.fragments:
            buf[offset : offset + len(data)] = data
        return LiteralData(bytes(buf))

    def read(self, offset: int, length: int) -> bytes:
        """Read from received ranges only; raises on gaps."""
        if not self.received.contains(offset, min(offset + length, self.expected_size)):
            raise StorageError("read window includes bytes not yet received")
        if self.synthetic_source is not None:
            return self.synthetic_source.read(offset, length)
        return self.promote_window(offset, length)

    def promote_window(self, offset: int, length: int) -> bytes:
        """Assemble the received bytes of one window."""
        end = min(offset + length, self.expected_size)
        buf = bytearray(end - offset)
        for frag_off, data in self.fragments:
            lo = max(frag_off, offset)
            hi = min(frag_off + len(data), end)
            if lo < hi:
                buf[lo - offset : hi - offset] = data[lo - frag_off : hi - frag_off]
        return bytes(buf)

    def fingerprint(self) -> str:
        """Digest both transfer ends compute independently."""
        return f"partial:{self.received.total_bytes()}/{self.expected_size}"
