"""In-memory POSIX-style filesystem backend.

Implements the DSI over a directory tree with per-node ownership and
permission bits.  Permission semantics are simplified Unix: the owner
needs the owner bits, everyone else the "other" bits (no groups); uid 0
bypasses checks.  Paths are absolute, ``/``-separated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    FileExistsStorageError,
    FileNotFoundStorageError,
    IsADirectoryStorageError,
    NotADirectoryStorageError,
    PermissionDeniedError,
    StorageError,
)
from repro.sim.clock import Clock
from repro.storage.data import FileData, PartialData
from repro.storage.dsi import DataStorageInterface, FileStat, WriteSink

_R, _W, _X = 4, 2, 1


def split_path(path: str) -> list[str]:
    """Normalize an absolute path into components."""
    if not path.startswith("/"):
        raise StorageError(f"path must be absolute: {path!r}")
    return [p for p in path.split("/") if p]


@dataclass
class _Node:
    name: str
    owner_uid: int
    mode: int
    mtime: float
    is_dir: bool
    data: FileData | None = None
    partial: PartialData | None = None
    children: dict[str, "_Node"] = field(default_factory=dict)

    def permits(self, uid: int, want: int) -> bool:
        """Unix-style permission check for ``uid``."""
        if uid == 0:
            return True
        bits = (self.mode >> 6) & 7 if uid == self.owner_uid else self.mode & 7
        return (bits & want) == want


class PosixStorage(DataStorageInterface):
    """The in-memory POSIX DSI backend."""

    name = "posix"

    #: resolution caches reset past this size (bounds fleet-scale memory)
    _CACHE_CAP = 131072

    def __init__(self, clock: Clock) -> None:
        self.clock = clock
        self.root = _Node(
            name="/", owner_uid=0, mode=0o755, mtime=clock.now, is_dir=True
        )
        # namespace version: bumped by any mutation that can change how a
        # path resolves or whether a walk is permitted (mkdir/delete/
        # rename/chmod/chown).  Adding *file content* under an existing
        # name does not bump it — only successful resolutions are cached,
        # so a new file simply misses until first resolved.
        self._ns_version = 0
        self._walk_cache: dict[tuple[str, int, bool], tuple[int, _Node]] = {}
        self._parent_cache: dict[tuple[str, int], tuple[int, _Node, str]] = {}

    def _bump_ns(self) -> None:
        self._ns_version += 1

    # -- traversal -------------------------------------------------------------

    def _walk(self, path: str, uid: int, check_exec: bool = True) -> _Node:
        key = (path, uid, check_exec)
        hit = self._walk_cache.get(key)
        if hit is not None and hit[0] == self._ns_version:
            return hit[1]
        node = self.root
        for part in split_path(path):
            if not node.is_dir:
                raise NotADirectoryStorageError(f"{node.name!r} is not a directory")
            if check_exec and not node.permits(uid, _X):
                raise PermissionDeniedError(f"cannot traverse into {node.name!r} as uid {uid}")
            child = node.children.get(part)
            if child is None:
                raise FileNotFoundStorageError(f"no such path: {path!r}")
            node = child
        if len(self._walk_cache) > self._CACHE_CAP:
            self._walk_cache.clear()
        self._walk_cache[key] = (self._ns_version, node)
        return node

    def _walk_parent(self, path: str, uid: int) -> tuple[_Node, str]:
        key = (path, uid)
        hit = self._parent_cache.get(key)
        if hit is not None and hit[0] == self._ns_version:
            return hit[1], hit[2]
        parts = split_path(path)
        if not parts:
            raise StorageError("cannot operate on the root directory")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self._walk(parent_path, uid)
        if not parent.is_dir:
            raise NotADirectoryStorageError(f"{parent_path!r} is not a directory")
        if len(self._parent_cache) > self._CACHE_CAP:
            self._parent_cache.clear()
        self._parent_cache[key] = (self._ns_version, parent, parts[-1])
        return parent, parts[-1]

    # -- DSI reads ----------------------------------------------------------------

    def open_read(self, path: str, uid: int) -> FileData:
        """DSI operation (see :class:`DataStorageInterface`)."""
        node = self._walk(path, uid)
        if node.is_dir:
            raise IsADirectoryStorageError(f"{path!r} is a directory")
        if not node.permits(uid, _R):
            raise PermissionDeniedError(f"uid {uid} cannot read {path!r}")
        if node.data is None:
            raise FileNotFoundStorageError(f"{path!r} has no committed content")
        return node.data

    def stat(self, path: str, uid: int) -> FileStat:
        """DSI operation (see :class:`DataStorageInterface`)."""
        node = self._walk(path, uid)
        size = node.data.size if node.data is not None else 0
        return FileStat(
            path=path,
            size=size,
            is_dir=node.is_dir,
            owner_uid=node.owner_uid,
            mode=node.mode,
            mtime=node.mtime,
        )

    def listdir(self, path: str, uid: int) -> list[str]:
        """DSI operation (see :class:`DataStorageInterface`)."""
        node = self._walk(path, uid)
        if not node.is_dir:
            raise NotADirectoryStorageError(f"{path!r} is not a directory")
        if not node.permits(uid, _R):
            raise PermissionDeniedError(f"uid {uid} cannot list {path!r}")
        return sorted(node.children)

    def exists(self, path: str) -> bool:
        """True if the name is present."""
        try:
            self._walk(path, 0, check_exec=False)
            return True
        except FileNotFoundStorageError:
            return False

    # -- DSI writes -----------------------------------------------------------------

    def open_write(
        self, path: str, uid: int, expected_size: int, resume: bool = False
    ) -> WriteSink:
        """DSI operation (see :class:`DataStorageInterface`)."""
        parent, name = self._walk_parent(path, uid)
        existing = parent.children.get(name)
        if existing is not None:
            if existing.is_dir:
                raise IsADirectoryStorageError(f"{path!r} is a directory")
            if not existing.permits(uid, _W):
                raise PermissionDeniedError(f"uid {uid} cannot overwrite {path!r}")
        elif not parent.permits(uid, _W):
            raise PermissionDeniedError(f"uid {uid} cannot create files in {path!r}")
        partial: PartialData | None = None
        if resume and existing is not None and existing.partial is not None:
            partial = existing.partial
        if partial is None:
            partial = PartialData(expected_size=expected_size)
        return WriteSink(self, path, uid, expected_size, partial)

    def commit_file(self, path: str, uid: int, data: FileData) -> None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        parent, name = self._walk_parent(path, uid)
        node = parent.children.get(name)
        if node is None:
            node = _Node(
                name=name, owner_uid=uid, mode=0o644, mtime=self.clock.now, is_dir=False
            )
            parent.children[name] = node
        node.data = data
        node.partial = None
        node.mtime = self.clock.now

    def commit_partial(self, path: str, uid: int, partial: PartialData) -> None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        parent, name = self._walk_parent(path, uid)
        node = parent.children.get(name)
        if node is None:
            node = _Node(
                name=name, owner_uid=uid, mode=0o644, mtime=self.clock.now, is_dir=False
            )
            parent.children[name] = node
        node.partial = partial
        node.mtime = self.clock.now

    def partial_for(self, path: str, uid: int) -> PartialData | None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        try:
            node = self._walk(path, uid)
        except FileNotFoundStorageError:
            return None
        return node.partial

    # -- namespace ---------------------------------------------------------------------

    def mkdir(self, path: str, uid: int) -> None:
        """Create a directory (MKD)."""
        parent, name = self._walk_parent(path, uid)
        if not parent.permits(uid, _W):
            raise PermissionDeniedError(f"uid {uid} cannot create directories in {path!r}")
        if name in parent.children:
            raise FileExistsStorageError(f"{path!r} already exists")
        parent.children[name] = _Node(
            name=name, owner_uid=uid, mode=0o755, mtime=self.clock.now, is_dir=True
        )
        self._bump_ns()

    def makedirs(self, path: str, uid: int) -> None:
        """Create every missing component of ``path`` (mkdir -p)."""
        parts = split_path(path)
        for i in range(1, len(parts) + 1):
            prefix = "/" + "/".join(parts[:i])
            if not self.exists(prefix):
                self.mkdir(prefix, uid)

    def delete(self, path: str, uid: int) -> None:
        """Remove a file (DELE)."""
        parent, name = self._walk_parent(path, uid)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFoundStorageError(f"no such path: {path!r}")
        if node.is_dir and node.children:
            raise StorageError(f"directory not empty: {path!r}")
        if not parent.permits(uid, _W):
            raise PermissionDeniedError(f"uid {uid} cannot delete from {path!r}")
        del parent.children[name]
        self._bump_ns()

    def rename(self, old: str, new: str, uid: int) -> None:
        """Move a file (RNFR/RNTO)."""
        old_parent, old_name = self._walk_parent(old, uid)
        node = old_parent.children.get(old_name)
        if node is None:
            raise FileNotFoundStorageError(f"no such path: {old!r}")
        if not old_parent.permits(uid, _W):
            raise PermissionDeniedError(f"uid {uid} cannot move {old!r}")
        new_parent, new_name = self._walk_parent(new, uid)
        if not new_parent.permits(uid, _W):
            raise PermissionDeniedError(f"uid {uid} cannot create {new!r}")
        if new_name in new_parent.children:
            raise FileExistsStorageError(f"{new!r} already exists")
        del old_parent.children[old_name]
        node.name = new_name
        node.mtime = self.clock.now
        new_parent.children[new_name] = node
        self._bump_ns()

    # -- convenience for tests/examples -------------------------------------------

    def write_file(self, path: str, data: FileData | bytes, uid: int = 0) -> None:
        """Create parent dirs as root and commit content in one call."""
        parts = split_path(path)
        if len(parts) > 1:
            self.makedirs("/" + "/".join(parts[:-1]), 0)
        if isinstance(data, bytes):
            from repro.storage.data import LiteralData

            data = LiteralData(data)
        self.commit_file(path, uid, data)

    def chmod(self, path: str, mode: int, uid: int = 0) -> None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        node = self._walk(path, uid)
        if uid not in (0, node.owner_uid):
            raise PermissionDeniedError(f"uid {uid} cannot chmod {path!r}")
        node.mode = mode
        self._bump_ns()

    def chown(self, path: str, owner_uid: int) -> None:
        """Root-only ownership change (no uid argument: callers are setup code)."""
        node = self._walk(path, 0, check_exec=False)
        node.owner_uid = owner_uid
        self._bump_ns()
