"""HPSS-style archival storage backend.

The paper cites HPSS as the marquee non-POSIX DSI target.  The defining
behaviour we reproduce: files live on *tape* until staged; the first
read of a cold file pays a staging latency (mount + seek + drain at tape
bandwidth), after which the file is cached on disk until evicted.  The
namespace and permission semantics are delegated to an inner
:class:`PosixStorage`.
"""

from __future__ import annotations

from repro.sim.clock import Clock
from repro.storage.data import FileData, PartialData
from repro.storage.dsi import DataStorageInterface, FileStat, WriteSink
from repro.storage.posix import PosixStorage
from repro.util.units import MB


class HpssStorage(DataStorageInterface):
    """Tape-backed DSI: cold reads stage the file first (and cost time)."""

    name = "hpss"

    def __init__(
        self,
        clock: Clock,
        mount_latency_s: float = 45.0,
        tape_bandwidth_Bps: float = 160 * MB,
    ) -> None:
        self.clock = clock
        self.inner = PosixStorage(clock)
        self.mount_latency_s = mount_latency_s
        self.tape_bandwidth_Bps = tape_bandwidth_Bps
        self._staged: set[str] = set()
        self.stage_count = 0  # how many tape mounts this run performed

    # -- staging -----------------------------------------------------------

    def is_staged(self, path: str) -> bool:
        """True if the file is on the disk cache (not tape-only)."""
        return path in self._staged

    def _stage(self, path: str, size: int) -> None:
        if path in self._staged:
            return
        self.clock.advance(self.mount_latency_s + size / self.tape_bandwidth_Bps)
        self._staged.add(path)
        self.stage_count += 1

    def evict(self, path: str) -> None:
        """Drop the disk cache copy; next read stages again."""
        self._staged.discard(path)

    # -- DSI delegation (reads pay staging) ---------------------------------

    def open_read(self, path: str, uid: int) -> FileData:
        """DSI operation (see :class:`DataStorageInterface`)."""
        data = self.inner.open_read(path, uid)
        self._stage(path, data.size)
        return data

    def stat(self, path: str, uid: int) -> FileStat:
        """DSI operation (see :class:`DataStorageInterface`)."""
        return self.inner.stat(path, uid)

    def listdir(self, path: str, uid: int) -> list[str]:
        """DSI operation (see :class:`DataStorageInterface`)."""
        return self.inner.listdir(path, uid)

    def exists(self, path: str) -> bool:
        """True if the name is present."""
        return self.inner.exists(path)

    def open_write(
        self, path: str, uid: int, expected_size: int, resume: bool = False
    ) -> WriteSink:
        # writes land in the disk cache; the sink commits through *this*
        # backend so newly written files are considered staged.
        """DSI operation (see :class:`DataStorageInterface`)."""
        sink = self.inner.open_write(path, uid, expected_size, resume)
        sink._backend = self  # route commit back through HPSS
        return sink

    def commit_file(self, path: str, uid: int, data: FileData) -> None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        self.inner.commit_file(path, uid, data)
        self._staged.add(path)

    def commit_partial(self, path: str, uid: int, partial: PartialData) -> None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        self.inner.commit_partial(path, uid, partial)

    def partial_for(self, path: str, uid: int) -> PartialData | None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        return self.inner.partial_for(path, uid)

    def mkdir(self, path: str, uid: int) -> None:
        """Create a directory (MKD)."""
        self.inner.mkdir(path, uid)

    def makedirs(self, path: str, uid: int) -> None:
        """DSI operation (see :class:`DataStorageInterface`)."""
        self.inner.makedirs(path, uid)

    def delete(self, path: str, uid: int) -> None:
        """Remove a file (DELE)."""
        self.inner.delete(path, uid)
        self._staged.discard(path)

    def rename(self, old: str, new: str, uid: int) -> None:
        """Move a file (RNFR/RNTO)."""
        self.inner.rename(old, new, uid)
        if old in self._staged:
            self._staged.discard(old)
            self._staged.add(new)

    def write_file(self, path: str, data, uid: int = 0) -> None:
        """Convenience mirror of :meth:`PosixStorage.write_file` (stays cold)."""
        self.inner.write_file(path, data, uid)
        # freshly archived content is on tape, not staged
        self._staged.discard(path)
