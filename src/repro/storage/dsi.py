"""The Data Storage Interface (DSI).

The abstraction the Globus GridFTP server uses to talk to "any storage
system" (paper Section II.A, ref [5]).  A server PI holds a DSI and runs
every operation as the setuid'd local user; backends enforce their own
access semantics against that uid.

Writes go through a :class:`WriteSink` so that extended-block-mode data
arriving out of order over parallel streams lands correctly and partial
files survive interruptions for later restart.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.data import FileData, PartialData, SyntheticData
from repro.util.ranges import ByteRangeSet


@dataclass(frozen=True)
class FileStat:
    """Metadata for one path."""

    path: str
    size: int
    is_dir: bool
    owner_uid: int
    mode: int
    mtime: float


class WriteSink:
    """Destination for one file's (possibly out-of-order) incoming blocks.

    The sink wraps a :class:`PartialData`; ``close(complete=True)``
    promotes it into final content via the backend.  A sink created with
    ``resume_from`` continues a previous partial upload — the mechanics
    behind restart markers.
    """

    def __init__(
        self,
        backend: "DataStorageInterface",
        path: str,
        uid: int,
        expected_size: int,
        partial: PartialData,
    ) -> None:
        self._backend = backend
        self._path = path
        self._uid = uid
        self._partial = partial
        self._closed = False
        if expected_size != partial.expected_size:
            raise StorageError(
                f"resume size mismatch: sink expects {expected_size}, "
                f"partial holds {partial.expected_size}"
            )

    @property
    def path(self) -> str:
        """The destination path of this sink."""
        return self._path

    @property
    def received(self) -> ByteRangeSet:
        """Ranges safely written so far — the restart marker content."""
        return self._partial.received.copy()

    def write_block(self, offset: int, data: bytes) -> None:
        """Store literal bytes at ``offset``."""
        self._check_open()
        self._partial.write_fragment(offset, data)

    def write_synthetic_block(self, offset: int, length: int, source: SyntheticData) -> None:
        """Record a block of synthetic content without materializing it."""
        self.write_synthetic_range(offset, length, source)

    def write_range(self, offset: int, data: bytes) -> None:
        """Store one contiguous literal range (bulk fast path).

        Identical sink state to writing the same span block by block:
        one coalesced entry in :attr:`received`, the same promoted
        bytes — just one fragment instead of dozens.
        """
        self._check_open()
        self._partial.write_fragment(offset, data)

    def write_synthetic_range(self, offset: int, length: int, source: SyntheticData) -> None:
        """Record a contiguous synthetic range without materializing it."""
        self._check_open()
        if self._partial.synthetic_source is None:
            self._partial.synthetic_source = source
        elif self._partial.synthetic_source.seed != source.seed:
            raise StorageError("mixed synthetic sources in one upload")
        self._partial.mark_received(offset, offset + length)

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"write sink for {self._path!r} is closed")

    def close(self, complete: bool) -> FileData | None:
        """Finish the upload.

        ``complete=True`` promotes and commits final content (raises if
        coverage has gaps) and returns it; ``complete=False`` persists the
        partial state for a later resume and returns None.
        """
        self._check_open()
        self._closed = True
        if complete:
            data = self._partial.promote()
            self._backend.commit_file(self._path, self._uid, data)
            return data
        self._backend.commit_partial(self._path, self._uid, self._partial)
        return None


class DataStorageInterface(ABC):
    """The operations a GridFTP server needs from a storage system."""

    name: str = "dsi"

    # -- reads -------------------------------------------------------------

    @abstractmethod
    def open_read(self, path: str, uid: int) -> FileData:
        """Content of ``path``, readable by ``uid``."""

    @abstractmethod
    def stat(self, path: str, uid: int) -> FileStat:
        """Metadata for ``path``."""

    @abstractmethod
    def listdir(self, path: str, uid: int) -> list[str]:
        """Names within directory ``path``."""

    # -- writes -----------------------------------------------------------------

    @abstractmethod
    def open_write(
        self, path: str, uid: int, expected_size: int, resume: bool = False
    ) -> WriteSink:
        """Begin (or resume) an upload to ``path``."""

    @abstractmethod
    def commit_file(self, path: str, uid: int, data: FileData) -> None:
        """Store final content at ``path`` (called by the sink)."""

    @abstractmethod
    def commit_partial(self, path: str, uid: int, partial: PartialData) -> None:
        """Persist an interrupted upload for later resume."""

    @abstractmethod
    def partial_for(self, path: str, uid: int) -> PartialData | None:
        """The persisted partial upload at ``path``, if any."""

    # -- namespace ------------------------------------------------------------

    @abstractmethod
    def mkdir(self, path: str, uid: int) -> None:
        """Create a directory."""

    @abstractmethod
    def delete(self, path: str, uid: int) -> None:
        """Remove a file."""

    @abstractmethod
    def rename(self, old: str, new: str, uid: int) -> None:
        """Move a file."""

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Does the path exist (permission-free probe used by tests)?"""

    # -- integrity ---------------------------------------------------------------

    def checksum(self, path: str, uid: int, algorithm: str = "sha256") -> str:
        """Checksum of a file's content (CKSM command backend).

        Literal content is hashed for real; synthetic content returns its
        definition fingerprint (both transfer ends agree on it).
        """
        data = self.open_read(path, uid)
        if isinstance(data, SyntheticData):
            return data.fingerprint()
        from repro.util.checksums import checksum as _checksum

        return _checksum(algorithm, data.read_all())
