"""Local Unix-style accounts and the setuid model.

GridFTP's authorization callout ends by determining "the local user id
for which the request should be executed. ... the server does a setuid
to the local user id" (paper Section II.C).  We model accounts with
uids, home directories and a lock flag, and expose a ``setuid``-style
resolution that the server PI uses to run each session as the mapped
user against the storage layer's permission checks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.errors import AccountLockedError, UnknownUserError


def hash_password(password: str, salt: str) -> str:
    """Salted password hash (crypt(3) stand-in)."""
    return hashlib.sha256(f"{salt}:{password}".encode("utf-8")).hexdigest()


@dataclass
class Account:
    """One local user account."""

    username: str
    uid: int
    home: str
    password_hash: str = ""
    salt: str = ""
    locked: bool = False
    gecos: str = ""

    def check_password(self, password: str) -> bool:
        """Constant-structure password verification."""
        if not self.password_hash:
            return False
        return hash_password(password, self.salt) == self.password_hash


@dataclass
class AccountDatabase:
    """The site's /etc/passwd equivalent."""

    accounts: dict[str, Account] = field(default_factory=dict)
    _next_uid: int = 1000

    def add_user(
        self,
        username: str,
        password: str | None = None,
        uid: int | None = None,
        home: str | None = None,
        gecos: str = "",
    ) -> Account:
        """Create an account (optionally with a local password)."""
        if username in self.accounts:
            raise ValueError(f"account {username!r} already exists")
        if uid is None:
            uid = self._next_uid
            self._next_uid += 1
        salt = hashlib.sha1(username.encode()).hexdigest()[:8]
        account = Account(
            username=username,
            uid=uid,
            home=home or f"/home/{username}",
            password_hash=hash_password(password, salt) if password else "",
            salt=salt,
            gecos=gecos,
        )
        self.accounts[username] = account
        return account

    def get(self, username: str) -> Account:
        """Look up an account; raise :class:`UnknownUserError` if absent."""
        try:
            return self.accounts[username]
        except KeyError:
            raise UnknownUserError(f"no such user: {username!r}") from None

    def exists(self, username: str) -> bool:
        """True if the name is present."""
        return username in self.accounts

    def lock(self, username: str) -> None:
        """Administratively disable the account."""
        self.get(username).locked = True

    def unlock(self, username: str) -> None:
        """Re-enable a locked account."""
        self.get(username).locked = False

    def setuid(self, username: str) -> Account:
        """Resolve the account a server process should run as.

        Raises if the account is missing or locked — the two ways the
        final authorization step (Figure 3 step 5) can fail even after a
        valid certificate is presented.
        """
        account = self.get(username)
        if account.locked:
            raise AccountLockedError(f"account {username!r} is locked")
        return account

    def __len__(self) -> int:
        return len(self.accounts)
