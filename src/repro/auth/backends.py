"""Site identity backends: LDAP, NIS, RADIUS, htpasswd.

Each backend is a small standalone store plus a :class:`PamModule`
adapter, mirroring how pam_ldap / pam_nis / pam_radius sit between PAM
and the site directory.  All are deterministic and in-memory; they share
the password-hashing helper from :mod:`repro.auth.accounts` so secrets
are never stored in the clear even inside the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.auth.accounts import hash_password
from repro.auth.pam import PamModule, PamResult


# ---------------------------------------------------------------------------
# LDAP
# ---------------------------------------------------------------------------


@dataclass
class _LdapEntry:
    dn: str
    password_hash: str
    salt: str
    disabled: bool = False


class LdapDirectory:
    """A minimal LDAP directory: bind-DN → password verification."""

    def __init__(self, base_dn: str = "dc=example,dc=org") -> None:
        self.base_dn = base_dn
        self._entries: dict[str, _LdapEntry] = {}

    def add_entry(self, uid: str, password: str) -> str:
        """Add ``uid`` with ``password``; returns the entry DN."""
        dn = f"uid={uid},ou=people,{self.base_dn}"
        salt = f"ldap:{uid}"
        self._entries[uid] = _LdapEntry(
            dn=dn, password_hash=hash_password(password, salt), salt=salt
        )
        return dn

    def disable(self, uid: str) -> None:
        """Administratively disable the entry."""
        self._entries[uid].disabled = True

    def bind(self, uid: str, password: str) -> bool:
        """Simple bind as the user's entry; False on any failure."""
        entry = self._entries.get(uid)
        if entry is None or entry.disabled:
            return False
        return hash_password(password, entry.salt) == entry.password_hash

    def has_entry(self, uid: str) -> bool:
        """True if the uid exists in the directory."""
        return uid in self._entries

    def is_disabled(self, uid: str) -> bool:
        """True if the entry is administratively disabled."""
        entry = self._entries.get(uid)
        return entry is not None and entry.disabled


class LdapPamModule(PamModule):
    """pam_ldap: authenticate by binding as the user."""

    name = "pam_ldap"

    def __init__(self, directory: LdapDirectory) -> None:
        self.directory = directory

    def authenticate(self, username: str, secret: str) -> PamResult:
        """Check the user's secret (PamModule interface)."""
        if not self.directory.has_entry(username):
            return PamResult.USER_UNKNOWN
        if self.directory.is_disabled(username):
            return PamResult.ACCT_LOCKED
        return (
            PamResult.SUCCESS
            if self.directory.bind(username, secret)
            else PamResult.AUTH_ERR
        )


# ---------------------------------------------------------------------------
# NIS
# ---------------------------------------------------------------------------


class NisDomain:
    """A NIS passwd.byname map."""

    def __init__(self, domain: str = "example") -> None:
        self.domain = domain
        self._passwd: dict[str, tuple[str, str]] = {}  # user -> (hash, salt)

    def add_user(self, username: str, password: str) -> None:
        """Register a user with a password."""
        salt = f"nis:{self.domain}:{username}"
        self._passwd[username] = (hash_password(password, salt), salt)

    def match(self, username: str, password: str) -> bool | None:
        """True/False for known users; None for unknown."""
        rec = self._passwd.get(username)
        if rec is None:
            return None
        pw_hash, salt = rec
        return hash_password(password, salt) == pw_hash


class NisPamModule(PamModule):
    """pam_unix against NIS maps."""

    name = "pam_nis"

    def __init__(self, domain: NisDomain) -> None:
        self.domain = domain

    def authenticate(self, username: str, secret: str) -> PamResult:
        """Check the user's secret (PamModule interface)."""
        outcome = self.domain.match(username, secret)
        if outcome is None:
            return PamResult.USER_UNKNOWN
        return PamResult.SUCCESS if outcome else PamResult.AUTH_ERR


# ---------------------------------------------------------------------------
# RADIUS
# ---------------------------------------------------------------------------


@dataclass
class RadiusServer:
    """A RADIUS server reachable with a shared secret."""

    shared_secret: str
    users: dict[str, tuple[str, str]] = field(default_factory=dict)
    reject_all: bool = False  # simulate an unreachable/misconfigured server

    def add_user(self, username: str, password: str) -> None:
        """Register a user with a password."""
        salt = f"radius:{username}"
        self.users[username] = (hash_password(password, salt), salt)

    def access_request(self, shared_secret: str, username: str, password: str) -> str:
        """Returns 'accept', 'reject', or 'unknown'."""
        if self.reject_all or shared_secret != self.shared_secret:
            return "reject"
        rec = self.users.get(username)
        if rec is None:
            return "unknown"
        pw_hash, salt = rec
        return "accept" if hash_password(password, salt) == pw_hash else "reject"


class RadiusPamModule(PamModule):
    """pam_radius_auth."""

    name = "pam_radius"

    def __init__(self, server: RadiusServer, shared_secret: str) -> None:
        self.server = server
        self.shared_secret = shared_secret

    def authenticate(self, username: str, secret: str) -> PamResult:
        """Check the user's secret (PamModule interface)."""
        outcome = self.server.access_request(self.shared_secret, username, secret)
        if outcome == "accept":
            return PamResult.SUCCESS
        if outcome == "unknown":
            return PamResult.USER_UNKNOWN
        return PamResult.AUTH_ERR


# ---------------------------------------------------------------------------
# htpasswd (flat file — handy in tests)
# ---------------------------------------------------------------------------


class HtpasswdFile:
    """A flat username:hash file."""

    def __init__(self) -> None:
        self._users: dict[str, tuple[str, str]] = {}

    def set_password(self, username: str, password: str) -> None:
        """Set (or replace) a user's password."""
        salt = f"ht:{username}"
        self._users[username] = (hash_password(password, salt), salt)

    def verify(self, username: str, password: str) -> bool | None:
        """Check a password; None for unknown users."""
        rec = self._users.get(username)
        if rec is None:
            return None
        pw_hash, salt = rec
        return hash_password(password, salt) == pw_hash


class HtpasswdPamModule(PamModule):
    """pam over a flat htpasswd file."""

    name = "pam_htpasswd"

    def __init__(self, htfile: HtpasswdFile) -> None:
        self.htfile = htfile

    def authenticate(self, username: str, secret: str) -> PamResult:
        """Check the user's secret (PamModule interface)."""
        outcome = self.htfile.verify(username, secret)
        if outcome is None:
            return PamResult.USER_UNKNOWN
        return PamResult.SUCCESS if outcome else PamResult.AUTH_ERR
