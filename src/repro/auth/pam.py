"""A Pluggable Authentication Module stack.

Follows the shape of OSF RFC 86.0 / Linux-PAM: a stack of modules, each
with a control flag, evaluated in order.

* ``REQUIRED``   — must succeed; failure is remembered but the stack
  continues (so an attacker can't tell *which* module failed);
* ``REQUISITE``  — must succeed; failure aborts immediately;
* ``SUFFICIENT`` — success ends the stack successfully (if no prior
  required failure); failure is ignored;
* ``OPTIONAL``   — result only matters if nothing else was decisive.

MyProxy Online CA drives this stack with the username/password it
receives (Figure 3 step 2).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import PamError


class PamResult(enum.Enum):
    """Outcome of one module's authenticate()."""

    SUCCESS = "success"
    AUTH_ERR = "auth_err"  # credentials wrong
    USER_UNKNOWN = "user_unknown"  # module has no record of the user
    ACCT_LOCKED = "acct_locked"  # account administratively disabled
    IGNORE = "ignore"  # module does not apply (e.g. OTP module, no token)


class Control(enum.Enum):
    """Stack control flag for a module entry."""

    REQUIRED = "required"
    REQUISITE = "requisite"
    SUFFICIENT = "sufficient"
    OPTIONAL = "optional"


class PamModule(ABC):
    """One pluggable module."""

    name: str = "pam_base"

    @abstractmethod
    def authenticate(self, username: str, secret: str) -> PamResult:
        """Check the user's secret; never raises for bad credentials."""


@dataclass
class _Entry:
    control: Control
    module: PamModule


class PamStack:
    """An ordered stack of (control, module) entries.

    ``authenticate`` returns normally on success and raises
    :class:`PamError` (with a generic message) on failure — callers such
    as MyProxy must not leak which module rejected the attempt.
    """

    def __init__(self, service: str = "myproxy") -> None:
        self.service = service
        self._entries: list[_Entry] = []

    def add(self, control: Control, module: PamModule) -> "PamStack":
        """Append an entry; returns self for chaining."""
        self._entries.append(_Entry(control=control, module=module))
        return self

    @property
    def entries(self) -> list[tuple[Control, PamModule]]:
        """The (control, module) entries, in stack order."""
        return [(e.control, e.module) for e in self._entries]

    def authenticate(self, username: str, secret: str) -> None:
        """Run the stack; raise :class:`PamError` unless it succeeds."""
        if not self._entries:
            raise PamError(f"PAM service {self.service!r} has no modules configured")
        required_failed = False
        optional_success = False
        any_decisive = False
        for entry in self._entries:
            result = entry.module.authenticate(username, secret)
            if entry.control is Control.REQUISITE:
                any_decisive = True
                if result is not PamResult.SUCCESS:
                    raise PamError("authentication failure")
            elif entry.control is Control.REQUIRED:
                any_decisive = True
                if result is not PamResult.SUCCESS:
                    required_failed = True
            elif entry.control is Control.SUFFICIENT:
                if result is PamResult.SUCCESS and not required_failed:
                    return
                any_decisive = any_decisive or result is PamResult.SUCCESS
            elif entry.control is Control.OPTIONAL:
                if result is PamResult.SUCCESS:
                    optional_success = True
        if required_failed:
            raise PamError("authentication failure")
        if not any_decisive and not optional_success:
            # nothing succeeded decisively (e.g. only sufficient modules,
            # all of which failed)
            raise PamError("authentication failure")
