"""Site-local authentication: accounts, PAM, LDAP/NIS/RADIUS backends.

GCMU's promise is that users authenticate to MyProxy Online CA "by
providing his username and password for the server", which MyProxy
verifies against "the local authentication system such as LDAP, RADIUS,
or NIS via a Pluggable Authentication Module (PAM) API" (paper Section
IV, Figure 3 steps 1-2).  This package is that machinery.
"""

from repro.auth.accounts import Account, AccountDatabase
from repro.auth.pam import PamStack, PamModule, PamResult, Control
from repro.auth.backends import (
    LdapDirectory,
    LdapPamModule,
    NisDomain,
    NisPamModule,
    RadiusServer,
    RadiusPamModule,
    HtpasswdFile,
    HtpasswdPamModule,
)
from repro.auth.otp import OtpDevice, OtpPamModule

__all__ = [
    "Account",
    "AccountDatabase",
    "PamStack",
    "PamModule",
    "PamResult",
    "Control",
    "LdapDirectory",
    "LdapPamModule",
    "NisDomain",
    "NisPamModule",
    "RadiusServer",
    "RadiusPamModule",
    "HtpasswdFile",
    "HtpasswdPamModule",
    "OtpDevice",
    "OtpPamModule",
]
