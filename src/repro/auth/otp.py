"""One-time-password support.

Paper Section IV.A: MyProxy Online CA "authenticates the user to the
site's MyProxy Online CA using the user's credentials for the site
(username/password, OTP, etc.)".  We implement an HOTP-style counter
scheme: a device and the server share a secret; each generated code is
valid once, within a small look-ahead window.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.auth.pam import PamModule, PamResult


def _hotp(secret: bytes, counter: int, digits: int = 6) -> str:
    """RFC-4226-style HOTP value."""
    msg = counter.to_bytes(8, "big")
    digest = hmac.new(secret, msg, hashlib.sha1).digest()
    offset = digest[-1] & 0x0F
    code = int.from_bytes(digest[offset : offset + 4], "big") & 0x7FFFFFFF
    return str(code % (10**digits)).zfill(digits)


class OtpDevice:
    """The user's token generator."""

    def __init__(self, secret: bytes) -> None:
        self.secret = secret
        self.counter = 0

    def next_code(self) -> str:
        """Generate the next one-time code (advances the counter)."""
        code = _hotp(self.secret, self.counter)
        self.counter += 1
        return code


class OtpPamModule(PamModule):
    """Server-side HOTP verifier with a look-ahead window."""

    name = "pam_otp"

    def __init__(self, window: int = 4) -> None:
        self.window = window
        self._secrets: dict[str, bytes] = {}
        self._counters: dict[str, int] = {}

    def enroll(self, username: str, secret: bytes) -> OtpDevice:
        """Register a user; returns the matching device."""
        self._secrets[username] = secret
        self._counters[username] = 0
        return OtpDevice(secret)

    def authenticate(self, username: str, secret: str) -> PamResult:
        """Check the user's secret (PamModule interface)."""
        stored = self._secrets.get(username)
        if stored is None:
            return PamResult.USER_UNKNOWN
        counter = self._counters[username]
        for offset in range(self.window):
            if _hotp(stored, counter + offset) == secret:
                # resynchronize past the used code: single-use guarantee
                self._counters[username] = counter + offset + 1
                return PamResult.SUCCESS
        return PamResult.AUTH_ERR
