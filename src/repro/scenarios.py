"""Ready-made deployment scenarios for examples and benchmarks.

These helpers assemble the two deployment styles the paper contrasts on
existing hosts of a :class:`~repro.sim.world.World`:

* :func:`conventional_site` — the pre-GCMU world: a well-known site CA,
  a host certificate, user certificates, a gridmap file;
* :func:`gcmu_site` — a GCMU install with LDAP-backed site accounts.

They are deliberately convenient rather than minimal: each returns a
small handle object with the pieces examples and benches need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.auth import (
    AccountDatabase,
    Control,
    LdapDirectory,
    LdapPamModule,
    PamStack,
)
from repro.core.gcmu import GCMUEndpoint, install_gcmu
from repro.gridftp.client import GridFTPClient
from repro.gridftp.server import GridFTPServer
from repro.gsi.authz import GridmapCallout
from repro.gsi.gridmap import Gridmap
from repro.pki.ca import CertificateAuthority
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.proxy import create_proxy
from repro.pki.validation import TrustStore
from repro.storage.posix import PosixStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass
class ConventionalSite:
    """A classic GridFTP deployment: CA, host cert, gridmap."""

    name: str
    host: str
    ca: CertificateAuthority
    trust: TrustStore
    accounts: AccountDatabase
    gridmap: Gridmap
    storage: PosixStorage
    server: GridFTPServer
    user_credentials: dict[str, Credential] = field(default_factory=dict)

    def add_user(self, world: "World", username: str) -> Credential:
        """Account + long-term certificate + gridmap entry + home dir."""
        self.accounts.add_user(username)
        cred = self.ca.issue_credential(
            DistinguishedName.make(("O", self.name), ("OU", "people"), ("CN", username))
        )
        self.gridmap.add(cred.subject, username)
        self.storage.makedirs(f"/home/{username}", 0)
        self.storage.chown(f"/home/{username}", self.accounts.get(username).uid)
        self.user_credentials[username] = cred
        return cred

    def proxy_for(self, world: "World", username: str) -> Credential:
        """A fresh proxy of the user's long-term credential.

        The RNG stream persists across calls so successive proxies get
        distinct serials (a new stream per call would repeat them).
        """
        rngs = self.__dict__.setdefault("_proxy_rngs", {})
        rng = rngs.setdefault(
            username, world.rng.python(f"scenario-proxy:{self.name}:{username}")
        )
        return create_proxy(self.user_credentials[username], world.clock, rng)

    def client_for(
        self,
        world: "World",
        username: str,
        client_host: str,
        local_storage: PosixStorage | None = None,
    ) -> GridFTPClient:
        """A logged-in-capable client for one of this site's users."""
        if local_storage is None:
            local_storage = PosixStorage(world.clock)
            local_storage.makedirs("/tmp", 0)
        return GridFTPClient(
            world,
            client_host,
            credential=self.proxy_for(world, username),
            trust=self.trust,
            local_storage=local_storage,
            username=username,
        )


def conventional_site(
    world: "World",
    name: str,
    host: str,
    port: int = GridFTPServer.DEFAULT_PORT,
) -> ConventionalSite:
    """Deploy a conventional GridFTP site on an existing host."""
    rng = world.rng.python(f"scenario-site:{name}")
    ca = CertificateAuthority(
        DistinguishedName.make(("O", name), ("CN", f"{name} CA")), world.clock, rng
    )
    trust = TrustStore()
    trust.add_anchor(ca.certificate)
    accounts = AccountDatabase()
    gridmap = Gridmap()
    storage = PosixStorage(world.clock)
    host_cred = ca.issue_credential(
        DistinguishedName.make(("O", name), ("OU", "hosts"), ("CN", host))
    )
    server = GridFTPServer(
        world,
        host,
        host_cred,
        trust,
        GridmapCallout(gridmap),
        accounts,
        storage,
        port=port,
        name=f"gridftp-{name}",
    ).start()
    return ConventionalSite(
        name=name,
        host=host,
        ca=ca,
        trust=trust,
        accounts=accounts,
        gridmap=gridmap,
        storage=storage,
        server=server,
    )


def gcmu_site(
    world: "World",
    host: str,
    site_name: str,
    users: dict[str, str],
    register_with=None,
    endpoint_name: str | None = None,
    dcsc_enabled: bool = True,
    charge_install_time: bool = False,
) -> GCMUEndpoint:
    """Install GCMU on an existing host with LDAP-backed site users."""
    accounts = AccountDatabase()
    ldap = LdapDirectory(base_dn=f"dc={site_name}")
    for username, password in users.items():
        accounts.add_user(username)
        ldap.add_entry(username, password)
    pam = PamStack(f"myproxy-{site_name}").add(
        Control.SUFFICIENT, LdapPamModule(ldap)
    )
    endpoint = install_gcmu(
        world,
        host,
        site_name,
        accounts,
        pam,
        register_with=register_with,
        endpoint_name=endpoint_name,
        dcsc_enabled=dcsc_enabled,
        charge_install_time=charge_install_time,
    )
    for username in users:
        endpoint.make_home(username)
    return endpoint
