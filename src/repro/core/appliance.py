"""The GCMU virtual appliance (paper Section VIII future work).

"We will also create a virtual appliance consisting of a virtual
machine image that includes GCMU and a simple web-based (and command
line) administrative console for configuring the virtual appliance."

:class:`ApplianceImage` is the distributable artifact: a frozen
configuration that, when booted onto a host, provisions a complete GCMU
deployment (optionally with the packaged OAuth server) and brings up an
:class:`AdminConsole`.  The console exposes the operations a site admin
actually needs — status, user management, Globus Online visibility,
trust-root additions, service restarts — as both a command-line
interface (text in/out) and a REST-ish one (dicts in/out), mirroring
the "web-based (and command line)" phrasing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.auth.accounts import AccountDatabase
from repro.auth.backends import HtpasswdFile, HtpasswdPamModule
from repro.auth.pam import Control, PamStack
from repro.core.gcmu import GCMUEndpoint, install_gcmu
from repro.errors import ReproError
from repro.pki.certificate import Certificate

if TYPE_CHECKING:  # pragma: no cover
    from repro.globusonline.service import GlobusOnline
    from repro.sim.world import World


@dataclass(frozen=True)
class ApplianceImage:
    """A bootable GCMU appliance image.

    The image is configuration, not state: booting the same image on two
    hosts yields two independent sites with the same settings.
    """

    site_name: str
    version: str = "1.0"
    with_oauth: bool = True
    gridftp_port: int = 2811
    myproxy_port: int = 7512
    oauth_port: int = 443
    preloaded_users: tuple[tuple[str, str], ...] = ()  # (username, password)

    def boot(
        self,
        world: "World",
        host: str,
        register_with: "GlobusOnline | None" = None,
        endpoint_name: str | None = None,
    ) -> "GCMUAppliance":
        """Instantiate the image on ``host``; returns the running appliance."""
        accounts = AccountDatabase()
        htfile = HtpasswdFile()
        for username, password in self.preloaded_users:
            accounts.add_user(username)
            htfile.set_password(username, password)
        pam = PamStack(f"appliance-{self.site_name}").add(
            Control.SUFFICIENT, HtpasswdPamModule(htfile)
        )
        endpoint = install_gcmu(
            world,
            host,
            self.site_name,
            accounts,
            pam,
            gridftp_port=self.gridftp_port,
            myproxy_port=self.myproxy_port,
            register_with=register_with,
            endpoint_name=endpoint_name,
            with_oauth=self.with_oauth,
            oauth_port=self.oauth_port,
            charge_install_time=False,  # the appliance boots, it doesn't build
        )
        for username, _ in self.preloaded_users:
            endpoint.make_home(username)
        appliance = GCMUAppliance(
            world=world, image=self.version, endpoint=endpoint, htpasswd=htfile
        )
        world.emit("gcmu.appliance.boot", "appliance booted",
                   site=self.site_name, host=host, version=self.version,
                   oauth=self.with_oauth)
        return appliance


@dataclass
class GCMUAppliance:
    """A booted appliance: the GCMU endpoint plus its admin console."""

    world: "World"
    image: str
    endpoint: GCMUEndpoint
    htpasswd: HtpasswdFile
    restarts: int = 0

    @property
    def console(self) -> "AdminConsole":
        """The admin console bound to this appliance."""
        return AdminConsole(self)


@dataclass
class AdminConsole:
    """The appliance's administrative console.

    ``api_*`` methods are the web (REST-shaped) interface; :meth:`run`
    dispatches CLI command lines onto them.
    """

    appliance: GCMUAppliance
    audit_log: list[str] = field(default_factory=list)

    # -- web/REST interface ------------------------------------------------

    def api_status(self) -> dict[str, Any]:
        """GET /status — service health and configuration."""
        ep = self.appliance.endpoint
        # listener presence is the ground truth for "running"
        listeners = ep.world.network.listeners
        gridftp_up = ep.server.address in listeners
        myproxy_up = ep.myproxy.address in listeners
        oauth_up = ep.oauth is not None and ep.oauth.address in listeners
        return {
            "site": ep.site_name,
            "host": ep.host,
            "image_version": self.appliance.image,
            "gridftp": {"address": f"{ep.host}:{ep.server.port}", "up": gridftp_up},
            "myproxy": {"address": f"{ep.host}:{ep.myproxy.port}", "up": myproxy_up},
            "oauth": ({"address": f"{ep.host}:{ep.oauth.port}", "up": oauth_up}
                      if ep.oauth is not None else None),
            "users": len(ep.accounts),
            "credentials_issued": ep.myproxy.issued_count,
            "restarts": self.appliance.restarts,
            "registered_endpoint": (ep.endpoint_info.name
                                    if ep.endpoint_info else None),
        }

    def api_add_user(self, username: str, password: str) -> dict[str, Any]:
        """POST /users — create an account + home directory."""
        ep = self.appliance.endpoint
        ep.accounts.add_user(username)
        self.appliance.htpasswd.set_password(username, password)
        ep.make_home(username)
        self._audit(f"add-user {username}")
        return {"added": username, "home": ep.accounts.get(username).home}

    def api_lock_user(self, username: str) -> dict[str, Any]:
        """POST /users/<u>/lock."""
        self.appliance.endpoint.accounts.lock(username)
        self._audit(f"lock-user {username}")
        return {"locked": username}

    def api_unlock_user(self, username: str) -> dict[str, Any]:
        """POST /users/<u>/unlock."""
        self.appliance.endpoint.accounts.unlock(username)
        self._audit(f"unlock-user {username}")
        return {"unlocked": username}

    def api_trust_ca(self, certificate: Certificate) -> dict[str, Any]:
        """Add an external CA to the endpoint's trust roots."""
        self.appliance.endpoint.server.trust.add_anchor(certificate)
        self._audit(f"trust-ca {certificate.subject}")
        return {"trusted": str(certificate.subject),
                "anchors": len(self.appliance.endpoint.server.trust)}

    def api_register(self, service: "GlobusOnline", endpoint_name: str) -> dict[str, Any]:
        """Publish (or republish) the endpoint on Globus Online."""
        from repro.core.endpoint import EndpointInfo

        ep = self.appliance.endpoint
        info = EndpointInfo(
            name=endpoint_name,
            display_name=f"{ep.site_name} appliance",
            gridftp_address=ep.server.address,
            myproxy_address=ep.myproxy.address,
            oauth_address=ep.oauth.address if ep.oauth is not None else None,
            site=ep.site_name,
        )
        service.register_endpoint(info, ep, oauth=ep.oauth)
        ep.endpoint_info = info
        self._audit(f"register {endpoint_name}")
        return {"registered": endpoint_name}

    def api_restart_services(self) -> dict[str, Any]:
        """Bounce GridFTP + MyProxy (+OAuth): sessions drop, ports rebind."""
        ep = self.appliance.endpoint
        ep.server.stop()
        ep.myproxy.stop()
        if ep.oauth is not None:
            ep.oauth.stop()
        self.appliance.world.advance(5.0)  # the classic service bounce
        ep.server.start()
        ep.myproxy.start()
        if ep.oauth is not None:
            ep.oauth.start()
        self.appliance.restarts += 1
        self._audit("restart-services")
        return {"restarted": True, "count": self.appliance.restarts}

    # -- CLI interface ---------------------------------------------------------

    def run(self, command_line: str) -> str:
        """Dispatch one console command; returns its text output."""
        parts = command_line.split()
        if not parts:
            raise ReproError("empty console command")
        verb, args = parts[0], parts[1:]
        if verb == "status":
            status = self.api_status()
            lines = [f"{k}: {v}" for k, v in status.items()]
            return "\n".join(lines)
        if verb == "add-user" and len(args) == 2:
            out = self.api_add_user(args[0], args[1])
            return f"user {out['added']} created (home {out['home']})"
        if verb == "lock-user" and len(args) == 1:
            return f"user {self.api_lock_user(args[0])['locked']} locked"
        if verb == "unlock-user" and len(args) == 1:
            return f"user {self.api_unlock_user(args[0])['unlocked']} unlocked"
        if verb == "restart-services" and not args:
            out = self.api_restart_services()
            return f"services restarted (restart #{out['count']})"
        if verb == "help":
            return ("commands: status | add-user <u> <pw> | lock-user <u> | "
                    "unlock-user <u> | restart-services | help")
        raise ReproError(f"unknown console command: {command_line!r}")

    def _audit(self, entry: str) -> None:
        self.audit_log.append(entry)
        self.appliance.world.emit("gcmu.appliance.admin", entry,
                                  site=self.appliance.endpoint.site_name)
