"""GCMU client tools (Section IV.E).

``install_client`` models the client-side tarball install; the returned
:class:`GCMUClientTools` bundles the two commands a user then runs:
``myproxy-logon`` (site username/password → short-lived credential, with
trust bootstrap) and ``globus-url-copy`` (via a ready-made
:class:`~repro.gridftp.client.GridFTPClient`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.gcmu import GCMUEndpoint
from repro.core.installer import gcmu_user_steps
from repro.gridftp.client import ClientSession, GridFTPClient
from repro.gridftp.transfer import TransferOptions, TransferResult
from repro.gsi.credentials import CredentialStore
from repro.myproxy.client import myproxy_logon
from repro.pki.validation import TrustStore
from repro.storage.dsi import DataStorageInterface
from repro.storage.posix import PosixStorage
from repro.util.units import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass
class GCMUClientTools:
    """What the client install leaves on the user's machine."""

    world: "World"
    host: str
    username: str
    store: CredentialStore
    trust: TrustStore
    local_storage: DataStorageInterface

    def myproxy_logon(
        self,
        endpoint: GCMUEndpoint | tuple[str, int],
        site_username: str,
        password: str,
        lifetime_s: float | None = None,
    ):
        """Run ``myproxy-logon -b -T -s <server>`` against a GCMU site."""
        address = (
            endpoint.myproxy_address if isinstance(endpoint, GCMUEndpoint) else endpoint
        )
        credential = myproxy_logon(
            self.world,
            self.host,
            address,
            site_username,
            password,
            lifetime_s=lifetime_s,
            trust=self.trust,  # -b: bootstrap the site CA into our trust roots
        )
        self.store.install_proxy(credential)
        return credential

    def gridftp_client(self) -> GridFTPClient:
        """A GridFTP client using the active (myproxy-issued) credential."""
        return GridFTPClient(
            self.world,
            self.host,
            credential=self.store.active_credential(),
            trust=self.trust,
            local_storage=self.local_storage,
            username=self.username,
        )

    def connect(self, endpoint: GCMUEndpoint) -> ClientSession:
        """Open a logged-in session to a GCMU endpoint's GridFTP server."""
        return self.gridftp_client().connect(endpoint.server)

    def globus_url_copy(
        self, src_url: str, dst_url: str, options: TransferOptions | None = None
    ) -> TransferResult:
        """The Section IV.E transfer command."""
        from repro.gridftp.client import globus_url_copy as _guc

        return _guc(self.world, src_url, dst_url, self.gridftp_client(), options)


def install_client(
    world: "World",
    host: str,
    username: str = "user",
    local_storage: DataStorageInterface | None = None,
    charge_install_time: bool = True,
) -> GCMUClientTools:
    """Download + install the GCMU client tools on ``host``."""
    if charge_install_time:
        install_step = gcmu_user_steps()[0]
        world.advance(install_step.minutes * MINUTE)
    storage = local_storage if local_storage is not None else PosixStorage(world.clock)
    tools = GCMUClientTools(
        world=world,
        host=host,
        username=username,
        store=CredentialStore(username, world.clock, world.rng.python(f"client:{username}")),
        trust=TrustStore(),
        local_storage=storage,
    )
    world.emit("gcmu.client.install", "client tools installed", host=host, user=username)
    return tools
