"""Endpoint descriptors for Globus Online registration.

"GCMU has an option in the installation to make the server available as
an endpoint on Globus Online" (paper Section VI.B).  An
:class:`EndpointInfo` is the record that registration publishes: where
the GridFTP server listens, where the MyProxy Online CA listens (so the
hosted service can run activations), and whether the site runs an OAuth
server (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EndpointInfo:
    """A published Globus Online endpoint."""

    name: str  # e.g. "alcf#dtn1"
    display_name: str
    gridftp_address: tuple[str, int]
    myproxy_address: tuple[str, int] | None = None
    oauth_address: tuple[str, int] | None = None
    site: str = ""

    @property
    def supports_activation(self) -> bool:
        """Can Globus Online obtain short-term credentials here?"""
        return self.myproxy_address is not None

    @property
    def supports_oauth(self) -> bool:
        """True when a site OAuth server is published."""
        return self.oauth_address is not None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        host, port = self.gridftp_address
        return f"{self.name} (gsiftp://{host}:{port})"
