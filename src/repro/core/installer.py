"""Install-process step models: conventional GridFTP vs GCMU vs GridFTP-Lite.

Paper Section III.A enumerates the conventional process — installation
steps (a)-(d), security configuration steps (e)-(h), and the per-user
certificate ordeal — and Section IV.D/E shows GCMU's replacement (four
shell commands server-side; install + ``myproxy-logon`` client-side).
The setup benchmark (CLAIM-SETUP in DESIGN.md) totals these.

Durations are order-of-magnitude estimates grounded in the paper's
qualitative claims ("time consuming", "out-of-band vetting", "too
complex for many users"); the benchmark compares *totals and expert-step
counts across methods*, which is robust to the exact minute values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.units import DAY, MINUTE


class StepCategory(enum.Enum):
    """What kind of work a step is."""

    SOFTWARE = "software"  # download/build/install
    SECURITY = "security"  # PKI/certificate/trust configuration
    ADMIN_COORD = "admin-coordination"  # emailing admins, waiting for humans


@dataclass(frozen=True)
class InstallStep:
    """One step of a deployment procedure."""

    name: str
    minutes: float
    expert: bool  # requires sysadmin/PKI expertise
    category: StepCategory
    per_user: bool = False  # repeated for every user at the site

    @property
    def seconds(self) -> float:
        """Step duration in seconds."""
        return self.minutes * MINUTE


# ---------------------------------------------------------------------------
# Conventional GridFTP (Section III.A)
# ---------------------------------------------------------------------------


def conventional_admin_steps() -> list[InstallStep]:
    """Steps (a)-(h): install + security configuration, admin side."""
    return [
        # 1. installation, steps (a)-(d)
        InstallStep("(a) download Globus", 5, False, StepCategory.SOFTWARE),
        InstallStep("(b) untar the Globus tar file", 1, False, StepCategory.SOFTWARE),
        InstallStep("(c) run configure", 10, True, StepCategory.SOFTWARE),
        InstallStep("(d) run make and make install", 30, True, StepCategory.SOFTWARE),
        # 2. security configuration, steps (e)-(h)
        InstallStep(
            "(e) obtain X.509 host certificate from a well-known CA "
            "(CSR, out-of-band vetting)",
            2 * DAY / MINUTE,
            True,
            StepCategory.SECURITY,
        ),
        InstallStep("(f) install the X.509 host certificate", 10, True, StepCategory.SECURITY),
        InstallStep(
            "(g) configure the trusted certificates directory", 15, True, StepCategory.SECURITY
        ),
        InstallStep(
            "(h) generate gridmap DN-to-account mappings",
            5,
            True,
            StepCategory.SECURITY,
            per_user=True,
        ),
    ]


def conventional_user_steps() -> list[InstallStep]:
    """Section III.A item 3: what *each user* must do."""
    return [
        InstallStep(
            "obtain X.509 user certificate from a well-known CA "
            "(key pair, CSR, vetting, browser export, OpenSSL format dance)",
            1 * DAY / MINUTE,
            True,
            StepCategory.SECURITY,
            per_user=True,
        ),
        InstallStep("install the user certificate", 15, True, StepCategory.SECURITY, per_user=True),
        InstallStep(
            "configure the trusted certificates directory", 15, True, StepCategory.SECURITY,
            per_user=True,
        ),
        InstallStep(
            "send the certificate DN to the server admin for mapping",
            30,
            False,
            StepCategory.ADMIN_COORD,
            per_user=True,
        ),
    ]


# ---------------------------------------------------------------------------
# GCMU (Section IV.D/E)
# ---------------------------------------------------------------------------


def gcmu_admin_steps() -> list[InstallStep]:
    """The four server-side commands of Section IV.D."""
    return [
        InstallStep("wget the GCMU tarball", 2, False, StepCategory.SOFTWARE),
        InstallStep("tar -xvzf", 1, False, StepCategory.SOFTWARE),
        InstallStep("cd gcmu*", 0.1, False, StepCategory.SOFTWARE),
        InstallStep("sudo ./install", 5, False, StepCategory.SOFTWARE),
    ]


def gcmu_user_steps() -> list[InstallStep]:
    """Section IV.E: install the client, myproxy-logon with site password."""
    return [
        InstallStep("download + install GCMU client tools", 5, False, StepCategory.SOFTWARE,
                    per_user=True),
        InstallStep("myproxy-logon with site username/password", 1, False, StepCategory.SECURITY,
                    per_user=True),
    ]


# ---------------------------------------------------------------------------
# GridFTP-Lite (Section III.B.1)
# ---------------------------------------------------------------------------


def gridftp_lite_admin_steps() -> list[InstallStep]:
    """SSH-based GridFTP: software install only, no X.509 setup."""
    return [
        InstallStep("install GridFTP-Lite packages", 15, False, StepCategory.SOFTWARE),
        InstallStep("verify sshd reachable for users", 5, False, StepCategory.SOFTWARE),
    ]


def gridftp_lite_user_steps() -> list[InstallStep]:
    """Per-user GridFTP-Lite setup steps."""
    return [
        InstallStep("install GridFTP-Lite client", 5, False, StepCategory.SOFTWARE, per_user=True),
        InstallStep("confirm SSH login works", 2, False, StepCategory.SECURITY, per_user=True),
    ]


# ---------------------------------------------------------------------------
# totals
# ---------------------------------------------------------------------------


def total_minutes(steps: list[InstallStep], users: int = 1) -> float:
    """Total wall-clock minutes for ``users`` site users."""
    total = 0.0
    for step in steps:
        total += step.minutes * (users if step.per_user else 1)
    return total


def expert_step_count(steps: list[InstallStep], users: int = 1) -> int:
    """How many expert-skill actions the procedure demands."""
    count = 0
    for step in steps:
        if step.expert:
            count += users if step.per_user else 1
    return count


def step_count(steps: list[InstallStep], users: int = 1) -> int:
    """Total actions (per-user steps multiplied out)."""
    return sum((users if s.per_user else 1) for s in steps)
