"""The GCMU installer and endpoint object.

``install_gcmu`` is the programmatic equivalent of ``sudo ./install``:
one call provisions, on one host,

1. a MyProxy Online CA wired to the site's PAM stack (Figure 3 steps
   1-3),
2. a GridFTP server whose trust directory contains exactly the local
   MyProxy CA (no external CAs to curate — step (g) gone), whose host
   certificate is *issued by that same CA* (step (e)/(f) gone), and
   whose authorization callout parses usernames from MyProxy-issued DNs
   (step (h), the gridmap, gone),
3. optionally, a Globus Online endpoint registration (Section VI.B).

The call advances the virtual clock by the install duration, so
time-to-first-transfer benchmarks can measure the whole "instant" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.auth.accounts import AccountDatabase
from repro.auth.pam import PamStack
from repro.core.authz_callout import MyProxyDNCallout
from repro.core.endpoint import EndpointInfo
from repro.core.installer import gcmu_admin_steps, total_minutes
from repro.gridftp.server import GridFTPServer
from repro.gsi.gridmap import Gridmap
from repro.myproxy.server import MyProxyOnlineCA
from repro.pki.validation import TrustStore
from repro.storage.dsi import DataStorageInterface
from repro.storage.posix import PosixStorage
from repro.util.units import MINUTE

if TYPE_CHECKING:  # pragma: no cover
    from repro.globusonline.service import GlobusOnline
    from repro.sim.world import World


@dataclass
class GCMUEndpoint:
    """Everything ``sudo ./install`` left running on the host."""

    world: "World"
    site_name: str
    host: str
    myproxy: MyProxyOnlineCA
    server: GridFTPServer
    storage: DataStorageInterface
    accounts: AccountDatabase
    endpoint_info: EndpointInfo | None = None
    #: present when installed with ``with_oauth=True`` (the Section VIII
    #: future-work packaging, implemented here)
    oauth: "object | None" = None

    @property
    def gridftp_address(self) -> tuple[str, int]:
        """The GridFTP server's (host, port)."""
        return self.server.address

    @property
    def myproxy_address(self) -> tuple[str, int]:
        """The MyProxy CA's (host, port)."""
        return self.myproxy.address

    def make_home(self, username: str) -> None:
        """Provision a home directory owned by the account (admin helper)."""
        account = self.accounts.get(username)
        storage = self.storage
        mk = getattr(storage, "makedirs", None)
        if mk is not None:
            mk(account.home, 0)
        chown = getattr(storage, "chown", None)
        if chown is None and hasattr(storage, "inner"):
            chown = storage.inner.chown
        if chown is not None:
            chown(account.home, account.uid)

    def stop(self) -> None:
        """Release the listening port."""
        self.server.stop()
        self.myproxy.stop()
        if self.oauth is not None:
            self.oauth.stop()


def install_gcmu(
    world: "World",
    host: str,
    site_name: str,
    accounts: AccountDatabase,
    pam: PamStack,
    storage: DataStorageInterface | None = None,
    gridftp_port: int = GridFTPServer.DEFAULT_PORT,
    myproxy_port: int = MyProxyOnlineCA.DEFAULT_PORT,
    register_with: "GlobusOnline | None" = None,
    endpoint_name: str | None = None,
    dcsc_enabled: bool = True,
    usage_reporting: bool = True,
    gridmap_fallback: Gridmap | None = None,
    extra_trust_anchors: tuple = (),
    charge_install_time: bool = True,
    with_oauth: bool = False,
    oauth_port: int = 443,
) -> GCMUEndpoint:
    """Provision a complete GCMU deployment on ``host``.

    ``extra_trust_anchors`` lets a site additionally accept external CAs
    (with the gridmap fallback handling their mappings) — GCMU does not
    *forbid* conventional trust, it just makes it unnecessary.

    ``with_oauth=True`` also packages a site OAuth server (the paper's
    Section VIII plan: "we plan to package an OAuth server in GCMU so
    that this feature ... is available automatically"); Globus Online
    registration then advertises OAuth activation out of the box.
    """
    if charge_install_time:
        world.advance(total_minutes(gcmu_admin_steps()) * MINUTE)

    # 1. MyProxy Online CA tied to the local identity domain via PAM
    myproxy = MyProxyOnlineCA(world, host, site_name, pam, port=myproxy_port).start()

    # 2. host credential issued by the local CA — no external CA enrollment
    host_subject = myproxy.ca.subject.parent().with_cn(f"host-{host}")
    # the CA's namespace policy covers /O=GCMU/OU=<site>/*, which includes hosts
    host_credential = myproxy.ca.issue_credential(host_subject)

    # 3. trust directory: exactly the local CA (plus any site extras)
    trust = TrustStore()
    trust.add_anchor(myproxy.ca.certificate, policy=myproxy.ca.policy)
    for anchor in extra_trust_anchors:
        trust.add_anchor(anchor)

    # 4. the custom AUTHZ callout — no gridmap needed
    authz = MyProxyDNCallout(myproxy.ca.certificate, fallback=gridmap_fallback)

    storage = storage if storage is not None else PosixStorage(world.clock)
    server = GridFTPServer(
        world,
        host,
        host_credential,
        trust,
        authz,
        accounts,
        storage,
        port=gridftp_port,
        dcsc_enabled=dcsc_enabled,
        usage_reporting=usage_reporting,
        name=f"gcmu@{site_name}",
    ).start()

    oauth = None
    if with_oauth:
        from repro.globusonline.oauth import OAuthServer

        oauth = OAuthServer(world, host, myproxy, port=oauth_port).start()

    endpoint = GCMUEndpoint(
        world=world,
        site_name=site_name,
        host=host,
        myproxy=myproxy,
        server=server,
        storage=storage,
        accounts=accounts,
        oauth=oauth,
    )
    world.emit(
        "gcmu.install",
        "GCMU installed",
        site=site_name,
        host=host,
        gridftp=f"{host}:{gridftp_port}",
        myproxy=f"{host}:{myproxy_port}",
        oauth=bool(oauth),
    )

    if register_with is not None:
        info = EndpointInfo(
            name=endpoint_name or f"{site_name}#{host}",
            display_name=f"{site_name} GCMU endpoint",
            gridftp_address=server.address,
            myproxy_address=myproxy.address,
            oauth_address=oauth.address if oauth is not None else None,
            site=site_name,
        )
        register_with.register_endpoint(info, endpoint, oauth=oauth)
        endpoint.endpoint_info = info
    return endpoint
