"""GCMU's custom authorization callout.

Paper Section IV.C: "In GCMU, we eliminate the need for a Gridmap file;
instead, user certificates are issued by the local MyProxy Online CA.
We configure the MyProxy Online CA to include the local username in the
certificate's subject.  In addition, we have developed a custom
authorization callout in GridFTP that picks up the local user id from
the certificate subject if the certificate is signed by the local
MyProxy Online CA."

The "signed by the local CA" check is done on the *validation anchor*,
not on any claim inside the certificate: only chains that terminated at
the site's own MyProxy CA certificate get the DN-parsing shortcut.
Anything else falls back to an optional gridmap (for sites that also
accept external CAs) or is refused.
"""

from __future__ import annotations

from repro.errors import AuthorizationError
from repro.gsi.authz import AuthorizationCallout
from repro.gsi.gridmap import Gridmap
from repro.pki.certificate import Certificate
from repro.pki.validation import ValidationResult


class MyProxyDNCallout(AuthorizationCallout):
    """Username = final CN of the DN, iff the local MyProxy CA signed it."""

    name = "gcmu-myproxy-dn"

    def __init__(self, ca_certificate: Certificate, fallback: Gridmap | None = None) -> None:
        self.ca_fingerprint = ca_certificate.fingerprint()
        self.ca_subject = ca_certificate.subject
        self.fallback = fallback

    def map_subject(
        self, result: ValidationResult, requested_user: str | None = None
    ) -> str:
        """Map an authenticated subject to a local username."""
        if result.anchor.fingerprint() == self.ca_fingerprint:
            username = result.identity.common_name
            if not username:
                raise AuthorizationError(
                    f"MyProxy-issued subject {result.identity} has no CN to map"
                )
            if requested_user is not None and requested_user != username:
                raise AuthorizationError(
                    f"{result.identity} is mapped to {username!r}, "
                    f"not the requested {requested_user!r}"
                )
            return username
        if self.fallback is not None:
            if requested_user is not None:
                if self.fallback.authorize(result.identity, requested_user):
                    return requested_user
                raise AuthorizationError(
                    f"{result.identity} is not mapped to account {requested_user!r}"
                )
            return self.fallback.lookup(result.identity)
        raise AuthorizationError(
            f"{result.identity} was not issued by the local MyProxy CA "
            f"({self.ca_subject}) and no gridmap fallback is configured"
        )
