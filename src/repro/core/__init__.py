"""Globus Connect Multi User (GCMU) — the paper's primary contribution.

GCMU "combines a GridFTP server, a MyProxy Online Certificate Authority
server, and a custom authorization callout for GridFTP" (Section IV,
Figure 3) so that neither users nor administrators ever touch PKI
configuration:

* :mod:`repro.core.gcmu` — the one-call installer that provisions and
  wires all three components;
* :mod:`repro.core.authz_callout` — the callout that parses the local
  username out of a MyProxy-issued DN (no gridmap file);
* :mod:`repro.core.installer` — the step model of conventional vs GCMU
  installation (Section III.A vs IV.D/E), behind the setup benchmark;
* :mod:`repro.core.client_tools` — the GCMU client install +
  myproxy-logon + transfer convenience path;
* :mod:`repro.core.endpoint` — endpoint descriptors for Globus Online
  registration.
"""

from repro.core.gcmu import GCMUEndpoint, install_gcmu
from repro.core.appliance import AdminConsole, ApplianceImage, GCMUAppliance
from repro.core.authz_callout import MyProxyDNCallout
from repro.core.installer import (
    InstallStep,
    StepCategory,
    conventional_admin_steps,
    conventional_user_steps,
    gcmu_admin_steps,
    gcmu_user_steps,
    gridftp_lite_admin_steps,
    gridftp_lite_user_steps,
    total_minutes,
    expert_step_count,
)
from repro.core.client_tools import GCMUClientTools, install_client
from repro.core.endpoint import EndpointInfo

__all__ = [
    "GCMUEndpoint",
    "install_gcmu",
    "ApplianceImage",
    "GCMUAppliance",
    "AdminConsole",
    "MyProxyDNCallout",
    "InstallStep",
    "StepCategory",
    "conventional_admin_steps",
    "conventional_user_steps",
    "gcmu_admin_steps",
    "gcmu_user_steps",
    "gridftp_lite_admin_steps",
    "gridftp_lite_user_steps",
    "total_minutes",
    "expert_step_count",
    "GCMUClientTools",
    "install_client",
    "EndpointInfo",
]
