"""repro — a full reproduction of "Instant GridFTP" (Kettimuthu et al., 2012).

The package implements, in simulation, the complete system the paper
describes: the Globus GridFTP protocol stack (parallel streams,
striping, pipelining, restart markers, DCAU, and the new DCSC command),
the GSI/PKI security substrate, MyProxy Online CA with PAM-backed site
authentication, the GCMU packaging that wires them together with zero
PKI configuration, the Globus Online hosted transfer service (with
OAuth), and every baseline tool the paper compares against.

Quickstart (see ``examples/quickstart.py`` for the full version)::

    from repro import World, install_gcmu, install_client
    from repro.auth import AccountDatabase, PamStack, Control
    from repro.auth import LdapDirectory, LdapPamModule
    from repro.util.units import gbps

    world = World(seed=1)
    world.network.add_host("dtn.site.edu", nic_bps=gbps(10))
    world.network.add_host("laptop")
    world.network.add_link("dtn.site.edu", "laptop", gbps(1), 0.01)

    accounts = AccountDatabase(); accounts.add_user("alice")
    ldap = LdapDirectory(); ldap.add_entry("alice", "s3cret")
    pam = PamStack().add(Control.SUFFICIENT, LdapPamModule(ldap))

    endpoint = install_gcmu(world, "dtn.site.edu", "siteX", accounts, pam)
    tools = install_client(world, "laptop", username="alice")
    tools.myproxy_logon(endpoint, "alice", "s3cret")
    tools.globus_url_copy("gsiftp://dtn.site.edu:2811/path", "file:///path")
"""

from repro.sim.world import World
from repro.core.gcmu import GCMUEndpoint, install_gcmu
from repro.core.client_tools import GCMUClientTools, install_client
from repro.gridftp.client import GridFTPClient, globus_url_copy
from repro.gridftp.server import GridFTPServer
from repro.gridftp.striped import StripedGridFTPServer
from repro.gridftp.transfer import TransferOptions, TransferResult
from repro.gridftp.third_party import third_party_transfer
from repro.globusonline.service import GlobusOnline
from repro.myproxy.client import myproxy_logon
from repro.myproxy.server import MyProxyOnlineCA

__version__ = "1.0.0"

__all__ = [
    "World",
    "GCMUEndpoint",
    "install_gcmu",
    "GCMUClientTools",
    "install_client",
    "GridFTPClient",
    "globus_url_copy",
    "GridFTPServer",
    "StripedGridFTPServer",
    "TransferOptions",
    "TransferResult",
    "third_party_transfer",
    "GlobusOnline",
    "myproxy_logon",
    "MyProxyOnlineCA",
    "__version__",
]
