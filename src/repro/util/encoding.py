"""Base64 and PEM-style encodings.

The DCSC command (paper Section V) mandates that the context blob be
"composed of only printable ASCII (32-126) characters, such as base64
encoding would produce"; certificates and keys travel in "PEM format".
We implement both framings here, over a canonical JSON serialization of
our certificate/key objects, so that everything that goes on the wire is
printable and round-trips exactly.
"""

from __future__ import annotations

import base64
import json
import re
from typing import Any

from repro.errors import ProtocolError

_PEM_LINE = 64


def b64encode_str(data: bytes) -> str:
    """Encode bytes as standard base64 text (no line breaks)."""
    return base64.b64encode(data).decode("ascii")


def b64decode_str(text: str) -> bytes:
    """Decode base64 text produced by :func:`b64encode_str`.

    Raises :class:`ProtocolError` on malformed input so protocol layers can
    answer with a 5xx reply instead of leaking a ``binascii`` error.
    """
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except Exception as exc:  # binascii.Error or UnicodeEncodeError
        raise ProtocolError(f"invalid base64 payload: {exc}", code=501) from exc


_NON_PRINTABLE = re.compile(r"[^\x20-\x7e]")


def is_printable_ascii(text: str) -> bool:
    """True iff every character is in the printable ASCII range 32..126."""
    return _NON_PRINTABLE.search(text) is None


def pem_encode(label: str, der: bytes) -> str:
    """Wrap ``der`` bytes in a PEM block with the given label.

    >>> pem_encode("CERTIFICATE", b"hi").startswith("-----BEGIN CERTIFICATE-----")
    True
    """
    body = base64.b64encode(der).decode("ascii")
    # base64 has no whitespace, so fixed-width slicing matches textwrap
    wrapped = "\n".join(
        body[i : i + _PEM_LINE] for i in range(0, len(body), _PEM_LINE)
    )
    return f"-----BEGIN {label}-----\n{wrapped}\n-----END {label}-----\n"


def pem_decode(text: str, expected_label: str | None = None) -> tuple[str, bytes]:
    """Decode the *first* PEM block in ``text`` -> (label, der bytes)."""
    blocks = pem_decode_all(text)
    if not blocks:
        raise ProtocolError("no PEM block found", code=501)
    label, der = blocks[0]
    if expected_label is not None and label != expected_label:
        raise ProtocolError(
            f"expected PEM label {expected_label!r}, found {label!r}", code=501
        )
    return label, der


def pem_decode_all(text: str) -> list[tuple[str, bytes]]:
    """Decode every PEM block in ``text``, in order of appearance.

    The DCSC P blob is "an X.509 certificate in PEM format, a private key
    in PEM format, additional X.509 certificates in PEM format, unordered" —
    i.e. a concatenation of PEM blocks, which this parses.
    """
    blocks: list[tuple[str, bytes]] = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if line.startswith("-----BEGIN ") and line.endswith("-----"):
            label = line[len("-----BEGIN ") : -len("-----")]
            end_marker = f"-----END {label}-----"
            body_lines: list[str] = []
            i += 1
            while i < len(lines) and lines[i].strip() != end_marker:
                body_lines.append(lines[i].strip())
                i += 1
            if i >= len(lines):
                raise ProtocolError(f"unterminated PEM block {label!r}", code=501)
            body = "".join(body_lines)
            try:
                der = base64.b64decode(body.encode("ascii"), validate=True)
            except Exception as exc:
                raise ProtocolError(f"corrupt PEM body in {label!r} block", code=501) from exc
            blocks.append((label, der))
        i += 1
    return blocks


def canonical_json(obj: Any) -> bytes:
    """Serialize ``obj`` to deterministic JSON bytes.

    Used as the to-be-signed encoding for certificates: the same logical
    content always produces the same bytes, so signatures are stable.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")


def from_canonical_json(data: bytes) -> Any:
    """Inverse of :func:`canonical_json`."""
    try:
        return json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed canonical JSON: {exc}", code=501) from exc
