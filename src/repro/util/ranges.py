"""Half-open byte-range sets.

The algebra behind GridFTP restart markers: a receiver accumulates the
ranges it has safely written; after an interruption the client asks for
the *complement*.  Ranges are half-open ``[start, end)`` and stored
coalesced (sorted, non-overlapping, non-adjacent), so equality of sets
is equality of content.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Iterator

#: sorts after any real end offset, so (start, _INF) bisects past every
#: range whose start is <= start
_INF = float("inf")


class ByteRangeSet:
    """A coalesced set of half-open byte ranges."""

    def __init__(self, ranges: Iterable[tuple[int, int]] = ()) -> None:
        self._ranges: list[tuple[int, int]] = []
        for start, end in ranges:
            self.add(start, end)

    # -- mutation ---------------------------------------------------------

    def add(self, start: int, end: int) -> None:
        """Insert [start, end); merges with overlapping/adjacent ranges."""
        if start < 0 or end < start:
            raise ValueError(f"invalid range [{start}, {end})")
        if start == end:
            return
        merged: list[tuple[int, int]] = []
        placed = False
        for s, e in self._ranges:
            if e < start or s > end:  # disjoint and non-adjacent
                if s > end and not placed:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:  # overlap or adjacency: absorb
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
        merged.sort()
        self._ranges = merged

    def update(self, other: "ByteRangeSet") -> None:
        """In-place union."""
        for s, e in other:
            self.add(s, e)

    # -- queries ---------------------------------------------------------------

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ByteRangeSet):
            return NotImplemented
        return self._ranges == other._ranges

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ByteRangeSet({self._ranges!r})"

    @property
    def ranges(self) -> list[tuple[int, int]]:
        """The coalesced (start, end) pairs, sorted."""
        return list(self._ranges)

    def total_bytes(self) -> int:
        """Sum of range lengths."""
        return sum(e - s for s, e in self._ranges)

    def contains(self, start: int, end: int) -> bool:
        """True iff [start, end) is fully covered."""
        if start == end:
            return True
        # ranges are sorted, coalesced, and disjoint: [start, end) is
        # covered iff the last range starting at or before start reaches end
        i = bisect_right(self._ranges, (start, _INF)) - 1
        if i < 0:
            return False
        s, e = self._ranges[i]
        return s <= start and end <= e

    def contains_point(self, offset: int) -> bool:
        """True iff ``offset`` lies inside a range."""
        i = bisect_right(self._ranges, (offset, _INF)) - 1
        if i < 0:
            return False
        s, e = self._ranges[i]
        return s <= offset < e

    def covers(self, size: int) -> bool:
        """True iff [0, size) is fully covered."""
        return size == 0 or self.contains(0, size)

    def complement(self, size: int) -> "ByteRangeSet":
        """The gaps of [0, size) not in this set — what a restart must fetch."""
        out = ByteRangeSet()
        cursor = 0
        for s, e in self._ranges:
            if s >= size:
                break
            if s > cursor:
                out.add(cursor, min(s, size))
            cursor = max(cursor, e)
        if cursor < size:
            out.add(cursor, size)
        return out

    def intersect(self, start: int, end: int) -> "ByteRangeSet":
        """This set clipped to [start, end)."""
        out = ByteRangeSet()
        for s, e in self._ranges:
            lo, hi = max(s, start), min(e, end)
            if lo < hi:
                out.add(lo, hi)
        return out

    def union(self, other: "ByteRangeSet") -> "ByteRangeSet":
        """New set: self | other."""
        out = ByteRangeSet(self._ranges)
        out.update(other)
        return out

    def copy(self) -> "ByteRangeSet":
        """An independent copy."""
        return ByteRangeSet(self._ranges)

    def is_empty(self) -> bool:
        """True when the set holds no ranges."""
        return not self._ranges
