"""Shared low-level helpers: units, encodings, checksums, event logging."""

from repro.util.units import (
    KB,
    MB,
    GB,
    TB,
    PB,
    kbps,
    mbps,
    gbps,
    fmt_bytes,
    fmt_rate,
    fmt_duration,
    DAY,
    HOUR,
    MINUTE,
)
from repro.util.encoding import (
    b64encode_str,
    b64decode_str,
    pem_encode,
    pem_decode,
    pem_decode_all,
    canonical_json,
)
from repro.util.checksums import sha256_hex, crc32_hex, adler32_hex

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "DAY",
    "HOUR",
    "MINUTE",
    "kbps",
    "mbps",
    "gbps",
    "fmt_bytes",
    "fmt_rate",
    "fmt_duration",
    "b64encode_str",
    "b64decode_str",
    "pem_encode",
    "pem_decode",
    "pem_decode_all",
    "canonical_json",
    "sha256_hex",
    "crc32_hex",
    "adler32_hex",
]
