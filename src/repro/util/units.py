"""Byte, bandwidth and time units.

Conventions used throughout the library:

* file and transfer *sizes* are **bytes** (``int``);
* link and flow *rates* are **bits per second** (``float``), because that
  is how network links are specified ("a 10 Gb/s link");
* *times* and *durations* are **seconds** (``float``) on the virtual clock.

The helpers here convert between the two worlds and render values for
benchmark tables.
"""

from __future__ import annotations

# -- sizes (bytes, binary prefixes as is conventional for file sizes) -------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB
PB = 1024 * TB

# -- durations (seconds) -----------------------------------------------------
MINUTE = 60.0
HOUR = 60.0 * MINUTE
DAY = 24.0 * HOUR


def kbps(x: float) -> float:
    """Kilobits per second -> bits per second."""
    return x * 1e3


def mbps(x: float) -> float:
    """Megabits per second -> bits per second."""
    return x * 1e6


def gbps(x: float) -> float:
    """Gigabits per second -> bits per second."""
    return x * 1e9


def bytes_per_second(rate_bps: float) -> float:
    """Convert a bits-per-second rate into bytes per second."""
    return rate_bps / 8.0


def bits(nbytes: int) -> float:
    """Size in bytes -> size in bits."""
    return nbytes * 8.0


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary prefix, e.g. ``1.50 GiB``."""
    n = float(n)
    for unit, size in (("PiB", PB), ("TiB", TB), ("GiB", GB), ("MiB", MB), ("KiB", KB)):
        if abs(n) >= size:
            return f"{n / size:.2f} {unit}"
    return f"{n:.0f} B"


def fmt_rate(bps: float) -> str:
    """Render a bits-per-second rate with a decimal prefix, e.g. ``9.41 Gb/s``."""
    bps = float(bps)
    for unit, size in (("Tb/s", 1e12), ("Gb/s", 1e9), ("Mb/s", 1e6), ("kb/s", 1e3)):
        if abs(bps) >= size:
            return f"{bps / size:.2f} {unit}"
    return f"{bps:.1f} b/s"


def fmt_duration(seconds: float) -> str:
    """Render a duration human-readably, e.g. ``2h 13m``, ``4.21 s``."""
    s = float(seconds)
    if s < 0:
        return "-" + fmt_duration(-s)
    if s < 1e-3:
        return f"{s * 1e6:.1f} us"
    if s < 1.0:
        return f"{s * 1e3:.1f} ms"
    if s < MINUTE:
        return f"{s:.2f} s"
    if s < HOUR:
        m, rem = divmod(s, MINUTE)
        return f"{int(m)}m {rem:.0f}s"
    if s < DAY:
        h, rem = divmod(s, HOUR)
        return f"{int(h)}h {int(rem // MINUTE)}m"
    d, rem = divmod(s, DAY)
    return f"{int(d)}d {int(rem // HOUR)}h"
