"""Deterministic crypto/protocol operation tallies.

Wall-clock benchmarks are machine-dependent; the *number* of RSA
exponentiations, chain walks, and GSI handshakes a scenario performs is
not — every stream in the simulation is seeded, so the same (seed,
scenario) pair executes the identical operation sequence on any machine
or Python version.  The session-layer caches (GSI session resumption,
the control-channel pool, DCAU caching) exist precisely to shrink these
counts, and ``bench_scheduler_fleet --crypto-ops`` gates them in CI:
counts above the committed baseline mean a cache stopped hitting.

Counters are process-global, like the memo layers they observe.  Bump
sites pay one ``Counter.__iadd__`` — noise next to a 512-bit ``pow``.
"""

from __future__ import annotations

from collections import Counter

#: operation name -> count since process start (or last ``reset``)
OPS: Counter[str] = Counter()


def bump(name: str, n: int = 1) -> None:
    """Record ``n`` occurrences of operation ``name``."""
    OPS[name] += n


def snapshot() -> dict[str, int]:
    """A point-in-time copy of every tally."""
    return dict(OPS)


def since(before: dict[str, int]) -> dict[str, int]:
    """Tallies accumulated after ``before`` (a prior :func:`snapshot`)."""
    return {
        name: OPS[name] - before.get(name, 0)
        for name in sorted(set(OPS) | set(before))
        if OPS[name] - before.get(name, 0)
    }


def reset() -> None:
    """Forget every tally (tests and benchmark setup)."""
    OPS.clear()
