"""Structured event log.

Every interesting action in the simulation (handshakes, command exchanges,
transfers, faults, credential issuance) appends an :class:`Event` to the
world's :class:`EventLog`.  Benchmarks and tests query the log to assert
*how* something happened, not only that it happened — e.g. the OAuth bench
counts which parties ever observed a password.

Events optionally carry the active trace context (``trace_id`` /
``span_id`` — see :mod:`repro.telemetry.trace`), so the flat log and the
span tree cross-reference each other, and the whole log exports as JSON
lines for offline analysis.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: category of the synthetic event recorded when a subscriber raises
SUBSCRIBER_ERROR_CATEGORY = "telemetry.subscriber_error"


@dataclass(slots=True)
class Event:
    """One structured log record.

    ``time`` is virtual seconds, ``category`` a dotted topic such as
    ``"gridftp.command"`` or ``"myproxy.issue"``, and ``fields`` arbitrary
    key/value detail.  ``trace_id``/``span_id`` tie the event into the
    tracer's causal tree when it was emitted inside a span.  Treat
    records as immutable once logged: the class is unfrozen only because
    a frozen dataclass pays object.__setattr__ per field on every
    construction, and emit() sits on the fleet hot path.
    """

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)
    trace_id: str | None = None
    span_id: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.3f}] {self.category:<24} {self.message} {kv}".rstrip()

    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dict (trace keys only when set)."""
        out: dict[str, Any] = {
            "time": self.time,
            "category": self.category,
            "message": self.message,
            "fields": dict(self.fields),
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        return out

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Event":
        """Rebuild an event from :meth:`to_dict` output."""
        return Event(
            time=float(data["time"]),
            category=str(data["category"]),
            message=str(data["message"]),
            fields=dict(data.get("fields", {})),
            trace_id=data.get("trace_id"),
            span_id=data.get("span_id"),
        )


class EventLog:
    """Append-only in-memory event log with simple query helpers.

    ``capacity`` bounds memory for fleet-scale runs: when set, the log
    keeps only the newest ``capacity`` events (ring-buffer eviction) and
    counts what it dropped in :attr:`dropped_events`.  The default is
    unbounded, as before.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._events: deque[Event] = deque()
        self._capacity = capacity
        self._subscribers: list[Callable[[Event], None]] = []
        self.dropped_events = 0
        self.subscriber_errors = 0

    # -- capacity -----------------------------------------------------------

    @property
    def capacity(self) -> int | None:
        """Maximum retained events (None = unbounded)."""
        return self._capacity

    def set_capacity(self, capacity: int | None) -> None:
        """Change the retention bound, evicting oldest events if needed."""
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._capacity = capacity
        self._evict()

    def _evict(self) -> None:
        if self._capacity is None:
            return
        while len(self._events) > self._capacity:
            self._events.popleft()
            self.dropped_events += 1

    def _append(self, event: Event) -> None:
        # inline single-step eviction: appends outnumber capacity changes
        # by orders of magnitude, and at steady state exactly one event
        # falls off per append
        self._events.append(event)
        cap = self._capacity
        if cap is not None and len(self._events) > cap:
            self._events.popleft()
            self.dropped_events += 1

    # -- recording ----------------------------------------------------------

    def emit(
        self,
        time: float,
        category: str,
        message: str,
        trace_id: str | None = None,
        span_id: str | None = None,
        **fields: Any,
    ) -> Event:
        """Record and return a new event, publishing it to subscribers.

        A subscriber that raises does not abort delivery: the error is
        recorded as a ``telemetry.subscriber_error`` event (appended to
        the log but not re-published, to avoid recursion) and the
        remaining subscribers still receive the original event.
        """
        return self.emit_event(Event(time, category, message, fields,
                                     trace_id, span_id))

    def emit_event(self, ev: Event) -> Event:
        """Record an already-constructed event (hot-path form of emit).

        ``World.emit`` builds the :class:`Event` itself and calls this
        directly, skipping a kwargs repack per record.
        """
        if not self._subscribers:
            # fast path: no publication, no isolation machinery — just the
            # ring append (inlined; steady state evicts exactly one)
            events = self._events
            events.append(ev)
            cap = self._capacity
            if cap is not None and len(events) > cap:
                events.popleft()
                self.dropped_events += 1
            return ev
        self._append(ev)
        for sub in list(self._subscribers):
            try:
                sub(ev)
            except Exception as exc:
                self.subscriber_errors += 1
                self._append(
                    Event(
                        time=ev.time,
                        category=SUBSCRIBER_ERROR_CATEGORY,
                        message="subscriber raised during publish",
                        fields={
                            "subscriber": getattr(sub, "__qualname__", repr(sub)),
                            "error": f"{type(exc).__name__}: {exc}",
                            "event_category": ev.category,
                        },
                        trace_id=ev.trace_id,
                        span_id=ev.span_id,
                    )
                )
        return ev

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` for every future event (used by usage collectors)."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        """Stop delivering events to ``callback`` (no-op if not subscribed)."""
        try:
            self._subscribers.remove(callback)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def select(self, category: str | None = None, **field_filters: Any) -> list[Event]:
        """Events whose category starts with ``category`` and whose fields match."""
        out = []
        for ev in self._events:
            if category is not None and not ev.category.startswith(category):
                continue
            if any(ev.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(ev)
        return out

    def count(self, category: str | None = None, **field_filters: Any) -> int:
        """Number of matching events."""
        return len(self.select(category, **field_filters))

    def last(self, category: str | None = None) -> Event | None:
        """Most recent matching event, or None."""
        matches = self.select(category)
        return matches[-1] if matches else None

    def clear(self) -> None:
        """Drop all recorded events (subscribers stay registered)."""
        self._events.clear()

    # -- export --------------------------------------------------------------

    def to_jsonl(self, category: str | None = None) -> str:
        """The (optionally filtered) log as JSON lines, one event per line.

        Non-JSON field values are stringified rather than erroring, so a
        log holding rich objects still exports.
        """
        events = self.select(category) if category is not None else list(self._events)
        return "\n".join(
            json.dumps(ev.to_dict(), sort_keys=True, default=str) for ev in events
        )

    @staticmethod
    def from_jsonl(text: str) -> list[Event]:
        """Parse :meth:`to_jsonl` output back into events."""
        return [
            Event.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
