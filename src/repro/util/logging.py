"""Structured event log.

Every interesting action in the simulation (handshakes, command exchanges,
transfers, faults, credential issuance) appends an :class:`Event` to the
world's :class:`EventLog`.  Benchmarks and tests query the log to assert
*how* something happened, not only that it happened — e.g. the OAuth bench
counts which parties ever observed a password.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class Event:
    """One structured log record.

    ``time`` is virtual seconds, ``category`` a dotted topic such as
    ``"gridftp.command"`` or ``"myproxy.issue"``, and ``fields`` arbitrary
    key/value detail.
    """

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.3f}] {self.category:<24} {self.message} {kv}".rstrip()


class EventLog:
    """Append-only in-memory event log with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._subscribers: list[Callable[[Event], None]] = []

    def emit(self, time: float, category: str, message: str, **fields: Any) -> Event:
        """Record and return a new event."""
        ev = Event(time=time, category=category, message=message, fields=dict(fields))
        self._events.append(ev)
        for sub in self._subscribers:
            sub(ev)
        return ev

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback`` for every future event (used by usage collectors)."""
        self._subscribers.append(callback)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def select(self, category: str | None = None, **field_filters: Any) -> list[Event]:
        """Events whose category starts with ``category`` and whose fields match."""
        out = []
        for ev in self._events:
            if category is not None and not ev.category.startswith(category):
                continue
            if any(ev.fields.get(k) != v for k, v in field_filters.items()):
                continue
            out.append(ev)
        return out

    def count(self, category: str | None = None, **field_filters: Any) -> int:
        """Number of matching events."""
        return len(self.select(category, **field_filters))

    def last(self, category: str | None = None) -> Event | None:
        """Most recent matching event, or None."""
        matches = self.select(category)
        return matches[-1] if matches else None

    def clear(self) -> None:
        """Drop all recorded events (subscribers stay registered)."""
        self._events.clear()
