"""Optional-numpy selection, decided once at import time.

numpy is an *accelerator* in this tree, never a requirement: every
vectorized path (mode-E range arithmetic, scheduler cohort math,
workload synthesis) has a pure-Python fallback that is behaviourally
identical where determinism is gated (fingerprints, queue-wait
percentiles) and statistically equivalent where it is not (workload
jitter).  This module makes the numpy-or-not decision exactly once so
every consumer gates on the same answer, and the no-numpy CI leg can
force the fallback with ``REPRO_NO_NUMPY=1`` without uninstall tricks
in local runs.
"""

from __future__ import annotations

import os


def _detect_numpy():
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
        return None
    return numpy


#: the numpy module when available and not disabled, else None
np = _detect_numpy()
HAS_NUMPY = np is not None
#: "numpy" or "python" — stamped into bench results and profile reports
VECTOR_BACKEND = "numpy" if HAS_NUMPY else "python"
