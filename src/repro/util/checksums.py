"""Checksum helpers used by storage backends and the CKSM command.

GridFTP servers expose checksums over the control channel (``CKSM``), and
the transfer engine verifies end-to-end integrity after reassembling
parallel-stream data.  All functions return lowercase hex strings.
"""

from __future__ import annotations

import hashlib
import zlib
from typing import Iterable


def sha256_hex(data: bytes) -> str:
    """SHA-256 digest of ``data`` as hex."""
    return hashlib.sha256(data).hexdigest()


def sha256_hex_iter(chunks: Iterable[bytes]) -> str:
    """SHA-256 over a stream of chunks without concatenating them."""
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


def crc32_hex(data: bytes) -> str:
    """CRC32 of ``data`` as 8 hex digits (zero padded)."""
    return f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def adler32_hex(data: bytes) -> str:
    """Adler-32 of ``data`` as 8 hex digits (zero padded)."""
    return f"{zlib.adler32(data) & 0xFFFFFFFF:08x}"


_ALGORITHMS = {
    "sha256": sha256_hex,
    "crc32": crc32_hex,
    "adler32": adler32_hex,
}


def checksum(algorithm: str, data: bytes) -> str:
    """Dispatch by algorithm name (case-insensitive), as the CKSM command does."""
    try:
        fn = _ALGORITHMS[algorithm.lower()]
    except KeyError:
        raise ValueError(f"unsupported checksum algorithm {algorithm!r}") from None
    return fn(data)


def supported_algorithms() -> list[str]:
    """Names accepted by :func:`checksum`, sorted."""
    return sorted(_ALGORITHMS)
