"""Small statistics helpers shared by the benchmark harnesses.

Kept deliberately tiny: benchmarks report nearest-rank percentiles over
wall-clock samples, and both fleet benches must agree on the exact
definition so their baselines stay comparable.
"""

from __future__ import annotations

from typing import Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` at quantile ``q`` in [0, 1].

    The rank is ``round(q * (n - 1))`` into the sorted samples, clamped
    to the valid index range; an empty sample list yields 0.0.  This is
    the definition the fleet benchmarks have always used, extracted here
    so the scheduler and wall-clock benches cannot drift apart.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[idx]
