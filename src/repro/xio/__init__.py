"""Globus XIO: the extensible, composable I/O driver stack.

"Its extensible I/O interface allows GridFTP to target high-performance
wide-area communication protocols such as UDT and emerging RDMA-based
protocols" (paper Section II.A).  A stack is an ordered list of
transform drivers over exactly one transport driver; the data channel
asks the stack for achievable throughput and setup cost on a given path.
"""

from repro.xio.stack import XIOStack
from repro.xio.drivers import (
    Driver,
    TransportDriver,
    TcpDriver,
    UdtDriver,
    GsiProtectDriver,
    CompressionDriver,
    DebugDriver,
    Protection,
)

__all__ = [
    "XIOStack",
    "Driver",
    "TransportDriver",
    "TcpDriver",
    "UdtDriver",
    "GsiProtectDriver",
    "CompressionDriver",
    "DebugDriver",
    "Protection",
]
