"""The XIO stack: ordered transform drivers over one transport driver."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.topology import PathStats
from repro.xio.drivers import Driver, TcpDriver, TransportDriver


@dataclass
class XIOStack:
    """A composed I/O stack.

    ``transforms`` apply top-down over the ``transport``; the effective
    rate the data channel sees is the transport rate pushed up through
    each transform's :meth:`~repro.xio.drivers.Driver.rate_through`.
    """

    transport: TransportDriver = field(default_factory=TcpDriver)
    transforms: tuple[Driver, ...] = ()

    def __post_init__(self) -> None:
        for d in self.transforms:
            if isinstance(d, TransportDriver):
                raise ValueError(
                    f"transport driver {d.name!r} cannot be used as a transform"
                )

    def push(self, driver: Driver) -> "XIOStack":
        """A new stack with ``driver`` added on top."""
        return XIOStack(transport=self.transport, transforms=(*self.transforms, driver))

    def throughput(self, path: PathStats, streams: int = 1) -> float:
        """Effective payload rate (bits/s) on ``path`` with ``streams`` flows."""
        rate = self.transport.rate(path, streams)
        for driver in self.transforms:
            rate = driver.rate_through(rate)
        return rate

    def setup_time_s(self, path: PathStats) -> float:
        """Channel establishment cost: transport handshake + driver setup."""
        rtts = self.transport.handshake_rtts()
        rtts += sum(d.setup_rtts() for d in self.transforms)
        return rtts * path.rtt_s

    def ramp_penalty_s(self, path: PathStats, streams: int) -> float:
        """Startup ramp charged once per channel set."""
        return self.transport.ramp_penalty_s(path, streams)

    def describe(self) -> str:
        """Driver names top-to-bottom, e.g. ``gsi/tcp``."""
        names = [d.name for d in self.transforms] + [self.transport.name]
        return "/".join(names)
