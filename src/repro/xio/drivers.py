"""XIO drivers.

Two kinds, as in Globus XIO:

* **transport drivers** terminate the stack and turn a path + stream
  count into raw throughput (TCP via the model in :mod:`repro.net.tcp`,
  UDT via :mod:`repro.net.udt`);
* **transform drivers** sit above and modify throughput and/or payload:
  GSI protection caps throughput at cipher speed (the paper's "order of
  magnitude slowdown ... on high-speed links"), compression multiplies
  effective payload rate, debug counts bytes.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.net.tcp import TCPModel, slow_start_penalty_s, tcp_aggregate_rate
from repro.net.topology import PathStats
from repro.net.udt import UDTModel
from repro.util.units import gbps


class Protection(enum.Enum):
    """Data-channel protection level (FTP PROT command values)."""

    CLEAR = "C"  # no protection
    SAFE = "S"  # integrity only
    PRIVATE = "P"  # integrity + confidentiality


class Driver(ABC):
    """Base class for all drivers."""

    name: str = "driver"

    def rate_through(self, below_bps: float) -> float:
        """Throughput available above this driver given ``below_bps`` under it."""
        return below_bps

    def setup_rtts(self) -> float:
        """Extra round trips this driver adds to channel establishment."""
        return 0.0


class TransportDriver(Driver):
    """A driver that talks to the network directly."""

    @abstractmethod
    def rate(self, path: PathStats, streams: int) -> float:
        """Aggregate steady-state rate over ``streams`` connections."""

    @abstractmethod
    def ramp_penalty_s(self, path: PathStats, streams: int) -> float:
        """Startup (slow-start-like) penalty in seconds."""

    @abstractmethod
    def handshake_rtts(self) -> float:
        """Round trips to establish one connection batch."""


@dataclass
class TcpDriver(TransportDriver):
    """The default transport."""

    model: TCPModel = field(default_factory=TCPModel.untuned)
    name: str = "tcp"

    def rate(self, path: PathStats, streams: int) -> float:
        """Aggregate steady-state rate (TransportDriver interface)."""
        return tcp_aggregate_rate(path, streams, self.model)

    def ramp_penalty_s(self, path: PathStats, streams: int) -> float:
        """Startup ramp cost (TransportDriver interface)."""
        per_stream = self.rate(path, streams) / streams
        return slow_start_penalty_s(path, per_stream, self.model)

    def handshake_rtts(self) -> float:
        """Connection-setup round trips."""
        return self.model.handshake_rtts


@dataclass
class UdtDriver(TransportDriver):
    """UDT transport (loss-insensitive, rate-based)."""

    model: UDTModel = field(default_factory=UDTModel)
    name: str = "udt"

    def rate(self, path: PathStats, streams: int) -> float:
        # UDT flows are rate-controlled; extra flows do not add throughput
        # beyond the bottleneck share a single flow already claims.
        """Aggregate steady-state rate (TransportDriver interface)."""
        return min(self.model.stream_rate(path) * streams, path.bottleneck_bps * self.model.efficiency)

    def ramp_penalty_s(self, path: PathStats, streams: int) -> float:
        """Startup ramp cost (TransportDriver interface)."""
        return 0.0  # rate-based start, no slow-start ramp

    def handshake_rtts(self) -> float:
        """Connection-setup round trips."""
        return self.model.handshake_rtts


@dataclass
class GsiProtectDriver(Driver):
    """Data-channel integrity/confidentiality.

    Throughput is capped by (single-core) cipher speed.  Defaults chosen
    so that PRIVATE costs roughly an order of magnitude on a 10 Gb/s
    path, matching Section II.C: "An order of magnitude slowdown is not
    unusual on high-speed links."
    """

    protection: Protection = Protection.PRIVATE
    integrity_cap_bps: float = gbps(2.4)
    privacy_cap_bps: float = gbps(0.9)
    name: str = "gsi"

    def rate_through(self, below_bps: float) -> float:
        """Throughput above this driver given the rate below it."""
        if self.protection is Protection.CLEAR:
            return below_bps
        if self.protection is Protection.SAFE:
            return min(below_bps, self.integrity_cap_bps)
        return min(below_bps, self.privacy_cap_bps)

    def setup_rtts(self) -> float:
        # per-channel security handshake
        """Extra setup round trips this driver adds."""
        return 0.0 if self.protection is Protection.CLEAR else 2.0


@dataclass
class CompressionDriver(Driver):
    """Payload compression: effective rate is wire rate x ratio, CPU capped."""

    ratio: float = 2.0  # compressed size = size / ratio
    cpu_cap_bps: float = gbps(3.0)
    name: str = "compress"

    def rate_through(self, below_bps: float) -> float:
        """Throughput above this driver given the rate below it."""
        if self.ratio <= 0:
            raise ValueError("compression ratio must be positive")
        return min(below_bps * self.ratio, self.cpu_cap_bps)


@dataclass
class DebugDriver(Driver):
    """Pass-through that counts how many rate queries flowed through it."""

    queries: int = 0
    name: str = "debug"

    def rate_through(self, below_bps: float) -> float:
        """Throughput above this driver given the rate below it."""
        self.queries += 1
        return below_bps
