"""First-order TCP performance model.

Three effects dominate bulk-transfer throughput on wide-area paths, and
they are exactly the effects GridFTP's optimizations attack:

1. **Window limit** — a single TCP stream cannot exceed ``window / RTT``.
   Untuned stacks of the paper's era default to a 64 KiB window, which on
   a 100 ms path caps a stream at ~5 Mb/s no matter how fat the pipe.
   GridFTP opens *parallel streams* (and tunes windows) to escape this.
2. **Loss limit (Mathis et al.)** — a congestion-avoidance stream cannot
   exceed ``MSS * C / (RTT * sqrt(p))`` for loss rate ``p``.  Parallel
   streams each get their own sqrt(p) budget, so N streams deliver ~N
   times the single-stream rate until the bottleneck saturates.
3. **Slow start** — short transfers never reach steady state; the ramp
   costs roughly ``log2(BDP/MSS)`` RTTs.  This is why moving lots of
   small files is round-trip-bound and why GridFTP pipelining matters.

The model is analytic and deterministic: given a :class:`PathStats` it
returns steady-state rates and whole-transfer durations.  It is not a
packet simulator, but it reproduces the *shape* of every performance
claim in the paper (see DESIGN.md section 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.net.topology import PathStats
from repro.util.units import KB, MB

#: Mathis constant for periodic-loss TCP throughput.
MATHIS_C = math.sqrt(3.0 / 2.0)


@dataclass(frozen=True)
class TCPModel:
    """Tunable TCP stack parameters.

    ``window_bytes`` is the effective (send and receive) socket buffer.
    ``autotuned_window`` represents a host with large, kernel-autotuned
    buffers (what a well-configured data transfer node would have).
    """

    mss_bytes: int = 1460
    window_bytes: int = 64 * KB
    init_cwnd_bytes: int = 10 * 1460  # RFC 6928 initial window
    handshake_rtts: float = 1.5

    def with_window(self, window_bytes: int) -> "TCPModel":
        """A copy of the model with a different socket buffer."""
        return replace(self, window_bytes=int(window_bytes))

    @staticmethod
    def untuned() -> "TCPModel":
        """Era-typical defaults: 64 KiB windows."""
        return TCPModel()

    @staticmethod
    def tuned(window_bytes: int = 16 * MB) -> "TCPModel":
        """A data-transfer-node configuration with large buffers."""
        return TCPModel(window_bytes=window_bytes)


def tcp_stream_rate(path: PathStats, model: TCPModel) -> float:
    """Steady-state rate (bits/s) of ONE stream on ``path``.

    The minimum of the window limit, the Mathis loss limit, and the
    bottleneck link rate.
    """
    limits = [path.bottleneck_bps]
    if path.rtt_s > 0:
        limits.append(model.window_bytes * 8.0 / path.rtt_s)
        if path.loss > 0:
            limits.append(
                model.mss_bytes * 8.0 * MATHIS_C / (path.rtt_s * math.sqrt(path.loss))
            )
    return min(limits)


def tcp_aggregate_rate(path: PathStats, streams: int, model: TCPModel) -> float:
    """Steady-state aggregate rate (bits/s) of ``streams`` parallel streams.

    Streams scale the window and loss limits linearly but can never exceed
    the bottleneck.  This is the quantitative core of GridFTP's
    "parallelism" optimization.
    """
    if streams < 1:
        raise ValueError("streams must be >= 1")
    per_stream = tcp_stream_rate(path, model)
    return min(per_stream * streams, path.bottleneck_bps)


def slow_start_penalty_s(path: PathStats, rate_bps: float, model: TCPModel) -> float:
    """Extra seconds a transfer loses to the slow-start ramp.

    Approximated as the number of doublings needed to grow the congestion
    window from its initial value to the steady-state window, times the
    RTT.  (During the ramp roughly half the steady rate is achieved, so
    charging full RTTs for the doublings and then billing the payload at
    the steady rate is a slight overestimate of ramp cost and a slight
    underestimate of ramp progress; the two roughly cancel.)
    """
    if path.rtt_s <= 0 or rate_bps <= 0:
        return 0.0
    steady_window_bits = rate_bps * path.rtt_s
    init_bits = model.init_cwnd_bytes * 8.0
    if steady_window_bits <= init_bits:
        return 0.0
    doublings = math.log2(steady_window_bits / init_bits)
    return doublings * path.rtt_s


def tcp_transfer_time(
    nbytes: int,
    path: PathStats,
    streams: int = 1,
    model: TCPModel | None = None,
    include_handshake: bool = True,
) -> float:
    """Seconds to move ``nbytes`` over ``streams`` parallel streams.

    Includes connection setup (the stream handshakes run concurrently, so
    one handshake delay is charged) and the slow-start ramp.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    model = model or TCPModel.untuned()
    rate = tcp_aggregate_rate(path, streams, model)
    t = 0.0
    if include_handshake:
        t += model.handshake_rtts * path.rtt_s
    if nbytes:
        t += slow_start_penalty_s(path, rate / streams, model)
        t += nbytes * 8.0 / rate
    return t
