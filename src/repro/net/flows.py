"""Bandwidth sharing among concurrent flows.

GridFTP's *concurrency* optimization runs several whole-file transfers at
once.  When k flows cross the same bottleneck they share it (max-min
fairly, in our model); each flow is additionally bound by its own
window/loss limit.  These helpers compute the resulting batch timings.
"""

from __future__ import annotations

import math
from typing import Sequence


def fair_share(bottleneck_bps: float, per_flow_limit_bps: float, k: int) -> float:
    """Per-flow rate when ``k`` identical flows share one bottleneck.

    Each flow gets min(its own limit, fair share of the bottleneck).  If
    the flows' own limits are below the fair share the bottleneck is not
    saturated and every flow runs at its own limit.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return min(per_flow_limit_bps, bottleneck_bps / k)


def aggregate_rate(bottleneck_bps: float, per_flow_limit_bps: float, k: int) -> float:
    """Total rate achieved by ``k`` identical concurrent flows."""
    return fair_share(bottleneck_bps, per_flow_limit_bps, k) * k


def batch_transfer_time(
    sizes_bytes: Sequence[int],
    per_flow_limit_bps: float,
    bottleneck_bps: float,
    concurrency: int,
    per_item_overhead_s: float = 0.0,
) -> float:
    """Seconds to move a batch of files with ``concurrency`` parallel workers.

    Files are processed greedily (longest-processing-time order) by
    ``concurrency`` workers; each item pays ``per_item_overhead_s`` (e.g.
    the command round trips when pipelining is off) plus its payload time
    at the worker's fair-share rate.

    This is a scheduling approximation — exact max-min sharing would vary
    the rate as flows finish — but it is deterministic and errs in the same
    direction for every tool compared.
    """
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    if not sizes_bytes:
        return 0.0
    k = min(concurrency, len(sizes_bytes))
    rate = fair_share(bottleneck_bps, per_flow_limit_bps, k)
    # LPT scheduling onto k workers.
    loads = [0.0] * k
    for size in sorted(sizes_bytes, reverse=True):
        item_time = per_item_overhead_s + size * 8.0 / rate
        idx = min(range(k), key=loads.__getitem__)
        loads[idx] += item_time
    return max(loads)


def serial_batch_time(
    sizes_bytes: Sequence[int],
    rate_bps: float,
    per_item_overhead_s: float = 0.0,
) -> float:
    """Seconds to move a batch one file at a time (no concurrency)."""
    total_payload = sum(sizes_bytes) * 8.0 / rate_bps if rate_bps > 0 else math.inf
    return total_payload + per_item_overhead_s * len(sizes_bytes)
