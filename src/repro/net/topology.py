"""Hosts, links and routing.

The topology is an undirected graph of named hosts joined by links with a
bandwidth (bits/s), a one-way latency (s) and a packet-loss probability.
Routing picks the minimum-latency path.  :class:`PathStats` summarizes a
path for the TCP/UDT models: round-trip time, bottleneck bandwidth
(including the end-host NICs) and aggregate loss.

Hosts double as the attachment points for services (GridFTP servers,
MyProxy CAs, OAuth servers) via :mod:`repro.net.sockets`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import networkx as nx

from repro.errors import NetworkError, NoRouteError
from repro.util.units import gbps

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass(frozen=True)
class Link:
    """A bidirectional network link.

    ``loss`` is the per-packet loss probability seen by a TCP flow crossing
    the link (already including any queueing effects we care to model).
    """

    link_id: str
    a: str
    b: str
    bandwidth_bps: float
    latency_s: float
    loss: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("link latency cannot be negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError("link loss must be in [0, 1)")

    def other_end(self, host: str) -> str:
        """The host on the far side of the link from ``host``."""
        if host == self.a:
            return self.b
        if host == self.b:
            return self.a
        raise ValueError(f"{host} is not an endpoint of {self.link_id}")


@dataclass
class Host:
    """A named machine attached to the network.

    ``nic_bps`` caps any flow terminating here regardless of path
    bandwidth — a 1 Gb/s NIC on a 10 Gb/s WAN is a real and common
    bottleneck for data transfer nodes.

    ``transit`` marks a host that forwards traffic (a router/switch).
    End hosts do not forward: a path never runs *through* a
    ``transit=False`` host, only starts or ends there.
    """

    name: str
    nic_bps: float = gbps(10)
    transit: bool = False
    tags: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nic_bps <= 0:
            raise ValueError("NIC bandwidth must be positive")

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass(frozen=True)
class PathStats:
    """Summary of a routed path, consumed by the transport models."""

    src: str
    dst: str
    rtt_s: float
    bottleneck_bps: float
    loss: float
    link_ids: tuple[str, ...]
    hosts: tuple[str, ...]

    @property
    def hop_count(self) -> int:
        """Number of links on the path."""
        return len(self.link_ids)


class Network:
    """The topology graph plus the listener registry.

    ``world`` supplies the clock (for connection timing) and the fault
    plan (links/hosts may be down).
    """

    #: loopback paths (host talking to itself) get this nominal RTT
    LOOPBACK_RTT = 50e-6
    LOOPBACK_BW = gbps(40)

    def __init__(self, world: "World") -> None:
        self.world = world
        self._graph = nx.Graph()
        self._hosts: dict[str, Host] = {}
        self._links: dict[str, Link] = {}
        self._link_seq = itertools.count(1)
        # sockets.Listeners keyed by (host, port); managed via sockets module
        self.listeners: dict[tuple[str, int], object] = {}
        self._ephemeral = itertools.count(50000)
        # route memoization: fleets hammer the same (src, dst) pairs, so
        # re-walking the graph per transfer is pure waste.  Both caches are
        # dropped on any topology mutation (add_host/add_link).
        self._path_cache: dict[tuple[str, str], PathStats] = {}
        self._path_links_cache: dict[tuple[str, str], tuple[Link, ...]] = {}
        self._route_cache_hits = 0
        self._route_cache_misses = 0
        #: bumped on every topology mutation; callers may cache derived
        #: route state (e.g. transfer profiles) keyed by this counter
        self.topology_version = 0

    # -- route cache ---------------------------------------------------------

    def invalidate_routes(self) -> None:
        """Drop every memoized route (called on any topology mutation)."""
        self.topology_version += 1
        self._path_cache.clear()
        self._path_links_cache.clear()

    def route_cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters for tests and the profiling tool."""
        return {
            "hits": self._route_cache_hits,
            "misses": self._route_cache_misses,
            "cached_paths": len(self._path_cache),
            "cached_link_walks": len(self._path_links_cache),
        }

    # -- construction ------------------------------------------------------

    def add_host(self, name: str, nic_bps: float = gbps(10), transit: bool = False, **tags) -> Host:
        """Create and register a host (``transit=True`` for routers)."""
        if name in self._hosts:
            raise NetworkError(f"host {name!r} already exists")
        host = Host(name=name, nic_bps=nic_bps, transit=transit, tags=dict(tags))
        self._hosts[name] = host
        self._graph.add_node(name)
        self.invalidate_routes()
        return host

    def add_router(self, name: str, nic_bps: float = gbps(100), **tags) -> Host:
        """Create a forwarding node (core/border router)."""
        return self.add_host(name, nic_bps=nic_bps, transit=True, **tags)

    def add_link(
        self,
        a: str | Host,
        b: str | Host,
        bandwidth_bps: float,
        latency_s: float,
        loss: float = 0.0,
        link_id: str | None = None,
    ) -> Link:
        """Join two hosts with a link (both must already exist)."""
        a_name = a.name if isinstance(a, Host) else a
        b_name = b.name if isinstance(b, Host) else b
        for name in (a_name, b_name):
            if name not in self._hosts:
                raise NetworkError(f"unknown host {name!r}")
        if a_name == b_name:
            raise NetworkError("cannot link a host to itself")
        if link_id is None:
            link_id = f"link{next(self._link_seq)}:{a_name}--{b_name}"
        if link_id in self._links:
            raise NetworkError(f"link id {link_id!r} already exists")
        link = Link(
            link_id=link_id,
            a=a_name,
            b=b_name,
            bandwidth_bps=bandwidth_bps,
            latency_s=latency_s,
            loss=loss,
        )
        self._links[link_id] = link
        self._graph.add_edge(a_name, b_name, link=link, weight=latency_s)
        self.invalidate_routes()
        return link

    # -- lookup --------------------------------------------------------------

    @property
    def hosts(self) -> dict[str, Host]:
        """All registered hosts by name."""
        return dict(self._hosts)

    @property
    def links(self) -> dict[str, Link]:
        """All registered links by id."""
        return dict(self._links)

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        try:
            return self._hosts[name]
        except KeyError:
            raise NetworkError(f"unknown host {name!r}") from None

    def link(self, link_id: str) -> Link:
        """Look up a link by id."""
        try:
            return self._links[link_id]
        except KeyError:
            raise NetworkError(f"unknown link {link_id!r}") from None

    # -- routing ---------------------------------------------------------------

    def path_links(self, src: str, dst: str) -> list[Link]:
        """The links along the minimum-latency route from src to dst.

        Routes only transit through hosts marked ``transit=True``; end
        hosts never forward other hosts' traffic.  Results are memoized
        per (src, dst) until the topology next mutates.
        """
        if src == dst:
            return []
        cached = self._path_links_cache.get((src, dst))
        if cached is not None:
            self._route_cache_hits += 1
            return list(cached)
        self._route_cache_misses += 1
        if src not in self._hosts or dst not in self._hosts:
            raise NetworkError(f"unknown host in route {src!r} -> {dst!r}")
        allowed = {
            name for name, host in self._hosts.items()
            if host.transit or name in (src, dst)
        }
        view = self._graph.subgraph(allowed)
        try:
            nodes = nx.shortest_path(view, src, dst, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            raise NoRouteError(f"no route from {src!r} to {dst!r}") from None
        links = [self._graph.edges[u, v]["link"] for u, v in zip(nodes, nodes[1:])]
        self._path_links_cache[(src, dst)] = tuple(links)
        return links

    def path(self, src: str | Host, dst: str | Host) -> PathStats:
        """Routing summary used by the transport models.

        A host talking to itself gets nominal loopback characteristics so
        local transfers (``file:///`` to a local server) still have finite,
        fast timing.  :class:`PathStats` is frozen, so the memoized object
        is shared safely across callers until the topology next mutates.
        """
        src_name = src.name if isinstance(src, Host) else src
        dst_name = dst.name if isinstance(dst, Host) else dst
        cached = self._path_cache.get((src_name, dst_name))
        if cached is not None:
            self._route_cache_hits += 1
            return cached
        self._route_cache_misses += 1
        src_host = self.host(src_name)
        dst_host = self.host(dst_name)
        if src_name == dst_name:
            stats = PathStats(
                src=src_name,
                dst=dst_name,
                rtt_s=self.LOOPBACK_RTT,
                bottleneck_bps=min(self.LOOPBACK_BW, src_host.nic_bps),
                loss=0.0,
                link_ids=(),
                hosts=(src_name,),
            )
            self._path_cache[(src_name, dst_name)] = stats
            return stats
        links = self.path_links(src_name, dst_name)
        one_way = sum(l.latency_s for l in links)
        bottleneck = min(
            [l.bandwidth_bps for l in links] + [src_host.nic_bps, dst_host.nic_bps]
        )
        ok_prob = 1.0
        for l in links:
            ok_prob *= 1.0 - l.loss
        stats = PathStats(
            src=src_name,
            dst=dst_name,
            rtt_s=2.0 * one_way,
            bottleneck_bps=bottleneck,
            loss=1.0 - ok_prob,
            link_ids=tuple(l.link_id for l in links),
            hosts=(src_name, *(l.other_end(h) for h, l in self._walk(src_name, links))),
        )
        self._path_cache[(src_name, dst_name)] = stats
        return stats

    def _walk(self, start: str, links: Iterable[Link]):
        """Yield (current_host, link) pairs walking the path from start."""
        here = start
        for l in links:
            yield here, l
            here = l.other_end(here)

    # -- fault awareness -----------------------------------------------------

    @staticmethod
    def _faulted_targets(stats: PathStats, faults) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """The subset of the path's links/hosts with any scheduled fault.

        Up-ness queries run per control-channel request, but most paths
        never intersect the fault plan (chaos campaigns target specific
        hosts); the filtered view is cached on the (frozen, per-pair
        route-cached) ``PathStats`` and invalidated by the plan's
        mutation epoch.
        """
        cached = stats.__dict__.get("_faulted_targets")
        if cached is not None and cached[0] == faults.epoch:
            return cached[1], cached[2]
        links = tuple(lid for lid in stats.link_ids if faults.has_link_faults(lid))
        hosts = tuple(h for h in stats.hosts if faults.has_host_faults(h))
        object.__setattr__(stats, "_faulted_targets", (faults.epoch, links, hosts))
        return links, hosts

    def path_up(self, stats: PathStats, t: float | None = None) -> bool:
        """True iff every link and host on the path is up at time ``t``."""
        t = self.world.now if t is None else t
        faults = self.world.faults
        links, hosts = self._faulted_targets(stats, faults)
        if any(faults.link_down(lid, t) for lid in links):
            return False
        if any(faults.host_down(h, t) for h in hosts):
            return False
        return True

    def check_path_up(self, stats: PathStats, t: float | None = None) -> None:
        """Raise :class:`~repro.errors.LinkDownError` if the path is down."""
        faults = self.world.faults
        links, hosts = self._faulted_targets(stats, faults)
        if not links and not hosts:
            return
        t = self.world.now if t is None else t
        for lid in links:
            if faults.link_down(lid, t):
                from repro.errors import LinkDownError

                raise LinkDownError(f"link {lid} is down at t={t:.3f}", link=lid)
        for h in hosts:
            if faults.host_down(h, t):
                from repro.errors import LinkDownError

                raise LinkDownError(f"host {h} is down at t={t:.3f}", link=h)

    # -- ports -----------------------------------------------------------------

    def ephemeral_port(self) -> int:
        """Allocate a unique ephemeral port number (global pool, simplicity)."""
        return next(self._ephemeral)
