"""Simulated wide-area network: topology, TCP/UDT models, channels.

This package replaces the paper's physical testbed.  It provides:

* :mod:`repro.net.topology` — hosts, links and routing (networkx graph);
* :mod:`repro.net.tcp` — a first-order TCP performance model (window
  limit, Mathis loss limit, slow-start ramp, parallel streams);
* :mod:`repro.net.udt` — a rate-based UDT model (the XIO UDT driver);
* :mod:`repro.net.sockets` — ports, listeners and connection setup;
* :mod:`repro.net.channel` — request/response control channels with RTT
  accounting (this is what makes pipelining measurable);
* :mod:`repro.net.flows` — bandwidth sharing among concurrent flows.
"""

from repro.net.topology import Host, Link, Network, PathStats
from repro.net.tcp import TCPModel, tcp_stream_rate, tcp_aggregate_rate, tcp_transfer_time
from repro.net.udt import UDTModel
from repro.net.sockets import Listener, Service, ServerSession
from repro.net.channel import ControlChannel
from repro.net.flows import fair_share, batch_transfer_time

__all__ = [
    "Host",
    "Link",
    "Network",
    "PathStats",
    "TCPModel",
    "tcp_stream_rate",
    "tcp_aggregate_rate",
    "tcp_transfer_time",
    "UDTModel",
    "Listener",
    "Service",
    "ServerSession",
    "ControlChannel",
    "fair_share",
    "batch_transfer_time",
]
