"""Ports, listeners and connection establishment.

A :class:`Service` is anything that can be bound to a (host, port) pair —
GridFTP server PIs, MyProxy CAs, OAuth servers, data-channel listeners.
``connect`` routes from a client host, charges the TCP handshake on the
virtual clock, verifies the path is up, and hands back a per-connection
:class:`ServerSession` produced by the service.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConnectionRefusedError_, PortInUseError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Network, PathStats


class ServerSession(ABC):
    """Server-side state for one accepted connection."""

    @abstractmethod
    def handle(self, line: str) -> list[str]:
        """Process one request line, return zero or more reply lines."""

    def close(self) -> None:
        """Tear down per-connection state (default: nothing)."""


class Service(ABC):
    """Something listening on a port."""

    @abstractmethod
    def open_session(self, client_host: str) -> ServerSession:
        """Accept a connection from ``client_host``."""


@dataclass
class Listener:
    """A bound (host, port, service) triple."""

    host: str
    port: int
    service: Service

    @property
    def address(self) -> tuple[str, int]:
        """The (host, port) this service listens on."""
        return (self.host, self.port)


def listen(network: "Network", host: str, port: int, service: Service) -> Listener:
    """Bind ``service`` to ``host:port``."""
    network.host(host)  # validates the host exists
    key = (host, port)
    if key in network.listeners:
        raise PortInUseError(f"{host}:{port} already has a listener")
    listener = Listener(host=host, port=port, service=service)
    network.listeners[key] = listener
    return listener


def listen_ephemeral(network: "Network", host: str, service: Service) -> Listener:
    """Bind ``service`` to an OS-chosen port on ``host`` (PASV-style)."""
    return listen(network, host, network.ephemeral_port(), service)


def close_listener(network: "Network", listener: Listener) -> None:
    """Unbind a listener; subsequent connects are refused."""
    network.listeners.pop(listener.address, None)


def connect(
    network: "Network",
    client_host: str,
    address: tuple[str, int],
    handshake_rtts: float = 1.5,
) -> tuple[ServerSession, "PathStats"]:
    """Establish a connection: route, check faults, charge handshake time.

    Returns the service's per-connection session plus the path statistics
    (which the caller reuses for subsequent request timing).
    """
    host, port = address
    listener = network.listeners.get((host, port))
    if listener is None:
        raise ConnectionRefusedError_(f"connection refused: {host}:{port}")
    path = network.path(client_host, host)
    network.check_path_up(path)
    network.world.clock.advance(handshake_rtts * path.rtt_s)
    session = listener.service.open_session(client_host)
    return session, path
