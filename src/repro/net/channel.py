"""Request/response control channels with round-trip accounting.

The FTP/GridFTP control channel is a synchronous text protocol: every
command costs a round trip unless the client *pipelines* (GridFTP
Pipelining, Bresnahan et al. 2007).  The channel charges virtual time
accordingly, which is what makes the lots-of-small-files benchmark
meaningful:

* ``request(line)`` — one command, one round trip;
* ``pipeline(lines)`` — N commands streamed back-to-back: one round trip
  plus server processing for all of them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ControlChannelDownError, NetworkError
from repro.net.sockets import ServerSession, connect

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.topology import Network, PathStats


class ControlChannel:
    """A client's connection to a line-oriented service.

    ``proc_time_s`` models per-command server processing; it is tiny but
    nonzero so that pipelined batches still take measurable time.
    """

    DEFAULT_PROC_TIME = 200e-6

    def __init__(
        self,
        network: "Network",
        client_host: str,
        address: tuple[str, int],
        proc_time_s: float = DEFAULT_PROC_TIME,
    ) -> None:
        self.network = network
        self.client_host = client_host
        self.address = address
        self.proc_time_s = proc_time_s
        self._session: ServerSession | None = None
        self._path: "PathStats | None" = None
        self.closed = False
        self._connect()

    def _connect(self) -> None:
        self._session, self._path = connect(self.network, self.client_host, self.address)

    @property
    def path(self) -> "PathStats":
        """The destination path of this sink."""
        assert self._path is not None
        return self._path

    @property
    def rtt_s(self) -> float:
        """Round-trip time of this channel's path."""
        return self.path.rtt_s

    @property
    def session(self) -> ServerSession:
        """The server-side session (tests reach in to inspect state)."""
        if self._session is None or self.closed:
            raise NetworkError("channel is closed")
        return self._session

    def _check_open(self) -> None:
        if self.closed or self._session is None:
            raise NetworkError("channel is closed")
        self.network.check_path_up(self.path)
        # control-plane chaos: the path is up but the endpoint's control
        # listener is unreachable (disconnect / listener restart).
        faults = self.network.world.faults
        now = self.network.world.now
        for host in (self.address[0], self.client_host):
            if faults.control_down(host, now):
                raise ControlChannelDownError(
                    f"control channel to {host} is down at t={now:.3f}"
                )

    def request(self, line: str) -> list[str]:
        """Send one command, wait for its replies.  Costs one RTT."""
        self._check_open()
        self.network.world.clock.advance(self.rtt_s + self.proc_time_s)
        return self._session.handle(line)

    def pipeline(self, lines: list[str]) -> list[list[str]]:
        """Send many commands back-to-back without waiting between them.

        Costs one RTT for the whole batch plus per-command processing.
        Returns the reply list of each command, in order.
        """
        self._check_open()
        if not lines:
            return []
        self.network.world.clock.advance(self.rtt_s + self.proc_time_s * len(lines))
        return [self._session.handle(line) for line in lines]

    def close(self) -> None:
        """Close the connection (idempotent)."""
        if not self.closed and self._session is not None:
            self._session.close()
        self.closed = True
        self._session = None
