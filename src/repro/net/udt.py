"""UDT transport model (the XIO ``udt`` driver).

UDT (Gu & Grossman) is a rate-based, UDP-framed protocol designed for
high-bandwidth-delay-product paths: unlike loss-driven TCP its achievable
rate is largely insensitive to RTT and to low levels of random loss.  The
paper cites UDT as one of the alternative wide-area protocols GridFTP can
target through its extensible I/O (XIO) layer.

We model UDT as achieving a fixed efficiency of the bottleneck bandwidth
for loss below a tolerance threshold, degrading linearly beyond it, with
a slightly longer rendezvous handshake than TCP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import PathStats


@dataclass(frozen=True)
class UDTModel:
    """UDT stack parameters."""

    efficiency: float = 0.90  # fraction of bottleneck achieved in steady state
    loss_tolerance: float = 0.01  # below this, throughput unaffected by loss
    handshake_rtts: float = 2.0

    def stream_rate(self, path: PathStats) -> float:
        """Steady-state rate (bits/s) of one UDT flow on ``path``."""
        base = self.efficiency * path.bottleneck_bps
        if path.loss <= self.loss_tolerance:
            return base
        # Beyond tolerance the rate controller backs off roughly linearly
        # until it gives up entirely at 10x the tolerance.
        overload = (path.loss - self.loss_tolerance) / (9.0 * self.loss_tolerance)
        return max(base * (1.0 - min(overload, 0.99)), 1.0)

    def transfer_time(self, nbytes: int, path: PathStats) -> float:
        """Seconds to move ``nbytes`` over one UDT flow."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        rate = self.stream_rate(path)
        return self.handshake_rtts * path.rtt_s + (nbytes * 8.0 / rate if nbytes else 0.0)
