"""GSI security contexts (RFC 2228 AUTH GSSAPI, in spirit).

A context is established by mutual certificate validation: the initiator
(client) presents its credential chain, which the acceptor validates
against *its* trust store; the acceptor presents its (host) credential,
which the initiator validates against *its* trust store.  "If
authentication is not successful, the connection is dropped" (paper
Section II.C).

The established context carries both identities and a derived session
key used to mark the control channel as integrity-protected/encrypted.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

from repro.errors import AuthenticationError, CertificateError
from repro.gsi.session_cache import SessionCache, caching_enabled, default_session_cache
from repro.pki.certificate import Certificate
from repro.pki.credential import Credential
from repro.pki.dn import DistinguishedName
from repro.pki.proxy import proxy_depth
from repro.pki.validation import TrustStore, validate_chain
from repro.util import opcount


@dataclass(frozen=True)
class SecurityContext:
    """An established mutual-authentication context."""

    initiator_subject: DistinguishedName
    initiator_identity: DistinguishedName
    acceptor_subject: DistinguishedName
    acceptor_identity: DistinguishedName
    session_key: bytes
    encrypted: bool = True
    integrity: bool = True

    def peer_of(self, subject: DistinguishedName) -> DistinguishedName:
        """The other party's identity, given one side's subject."""
        if subject == self.initiator_subject:
            return self.acceptor_identity
        if subject == self.acceptor_subject:
            return self.initiator_identity
        raise ValueError(f"{subject} is not a party to this context")


def establish_context(
    initiator: Credential,
    acceptor: Credential,
    initiator_trust: TrustStore,
    acceptor_trust: TrustStore,
    now: float,
    initiator_extra_anchors: Iterable[Certificate] = (),
    acceptor_extra_anchors: Iterable[Certificate] = (),
    encrypted: bool = True,
    cache: SessionCache | None = None,
) -> SecurityContext:
    """Perform mutual authentication; return the context or raise.

    ``*_extra_anchors`` are the DCSC escape hatch: anchors an endpoint
    accepts *for this context only* because a client supplied them via
    ``DCSC P``.

    A successful establishment deposits a resumption token in ``cache``
    (the module default when None, unless ``REPRO_NO_SESSION_CACHE`` is
    set); a repeat establishment with identical inputs inside both
    credentials' validity windows resumes the token instead of
    re-validating — see :mod:`repro.gsi.session_cache` for the keying
    and the determinism argument.  Failures are never cached.

    Raises :class:`AuthenticationError` wrapping the underlying
    certificate failure; the message records which side rejected whom,
    which the Figure 4 benchmark asserts on.
    """
    initiator_extra_anchors = tuple(initiator_extra_anchors)
    acceptor_extra_anchors = tuple(acceptor_extra_anchors)
    if cache is None and caching_enabled():
        cache = default_session_cache()
    key = None
    if cache is not None:
        key = (
            initiator.certificate.fingerprint(),
            acceptor.certificate.fingerprint(),
            proxy_depth(initiator.chain),
            proxy_depth(acceptor.chain),
            initiator_trust.uid,
            initiator_trust.version,
            acceptor_trust.uid,
            acceptor_trust.version,
            tuple(c.fingerprint() for c in initiator_extra_anchors),
            tuple(c.fingerprint() for c in acceptor_extra_anchors),
            encrypted,
        )
        resumed = cache.lookup(key, now)
        if resumed is not None:
            return resumed
    opcount.bump("gsi.context.full")
    # acceptor validates the initiator's chain against the acceptor trust
    try:
        init_result = validate_chain(
            initiator.chain,
            acceptor_trust,
            now,
            extra_anchors=acceptor_extra_anchors,
        )
    except CertificateError as exc:
        raise AuthenticationError(
            f"acceptor {acceptor.identity} rejected initiator "
            f"{initiator.subject}: {exc}"
        ) from exc
    # initiator validates the acceptor's chain against the initiator trust
    try:
        acc_result = validate_chain(
            acceptor.chain,
            initiator_trust,
            now,
            extra_anchors=initiator_extra_anchors,
        )
    except CertificateError as exc:
        raise AuthenticationError(
            f"initiator {initiator.identity} rejected acceptor "
            f"{acceptor.subject}: {exc}"
        ) from exc

    session_key = _derive_session_key(initiator, acceptor, now)
    context = SecurityContext(
        initiator_subject=init_result.subject,
        initiator_identity=init_result.identity,
        acceptor_subject=acc_result.subject,
        acceptor_identity=acc_result.identity,
        session_key=session_key,
        encrypted=encrypted,
        integrity=True,
    )
    if cache is not None and key is not None:
        chains = initiator.chain + acceptor.chain
        cache.store(
            key,
            context,
            not_before=max(c.not_before for c in chains),
            not_after=min(c.not_after for c in chains),
            now=now,
        )
    return context


def _derive_session_key(initiator: Credential, acceptor: Credential, now: float) -> bytes:
    """A deterministic stand-in for the TLS key exchange."""
    material = (
        initiator.certificate.fingerprint()
        + acceptor.certificate.fingerprint()
        + f":{now}"
    ).encode("utf-8")
    return hashlib.sha256(material).digest()
