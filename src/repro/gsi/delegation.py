"""Credential delegation.

Delegation hands a service a proxy so it can act as the user — the
capability that makes hosted transfer agents possible: "since SSH does
not support delegation, users cannot hand off SSH-based GridFTP
transfers to transfer agents such as Globus Online" (paper Section
III.B, limitation 2).  GridFTP also delegates during data-channel setup
for third-party transfers (Section II.C).
"""

from __future__ import annotations

import random

from repro.errors import DelegationError
from repro.pki.credential import Credential
from repro.pki.proxy import DEFAULT_PROXY_LIFETIME, create_proxy
from repro.sim.clock import Clock


def delegate_credential(
    credential: Credential,
    clock: Clock,
    rng: random.Random | None = None,
    lifetime: float = DEFAULT_PROXY_LIFETIME,
) -> Credential:
    """Delegate: mint a fresh proxy of ``credential`` for a remote party.

    The delegate receives its own key pair; the user's private key never
    travels.  Raises :class:`DelegationError` if the source credential is
    expired or marked non-delegatable (SSH-derived credentials set
    ``extensions["no_delegation"]``).
    """
    leaf = credential.certificate
    if leaf.extensions.get("no_delegation"):
        raise DelegationError(
            f"credential for {credential.identity} does not support delegation"
        )
    if not credential.valid_at(clock.now):
        raise DelegationError(
            f"cannot delegate an expired credential for {credential.identity}"
        )
    return create_proxy(credential, clock, rng, lifetime)
