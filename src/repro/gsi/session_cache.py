"""GSI session resumption (TLS-session-ticket semantics, wall-clock only).

Real GridFTP deployments amortize authentication with data-channel
caching and session reuse (Allcock et al.); this module is the control
plane's half of that idea.  A successful :func:`~repro.gsi.context.
establish_context` deposits a :class:`ResumptionToken`; a later
establishment between the *same* certificate pair, under the *same*
trust configuration, inside the credentials' validity windows, replays
the token instead of re-walking both chains (and re-doing their RSA
signature verifications).

Determinism argument — resumption must not change any virtual outcome:

* ``establish_context`` never touches the virtual clock or any RNG; it
  is a pure function of its arguments apart from the ``now`` mixed into
  the (never re-read) session key.  Skipping it is invisible to the
  event stream.
* The cache key pins every input the full handshake reads: both leaf
  fingerprints (a fingerprint commits to the whole chain, since each
  certificate's signature covers its issuer linkage), both delegation
  depths, the (uid, version) of both trust stores — bumped whenever an
  anchor is added or removed — the fingerprints of any DCSC extra
  anchors, and the ``encrypted`` flag.
* The token's validity window is ``[max(not_before), min(not_after)]``
  over both chains: exactly the window inside which the full handshake
  would succeed for time-dependent reasons.  Outside it, the entry is
  dropped and the full handshake runs (and raises, for an expired
  proxy — the security property the regression tests pin).
* Failures are never cached; a rejected chain is re-rejected from
  scratch every time.

The only observable divergence is ``SecurityContext.session_key``: a
resumed context carries the key derived at original establishment (the
"ticket"), not one re-mixed with the current ``now``.  Nothing in the
simulation reads the key bytes, so outcomes are unaffected; the
differential property tests compare peers/identities, not the key.

``REPRO_NO_SESSION_CACHE=1`` disables resumption entirely (checked per
call, so tests can monkeypatch it), mirroring ``REPRO_NO_NUMPY``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

from repro.util import opcount

if TYPE_CHECKING:  # import cycle: context.py imports this module
    from repro.gsi.context import SecurityContext
    from repro.telemetry.metrics import MetricsRegistry

#: default bound on live tokens; fleet runs see one token per
#: (user proxy, endpoint host credential) pair, far below this
DEFAULT_MAX_ENTRIES = 1024


def caching_enabled() -> bool:
    """True unless ``REPRO_NO_SESSION_CACHE`` is set (read per call)."""
    return not os.environ.get("REPRO_NO_SESSION_CACHE")


@dataclass(frozen=True)
class ResumptionToken:
    """One cached mutual-authentication outcome."""

    key: tuple
    context: "SecurityContext"
    #: validity window over both chains; the token resumes only while
    #: ``not_before <= now <= not_after`` (virtual time)
    not_before: float
    not_after: float
    issued_at: float

    def valid_at(self, now: float) -> bool:
        """True iff every participating certificate is valid at ``now``."""
        return self.not_before <= now <= self.not_after


@dataclass
class SessionCache:
    """Bounded LRU of :class:`ResumptionToken`, keyed on handshake inputs.

    Purely wall-clock: lookups and stores never advance virtual time or
    consume randomness.  Stats are plain integers; :meth:`bind_metrics`
    additionally mirrors them into ``gsi_session_*`` counters of a
    world's metrics registry.
    """

    max_entries: int = DEFAULT_MAX_ENTRIES
    _tokens: dict = field(default_factory=dict, repr=False)
    hits: int = 0
    misses: int = 0
    expirations: int = 0
    evictions: int = 0
    _metric_hits: object = field(default=None, repr=False)
    _metric_misses: object = field(default=None, repr=False)
    _metric_expirations: object = field(default=None, repr=False)
    _metric_evictions: object = field(default=None, repr=False)
    _metric_size: object = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self._tokens)

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror cache activity into ``gsi_session_*`` instruments."""
        self._metric_hits = registry.counter(
            "gsi_session_hits_total", "GSI session resumptions"
        )
        self._metric_misses = registry.counter(
            "gsi_session_misses_total", "GSI full handshakes (cache miss)"
        )
        self._metric_expirations = registry.counter(
            "gsi_session_expirations_total",
            "tokens dropped: credential validity window left",
        )
        self._metric_evictions = registry.counter(
            "gsi_session_evictions_total", "tokens dropped: LRU capacity"
        )
        self._metric_size = registry.gauge(
            "gsi_session_tokens", "live resumption tokens"
        )

    def lookup(self, key: Hashable, now: float) -> "SecurityContext | None":
        """The cached context for ``key`` if resumable at ``now``, else None."""
        token = self._tokens.get(key)
        if token is None:
            self._miss()
            return None
        if not token.valid_at(now):
            # TTL is tied to credential expiry: an expired (or not yet
            # valid) participant means the full handshake must run — and
            # for expiry it will raise, exactly like a cache-off world.
            del self._tokens[key]
            self.expirations += 1
            if self._metric_expirations is not None:
                self._metric_expirations.inc()
                self._metric_size.set(len(self._tokens))
            self._miss()
            return None
        # LRU touch
        self._tokens[key] = self._tokens.pop(key)
        self.hits += 1
        opcount.bump("gsi.context.resumed")
        if self._metric_hits is not None:
            self._metric_hits.inc()
        return token.context

    def store(
        self,
        key: Hashable,
        context: "SecurityContext",
        not_before: float,
        not_after: float,
        now: float,
    ) -> ResumptionToken:
        """Deposit a token for a just-established context."""
        token = ResumptionToken(
            key=key,
            context=context,
            not_before=not_before,
            not_after=not_after,
            issued_at=now,
        )
        if key not in self._tokens and len(self._tokens) >= self.max_entries:
            self._tokens.pop(next(iter(self._tokens)))
            self.evictions += 1
            if self._metric_evictions is not None:
                self._metric_evictions.inc()
        self._tokens[key] = token
        if self._metric_size is not None:
            self._metric_size.set(len(self._tokens))
        return token

    def invalidate(self, key: Hashable) -> bool:
        """Drop one token; True if it existed."""
        existed = self._tokens.pop(key, None) is not None
        if existed and self._metric_size is not None:
            self._metric_size.set(len(self._tokens))
        return existed

    def clear(self) -> None:
        """Drop every token (stats retained)."""
        self._tokens.clear()
        if self._metric_size is not None:
            self._metric_size.set(0)

    def stats(self) -> dict[str, int]:
        """Point-in-time counters for ops tables and tests."""
        return {
            "tokens": len(self._tokens),
            "hits": self.hits,
            "misses": self.misses,
            "expirations": self.expirations,
            "evictions": self.evictions,
        }

    def _miss(self) -> None:
        self.misses += 1
        if self._metric_misses is not None:
            self._metric_misses.inc()


#: the process-default cache ``establish_context`` consults; like the
#: pki memo layers it is process-global, with correctness carried by the
#: key (trust-store uid/version makes entries world-private in practice)
_DEFAULT = SessionCache()


def default_session_cache() -> SessionCache:
    """The module-level cache used when no explicit cache is passed."""
    return _DEFAULT


def reset_default_session_cache() -> SessionCache:
    """Replace the default cache with a fresh one (tests, benchmarks)."""
    global _DEFAULT
    _DEFAULT = SessionCache()
    return _DEFAULT
