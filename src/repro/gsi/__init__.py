"""Grid Security Infrastructure: contexts, gridmaps, callouts, delegation.

Implements the security handling of paper Section II.C: GSI mutual
authentication on the control channel, the authorization callout that
maps a certificate subject to a local user id, gridmap files (the error
prone mechanism GCMU eliminates), and proxy delegation (what lets Globus
Online act for the user).
"""

from repro.gsi.context import SecurityContext, establish_context
from repro.gsi.credentials import CredentialStore
from repro.gsi.gridmap import Gridmap
from repro.gsi.authz import AuthorizationCallout, GridmapCallout
from repro.gsi.delegation import delegate_credential
from repro.gsi.session_cache import (
    ResumptionToken,
    SessionCache,
    caching_enabled,
    default_session_cache,
    reset_default_session_cache,
)

__all__ = [
    "SecurityContext",
    "establish_context",
    "CredentialStore",
    "Gridmap",
    "AuthorizationCallout",
    "GridmapCallout",
    "delegate_credential",
    "ResumptionToken",
    "SessionCache",
    "caching_enabled",
    "default_session_cache",
    "reset_default_session_cache",
]
