"""Gridmap files.

The gridmap is "a list of certificate subject to user id mapping
maintained by the server administrator.  This file is, however, a
frequent source of errors and complaints, because of the difficulties
inherent in keeping it up to date" (paper Section IV.C).  We implement
the file faithfully — including its failure mode (stale/missing entries
raising :class:`GridmapError`) — because the conventional baseline in
the setup benchmark depends on it, and GCMU's contribution is precisely
to delete it.
"""

from __future__ import annotations

from repro.errors import GridmapError
from repro.pki.dn import DistinguishedName


class Gridmap:
    """DN → local-username mappings, with grid-mapfile text round-trip."""

    def __init__(self) -> None:
        self._entries: dict[str, list[str]] = {}

    def add(self, subject: DistinguishedName | str, username: str) -> None:
        """Map ``subject`` to ``username`` (a DN may map to several accounts)."""
        key = str(subject)
        users = self._entries.setdefault(key, [])
        if username not in users:
            users.append(username)

    def remove(self, subject: DistinguishedName | str, username: str | None = None) -> None:
        """Remove one mapping (or all mappings of a subject)."""
        key = str(subject)
        if key not in self._entries:
            return
        if username is None:
            del self._entries[key]
            return
        users = self._entries[key]
        if username in users:
            users.remove(username)
        if not users:
            del self._entries[key]

    def lookup(self, subject: DistinguishedName | str) -> str:
        """Default (first) local account for ``subject``; raises if absent."""
        key = str(subject)
        users = self._entries.get(key)
        if not users:
            raise GridmapError(f"no gridmap entry for {key!r}", subject=key)
        return users[0]

    def lookup_all(self, subject: DistinguishedName | str) -> list[str]:
        """All accounts ``subject`` may run as (empty list if unmapped)."""
        return list(self._entries.get(str(subject), []))

    def authorize(self, subject: DistinguishedName | str, username: str) -> bool:
        """May ``subject`` run as ``username``?"""
        return username in self._entries.get(str(subject), [])

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, subject: DistinguishedName | str) -> bool:
        return str(subject) in self._entries

    # -- file format ----------------------------------------------------------

    def format_file(self) -> str:
        """Render as a classic grid-mapfile: ``"<dn>" user1,user2``."""
        lines = [
            f'"{dn}" {",".join(users)}'
            for dn, users in sorted(self._entries.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def parse_file(text: str) -> "Gridmap":
        """Parse :meth:`format_file` output (blank lines and # comments ok)."""
        gm = Gridmap()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if not line.startswith('"'):
                raise GridmapError(f"malformed gridmap line: {raw!r}")
            end = line.find('"', 1)
            if end < 0:
                raise GridmapError(f"unterminated DN quote: {raw!r}")
            dn = line[1:end]
            users = line[end + 1 :].strip()
            if not users:
                raise GridmapError(f"gridmap line has no usernames: {raw!r}")
            for user in users.split(","):
                gm.add(dn, user.strip())
        return gm
