"""Per-user credential management (grid-proxy-init and friends).

In the conventional workflow the user obtains a long-term certificate
from a well-known CA (the painful steps of paper Section III.A), stores
it, and creates short-lived proxies to actually work with.  In the GCMU
workflow the store instead holds the short-lived certificate issued by
``myproxy-logon``.  Either way, GridFTP clients pull the active
credential from here.
"""

from __future__ import annotations

import random

from repro.errors import SecurityError
from repro.pki.credential import Credential
from repro.pki.proxy import DEFAULT_PROXY_LIFETIME, create_proxy
from repro.pki.validation import TrustStore
from repro.sim.clock import Clock


class CredentialStore:
    """One user's ``~/.globus`` directory: certificates, proxies, trust roots."""

    def __init__(self, owner: str, clock: Clock, rng: random.Random | None = None) -> None:
        self.owner = owner
        self.clock = clock
        self.rng = rng or random.Random()
        self.trust = TrustStore()
        self._long_term: Credential | None = None
        self._proxy: Credential | None = None

    # -- installation -------------------------------------------------------

    def install_certificate(self, credential: Credential) -> None:
        """Install a long-term (usercert.pem/userkey.pem) credential."""
        self._long_term = credential

    def install_proxy(self, credential: Credential) -> None:
        """Install a ready-made short-lived credential (myproxy-logon output)."""
        self._proxy = credential

    # -- access -----------------------------------------------------------------

    @property
    def long_term(self) -> Credential | None:
        """The installed long-term credential, if any."""
        return self._long_term

    def grid_proxy_init(self, lifetime: float = DEFAULT_PROXY_LIFETIME) -> Credential:
        """Create a proxy from the long-term credential (grid-proxy-init)."""
        if self._long_term is None:
            raise SecurityError(
                f"user {self.owner!r} has no long-term certificate installed"
            )
        self._proxy = create_proxy(self._long_term, self.clock, self.rng, lifetime)
        return self._proxy

    def active_credential(self) -> Credential:
        """The credential a client should authenticate with right now.

        Prefers a valid proxy/short-lived credential; falls back to the
        long-term one.  Raises if nothing valid is available (e.g. the
        short-lived MyProxy certificate has expired).
        """
        now = self.clock.now
        if self._proxy is not None and self._proxy.valid_at(now):
            return self._proxy
        if self._long_term is not None and self._long_term.valid_at(now):
            return self._long_term
        raise SecurityError(f"user {self.owner!r} has no valid credential at t={now}")

    def has_valid_credential(self) -> bool:
        """True if active_credential() would succeed."""
        try:
            self.active_credential()
            return True
        except SecurityError:
            return False
