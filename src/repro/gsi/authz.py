"""Authorization callouts.

After GSI authentication succeeds, "an authorization callout is invoked
to verify authorization and determine the local user id for which the
request should be executed.  This callout is linked dynamically" (paper
Section II.C).  We model the callout as a small interface; the classic
implementation consults a gridmap file, and GCMU's replacement (which
parses the username out of the MyProxy-issued DN) lives in
:mod:`repro.core.authz_callout`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import AuthorizationError
from repro.gsi.gridmap import Gridmap
from repro.pki.validation import ValidationResult


class AuthorizationCallout(ABC):
    """Maps an authenticated subject to a local username (or raises)."""

    name: str = "authz_base"

    @abstractmethod
    def map_subject(
        self, result: ValidationResult, requested_user: str | None = None
    ) -> str:
        """Return the local username the session should run as.

        ``result`` is the chain-validation outcome for the authenticated
        peer (identity = proxy-stripped DN).  ``requested_user`` is the
        account the client asked for (FTP USER argument), if any.

        Raises :class:`~repro.errors.AuthorizationError` (or subclass)
        when no mapping exists or the requested account is not permitted.
        """


class GridmapCallout(AuthorizationCallout):
    """The conventional callout: look the identity up in a gridmap file."""

    name = "gridmap"

    def __init__(self, gridmap: Gridmap) -> None:
        self.gridmap = gridmap

    def map_subject(
        self, result: ValidationResult, requested_user: str | None = None
    ) -> str:
        """Map an authenticated subject to a local username."""
        identity = result.identity
        if requested_user is not None:
            if not self.gridmap.authorize(identity, requested_user):
                raise AuthorizationError(
                    f"{identity} is not mapped to account {requested_user!r}"
                )
            return requested_user
        return self.gridmap.lookup(identity)  # raises GridmapError if stale
