"""Globus Online: the hosted (SaaS) transfer service of paper Section VI.

* :mod:`repro.globusonline.service` — the hosted service: endpoint
  registry, user accounts, activation (username/password via the
  endpoint's MyProxy CA, Figure 6, with credential-exposure accounting),
  transfer submission;
* :mod:`repro.globusonline.oauth` — the site OAuth server and the
  redirect flow that keeps passwords off the third party (Figure 7);
* :mod:`repro.globusonline.transfer` — transfer jobs with automatic
  fault recovery: re-authenticate with the stored short-term credential
  and "restart the transfer from the last checkpoint";
* :mod:`repro.globusonline.interfaces` — the REST-style and CLI facades
  the paper's Section VI.A describes.
"""

from repro.globusonline.service import GlobusOnline, GOUser
from repro.globusonline.oauth import OAuthServer
from repro.globusonline.transfer import BatchTransferJob, TransferJob, JobStatus
from repro.globusonline.interfaces import TransferAPI, format_job_cli

__all__ = [
    "GlobusOnline",
    "GOUser",
    "OAuthServer",
    "TransferJob",
    "BatchTransferJob",
    "JobStatus",
    "TransferAPI",
    "format_job_cli",
]
