"""The hosted Globus Online service.

"The Globus team operates this hosted service as a third-party
mediator/facilitator of file transfers between GridFTP servers" (paper
Section VI.A).  The service holds an endpoint registry and per-user
activation tables; all of its GridFTP activity originates from its own
host, using the short-term credentials activations obtained — it never
holds a user's long-term key and never stores a password.

Credential-exposure accounting: every time a password transits a party,
a ``credential.exposure`` event is emitted naming that party.  The
Figure 7 benchmark compares the party sets of password activation
(site + Globus Online) vs OAuth activation (site only).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.endpoint import EndpointInfo
from repro.core.gcmu import GCMUEndpoint
from repro.errors import ActivationExpiredError, AuthenticationError, ReproError
from repro.globusonline.oauth import OAuthServer
from repro.globusonline.transfer import (
    BatchTransferJob,
    JobStatus,
    TransferJob,
    run_batch_job,
    run_job,
)
from repro.gridftp.transfer import TransferOptions
from repro.myproxy.client import myproxy_logon
from repro.pki.credential import Credential
from repro.pki.validation import TrustStore
from repro.recovery import CircuitBreaker, RetryPolicy
from repro.scheduler import (
    CoalescedBatch,
    FleetScheduler,
    ScheduledTask,
    SchedulerConfig,
    ShardedFleetScheduler,
    TaskState,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.world import World


@dataclass
class Activation:
    """A user's live short-term credential for one endpoint."""

    endpoint_name: str
    credential: Credential
    activated_at: float

    def valid_at(self, t: float) -> bool:
        """True while the credential is within validity."""
        return self.credential.valid_at(t)


@dataclass
class GOUser:
    """A Globus Online account."""

    name: str
    activations: dict[str, Activation] = field(default_factory=dict)

    def activation_for(self, endpoint_name: str, now: float) -> Activation:
        """The live activation for an endpoint (or raise)."""
        act = self.activations.get(endpoint_name)
        if act is None:
            raise AuthenticationError(
                f"user {self.name!r} has not activated endpoint {endpoint_name!r}"
            )
        if not act.valid_at(now):
            raise ActivationExpiredError(
                f"activation for {endpoint_name!r} has expired; re-activate",
                endpoint=endpoint_name,
                expired_at=act.credential.expires_at(),
            )
        return act


@dataclass
class EndpointRecord:
    """One registered endpoint."""

    info: EndpointInfo
    gcmu: GCMUEndpoint | None = None
    oauth: OAuthServer | None = None
    #: trust anchors needed to validate this endpoint's GridFTP server
    trust: TrustStore = field(default_factory=TrustStore)

    @property
    def gridftp_address(self) -> tuple[str, int]:
        """The GridFTP server's (host, port)."""
        return self.info.gridftp_address


class GlobusOnline:
    """The SaaS itself, running on its own host."""

    def __init__(
        self,
        world: "World",
        host: str,
        scheduler_config: SchedulerConfig | None = None,
        shards: int | None = None,
    ) -> None:
        world.network.host(host)  # must exist in the topology
        self.world = world
        self.host = host
        self.endpoints: dict[str, EndpointRecord] = {}
        self.users: dict[str, GOUser] = {}
        self.jobs: dict[str, TransferJob | BatchTransferJob] = {}
        self._job_ids = itertools.count(1)
        # recovery posture for all jobs: exponential backoff with seeded
        # jitter, and a breaker per endpoint pair so a dead site stops
        # consuming attempts across jobs.
        self.retry_policy = RetryPolicy(
            max_attempts=5, initial_backoff_s=15.0, multiplier=2.0,
            max_backoff_s=240.0, jitter=0.1,
        )
        self.breaker = CircuitBreaker(
            world.clock, failure_threshold=5, reset_timeout_s=600.0,
            on_open=self._on_breaker_open,
        )
        # every submission flows through the fleet scheduler: fair-share
        # queuing across accounts, lease-based workers, admission control,
        # and small-file coalescing into pipelined batch jobs.  With
        # shards=N the control plane hashes accounts across N scheduler
        # shards behind the work-stealing router (DESIGN.md §14);
        # shards=None keeps the single unsharded scheduler.
        if shards is None:
            self.scheduler: FleetScheduler | ShardedFleetScheduler = (
                FleetScheduler(
                    world, scheduler_config or SchedulerConfig(),
                    fold_batch=self._fold_batch,
                ))
        else:
            self.scheduler = ShardedFleetScheduler(
                world, scheduler_config or SchedulerConfig(),
                fold_batch=self._fold_batch, shards=shards,
            )

    def _on_breaker_open(self, key: str) -> None:
        """Flush pooled control channels when an endpoint pair's circuit opens.

        The breaker key is ``"<src endpoint>-><dst endpoint>"``; a circuit
        opening means the fabric has declared those sites unhealthy, so
        holding authenticated channels to them would hand the next job a
        connection the real world would have lost.  Safe unconditionally:
        invalidation only forces the full handshake, which charges and
        fails exactly as an unpooled world would.
        """
        pool = getattr(self.world, "_control_channel_pool", None)
        if pool is None:
            return
        for name in key.split("->"):
            record = self.endpoints.get(name)
            if record is not None:
                pool.invalidate_host(record.gridftp_address[0])

    # -- registry -----------------------------------------------------------

    def register_endpoint(
        self,
        info: EndpointInfo,
        gcmu: GCMUEndpoint | None = None,
        oauth: OAuthServer | None = None,
    ) -> EndpointRecord:
        """Publish an endpoint (GCMU's install option does this)."""
        record = EndpointRecord(info=info, gcmu=gcmu, oauth=oauth)
        if gcmu is not None:
            # registration carries the site CA certificate so the service
            # can validate the endpoint's host certificate.
            record.trust.add_anchor(gcmu.myproxy.ca.certificate)
        self.endpoints[info.name] = record
        self.world.emit("globusonline.register", "endpoint registered",
                        endpoint=info.name, site=info.site)
        return record

    def attach_oauth(self, endpoint_name: str, oauth: OAuthServer) -> None:
        """Enable the Figure 7 flow for an already-registered endpoint."""
        self.endpoint(endpoint_name).oauth = oauth

    def endpoint(self, name: str) -> EndpointRecord:
        """Look up a registered endpoint record."""
        try:
            return self.endpoints[name]
        except KeyError:
            raise ReproError(f"unknown endpoint {name!r}") from None

    def register_user(self, name: str) -> GOUser:
        """Create a Globus Online account."""
        user = GOUser(name=name)
        self.users[name] = user
        return user

    # -- activation (Figure 6) ------------------------------------------------

    def activate(
        self,
        user: GOUser,
        endpoint_name: str,
        username: str,
        password: str,
        lifetime_s: float | None = None,
    ) -> Activation:
        """Password activation: the user types credentials into the
        Globus Online web page, which relays them to the endpoint's
        MyProxy CA.  The password transits Globus Online (exposure is
        recorded) but is not stored — only the short-term certificate is.
        """
        record = self.endpoint(endpoint_name)
        if not record.info.supports_activation:
            raise AuthenticationError(
                f"endpoint {endpoint_name!r} has no MyProxy CA for activation"
            )
        with self.world.tracer.span(
            "globusonline.activate", endpoint=endpoint_name, method="password"
        ):
            self.world.emit(
                "credential.exposure", "password observed",
                party="globusonline", username=username, channel="web-activation",
            )
            self.world.emit(
                "credential.exposure", "password observed",
                party=f"site:{record.info.site}", username=username, channel="myproxy-logon",
            )
            credential = myproxy_logon(
                self.world,
                self.host,
                record.info.myproxy_address,
                username,
                password,
                lifetime_s=lifetime_s,
                trust=record.trust,
            )
            activation = Activation(
                endpoint_name=endpoint_name,
                credential=credential,
                activated_at=self.world.now,
            )
            user.activations[endpoint_name] = activation
            self._count_activation("password")
            self.world.emit("globusonline.activate", "endpoint activated",
                            user=user.name, endpoint=endpoint_name, method="password")
            return activation

    def _count_activation(self, method: str) -> None:
        self.world.metrics.counter(
            "globusonline_activations_total", "Endpoint activations by method",
            labelnames=("method",),
        ).inc(method=method)

    def activate_oauth(
        self,
        user: GOUser,
        endpoint_name: str,
        username: str,
        password: str,
        lifetime_s: float | None = None,
    ) -> Activation:
        """OAuth activation (Figure 7): the password goes only to the
        site's own web page; Globus Online receives an authorization code
        and exchanges it for the short-term credential.
        """
        record = self.endpoint(endpoint_name)
        if record.oauth is None:
            raise AuthenticationError(
                f"endpoint {endpoint_name!r} has no OAuth server configured"
            )
        with self.world.tracer.span(
            "globusonline.activate", endpoint=endpoint_name, method="oauth"
        ):
            # the user's browser talks to the site directly: the exposure
            # event for the site is emitted by OAuthServer.authorize itself.
            code = record.oauth.authorize(username, password, lifetime_s)
            credential = record.oauth.exchange(code)
            if record.gcmu is not None:
                record.trust.add_anchor(record.gcmu.myproxy.ca.certificate)
            activation = Activation(
                endpoint_name=endpoint_name,
                credential=credential,
                activated_at=self.world.now,
            )
            user.activations[endpoint_name] = activation
            self._count_activation("oauth")
            self.world.emit("globusonline.activate", "endpoint activated",
                            user=user.name, endpoint=endpoint_name, method="oauth")
            return activation

    # -- transfers (Figure 6), through the fleet scheduler ---------------------

    def set_fair_share(self, user: GOUser | str, weight: float) -> None:
        """Assign a user's fair-share weight (byte shares track weights)."""
        name = user if isinstance(user, str) else user.name
        self.scheduler.set_weight(name, weight)

    def _size_hint(self, endpoint_name: str, path: str) -> int:
        """Best-effort size estimate for admission budgets and batching.

        Registered GCMU endpoints expose their storage; a superuser stat
        there mirrors the hosted service's metadata sweep.  Unknown sizes
        assume "large" so the file never coalesces and budgets stay safe.
        """
        from repro.scheduler import DEFAULT_BATCH_THRESHOLD_BYTES

        record = self.endpoints.get(endpoint_name)
        if record is not None and record.gcmu is not None:
            try:
                return record.gcmu.storage.stat(path, 0).size
            except ReproError:
                pass
        return DEFAULT_BATCH_THRESHOLD_BYTES

    def _bind_job(self, task: ScheduledTask, job) -> None:
        """Reflect scheduler task state onto the owning job."""

        def on_claim(t: ScheduledTask) -> None:
            job.status = JobStatus.CLAIMED

        def on_requeue(t: ScheduledTask) -> None:
            if t.state is TaskState.FAILED:
                job.status = JobStatus.FAILED
                job.error = t.error
            else:
                job.status = JobStatus.QUEUED

        task.on_claim = on_claim
        task.on_requeue = on_requeue

    def submit_transfer(
        self,
        user: GOUser,
        src_endpoint: str,
        src_path: str,
        dst_endpoint: str,
        dst_path: str,
        options: TransferOptions | None = None,
        max_attempts: int = 5,
        priority: int = 0,
        defer: bool = False,
    ) -> TransferJob:
        """Submit a transfer job through the fleet scheduler.

        With ``options=None`` the service auto-tunes (Section VI.A).
        The job survives injected faults by re-authenticating with the
        stored short-term credentials and restarting from the last
        checkpoint.  By default the call drains the queue before
        returning (synchronous in virtual time, as before); with
        ``defer=True`` the job stays QUEUED until :meth:`process_queue`
        runs — that is how fleet campaigns batch up contention.  A full
        queue or exhausted quota raises a typed admission error with a
        retry-after hint.
        """
        job = TransferJob(
            job_id=f"go-{next(self._job_ids):06d}",
            user=user.name,
            src_endpoint=src_endpoint,
            src_path=src_path,
            dst_endpoint=dst_endpoint,
            dst_path=dst_path,
            submitted_at=self.world.now,
            max_attempts=max_attempts,
        )
        task = ScheduledTask(
            task_id="",
            user=user.name,
            src_endpoint=src_endpoint,
            dst_endpoint=dst_endpoint,
            size_hint=self._size_hint(src_endpoint, src_path),
            execute=lambda: run_job(self, user, job, options),
            measure=lambda j: j.result.nbytes if j.result is not None else 0,
            priority=priority,
            job_id=job.job_id,
        )
        self._bind_job(task, job)
        self.scheduler.submit(task)  # may raise QueueFullError / QuotaExceededError
        self.jobs[job.job_id] = job
        if not defer:
            self.process_queue()
        return job

    def submit_batch_transfer(
        self,
        user: GOUser,
        src_endpoint: str,
        dst_endpoint: str,
        pairs: list[tuple[str, str]],
        options: TransferOptions | None = None,
        priority: int = 0,
        defer: bool = False,
    ) -> BatchTransferJob:
        """Submit a multi-file (directory-style) transfer.

        The batch path pipelines the control traffic, reuses mode E data
        channels, and moves several files concurrently — the reason a
        folder of small files through Globus Online does not cost one
        round trip per file.  Batch jobs never re-coalesce; they are
        already the coalesced form.
        """
        job = BatchTransferJob(
            job_id=f"go-batch-{next(self._job_ids):06d}",
            user=user.name,
            src_endpoint=src_endpoint,
            dst_endpoint=dst_endpoint,
            pairs=tuple(pairs),
            submitted_at=self.world.now,
        )
        task = ScheduledTask(
            task_id="",
            user=user.name,
            src_endpoint=src_endpoint,
            dst_endpoint=dst_endpoint,
            size_hint=sum(self._size_hint(src_endpoint, sp) for sp, _ in pairs),
            execute=lambda: run_batch_job(self, user, job, options),
            measure=lambda j: j.bytes_done,
            priority=priority,
            job_id=job.job_id,
            coalesce=False,
        )
        self._bind_job(task, job)
        self.scheduler.submit(task)
        self.jobs[job.job_id] = job
        if not defer:
            self.process_queue()
        return job

    def _fold_batch(self, bucket: "CoalescedBatch") -> ScheduledTask:
        """Coalesce queued sub-threshold single-file tasks into one batch.

        The member jobs stay visible under their own ids; their statuses
        track the folded batch job's fate.
        """
        members = [self.jobs[t.job_id] for t in bucket.tasks]
        batch = BatchTransferJob(
            job_id=f"go-batch-{next(self._job_ids):06d}",
            user=bucket.user,
            src_endpoint=bucket.src_endpoint,
            dst_endpoint=bucket.dst_endpoint,
            pairs=tuple((m.src_path, m.dst_path) for m in members),
            submitted_at=self.world.now,
        )
        self.jobs[batch.job_id] = batch
        user = self.users[bucket.user]

        def execute() -> BatchTransferJob:
            run_batch_job(self, user, batch, None)
            for member in members:
                member.status = batch.status
                member.error = batch.error
                member.needs_reactivation = batch.needs_reactivation
                member.completed_at = batch.completed_at
            return batch

        task = ScheduledTask(
            task_id="",
            user=bucket.user,
            src_endpoint=bucket.src_endpoint,
            dst_endpoint=bucket.dst_endpoint,
            size_hint=bucket.total_bytes,
            execute=execute,
            measure=lambda b: b.bytes_done,
            job_id=batch.job_id,
            coalesce=False,
        )
        self._bind_job(task, batch)
        return task

    def process_queue(self) -> int:
        """Drain the scheduler (advancing virtual time); tasks serviced."""
        return self.scheduler.run_until_idle()

    def job_status(self, job_id: str) -> JobStatus:
        """Status of a submitted job by id."""
        return self.jobs[job_id].status
