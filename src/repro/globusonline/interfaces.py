"""Globus Online access interfaces.

Section VI.A: "A simple web GUI serves the needs of ad hoc and less
technical users.  A command line interface via SSH exposes more advanced
capabilities ... A REST API facilitates integration for system
builders."  :class:`TransferAPI` is the REST-shaped facade (plain dicts
in/out, no objects leak), and :func:`format_job_cli` renders the CLI
view of a job.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.globusonline.transfer import JobStatus
from repro.util.units import fmt_bytes, fmt_duration, fmt_rate

if TYPE_CHECKING:  # pragma: no cover
    from repro.globusonline.service import GlobusOnline, GOUser


class TransferAPI:
    """REST-style facade: every method takes/returns JSON-shaped dicts."""

    def __init__(self, service: "GlobusOnline") -> None:
        self.service = service

    def endpoint_list(self) -> list[dict[str, Any]]:
        """GET /endpoint_list"""
        out = []
        for name, record in sorted(self.service.endpoints.items()):
            host, port = record.gridftp_address
            out.append(
                {
                    "name": name,
                    "display_name": record.info.display_name,
                    "gridftp": f"gsiftp://{host}:{port}",
                    "activation": record.info.supports_activation,
                    "oauth": record.oauth is not None,
                }
            )
        return out

    def activate(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST /endpoint/<name>/activate"""
        user = self._user(payload["user"])
        method = payload.get("method", "password")
        if method == "oauth":
            activation = self.service.activate_oauth(
                user, payload["endpoint"], payload["username"], payload["password"]
            )
        else:
            activation = self.service.activate(
                user, payload["endpoint"], payload["username"], payload["password"]
            )
        return {
            "endpoint": activation.endpoint_name,
            "subject": str(activation.credential.subject),
            "expires_at": activation.credential.expires_at(),
            "code": "Activated.Success",
        }

    def submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST /transfer"""
        user = self._user(payload["user"])
        job = self.service.submit_transfer(
            user,
            payload["source_endpoint"],
            payload["source_path"],
            payload["destination_endpoint"],
            payload["destination_path"],
        )
        return {"task_id": job.job_id, "code": "Accepted"}

    def submit_batch(self, payload: dict[str, Any]) -> dict[str, Any]:
        """POST /transfer with a DATA list (the directory-move shape)."""
        user = self._user(payload["user"])
        pairs = [(item["source_path"], item["destination_path"])
                 for item in payload["DATA"]]
        job = self.service.submit_batch_transfer(
            user,
            payload["source_endpoint"],
            payload["destination_endpoint"],
            pairs,
        )
        return {"task_id": job.job_id, "code": "Accepted",
                "files": len(pairs)}

    def task_status(self, task_id: str) -> dict[str, Any]:
        """GET /task/<id>"""
        job = self.service.jobs.get(task_id)
        if job is None:
            raise ReproError(f"no such task {task_id!r}")
        body: dict[str, Any] = {
            "task_id": job.job_id,
            "status": job.status.value.upper(),
        }
        if hasattr(job, "attempts"):  # single-file job
            body["attempts"] = job.attempts
            body["faults"] = job.faults_survived
            if job.result is not None:
                body["bytes_transferred"] = job.result.nbytes
                body["effective_rate_bps"] = job.result.rate_bps
        else:  # batch job
            body["files"] = job.files_done
            body["bytes_transferred"] = job.bytes_done
        if job.error:
            body["nice_status"] = job.error
        return body

    def _user(self, name: str) -> "GOUser":
        user = self.service.users.get(name)
        if user is None:
            raise ReproError(f"no such Globus Online user {name!r}")
        return user


def format_job_cli(job) -> str:
    """The ``status``-command view a CLI user would see."""
    lines = [
        f"Task ID     : {job.job_id}",
        f"Status      : {job.status.value.upper()}",
        f"Request Time: t={job.submitted_at:.1f}",
        f"Attempts    : {job.attempts} (faults survived: {job.faults_survived})",
    ]
    if job.result is not None:
        lines += [
            f"Bytes       : {fmt_bytes(job.result.nbytes)}",
            f"Rate        : {fmt_rate(job.result.rate_bps)}",
            f"Duration    : {fmt_duration(job.result.duration_s)}",
        ]
    if job.status is JobStatus.FAILED:
        lines.append(f"Error       : {job.error}")
    return "\n".join(lines)
